//! Round-throughput bench: sequential vs. parallel engine at 32 / 128
//! clients, plus the grid driver fanning out whole scenario cells.
//!
//! ```sh
//! cargo bench --bench runtime
//! ```
//!
//! On a multi-core host the `par` rows should beat `seq` at 128 clients
//! (client training dominates and parallelizes embarrassingly); on a
//! single-core container the engine degrades to the inline path and the
//! rows tie.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use signguard::core::SignGuard;
use signguard::fl::{tasks, FlConfig, SelectionTracker, Simulator};
use signguard::runtime::{Engine, GridRunner, RunPlan};

fn round_cfg(clients: usize) -> FlConfig {
    FlConfig { num_clients: clients, batch_size: 4, epochs: 1, ..FlConfig::default() }
}

fn bench_round_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_throughput");
    group.sample_size(10);
    for &clients in &[32usize, 128] {
        let modes: [(&str, Engine); 2] = [("seq", Engine::sequential()), ("par", Engine::parallel(0))];
        for (mode, engine) in modes {
            group.bench_with_input(BenchmarkId::new(mode, clients), &clients, |b, &n| {
                let mut sim = Simulator::with_engine(
                    tasks::mlp_task(1),
                    round_cfg(n),
                    Box::new(SignGuard::plain(0)),
                    None,
                    engine.clone(),
                );
                let mut tracker = SelectionTracker::new();
                let mut round = 0;
                b.iter(|| {
                    sim.step(round, &mut tracker);
                    round += 1;
                });
            });
        }
    }
    group.finish();
}

fn bench_grid_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_fanout_8_cells");
    group.sample_size(10);
    for (mode, jobs) in [("seq", 1usize), ("par", 0)] {
        group.bench_function(mode, |b| {
            b.iter(|| {
                let mut plan: RunPlan<f32> = RunPlan::new(3);
                for i in 0..8 {
                    plan.cell(format!("cell-{i}"), |ctx| {
                        let cfg = FlConfig {
                            num_clients: 8,
                            batch_size: 8,
                            epochs: 1,
                            seed: ctx.seed,
                            ..FlConfig::default()
                        };
                        let mut sim = Simulator::new(
                            tasks::mlp_task(ctx.seed),
                            cfg,
                            Box::new(SignGuard::plain(ctx.seed)),
                            None,
                        );
                        sim.run().best_accuracy
                    });
                }
                GridRunner::new(jobs).run(plan).cells.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_round_throughput, bench_grid_fanout);
criterion_main!(benches);
