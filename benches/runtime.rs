//! Round-throughput bench: sequential vs. parallel engine at 32 / 128
//! clients, the grid driver fanning out whole scenario cells, the
//! schedule axis (sync vs. straggler vs. async-buffered pipeline overhead
//! at 128 clients), the sg-obs instrumentation overhead (registry
//! disabled vs. enabled on the same pipeline), the robust-aggregator
//! family (mean / median / krum / bulyan / geomed) sequential vs.
//! sharded, and the `sg_math::kernels` width A/B (scalar vs. wide on the
//! same reduction inputs).
//!
//! ```sh
//! cargo bench --bench runtime
//! ```
//!
//! On a multi-core host the `par` rows should beat `seq` at 128 clients;
//! on a single-core container the engine degrades to the inline path and
//! the rows tie.
//!
//! # Perf gate
//!
//! After the Criterion groups, the binary times one `aggregate` call per
//! rule — sequential vs. an `SG_BENCH_THREADS`-wide pool (default 4) at
//! 128 clients — plus the scheduler hot path (per-step pipeline time of
//! the straggler and async-buffered schedules against the synchronous
//! baseline, as `sched/*` rows), the sg-obs probe cost (the same sync
//! pipeline with the registry disabled vs. enabled, as the
//! `obs/round-overhead` row), and the SIMD kernel layer (explicit
//! scalar-width vs. wide-width calls on identical inputs, as `kernel/*`
//! rows with (scalar, wide) stored in the (seq, par) columns), and
//! writes the wall times to `target/BENCH_pr.json`. With
//! `SG_BENCH_GATE=1` (CI's bench-gate job) the process exits non-zero if
//! any rule is slower parallel than sequential, if any wide kernel is
//! slower than its scalar twin, **or** if a row's speedup regressed
//! below `SG_BENCH_REGRESSION` (default 0.5) times the speedup recorded
//! in the committed `BENCH_base.json` baseline (override the path with
//! `SG_BENCH_BASELINE`). Speedup ratios — not absolute times — are
//! compared, so the gate tolerates host-class differences while still
//! catching structural regressions. Kernel wins do not depend on the
//! thread pool, so the `kernel/*` checks run even on hosts with fewer
//! cores than the gate's thread count (where the parallel rows are
//! skipped).
//!
//! `SG_BENCH_GATE_ONLY=1` skips the Criterion groups and runs just the
//! gate — used to (re)generate the baseline:
//!
//! ```sh
//! SG_BENCH_GATE_ONLY=1 cargo bench --bench runtime
//! cp target/BENCH_pr.json BENCH_base.json
//! ```

use std::time::Instant;

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use signguard::aggregators::{Aggregator, Bulyan, CoordinateMedian, GeoMed, Mean, MultiKrum};
use signguard::core::SignGuard;
use signguard::fl::{tasks, FlConfig, Schedule, SelectionTracker, Simulator};
use signguard::math::kernels::{self, Width};
use signguard::obs;
use signguard::runtime::{Engine, GridRunner, RunPlan};

fn round_cfg(clients: usize) -> FlConfig {
    FlConfig { num_clients: clients, batch_size: 4, epochs: 1, ..FlConfig::default() }
}

fn bench_round_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_throughput");
    group.sample_size(10);
    for &clients in &[32usize, 128] {
        let modes: [(&str, Engine); 2] = [("seq", Engine::sequential()), ("par", Engine::parallel(0))];
        for (mode, engine) in modes {
            group.bench_with_input(BenchmarkId::new(mode, clients), &clients, |b, &n| {
                let mut sim = Simulator::with_engine(
                    tasks::mlp_task(1),
                    round_cfg(n),
                    Box::new(SignGuard::plain(0)),
                    None,
                    engine.clone(),
                );
                let mut tracker = SelectionTracker::new();
                let mut round = 0;
                b.iter(|| {
                    sim.step(round, &mut tracker);
                    round += 1;
                });
            });
        }
    }
    group.finish();
}

fn bench_grid_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_fanout_8_cells");
    group.sample_size(10);
    for (mode, jobs) in [("seq", 1usize), ("par", 0)] {
        group.bench_function(mode, |b| {
            b.iter(|| {
                let mut plan: RunPlan<f32> = RunPlan::new(3);
                for i in 0..8 {
                    plan.cell(format!("cell-{i}"), |ctx| {
                        let cfg = FlConfig {
                            num_clients: 8,
                            batch_size: 8,
                            epochs: 1,
                            seed: ctx.seed,
                            ..FlConfig::default()
                        };
                        let mut sim = Simulator::new(
                            tasks::mlp_task(ctx.seed),
                            cfg,
                            Box::new(SignGuard::plain(ctx.seed)),
                            None,
                        );
                        sim.run().best_accuracy
                    });
                }
                GridRunner::new(jobs).run(plan).cells.len()
            });
        });
    }
    group.finish();
}

// ---- scheduler overhead (sync vs. async schedules) ---------------------

/// Round-pipeline overhead of the schedule axis at 128 clients: the sync
/// schedule against straggler and FedBuf-style buffered-async. The delta
/// over `sync` is what the virtual clock, the model-history snapshots and
/// the pending-update buffer cost per server step. The perf gate measures
/// the same path as `sched/*` rows in `BENCH_pr.json` and diffs the
/// overhead ratio against the committed baseline.
fn bench_scheduler_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_overhead_128_clients");
    group.sample_size(10);
    let schedules: [(&str, Schedule); 3] = [
        ("sync", Schedule::Sync),
        ("straggler", Schedule::Straggler { slow_fraction: 0.3, max_delay: 4 }),
        ("async-buffered", Schedule::AsyncBuffered { k: 64, max_delay: 4 }),
    ];
    for (name, schedule) in schedules {
        group.bench_function(name, |b| {
            // Mean keeps the aggregation cost flat, so the measured
            // difference is the scheduler/pipeline machinery itself.
            let mut sim = Simulator::with_engine(
                tasks::mlp_task(1),
                FlConfig { schedule, ..round_cfg(128) },
                Box::new(Mean::new()),
                None,
                Engine::sequential(),
            );
            let mut tracker = SelectionTracker::new();
            let mut round = 0;
            b.iter(|| {
                sim.step(round, &mut tracker);
                round += 1;
            });
        });
    }
    group.finish();
}

// ---- sg-obs instrumentation overhead (disabled vs. enabled) ------------

/// Cost of the observability layer on the round-pipeline hot path at 128
/// clients: the same synchronous Mean pipeline with the sg-obs registry
/// disabled (every probe is one relaxed atomic load) vs. enabled with the
/// aggregates-only sink (spans, counters and histograms hit the registry
/// mutex). The perf gate measures the same path as the
/// `obs/round-overhead` row in `BENCH_pr.json`.
fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead_128_clients");
    group.sample_size(10);
    for (mode, enabled) in [("disabled", false), ("enabled", true)] {
        group.bench_function(mode, |b| {
            let mut sim = Simulator::with_engine(
                tasks::mlp_task(1),
                round_cfg(128),
                Box::new(Mean::new()),
                None,
                Engine::sequential(),
            );
            let mut tracker = SelectionTracker::new();
            let mut round = 0;
            if enabled {
                obs::enable();
            }
            b.iter(|| {
                sim.step(round, &mut tracker);
                round += 1;
            });
            if enabled {
                let _ = obs::finish();
            }
        });
    }
    group.finish();
}

// ---- robust-aggregator family (seq vs. sharded) ------------------------

type RuleBuilder = fn(usize) -> Box<dyn Aggregator>;

/// The gated rule family: (name, gradient dimension, builder taking the
/// client count). Pairwise rules get a smaller dimension (their cost is
/// O(n²·d)); coordinate rules a larger one (O(n·d)).
fn family_rules() -> Vec<(&'static str, usize, RuleBuilder)> {
    vec![
        ("mean", 1 << 18, |_n| Box::new(Mean::new())),
        ("median", 1 << 16, |_n| Box::new(CoordinateMedian::new())),
        ("krum", 1 << 14, |n| Box::new(MultiKrum::new(n / 5, n - n / 5))),
        ("bulyan", 1 << 14, |n| Box::new(Bulyan::new(n / 5))),
        ("geomed", 1 << 14, |_n| Box::new(GeoMed::new().with_max_iter(20))),
    ]
}

/// Deterministic synthetic gradient population around a shared direction.
fn family_gradients(n: usize, d: usize) -> Vec<Vec<f32>> {
    (0..n).map(|i| (0..d).map(|j| ((i * d + j) as f32 * 0.37).sin() * 2.0).collect()).collect()
}

fn bench_pairwise_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregator_family");
    group.sample_size(10);
    for &clients in &[32usize, 128] {
        for (name, dim, build) in family_rules() {
            let grads = family_gradients(clients, dim);
            let modes: [(&str, Engine); 2] = [("seq", Engine::sequential()), ("par", Engine::parallel(0))];
            for (mode, engine) in modes {
                group.bench_with_input(
                    BenchmarkId::new(format!("{name}/{mode}"), clients),
                    &grads,
                    |b, g| {
                        let mut gar = build(clients);
                        gar.set_executor(engine.executor());
                        b.iter(|| black_box(gar.aggregate(g)));
                    },
                );
            }
        }
    }
    group.finish();
}

// ---- SIMD kernel layer (scalar vs. wide) -------------------------------

/// The `sg_math::kernels` width A/B on identical inputs: the wide layout
/// hands LLVM packed `f64` lane groups it autovectorizes (the codegen
/// test in `sg-math` pins the instructions); the scalar layout keeps the
/// same fixed lane tree as strided dependent chains. Both produce
/// bit-identical sums, so this group measures pure instruction-selection
/// speedup. The perf gate asserts the same comparison as `kernel/*` rows.
fn bench_kernel_widths(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_widths");
    group.sample_size(10);
    let long = family_gradients(2, 1 << 18);
    let pop = family_gradients(64, 4096);
    for (mode, width) in [("scalar", Width::Scalar), ("wide", Width::Wide)] {
        group.bench_function(BenchmarkId::new("l2norm", mode), |b| {
            b.iter(|| black_box(kernels::l2_norm_sq_f64_with(width, black_box(&long[0]))));
        });
        group.bench_function(BenchmarkId::new("pairwise", mode), |b| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for i in 0..pop.len() {
                    for j in (i + 1)..pop.len() {
                        acc += kernels::l2_distance_sq_f64_with(width, &pop[i], &pop[j]);
                    }
                }
                black_box(acc)
            });
        });
        group.bench_function(BenchmarkId::new("signnorm", mode), |b| {
            let (mut bits, mut zeros) = (Vec::new(), Vec::new());
            b.iter(|| {
                let mut acc = 0.0f64;
                for v in &pop {
                    kernels::pack_signs_into_with(width, v, &mut bits, &mut zeros);
                    acc += kernels::l2_norm_sq_f64_with(width, v).sqrt();
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

// ---- BENCH_pr.json perf gate -------------------------------------------

/// Best-of-N wall time of one `aggregate` call on the given engine.
fn time_aggregate(build: RuleBuilder, clients: usize, grads: &[Vec<f32>], engine: &Engine) -> f64 {
    let reps = 3;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut gar = build(clients);
        gar.set_executor(engine.executor());
        let start = Instant::now();
        black_box(gar.aggregate(grads));
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Mean per-step wall time of `steps` pipeline steps under `schedule`
/// (best of 3 fresh simulators; construction excluded).
fn time_schedule(schedule: Schedule, steps: usize) -> f64 {
    let reps = 3;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut sim = Simulator::with_engine(
            tasks::mlp_task(1),
            FlConfig { schedule, ..round_cfg(128) },
            Box::new(Mean::new()),
            None,
            Engine::sequential(),
        );
        let mut tracker = SelectionTracker::new();
        let start = Instant::now();
        for round in 0..steps {
            sim.step(round, &mut tracker);
        }
        best = best.min(start.elapsed().as_secs_f64() / steps as f64);
    }
    best
}

/// Best-of-N wall time of one timed closure (first call is an untimed
/// warm-up; the `f64` result is black-boxed so the work is not elided).
fn time_kernel(mut f: impl FnMut() -> f64) -> f64 {
    let reps = 5;
    let _ = black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Times the rule family seq vs. par **and** the scheduler hot path (per-
/// step pipeline time of the async schedules against the synchronous
/// baseline, as `sched/*` rows) **and** the sg-obs probe cost (the same
/// sync pipeline with the registry disabled vs. enabled, as the
/// `obs/round-overhead` row) **and** the SIMD kernel layer (explicit
/// scalar vs. wide width on identical inputs, as `kernel/*` rows), writes
/// `target/BENCH_pr.json`, and — under `SG_BENCH_GATE=1` — fails the
/// process if parallel lost anywhere, a wide kernel lost to its scalar
/// twin, or a speedup ratio regressed against the baseline. `sched/*` and
/// `obs/*` rows take part in the baseline-ratio diff only (neither column
/// pair is a parallel variant, so "par must beat seq" does not apply);
/// `kernel/*` rows get their own wide-beats-scalar check, which — unlike
/// the pool rows — runs even when the host has fewer cores than the gate
/// threads, because instruction-selection wins are thread-count
/// independent.
fn perf_gate() {
    let threads: usize =
        std::env::var("SG_BENCH_THREADS").ok().and_then(|v| v.parse().ok()).filter(|&t| t > 0).unwrap_or(4);
    let clients = 128usize;
    let seq_engine = Engine::sequential();
    let par_engine = Engine::parallel(threads);

    println!("\nperf gate — {clients} clients, seq vs {threads} threads (best of 3)");
    let mut rows = Vec::new();
    for (name, dim, build) in family_rules() {
        let grads = family_gradients(clients, dim);
        // One warm call per engine pages the gradients in and excludes
        // pool spin-up from the timed runs.
        let _ = time_aggregate(build, clients, &grads, &seq_engine);
        let seq_s = time_aggregate(build, clients, &grads, &seq_engine);
        let par_s = time_aggregate(build, clients, &grads, &par_engine);
        println!(
            "  {name:<8} dim {dim:>7}  seq {:>9.3} ms  par {:>9.3} ms  speedup {:>5.2}x",
            seq_s * 1e3,
            par_s * 1e3,
            seq_s / par_s
        );
        rows.push((name, dim, seq_s, par_s));
    }

    // Scheduler hot path: per-step pipeline time under each async schedule
    // vs. the synchronous baseline at 128 clients. Stored as (sync, sched)
    // in the (seq, par) columns, so the baseline diff gates the overhead
    // ratio — a regression in the virtual clock, the model-history
    // snapshots or the pending buffer shows up as a ratio drop.
    let steps = 30usize;
    let sync_s = time_schedule(Schedule::Sync, steps);
    let sched_rows: [(&str, Schedule); 2] = [
        ("sched/straggler", Schedule::Straggler { slow_fraction: 0.3, max_delay: 4 }),
        ("sched/async-buffered", Schedule::AsyncBuffered { k: 64, max_delay: 4 }),
    ];
    for (name, schedule) in sched_rows {
        let sched_s = time_schedule(schedule, steps);
        println!(
            "  {name:<20}  sync {:>9.3} ms/step  sched {:>9.3} ms/step  ratio {:>5.2}",
            sync_s * 1e3,
            sched_s * 1e3,
            sync_s / sched_s
        );
        rows.push((name, 0, sync_s, sched_s));
    }

    // Observability overhead: the sync pipeline again with the sg-obs
    // registry enabled (aggregates-only sink). Stored as (disabled,
    // enabled) in the (seq, par) columns, so the baseline diff gates the
    // probe cost ratio; enabled is allowed to cost a little, hence the
    // row is excluded from the par-must-beat-seq check like `sched/*`.
    obs::enable();
    let obs_enabled_s = time_schedule(Schedule::Sync, steps);
    let _ = obs::finish();
    println!(
        "  {:<20}  off  {:>9.3} ms/step  on    {:>9.3} ms/step  ratio {:>5.2}",
        "obs/round-overhead",
        sync_s * 1e3,
        obs_enabled_s * 1e3,
        sync_s / obs_enabled_s
    );
    rows.push(("obs/round-overhead", 0, sync_s, obs_enabled_s));

    // SIMD kernel layer: the same reduction at explicit Width::Scalar vs.
    // Width::Wide — dispatch_width() is latched once per process, so the
    // in-process A/B must use the `*_with` variants (the end-to-end
    // SG_SIMD=scalar comparison is CI's separate simd-smoke job). Stored
    // as (scalar, wide) in the (seq, par) columns so the baseline diff
    // gates the vectorization speedup like any other ratio.
    let long = family_gradients(2, 1 << 18);
    let pop = family_gradients(64, 4096);
    let mut kernel_row = |name: &'static str, dim: usize, run: &dyn Fn(Width) -> f64| {
        let scalar_s = time_kernel(|| run(Width::Scalar));
        let wide_s = time_kernel(|| run(Width::Wide));
        println!(
            "  {name:<20}  scalar {:>9.3} ms  wide {:>9.3} ms  speedup {:>5.2}x",
            scalar_s * 1e3,
            wide_s * 1e3,
            scalar_s / wide_s
        );
        rows.push((name, dim, scalar_s, wide_s));
    };
    kernel_row("kernel/l2norm", 1 << 18, &|w| {
        let mut acc = 0.0f64;
        for _ in 0..16 {
            acc += kernels::l2_norm_sq_f64_with(w, black_box(&long[0]));
        }
        acc
    });
    kernel_row("kernel/dot", 1 << 18, &|w| {
        let mut acc = 0.0f64;
        for _ in 0..16 {
            acc += kernels::dot_f64_with(w, black_box(&long[0]), black_box(&long[1]));
        }
        acc
    });
    kernel_row("kernel/pairwise", 4096, &|w| {
        let mut acc = 0.0f64;
        for i in 0..pop.len() {
            for j in (i + 1)..pop.len() {
                acc += kernels::l2_distance_sq_f64_with(w, &pop[i], &pop[j]);
            }
        }
        acc
    });
    kernel_row("kernel/signnorm", 4096, &|w| {
        let (mut bits, mut zeros) = (Vec::new(), Vec::new());
        let mut acc = 0.0f64;
        for _ in 0..8 {
            for v in &pop {
                kernels::pack_signs_into_with(w, v, &mut bits, &mut zeros);
                acc += kernels::l2_norm_sq_f64_with(w, v).sqrt();
            }
        }
        acc
    });

    let json_rows: Vec<String> = rows
        .iter()
        .map(|(name, dim, seq_s, par_s)| {
            format!(
                "    {{\"name\": \"{name}\", \"dim\": {dim}, \"seq_ms\": {:.4}, \"par_ms\": {:.4}}}",
                seq_s * 1e3,
                par_s * 1e3
            )
        })
        .collect();
    // host_cores lets a baseline self-describe the machine class it was
    // recorded on (the speedup-ratio diff tolerates the difference).
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"threads\": {threads},\n  \"clients\": {clients},\n  \"host_cores\": {host_cores},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/BENCH_pr.json");
    std::fs::create_dir_all(path.parent().expect("bench json path has a parent"))
        .expect("create bench json dir");
    std::fs::write(&path, json).expect("write BENCH_pr.json");
    println!("[bench json] {}", path.display());

    if std::env::var("SG_BENCH_GATE").as_deref() == Ok("1") {
        // Kernel rows first: a wide kernel losing to its scalar twin is a
        // codegen regression whatever the host looks like, so this check
        // never skips.
        let kernel_losers: Vec<&str> = rows
            .iter()
            .filter(|(name, ..)| name.starts_with("kernel/"))
            .filter(|(_, _, scalar_s, wide_s)| wide_s > scalar_s)
            .map(|&(name, ..)| name)
            .collect();
        if kernel_losers.is_empty() {
            println!("perf gate PASS: wide beats scalar for every kernel row");
        } else {
            eprintln!("perf gate FAIL: wide kernel slower than scalar for {kernel_losers:?}");
            std::process::exit(1);
        }

        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores < threads {
            println!(
                "perf gate SKIP (pool rows): host has {cores} core(s) < {threads} gate threads; \
                 an oversubscribed pool cannot be required to beat sequential"
            );
            // The kernel rows still diff against the baseline: SIMD
            // speedups do not depend on the pool, so a small host runs
            // the full kernel gate even while the parallel rows skip.
            let kernel_rows: Vec<(&str, usize, f64, f64)> =
                rows.iter().filter(|(name, ..)| name.starts_with("kernel/")).copied().collect();
            baseline_gate(&kernel_rows);
            return;
        }
        let losers: Vec<&str> = rows
            .iter()
            .filter(|(name, ..)| {
                !name.starts_with("sched/") && !name.starts_with("obs/") && !name.starts_with("kernel/")
            })
            .filter(|(_, _, seq_s, par_s)| par_s > seq_s)
            .map(|&(name, ..)| name)
            .collect();
        if losers.is_empty() {
            println!("perf gate PASS: parallel beats sequential for every rule at {threads} threads");
        } else {
            eprintln!("perf gate FAIL: parallel slower than sequential for {losers:?} at {threads} threads");
            std::process::exit(1);
        }
        baseline_gate(&rows);
    }
}

// ---- BENCH_base.json regression diff -----------------------------------

/// Parses rows out of a `BENCH_*.json` file written by [`perf_gate`] (our
/// own fixed format — one `{"name": …, "seq_ms": …, "par_ms": …}` object
/// per line; no external JSON crate in the offline container).
fn parse_bench_rows(text: &str) -> Vec<(String, f64, f64)> {
    let field = |line: &str, key: &str| -> Option<f64> {
        let rest = &line[line.find(key)? + key.len()..];
        let rest = rest.trim_start_matches([':', ' ']);
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        rest[..end].trim().parse().ok()
    };
    text.lines()
        .filter(|l| l.contains("\"name\""))
        .filter_map(|l| {
            let after = &l[l.find("\"name\"")? + 6..];
            let start = after.find('"')? + 1;
            let name = after[start..].split('"').next()?.to_string();
            Some((name, field(l, "\"seq_ms\"")?, field(l, "\"par_ms\"")?))
        })
        .collect()
}

/// Diffs this run's speedups against the committed baseline and fails the
/// process if any rule regressed below `SG_BENCH_REGRESSION` (default
/// 0.5) of its baseline speedup.
fn baseline_gate(rows: &[(&str, usize, f64, f64)]) {
    let path = std::env::var("SG_BENCH_BASELINE").map_or_else(
        |_| std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_base.json"),
        std::path::PathBuf::from,
    );
    let Ok(text) = std::fs::read_to_string(&path) else {
        println!("baseline diff SKIP: no baseline at {}", path.display());
        return;
    };
    let frac: f64 = std::env::var("SG_BENCH_REGRESSION")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|f| (0.0..=1.0).contains(f))
        .unwrap_or(0.5);
    let baseline = parse_bench_rows(&text);
    println!("baseline diff vs {} (min allowed speedup ratio {frac})", path.display());
    let mut regressed = Vec::new();
    for &(name, _, seq_s, par_s) in rows {
        let Some((_, base_seq, base_par)) = baseline.iter().find(|(n, ..)| n == name) else {
            println!("  {name:<8} not in baseline — skipped");
            continue;
        };
        let base_speedup = base_seq / base_par;
        let pr_speedup = seq_s / par_s;
        let ratio = pr_speedup / base_speedup;
        println!("  {name:<8} base {base_speedup:>5.2}x  pr {pr_speedup:>5.2}x  ratio {ratio:>5.2}");
        if ratio < frac {
            regressed.push(name);
        }
    }
    if regressed.is_empty() {
        println!("baseline diff PASS: no rule regressed below {frac} of its baseline speedup");
    } else {
        eprintln!("baseline diff FAIL: speedup regression for {regressed:?}");
        std::process::exit(1);
    }
}

criterion_group!(
    benches,
    bench_round_throughput,
    bench_grid_fanout,
    bench_scheduler_overhead,
    bench_obs_overhead,
    bench_pairwise_family,
    bench_kernel_widths
);

fn main() {
    // SG_BENCH_GATE_ONLY=1 skips the Criterion groups: used to regenerate
    // the committed BENCH_base.json baseline quickly.
    if std::env::var("SG_BENCH_GATE_ONLY").as_deref() != Ok("1") {
        benches();
    }
    perf_gate();
}
