//! Bulyan (El Mhamdi et al., ICML'18).

use crate::krum::{pairwise_sq_distances, scores_from_matrix};
use crate::{validate_gradients, AggregationOutput, Aggregator};

/// Bulyan: a Krum-based selection stage followed by a coordinate-wise
/// trimmed aggregation.
///
/// Stage 1 repeatedly runs Krum to pick `θ = n - 2f` gradients; stage 2
/// aggregates each coordinate as the mean of the `β = θ - 2f` values
/// closest to the coordinate median. Requires `n ≥ 4f + 3` in theory; this
/// implementation degrades gracefully by clamping `θ` and `β` to at least 1.
#[derive(Debug, Clone, Copy)]
pub struct Bulyan {
    assumed_byzantine: usize,
}

impl Bulyan {
    /// Creates Bulyan assuming `f` Byzantine clients.
    pub fn new(assumed_byzantine: usize) -> Self {
        Self { assumed_byzantine }
    }
}

impl Aggregator for Bulyan {
    fn aggregate(&mut self, gradients: &[Vec<f32>]) -> AggregationOutput {
        let dim = validate_gradients(gradients);
        let n = gradients.len();
        let f = self.assumed_byzantine;
        let theta = n.saturating_sub(2 * f).max(1);
        let beta = theta.saturating_sub(2 * f).max(1);

        // Stage 1: iterative Krum selection without replacement, reusing one
        // pairwise distance matrix across all iterations.
        let d2 = pairwise_sq_distances(gradients);
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut chosen: Vec<usize> = Vec::with_capacity(theta);
        while chosen.len() < theta && !remaining.is_empty() {
            let f_eff = f.min(remaining.len().saturating_sub(3));
            let scores = scores_from_matrix(&d2, &remaining, f_eff);
            let best = sg_math::stats::argmin(&scores);
            chosen.push(remaining.remove(best));
        }
        chosen.sort_unstable();

        // Stage 2: per-coordinate β-trimmed mean around the median.
        let mut out = vec![0.0f32; dim];
        let mut col: Vec<f32> = Vec::with_capacity(chosen.len());
        for j in 0..dim {
            col.clear();
            col.extend(chosen.iter().map(|&i| gradients[i][j]));
            let med = sg_math::stats::median(&col);
            col.sort_by(|a, b| (a - med).abs().total_cmp(&(b - med).abs()));
            let take = beta.min(col.len());
            out[j] = col[..take].iter().sum::<f32>() / take as f32;
        }
        AggregationOutput::selected(out, chosen)
    }

    fn name(&self) -> &'static str {
        "Bulyan"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_large_outliers() {
        // n = 11, f = 2 satisfies n >= 4f + 3.
        let mut g: Vec<Vec<f32>> = (0..9).map(|i| vec![1.0 + 0.01 * i as f32, 2.0]).collect();
        g.push(vec![1e4, 1e4]);
        g.push(vec![-1e4, -1e4]);
        let out = Bulyan::new(2).aggregate(&g);
        assert!((out.gradient[0] - 1.0).abs() < 0.2, "{:?}", out.gradient);
        assert!((out.gradient[1] - 2.0).abs() < 0.2);
        let sel = out.selected.expect("bulyan selects");
        assert!(sel.iter().all(|&i| i < 9), "outlier selected: {sel:?}");
    }

    #[test]
    fn all_identical_is_identity() {
        let g = vec![vec![3.0, -1.0]; 9];
        let out = Bulyan::new(2).aggregate(&g);
        assert_eq!(out.gradient, vec![3.0, -1.0]);
    }

    #[test]
    fn degrades_gracefully_below_4f3() {
        // n = 4, f = 1 violates the 4f+3 bound but must not panic.
        let g = vec![vec![1.0], vec![1.1], vec![0.9], vec![100.0]];
        let out = Bulyan::new(1).aggregate(&g);
        assert!(out.gradient[0].is_finite());
    }

    #[test]
    fn selection_count_is_theta() {
        let g: Vec<Vec<f32>> = (0..11).map(|i| vec![i as f32 * 0.01]).collect();
        let out = Bulyan::new(2).aggregate(&g);
        assert_eq!(out.selected.expect("sel").len(), 11 - 4);
    }
}
