//! Bulyan (El Mhamdi et al., ICML'18).

use std::sync::Arc;

use sg_math::vecops::REDUCE_BLOCK;
use sg_math::{PairwiseDistances, ParallelExecutor, SeqExecutor};

use crate::krum::scores_from_matrix;
use crate::{validate_gradients, AggregationOutput, Aggregator};

/// Bulyan: a Krum-based selection stage followed by a coordinate-wise
/// trimmed aggregation.
///
/// Stage 1 repeatedly runs Krum to pick `θ = n - 2f` gradients; stage 2
/// aggregates each coordinate as the mean of the `β = θ - 2f` values
/// closest to the coordinate median. Requires `n ≥ 4f + 3` in theory; this
/// implementation degrades gracefully by clamping `θ` and `β` to at least 1.
///
/// Both `O(d)`-heavy passes shard across the installed executor: the
/// `O(n²·d)` pairwise-distance matrix (shared by every stage-1 iteration,
/// see [`sg_math::pairwise`]) and the stage-2 per-coordinate trim. The
/// iterative selection itself works on scalar scores and stays sequential.
#[derive(Clone)]
pub struct Bulyan {
    assumed_byzantine: usize,
    exec: Arc<dyn ParallelExecutor>,
}

impl std::fmt::Debug for Bulyan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bulyan")
            .field("assumed_byzantine", &self.assumed_byzantine)
            .field("parallelism", &self.exec.parallelism())
            .finish()
    }
}

impl Bulyan {
    /// Creates Bulyan assuming `f` Byzantine clients.
    pub fn new(assumed_byzantine: usize) -> Self {
        Self { assumed_byzantine, exec: Arc::new(SeqExecutor) }
    }
}

impl Aggregator for Bulyan {
    fn aggregate(&mut self, gradients: &[Vec<f32>]) -> AggregationOutput {
        let dim = validate_gradients(gradients);
        let n = gradients.len();
        let f = self.assumed_byzantine;
        let theta = n.saturating_sub(2 * f).max(1);
        let beta = theta.saturating_sub(2 * f).max(1);

        // Stage 1: iterative Krum selection without replacement, reusing one
        // pairwise distance matrix (computed sharded) across all iterations.
        let d2 = PairwiseDistances::compute(self.exec.as_ref(), gradients);
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut chosen: Vec<usize> = Vec::with_capacity(theta);
        while chosen.len() < theta && !remaining.is_empty() {
            let f_eff = f.min(remaining.len().saturating_sub(3));
            let scores = scores_from_matrix(&d2, &remaining, f_eff);
            let best = sg_math::stats::argmin(&scores);
            chosen.push(remaining.remove(best));
        }
        chosen.sort_unstable();

        // Stage 2: per-coordinate β-trimmed mean around the median, sharded
        // in coordinate chunks. Every coordinate is processed whole inside
        // one chunk call, so the output is chunk-order independent.
        let mut out = vec![0.0f32; dim];
        let chosen_ref = &chosen;
        self.exec.run_chunks(&mut out, REDUCE_BLOCK, &|ci, chunk| {
            let base = ci * REDUCE_BLOCK;
            let mut col: Vec<f32> = Vec::with_capacity(chosen_ref.len());
            for (k, o) in chunk.iter_mut().enumerate() {
                let j = base + k;
                col.clear();
                col.extend(chosen_ref.iter().map(|&i| gradients[i][j]));
                let med = sg_math::stats::median(&col);
                col.sort_by(|a, b| (a - med).abs().total_cmp(&(b - med).abs()));
                let take = beta.min(col.len());
                *o = col[..take].iter().sum::<f32>() / take as f32;
            }
        });
        AggregationOutput::selected(out, chosen)
    }

    fn name(&self) -> &'static str {
        "Bulyan"
    }

    fn set_executor(&mut self, executor: Arc<dyn ParallelExecutor>) {
        self.exec = executor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_large_outliers() {
        // n = 11, f = 2 satisfies n >= 4f + 3.
        let mut g: Vec<Vec<f32>> = (0..9).map(|i| vec![1.0 + 0.01 * i as f32, 2.0]).collect();
        g.push(vec![1e4, 1e4]);
        g.push(vec![-1e4, -1e4]);
        let out = Bulyan::new(2).aggregate(&g);
        assert!((out.gradient[0] - 1.0).abs() < 0.2, "{:?}", out.gradient);
        assert!((out.gradient[1] - 2.0).abs() < 0.2);
        let sel = out.selected.expect("bulyan selects");
        assert!(sel.iter().all(|&i| i < 9), "outlier selected: {sel:?}");
    }

    #[test]
    fn all_identical_is_identity() {
        let g = vec![vec![3.0, -1.0]; 9];
        let out = Bulyan::new(2).aggregate(&g);
        assert_eq!(out.gradient, vec![3.0, -1.0]);
    }

    #[test]
    fn degrades_gracefully_below_4f3() {
        // n = 4, f = 1 violates the 4f+3 bound but must not panic.
        let g = vec![vec![1.0], vec![1.1], vec![0.9], vec![100.0]];
        let out = Bulyan::new(1).aggregate(&g);
        assert!(out.gradient[0].is_finite());
    }

    #[test]
    fn selection_count_is_theta() {
        let g: Vec<Vec<f32>> = (0..11).map(|i| vec![i as f32 * 0.01]).collect();
        let out = Bulyan::new(2).aggregate(&g);
        assert_eq!(out.selected.expect("sel").len(), 11 - 4);
    }

    #[test]
    fn wide_gradients_cross_chunk_boundaries() {
        // Dimensions past REDUCE_BLOCK exercise the multi-chunk stage-2
        // path even on the sequential executor.
        let dim = REDUCE_BLOCK + 7;
        let g: Vec<Vec<f32>> =
            (0..9).map(|i| (0..dim).map(|j| ((i * 31 + j) % 13) as f32 - 6.0).collect()).collect();
        let out = Bulyan::new(2).aggregate(&g);
        assert_eq!(out.gradient.len(), dim);
        assert!(out.gradient.iter().all(|x| x.is_finite()));
    }
}
