//! Centered clipping (Karimireddy et al., ICML'21) — a history-aided rule.

use sg_math::vecops;

use crate::{validate_gradients, AggregationOutput, Aggregator};

/// Iterative centered clipping around the previous round's aggregate.
///
/// `v ← v + mean_i clip(g_i − v, τ)` repeated `iters` times, with `v`
/// carried across rounds. Cited in the paper's related work as the
/// momentum/history line of defenses (\[31\], \[32\]); included here as an
/// extension baseline.
#[derive(Debug, Clone)]
pub struct CenteredClip {
    tau: f32,
    iters: usize,
    state: Option<Vec<f32>>,
}

impl CenteredClip {
    /// Creates centered clipping with radius `tau` (default iterations: 3).
    ///
    /// # Panics
    ///
    /// Panics if `tau` is not positive.
    pub fn new(tau: f32) -> Self {
        assert!(tau > 0.0, "CenteredClip: tau must be positive");
        Self { tau, iters: 3, state: None }
    }

    /// Sets the number of clipping iterations per round.
    #[must_use]
    pub fn with_iters(mut self, iters: usize) -> Self {
        self.iters = iters.max(1);
        self
    }

    /// Clears the carried aggregate (e.g. when restarting training).
    pub fn reset(&mut self) {
        self.state = None;
    }
}

impl Aggregator for CenteredClip {
    fn aggregate(&mut self, gradients: &[Vec<f32>]) -> AggregationOutput {
        let dim = validate_gradients(gradients);
        let mut v = match self.state.take() {
            Some(s) if s.len() == dim => s,
            _ => vecops::mean_vector(gradients, dim),
        };
        for _ in 0..self.iters {
            let mut acc = vec![0.0f32; dim];
            for g in gradients {
                let diff = vecops::sub(g, &v);
                let clipped = vecops::clip_norm(&diff, self.tau);
                vecops::axpy(1.0, &clipped, &mut acc);
            }
            vecops::scale_in_place(&mut acc, 1.0 / gradients.len() as f32);
            vecops::axpy(1.0, &acc, &mut v);
        }
        self.state = Some(v.clone());
        AggregationOutput::blended(v)
    }

    fn name(&self) -> &'static str {
        "CClip"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_only_converges_to_mean() {
        let g = vec![vec![1.0, 2.0], vec![1.2, 1.8], vec![0.8, 2.2]];
        let mut cc = CenteredClip::new(10.0);
        let out = cc.aggregate(&g);
        assert!((out.gradient[0] - 1.0).abs() < 0.05);
        assert!((out.gradient[1] - 2.0).abs() < 0.05);
    }

    #[test]
    fn outlier_influence_bounded_by_tau() {
        let g = vec![vec![0.0], vec![0.0], vec![0.0], vec![1e6]];
        let mut cc = CenteredClip::new(1.0).with_iters(1);
        // Start state at 0 to make the bound exact.
        cc.state = Some(vec![0.0]);
        let out = cc.aggregate(&g);
        // The outlier contributes at most tau/n = 0.25.
        assert!(out.gradient[0] <= 0.25 + 1e-5, "{}", out.gradient[0]);
    }

    #[test]
    fn state_carries_across_rounds() {
        let g = vec![vec![5.0]];
        let mut cc = CenteredClip::new(0.5).with_iters(1);
        cc.state = Some(vec![0.0]);
        let first = cc.aggregate(&g).gradient[0];
        let second = cc.aggregate(&g).gradient[0];
        // Each round moves at most tau towards 5.0.
        assert!((first - 0.5).abs() < 1e-5);
        assert!((second - 1.0).abs() < 1e-5);
    }

    #[test]
    fn reset_forgets_history() {
        let g = vec![vec![1.0]];
        let mut cc = CenteredClip::new(0.1);
        let _ = cc.aggregate(&g);
        cc.reset();
        // After reset the state is rebuilt from the (honest) mean.
        let out = cc.aggregate(&g);
        assert!((out.gradient[0] - 1.0).abs() < 1e-5);
    }
}
