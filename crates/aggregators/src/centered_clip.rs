//! Centered clipping (Karimireddy et al., ICML'21) — a history-aided rule.

use std::sync::Arc;

use sg_math::vecops::{self, REDUCE_BLOCK};
use sg_math::{ParallelExecutor, SeqExecutor};

use crate::{validate_gradients, AggregationOutput, Aggregator};

/// Iterative centered clipping around the previous round's aggregate.
///
/// `v ← v + mean_i clip(g_i − v, τ)` repeated `iters` times, with `v`
/// carried across rounds. Cited in the paper's related work as the
/// momentum/history line of defenses (\[31\], \[32\]); included here as an
/// extension baseline.
///
/// Each clip iteration is two sharded `O(n·d)` passes on the installed
/// executor, both bit-identical at any thread count:
///
/// * the clip factors run one client per chunk (`chunk_len == 1`), each
///   `‖g_i − v‖` accumulated over the same fixed [`REDUCE_BLOCK`] tree —
///   and the same `f32` subtraction — the sequential `sub` + `l2_norm`
///   pair used;
/// * the clipped-mean update runs in coordinate chunks, accumulating every
///   coordinate across clients in client order (the sequential axpy
///   order).
#[derive(Clone)]
pub struct CenteredClip {
    tau: f32,
    iters: usize,
    state: Option<Vec<f32>>,
    exec: Arc<dyn ParallelExecutor>,
}

impl std::fmt::Debug for CenteredClip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CenteredClip")
            .field("tau", &self.tau)
            .field("iters", &self.iters)
            .field("has_state", &self.state.is_some())
            .field("parallelism", &self.exec.parallelism())
            .finish()
    }
}

impl CenteredClip {
    /// Creates centered clipping with radius `tau` (default iterations: 3).
    ///
    /// # Panics
    ///
    /// Panics if `tau` is not positive.
    pub fn new(tau: f32) -> Self {
        assert!(tau > 0.0, "CenteredClip: tau must be positive");
        Self { tau, iters: 3, state: None, exec: Arc::new(SeqExecutor) }
    }

    /// Sets the number of clipping iterations per round.
    #[must_use]
    pub fn with_iters(mut self, iters: usize) -> Self {
        self.iters = iters.max(1);
        self
    }

    /// Clears the carried aggregate (e.g. when restarting training).
    pub fn reset(&mut self) {
        self.state = None;
    }

    /// Seeds the carried aggregate (tests and warm restarts).
    pub fn set_state(&mut self, v: Vec<f32>) {
        self.state = Some(v);
    }

    /// `‖g − v‖` over the fixed reduction tree, with the difference taken
    /// in `f32` — the exact float sequence of `l2_norm(&sub(g, v))`,
    /// without materializing the difference vector.
    fn diff_norm(g: &[f32], v: &[f32]) -> f32 {
        let mut total = 0.0f64;
        for (gb, vb) in g.chunks(REDUCE_BLOCK).zip(v.chunks(REDUCE_BLOCK)) {
            let mut acc = 0.0f64;
            for (&x, &y) in gb.iter().zip(vb) {
                let d = x - y;
                acc += f64::from(d) * f64::from(d);
            }
            total += acc;
        }
        total.sqrt() as f32
    }
}

impl Aggregator for CenteredClip {
    fn aggregate(&mut self, gradients: &[Vec<f32>]) -> AggregationOutput {
        let dim = validate_gradients(gradients);
        let n = gradients.len();
        let mut v = match self.state.take() {
            Some(s) if s.len() == dim => s,
            _ => {
                let mut v = vec![0.0f32; dim];
                self.exec.run_chunks(&mut v, REDUCE_BLOCK, &|ci, chunk| {
                    vecops::mean_chunk(gradients, ci * REDUCE_BLOCK, chunk);
                });
                v
            }
        };
        let mut factors = vec![0.0f32; n];
        let mut acc = vec![0.0f32; dim];
        let inv = 1.0 / n as f32;
        for _ in 0..self.iters {
            // Clip factors, one whole norm per client.
            let v_ref = &v;
            let tau = self.tau;
            self.exec.run_chunks(&mut factors, 1, &|i, slot| {
                let norm = Self::diff_norm(&gradients[i], v_ref);
                slot[0] = if norm <= tau || norm == 0.0 { 1.0 } else { tau / norm };
            });

            // mean_i clip(g_i − v, τ), accumulated per coordinate in client
            // order, sharded in coordinate chunks.
            let factors_ref = &factors;
            self.exec.run_chunks(&mut acc, REDUCE_BLOCK, &|ci, chunk| {
                let base = ci * REDUCE_BLOCK;
                chunk.fill(0.0);
                for (g, &f) in gradients.iter().zip(factors_ref) {
                    for (o, (&x, &y)) in chunk.iter_mut().zip(g[base..].iter().zip(&v_ref[base..])) {
                        *o += (x - y) * f;
                    }
                }
                for o in chunk.iter_mut() {
                    *o *= inv;
                }
            });
            vecops::axpy(1.0, &acc, &mut v);
        }
        self.state = Some(v.clone());
        AggregationOutput::blended(v)
    }

    fn name(&self) -> &'static str {
        "CClip"
    }

    fn set_executor(&mut self, executor: Arc<dyn ParallelExecutor>) {
        self.exec = executor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_only_converges_to_mean() {
        let g = vec![vec![1.0, 2.0], vec![1.2, 1.8], vec![0.8, 2.2]];
        let mut cc = CenteredClip::new(10.0);
        let out = cc.aggregate(&g);
        assert!((out.gradient[0] - 1.0).abs() < 0.05);
        assert!((out.gradient[1] - 2.0).abs() < 0.05);
    }

    #[test]
    fn outlier_influence_bounded_by_tau() {
        let g = vec![vec![0.0], vec![0.0], vec![0.0], vec![1e6]];
        let mut cc = CenteredClip::new(1.0).with_iters(1);
        // Start state at 0 to make the bound exact.
        cc.set_state(vec![0.0]);
        let out = cc.aggregate(&g);
        // The outlier contributes at most tau/n = 0.25.
        assert!(out.gradient[0] <= 0.25 + 1e-5, "{}", out.gradient[0]);
    }

    #[test]
    fn state_carries_across_rounds() {
        let g = vec![vec![5.0]];
        let mut cc = CenteredClip::new(0.5).with_iters(1);
        cc.set_state(vec![0.0]);
        let first = cc.aggregate(&g).gradient[0];
        let second = cc.aggregate(&g).gradient[0];
        // Each round moves at most tau towards 5.0.
        assert!((first - 0.5).abs() < 1e-5);
        assert!((second - 1.0).abs() < 1e-5);
    }

    #[test]
    fn reset_forgets_history() {
        let g = vec![vec![1.0]];
        let mut cc = CenteredClip::new(0.1);
        let _ = cc.aggregate(&g);
        cc.reset();
        // After reset the state is rebuilt from the (honest) mean.
        let out = cc.aggregate(&g);
        assert!((out.gradient[0] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn diff_norm_matches_sub_then_norm_bits() {
        let dim = 2 * REDUCE_BLOCK + 99;
        let g: Vec<f32> = (0..dim).map(|j| ((j as f32) * 0.377).cos() * 7.0).collect();
        let v: Vec<f32> = (0..dim).map(|j| ((j as f32) * 0.123).sin() * 3.0).collect();
        let expected = vecops::l2_norm(&vecops::sub(&g, &v));
        assert_eq!(CenteredClip::diff_norm(&g, &v).to_bits(), expected.to_bits());
    }

    #[test]
    fn sharded_matches_sequential_bits() {
        // Clipping must not change a bit under an adversarial chunk order,
        // across multiple stateful rounds.
        let dim = REDUCE_BLOCK + 61;
        let g: Vec<Vec<f32>> = (0..12)
            .map(|i| (0..dim).map(|j| ((i * dim + j) as f32 * 0.31).sin() * (1.0 + i as f32)).collect())
            .collect();
        let mut seq = CenteredClip::new(2.0).with_iters(3);
        let seq_rounds: Vec<Vec<f32>> = (0..3).map(|_| seq.aggregate(&g).gradient).collect();
        for threads in [2usize, 3, 8] {
            let mut par = CenteredClip::new(2.0).with_iters(3);
            par.set_executor(Arc::new(sg_math::StripedExec(threads)));
            for round in &seq_rounds {
                let got = par.aggregate(&g).gradient;
                for (a, b) in round.iter().zip(&got) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{threads} threads");
                }
            }
        }
    }
}
