//! The shard-composition (`Composable`) seam for hierarchical aggregation.
//!
//! A tree topology (see `sg-net`) splits the client population into
//! contiguous shards; each leaf aggregates its shard and submits one
//! update upward, and the root composes the shard updates. How a rule
//! composes is a property of the rule itself, declared via
//! [`Aggregator::composition`]:
//!
//! | Strategy | Shard update | Root step | Fidelity |
//! |---|---|---|---|
//! | [`ExactSum`](Composition::ExactSum) | canonical tree **sum** of the shard ([`ShardSum`]) | tree sum of shard sums, scaled once ([`ShardMeanRoot`]) | **bit-identical** to flat for power-of-two shard sizes |
//! | [`Rerun`](Composition::Rerun) | the rule run on the shard | the rule rerun on the shard aggregates | approximate (median-of-medians-style bounds) |
//! | [`RerunSignNorm`](Composition::RerunSignNorm) | the rule run on the shard, forwarded as packed sign + norm statistics | the rule rerun natively on the packed shard statistics | approximate, never densifies on the wire |
//! | [`Densify`](Composition::Densify) | — | — | rule has no shard form; the tree runner falls back to flat aggregation |
//!
//! The `ExactSum` identity rests on the canonical pairwise reduction tree
//! of [`sg_math::vecops::tree_sum_chunk`]: contiguous power-of-two blocks
//! of the batch are nodes of that tree, so per-shard sums recombined in
//! shard order reproduce the flat sum bit for bit, and the single `1/n`
//! scale at the root makes the composed mean equal the flat mean exactly.
//! `Rerun` rules trade exactness for the funnel: a coordinate of a
//! median-of-medians stays within the range spanned by the shard medians
//! (hence within the per-coordinate range of the population), which is the
//! bound the composition property tests assert.

use std::sync::Arc;

use sg_math::vecops::{self, REDUCE_BLOCK};
use sg_math::{ParallelExecutor, SeqExecutor};

use crate::{validate_gradients, AggregationOutput, Aggregator};

/// How an aggregation rule composes across the shards of a hierarchical
/// aggregation tree.
///
/// | Strategy | Shard update | Root step | Fidelity |
/// |---|---|---|---|
/// | `ExactSum` | canonical tree **sum** of the shard ([`ShardSum`]) | tree sum of shard sums, scaled once ([`ShardMeanRoot`]) | **bit-identical** to flat for power-of-two shard sizes |
/// | `Rerun` | the rule run on the shard | the rule rerun on the dense shard aggregates | approximate (median-of-medians-style bounds) |
/// | `RerunSignNorm` | the rule run on the shard, forwarded as packed sign + norm statistics | the rule rerun natively on the packed shard statistics | approximate, never densifies on the wire |
/// | `Densify` | — | — | no shard form; tree runners fall back to flat aggregation |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Composition {
    /// The rule is a scaled linear reduction: leaves forward canonical
    /// tree **sums** and the root recombines and scales once —
    /// bit-identical to the flat run for power-of-two shard sizes.
    ExactSum,
    /// The rule is rerun at the root over dense shard aggregates
    /// (median-of-medians and friends) — approximate, bounds documented
    /// per rule.
    Rerun,
    /// The rule is rerun at the root over the shards' packed sign + norm
    /// statistics (`SignNormVec`), so the funnel composes without ever
    /// densifying a shard aggregate on the wire.
    RerunSignNorm,
    /// No shard form: the tree runner must densify — it falls back to
    /// flat aggregation over the full population.
    Densify,
}

/// Leaf-side aggregator for [`Composition::ExactSum`] rules: the canonical
/// tree **sum** of the shard's gradients, unscaled, so the shard's client
/// count travels implicitly in the magnitude and the root can scale once.
///
/// Coordinate-sharded over the executor seam like [`crate::Mean`]: output
/// bits are independent of thread count.
#[derive(Clone)]
pub struct ShardSum {
    exec: Arc<dyn ParallelExecutor>,
}

impl std::fmt::Debug for ShardSum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSum").field("parallelism", &self.exec.parallelism()).finish()
    }
}

impl ShardSum {
    /// Creates the shard-sum rule (sequential until an executor is
    /// installed).
    pub fn new() -> Self {
        Self { exec: Arc::new(SeqExecutor) }
    }
}

impl Default for ShardSum {
    fn default() -> Self {
        Self::new()
    }
}

impl Aggregator for ShardSum {
    fn aggregate(&mut self, gradients: &[Vec<f32>]) -> AggregationOutput {
        let dim = validate_gradients(gradients);
        let mut out = vec![0.0f32; dim];
        self.exec.run_chunks(&mut out, REDUCE_BLOCK, &|ci, chunk| {
            vecops::tree_sum_chunk(gradients, ci * REDUCE_BLOCK, chunk);
        });
        AggregationOutput::blended(out)
    }

    fn name(&self) -> &'static str {
        "ShardSum"
    }

    fn composition(&self) -> Composition {
        Composition::ExactSum
    }

    fn set_executor(&mut self, executor: Arc<dyn ParallelExecutor>) {
        self.exec = executor;
    }
}

/// Root-side aggregator for [`Composition::ExactSum`] rules: the canonical
/// tree sum of the shard sums, scaled by `1 / total_clients` exactly once.
///
/// With power-of-two shard sizes (ragged last shard allowed) this equals
/// the flat [`crate::Mean`] over the whole population bit for bit — the
/// composition theorem on [`sg_math::vecops::tree_sum_chunk`].
#[derive(Clone)]
pub struct ShardMeanRoot {
    total_clients: usize,
    exec: Arc<dyn ParallelExecutor>,
}

impl std::fmt::Debug for ShardMeanRoot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardMeanRoot")
            .field("total_clients", &self.total_clients)
            .field("parallelism", &self.exec.parallelism())
            .finish()
    }
}

impl ShardMeanRoot {
    /// Creates the root composition rule for a population of
    /// `total_clients` participants (the sum of all shard participant
    /// counts — the one divisor applied to the recombined sum).
    ///
    /// # Panics
    ///
    /// Panics if `total_clients` is zero.
    pub fn new(total_clients: usize) -> Self {
        assert!(total_clients > 0, "ShardMeanRoot: zero clients");
        Self { total_clients, exec: Arc::new(SeqExecutor) }
    }
}

impl Aggregator for ShardMeanRoot {
    fn aggregate(&mut self, shard_sums: &[Vec<f32>]) -> AggregationOutput {
        let dim = validate_gradients(shard_sums);
        let inv = 1.0 / self.total_clients as f32;
        let mut out = vec![0.0f32; dim];
        self.exec.run_chunks(&mut out, REDUCE_BLOCK, &|ci, chunk| {
            vecops::tree_sum_chunk(shard_sums, ci * REDUCE_BLOCK, chunk);
            for o in chunk.iter_mut() {
                *o *= inv;
            }
        });
        AggregationOutput::blended(out)
    }

    fn name(&self) -> &'static str {
        "ShardMeanRoot"
    }

    fn set_executor(&mut self, executor: Arc<dyn ParallelExecutor>) {
        self.exec = executor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mean;

    fn messy_batch(n: usize, dim: usize, salt: u32) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|j| {
                        (((i * dim + j) as u32).wrapping_mul(2654435761 ^ salt) as f32 * 1e-9).sin() * 7.3
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn shard_sum_then_root_mean_equals_flat_mean_bitwise() {
        for (n, shard) in [(8usize, 2usize), (10, 4), (13, 4), (16, 8), (5, 1), (7, 8)] {
            let grads = messy_batch(n, 300, 3);
            let flat = Mean::new().aggregate(&grads).gradient;
            let sums: Vec<Vec<f32>> =
                grads.chunks(shard).map(|c| ShardSum::new().aggregate(c).gradient).collect();
            let composed = ShardMeanRoot::new(n).aggregate(&sums).gradient;
            for (j, (a, b)) in composed.iter().zip(&flat).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "n {n} shard {shard} coord {j}");
            }
        }
    }

    #[test]
    fn composition_declarations() {
        use crate::{CoordinateMedian, SignMajority, TrimmedMean};
        assert_eq!(Mean::new().composition(), Composition::ExactSum);
        assert_eq!(ShardSum::new().composition(), Composition::ExactSum);
        assert_eq!(CoordinateMedian::new().composition(), Composition::Rerun);
        assert_eq!(TrimmedMean::new(1).composition(), Composition::Rerun);
        assert_eq!(SignMajority::new().composition(), Composition::RerunSignNorm);
        // Rules without a shard form keep the default.
        assert_eq!(crate::MultiKrum::krum(1).composition(), Composition::Densify);
        assert_eq!(crate::Bulyan::new(1).composition(), Composition::Densify);
    }
}
