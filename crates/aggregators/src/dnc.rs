//! Divide-and-Conquer (DnC) aggregation (Shejwalkar & Houmansadr, NDSS'21).

use std::sync::Arc;

use rand::rngs::StdRng;
use sg_math::rng::sample_indices;
use sg_math::vecops::REDUCE_BLOCK;
use sg_math::{seeded_rng, ParallelExecutor, SeqExecutor};

use crate::{mean_of, validate_gradients, AggregationOutput, Aggregator};

/// DnC: spectral outlier removal on random coordinate subsets.
///
/// Each iteration samples a coordinate subset, centers the sub-gradients,
/// finds their top right-singular direction by power iteration, scores each
/// gradient by its squared projection on that direction, and discards the
/// `c · f` highest-scoring gradients. The final good set is the
/// intersection over iterations; the aggregate is its mean.
///
/// The `O(n·k)` passes over the subsampled `n × k` matrix shard across the
/// installed executor while keeping each output value's floating-point
/// order fixed:
///
/// * the gather and centering passes run one sub-gradient row per chunk
///   (`chunk_len == k`), each row independent;
/// * the column mean and the `Mᵀu` update run in coordinate chunks,
///   accumulating every coordinate across clients in client order —
///   exactly the sequential order;
/// * the `Mv` projections and the final scores run one client per chunk
///   (`chunk_len == 1`), each dot following the fixed `REDUCE_BLOCK` tree
///   of [`sg_math::dot`];
///
/// so the selected set and the aggregate are bit-identical at any thread
/// count. Coordinate subsampling itself stays on the rule's own seeded RNG
/// and is untouched by the executor.
pub struct DnC {
    assumed_byzantine: usize,
    iters: usize,
    subsample_dim: usize,
    filter_frac: f32,
    rng: StdRng,
    exec: Arc<dyn ParallelExecutor>,
}

impl std::fmt::Debug for DnC {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DnC")
            .field("assumed_byzantine", &self.assumed_byzantine)
            .field("iters", &self.iters)
            .field("subsample_dim", &self.subsample_dim)
            .field("parallelism", &self.exec.parallelism())
            .finish()
    }
}

impl DnC {
    /// Creates DnC with the defaults of the original paper: `niters = 1`,
    /// filter fraction `c = 1.0`, coordinate subsample of up to 10 000.
    pub fn new(assumed_byzantine: usize) -> Self {
        Self {
            assumed_byzantine,
            iters: 1,
            subsample_dim: 10_000,
            filter_frac: 1.0,
            rng: seeded_rng(0xd4c),
            exec: Arc::new(SeqExecutor),
        }
    }

    /// Number of filtering iterations (intersection over all of them).
    #[must_use]
    pub fn with_iters(mut self, iters: usize) -> Self {
        self.iters = iters.max(1);
        self
    }

    /// Maximum coordinates sampled per iteration.
    #[must_use]
    pub fn with_subsample_dim(mut self, dim: usize) -> Self {
        self.subsample_dim = dim.max(1);
        self
    }

    /// Reseeds the internal RNG (reproducibility).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = seeded_rng(seed);
        self
    }

    /// Top right-singular direction of the centered `n × k` matrix (rows
    /// flattened into `rows`) via power iteration, sharded on the executor.
    fn top_direction(&self, rows: &[f32], n: usize, k: usize) -> Vec<f32> {
        let mut v = vec![1.0f32 / (k as f32).sqrt(); k];
        let mut u = vec![0.0f32; n];
        let mut next = vec![0.0f32; k];
        for _ in 0..20 {
            // u = M v (one whole dot per client, fixed reduction tree).
            let v_ref = &v;
            self.exec.run_chunks(&mut u, 1, &|i, slot| {
                slot[0] = sg_math::dot(&rows[i * k..(i + 1) * k], v_ref);
            });
            // next = Mᵀ u: each coordinate accumulates across clients in
            // client order (the sequential axpy order), sharded in
            // coordinate chunks.
            let u_ref = &u;
            self.exec.run_chunks(&mut next, REDUCE_BLOCK, &|ci, chunk| {
                let base = ci * REDUCE_BLOCK;
                chunk.fill(0.0);
                for (i, &w) in u_ref.iter().enumerate() {
                    let row = &rows[i * k + base..i * k + base + chunk.len()];
                    for (o, &x) in chunk.iter_mut().zip(row) {
                        *o += w * x;
                    }
                }
            });
            let norm = sg_math::l2_norm(&next);
            if norm < 1e-12 {
                break;
            }
            // Multiply by the precomputed reciprocal — the float sequence
            // of the pre-port `scale_in_place(&mut next, 1.0 / norm)` —
            // so the port does not perturb a single bit.
            let inv = 1.0 / norm;
            for (vi, &x) in v.iter_mut().zip(&next) {
                *vi = x * inv;
            }
        }
        v
    }
}

impl Aggregator for DnC {
    fn aggregate(&mut self, gradients: &[Vec<f32>]) -> AggregationOutput {
        let dim = validate_gradients(gradients);
        let n = gradients.len();
        let remove =
            ((self.filter_frac * self.assumed_byzantine as f32).round() as usize).min(n.saturating_sub(1));

        let mut good: Vec<bool> = vec![true; n];
        for _ in 0..self.iters {
            let coords = sample_indices(&mut self.rng, dim, self.subsample_dim.min(dim));
            let k = coords.len();

            // Gather the n × k sub-gradient matrix, one row per chunk.
            let mut sub = vec![0.0f32; n * k];
            let coords_ref = &coords;
            self.exec.run_chunks(&mut sub, k, &|i, row| {
                let g = &gradients[i];
                for (x, &c) in row.iter_mut().zip(coords_ref) {
                    *x = g[c];
                }
            });

            // Column mean, accumulated per coordinate in client order
            // (bit-identical to `vecops::mean_chunk` on the same rows).
            let mut mu = vec![0.0f32; k];
            let sub_ref = &sub;
            let inv = 1.0 / n as f32;
            self.exec.run_chunks(&mut mu, REDUCE_BLOCK, &|ci, chunk| {
                let base = ci * REDUCE_BLOCK;
                chunk.fill(0.0);
                for i in 0..n {
                    let row = &sub_ref[i * k + base..i * k + base + chunk.len()];
                    for (o, &x) in chunk.iter_mut().zip(row) {
                        *o += x;
                    }
                }
                for o in chunk.iter_mut() {
                    *o *= inv;
                }
            });

            // Center in place, one row per chunk.
            let mu_ref = &mu;
            self.exec.run_chunks(&mut sub, k, &|_i, row| {
                for (x, &m) in row.iter_mut().zip(mu_ref) {
                    *x -= m;
                }
            });

            let v = self.top_direction(&sub, n, k);

            // Score = squared projection on the top direction, one whole
            // dot per client.
            let mut scores = vec![0.0f32; n];
            let v_ref = &v;
            let sub_ref = &sub;
            self.exec.run_chunks(&mut scores, 1, &|i, slot| {
                slot[0] = sg_math::dot(&sub_ref[i * k..(i + 1) * k], v_ref).powi(2);
            });

            // Remove the `remove` highest-scoring gradients this round.
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
            for &i in order.iter().take(remove) {
                good[i] = false;
            }
        }
        let mut selected: Vec<usize> = (0..n).filter(|&i| good[i]).collect();
        if selected.is_empty() {
            // All filtered (possible when iterations disagree): fall back to
            // the single lowest-score gradient to stay available.
            selected = vec![0];
        }
        let gradient = mean_of(gradients, &selected);
        AggregationOutput::selected(gradient, selected)
    }

    fn name(&self) -> &'static str {
        "DnC"
    }

    fn set_executor(&mut self, executor: Arc<dyn ParallelExecutor>) {
        self.exec = executor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn honest(n: usize, d: usize) -> Vec<Vec<f32>> {
        (0..n).map(|i| (0..d).map(|j| ((i * d + j) as f32 * 0.13).sin() * 0.1 + 1.0).collect()).collect()
    }

    #[test]
    fn removes_spectral_outliers() {
        let mut g = honest(8, 32);
        g.push((0..32).map(|_| 50.0).collect());
        g.push((0..32).map(|_| -50.0).collect());
        let out = DnC::new(2).with_iters(3).aggregate(&g);
        let sel = out.selected.expect("dnc selects");
        assert!(sel.iter().all(|&i| i < 8), "outlier kept: {sel:?}");
        assert!((out.gradient[0] - 1.0).abs() < 0.3);
    }

    #[test]
    fn keeps_all_when_no_byzantine_assumed() {
        let g = honest(6, 16);
        let out = DnC::new(0).aggregate(&g);
        assert_eq!(out.selected.expect("sel").len(), 6);
    }

    #[test]
    fn subsampling_larger_than_dim_is_safe() {
        let g = honest(5, 8);
        let out = DnC::new(1).with_subsample_dim(10_000).aggregate(&g);
        assert!(out.gradient.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn deterministic_with_seed() {
        let g = honest(7, 24);
        let a = DnC::new(2).with_seed(5).aggregate(&g);
        let b = DnC::new(2).with_seed(5).aggregate(&g);
        assert_eq!(a.selected, b.selected);
    }

    #[test]
    fn never_returns_empty_selection() {
        // Pathological: 2 clients, assume 1 byzantine, many iters disagree.
        let g = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let out = DnC::new(1).with_iters(5).aggregate(&g);
        assert!(!out.selected.expect("sel").is_empty());
    }

    #[test]
    fn sharded_matches_sequential_bits() {
        // The executor port must not change a bit relative to the
        // sequential path, including with subsampling active.
        let mut g = honest(9, 2 * REDUCE_BLOCK + 17);
        g.push((0..2 * REDUCE_BLOCK + 17).map(|_| 40.0).collect());
        let seq = DnC::new(2).with_seed(3).with_subsample_dim(500).aggregate(&g);
        for threads in [2usize, 3, 8] {
            let mut gar = DnC::new(2).with_seed(3).with_subsample_dim(500);
            gar.set_executor(Arc::new(sg_math::StripedExec(threads)));
            let par = gar.aggregate(&g);
            assert_eq!(par.selected, seq.selected, "{threads} threads");
            for (a, b) in seq.gradient.iter().zip(&par.gradient) {
                assert_eq!(a.to_bits(), b.to_bits(), "{threads} threads");
            }
        }
    }
}
