//! Divide-and-Conquer (DnC) aggregation (Shejwalkar & Houmansadr, NDSS'21).

use rand::rngs::StdRng;
use sg_math::rng::sample_indices;
use sg_math::seeded_rng;

use crate::{mean_of, validate_gradients, AggregationOutput, Aggregator};

/// DnC: spectral outlier removal on random coordinate subsets.
///
/// Each iteration samples a coordinate subset, centers the sub-gradients,
/// finds their top right-singular direction by power iteration, scores each
/// gradient by its squared projection on that direction, and discards the
/// `c · f` highest-scoring gradients. The final good set is the
/// intersection over iterations; the aggregate is its mean.
#[derive(Debug)]
pub struct DnC {
    assumed_byzantine: usize,
    iters: usize,
    subsample_dim: usize,
    filter_frac: f32,
    rng: StdRng,
}

impl DnC {
    /// Creates DnC with the defaults of the original paper: `niters = 1`,
    /// filter fraction `c = 1.0`, coordinate subsample of up to 10 000.
    pub fn new(assumed_byzantine: usize) -> Self {
        Self { assumed_byzantine, iters: 1, subsample_dim: 10_000, filter_frac: 1.0, rng: seeded_rng(0xd4c) }
    }

    /// Number of filtering iterations (intersection over all of them).
    #[must_use]
    pub fn with_iters(mut self, iters: usize) -> Self {
        self.iters = iters.max(1);
        self
    }

    /// Maximum coordinates sampled per iteration.
    #[must_use]
    pub fn with_subsample_dim(mut self, dim: usize) -> Self {
        self.subsample_dim = dim.max(1);
        self
    }

    /// Reseeds the internal RNG (reproducibility).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = seeded_rng(seed);
        self
    }

    /// Top right-singular direction of the centered matrix via power
    /// iteration; `rows` is `n` vectors of equal length.
    fn top_direction(rows: &[Vec<f32>]) -> Vec<f32> {
        let dim = rows[0].len();
        let mut v = vec![1.0f32 / (dim as f32).sqrt(); dim];
        for _ in 0..20 {
            // u = M v (length n), then v' = M^T u, normalized.
            let u: Vec<f32> = rows.iter().map(|r| sg_math::dot(r, &v)).collect();
            let mut next = vec![0.0f32; dim];
            for (r, &ui) in rows.iter().zip(&u) {
                sg_math::vecops::axpy(ui, r, &mut next);
            }
            let norm = sg_math::l2_norm(&next);
            if norm < 1e-12 {
                break;
            }
            sg_math::vecops::scale_in_place(&mut next, 1.0 / norm);
            v = next;
        }
        v
    }
}

impl Aggregator for DnC {
    fn aggregate(&mut self, gradients: &[Vec<f32>]) -> AggregationOutput {
        let dim = validate_gradients(gradients);
        let n = gradients.len();
        let remove =
            ((self.filter_frac * self.assumed_byzantine as f32).round() as usize).min(n.saturating_sub(1));

        let mut good: Vec<bool> = vec![true; n];
        for _ in 0..self.iters {
            let coords = sample_indices(&mut self.rng, dim, self.subsample_dim.min(dim));
            // Build sub-gradients and center them.
            let subs: Vec<Vec<f32>> =
                gradients.iter().map(|g| coords.iter().map(|&c| g[c]).collect()).collect();
            let mu = sg_math::vecops::mean_vector(&subs, coords.len());
            let centered: Vec<Vec<f32>> = subs.iter().map(|s| sg_math::vecops::sub(s, &mu)).collect();
            let v = Self::top_direction(&centered);
            let scores: Vec<f32> = centered.iter().map(|c| sg_math::dot(c, &v).powi(2)).collect();
            // Remove the `remove` highest-scoring gradients this round.
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
            for &i in order.iter().take(remove) {
                good[i] = false;
            }
        }
        let mut selected: Vec<usize> = (0..n).filter(|&i| good[i]).collect();
        if selected.is_empty() {
            // All filtered (possible when iterations disagree): fall back to
            // the single lowest-score gradient to stay available.
            selected = vec![0];
        }
        let gradient = mean_of(gradients, &selected);
        AggregationOutput::selected(gradient, selected)
    }

    fn name(&self) -> &'static str {
        "DnC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn honest(n: usize, d: usize) -> Vec<Vec<f32>> {
        (0..n).map(|i| (0..d).map(|j| ((i * d + j) as f32 * 0.13).sin() * 0.1 + 1.0).collect()).collect()
    }

    #[test]
    fn removes_spectral_outliers() {
        let mut g = honest(8, 32);
        g.push((0..32).map(|_| 50.0).collect());
        g.push((0..32).map(|_| -50.0).collect());
        let out = DnC::new(2).with_iters(3).aggregate(&g);
        let sel = out.selected.expect("dnc selects");
        assert!(sel.iter().all(|&i| i < 8), "outlier kept: {sel:?}");
        assert!((out.gradient[0] - 1.0).abs() < 0.3);
    }

    #[test]
    fn keeps_all_when_no_byzantine_assumed() {
        let g = honest(6, 16);
        let out = DnC::new(0).aggregate(&g);
        assert_eq!(out.selected.expect("sel").len(), 6);
    }

    #[test]
    fn subsampling_larger_than_dim_is_safe() {
        let g = honest(5, 8);
        let out = DnC::new(1).with_subsample_dim(10_000).aggregate(&g);
        assert!(out.gradient.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn deterministic_with_seed() {
        let g = honest(7, 24);
        let a = DnC::new(2).with_seed(5).aggregate(&g);
        let b = DnC::new(2).with_seed(5).aggregate(&g);
        assert_eq!(a.selected, b.selected);
    }

    #[test]
    fn never_returns_empty_selection() {
        // Pathological: 2 clients, assume 1 byzantine, many iters disagree.
        let g = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let out = DnC::new(1).with_iters(5).aggregate(&g);
        assert!(!out.selected.expect("sel").is_empty());
    }
}
