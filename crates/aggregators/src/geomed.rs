//! Geometric median via Weiszfeld's algorithm.

use sg_math::vecops;

use crate::{validate_gradients, AggregationOutput, Aggregator};

/// Geometric median (the point minimizing the sum of Euclidean distances to
/// all gradients), computed with smoothed Weiszfeld iterations.
#[derive(Debug, Clone, Copy)]
pub struct GeoMed {
    max_iter: usize,
    tol: f32,
    smoothing: f32,
}

impl GeoMed {
    /// Creates a geometric-median rule with default iteration settings.
    pub fn new() -> Self {
        Self { max_iter: 100, tol: 1e-6, smoothing: 1e-8 }
    }

    /// Caps Weiszfeld iterations.
    #[must_use]
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter.max(1);
        self
    }
}

impl Default for GeoMed {
    fn default() -> Self {
        Self::new()
    }
}

impl Aggregator for GeoMed {
    fn aggregate(&mut self, gradients: &[Vec<f32>]) -> AggregationOutput {
        let dim = validate_gradients(gradients);
        // Start from the coordinate mean.
        let mut z = vecops::mean_vector(gradients, dim);
        for _ in 0..self.max_iter {
            let mut weight_sum = 0.0f64;
            let mut next = vec![0.0f64; dim];
            for g in gradients {
                let d = f64::from(vecops::l2_distance(g, &z)) + f64::from(self.smoothing);
                let w = 1.0 / d;
                weight_sum += w;
                for (n, &x) in next.iter_mut().zip(g) {
                    *n += w * f64::from(x);
                }
            }
            let mut shift = 0.0f64;
            for (zi, n) in z.iter_mut().zip(next) {
                let v = (n / weight_sum) as f32;
                shift += f64::from((v - *zi) * (v - *zi));
                *zi = v;
            }
            if shift.sqrt() < f64::from(self.tol) {
                break;
            }
        }
        AggregationOutput::blended(z)
    }

    fn name(&self) -> &'static str {
        "GeoMed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collinear_points_median() {
        // Geometric median of {0, 0, 10} on a line is 0 (the middle point
        // by multiplicity).
        let g = vec![vec![0.0], vec![0.0], vec![10.0]];
        let out = GeoMed::new().aggregate(&g);
        assert!(out.gradient[0].abs() < 0.1, "{}", out.gradient[0]);
    }

    #[test]
    fn resists_single_far_outlier() {
        let g = vec![vec![1.0, 1.0], vec![1.1, 0.9], vec![0.9, 1.1], vec![1e6, -1e6]];
        let out = GeoMed::new().aggregate(&g);
        assert!((out.gradient[0] - 1.0).abs() < 0.2);
        assert!((out.gradient[1] - 1.0).abs() < 0.2);
    }

    #[test]
    fn symmetric_points_give_centroid() {
        let g = vec![vec![1.0, 0.0], vec![-1.0, 0.0], vec![0.0, 1.0], vec![0.0, -1.0]];
        let out = GeoMed::new().aggregate(&g);
        assert!(out.gradient[0].abs() < 1e-3);
        assert!(out.gradient[1].abs() < 1e-3);
    }

    #[test]
    fn single_gradient_is_identity() {
        let g = vec![vec![3.0, -4.0]];
        let out = GeoMed::new().aggregate(&g);
        assert!((out.gradient[0] - 3.0).abs() < 1e-4);
        assert!((out.gradient[1] + 4.0).abs() < 1e-4);
    }
}
