//! Geometric median via Weiszfeld's algorithm.

use std::sync::Arc;

use sg_math::vecops::{self, REDUCE_BLOCK};
use sg_math::{ParallelExecutor, SeqExecutor};

use crate::{validate_gradients, AggregationOutput, Aggregator, Composition};

/// Geometric median (the point minimizing the sum of Euclidean distances to
/// all gradients), computed with smoothed Weiszfeld iterations.
///
/// Every `O(n·d)` pass of the inner loop shards across the installed
/// executor while keeping the floating-point order of each output value
/// fixed:
///
/// * the per-client distance pass runs one client per chunk
///   (`chunk_len == 1`), each distance following the fixed
///   [`REDUCE_BLOCK`] reduction tree of [`vecops::l2_distance`];
/// * the weighted-mean update runs in coordinate chunks, accumulating every
///   coordinate in client order in `f64` — exactly the sequential order —
///   so the iterate is bit-identical at any thread count.
///
/// The `O(n)` weight normalization and the `O(d)` convergence check are
/// sequential (they are a vanishing fraction of the work).
#[derive(Clone)]
pub struct GeoMed {
    max_iter: usize,
    tol: f32,
    smoothing: f32,
    exec: Arc<dyn ParallelExecutor>,
}

impl std::fmt::Debug for GeoMed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GeoMed")
            .field("max_iter", &self.max_iter)
            .field("tol", &self.tol)
            .field("parallelism", &self.exec.parallelism())
            .finish()
    }
}

impl GeoMed {
    /// Creates a geometric-median rule with default iteration settings.
    pub fn new() -> Self {
        Self { max_iter: 100, tol: 1e-6, smoothing: 1e-8, exec: Arc::new(SeqExecutor) }
    }

    /// Caps Weiszfeld iterations.
    #[must_use]
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter.max(1);
        self
    }
}

impl Default for GeoMed {
    fn default() -> Self {
        Self::new()
    }
}

impl Aggregator for GeoMed {
    fn aggregate(&mut self, gradients: &[Vec<f32>]) -> AggregationOutput {
        let dim = validate_gradients(gradients);
        let n = gradients.len();

        // Start from the coordinate mean (sharded; bit-identical to
        // `vecops::mean_vector` per the mean_chunk contract).
        let mut z = vec![0.0f32; dim];
        self.exec.run_chunks(&mut z, REDUCE_BLOCK, &|ci, chunk| {
            vecops::mean_chunk(gradients, ci * REDUCE_BLOCK, chunk);
        });

        let mut dists = vec![0.0f32; n];
        let mut next = vec![0.0f32; dim];
        let mut weights = vec![0.0f64; n];
        for _ in 0..self.max_iter {
            // Distances to the current iterate, one client per chunk.
            let z_ref = &z;
            self.exec.run_chunks(&mut dists, 1, &|i, slot| {
                slot[0] = vecops::l2_distance(&gradients[i], z_ref);
            });

            // Weiszfeld weights, accumulated in client order.
            let mut weight_sum = 0.0f64;
            for (w, &d) in weights.iter_mut().zip(&dists) {
                *w = 1.0 / (f64::from(d) + f64::from(self.smoothing));
                weight_sum += *w;
            }

            // Weighted-mean update, sharded in coordinate chunks. Each
            // coordinate accumulates across clients in client order in
            // `f64`, so chunk boundaries never change a bit.
            let weights_ref = &weights;
            self.exec.run_chunks(&mut next, REDUCE_BLOCK, &|ci, chunk| {
                let base = ci * REDUCE_BLOCK;
                let mut acc = vec![0.0f64; chunk.len()];
                for (g, &w) in gradients.iter().zip(weights_ref) {
                    for (a, &x) in acc.iter_mut().zip(&g[base..base + chunk.len()]) {
                        *a += w * f64::from(x);
                    }
                }
                for (o, &a) in chunk.iter_mut().zip(&acc) {
                    *o = (a / weight_sum) as f32;
                }
            });

            // Convergence check and iterate swap.
            let mut shift = 0.0f64;
            for (zi, &v) in z.iter_mut().zip(&next) {
                let d = v - *zi;
                shift += f64::from(d * d);
                *zi = v;
            }
            if shift.sqrt() < f64::from(self.tol) {
                break;
            }
        }
        AggregationOutput::blended(z)
    }

    fn name(&self) -> &'static str {
        "GeoMed"
    }

    fn composition(&self) -> Composition {
        // Geometric-median-of-geometric-medians: the classical two-level
        // approximation (each composed point stays within the convex hull
        // of the shard medians).
        Composition::Rerun
    }

    fn set_executor(&mut self, executor: Arc<dyn ParallelExecutor>) {
        self.exec = executor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collinear_points_median() {
        // Geometric median of {0, 0, 10} on a line is 0 (the middle point
        // by multiplicity).
        let g = vec![vec![0.0], vec![0.0], vec![10.0]];
        let out = GeoMed::new().aggregate(&g);
        assert!(out.gradient[0].abs() < 0.1, "{}", out.gradient[0]);
    }

    #[test]
    fn resists_single_far_outlier() {
        let g = vec![vec![1.0, 1.0], vec![1.1, 0.9], vec![0.9, 1.1], vec![1e6, -1e6]];
        let out = GeoMed::new().aggregate(&g);
        assert!((out.gradient[0] - 1.0).abs() < 0.2);
        assert!((out.gradient[1] - 1.0).abs() < 0.2);
    }

    #[test]
    fn symmetric_points_give_centroid() {
        let g = vec![vec![1.0, 0.0], vec![-1.0, 0.0], vec![0.0, 1.0], vec![0.0, -1.0]];
        let out = GeoMed::new().aggregate(&g);
        assert!(out.gradient[0].abs() < 1e-3);
        assert!(out.gradient[1].abs() < 1e-3);
    }

    #[test]
    fn single_gradient_is_identity() {
        let g = vec![vec![3.0, -4.0]];
        let out = GeoMed::new().aggregate(&g);
        assert!((out.gradient[0] - 3.0).abs() < 1e-4);
        assert!((out.gradient[1] + 4.0).abs() < 1e-4);
    }

    #[test]
    fn wide_gradients_cross_chunk_boundaries() {
        // Dimensions past REDUCE_BLOCK exercise the multi-chunk update
        // path even on the sequential executor.
        let dim = REDUCE_BLOCK + 5;
        let g: Vec<Vec<f32>> =
            (0..5).map(|i| (0..dim).map(|j| ((i + j) % 7) as f32 * 0.25).collect()).collect();
        let out = GeoMed::new().with_max_iter(10).aggregate(&g);
        assert_eq!(out.gradient.len(), dim);
        assert!(out.gradient.iter().all(|x| x.is_finite()));
    }
}
