//! Krum and Multi-Krum (Blanchard et al., NeurIPS'17).

use std::sync::Arc;

use sg_math::{PairwiseDistances, ParallelExecutor, SeqExecutor};

use crate::{mean_of, validate_gradients, AggregationOutput, Aggregator};

/// Multi-Krum: scores every gradient by the sum of squared distances to its
/// `n - f - 2` nearest neighbors and averages the `m` best-scoring
/// gradients. `m = 1` is classic Krum.
///
/// The `O(n²·d)` pairwise-distance pass — the rule's dominant cost — shards
/// across the installed executor (see [`sg_math::pairwise`]); scoring and
/// selection are `O(n² log n)` on scalars and stay sequential.
#[derive(Clone)]
pub struct MultiKrum {
    assumed_byzantine: usize,
    select: usize,
    exec: Arc<dyn ParallelExecutor>,
}

impl std::fmt::Debug for MultiKrum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiKrum")
            .field("assumed_byzantine", &self.assumed_byzantine)
            .field("select", &self.select)
            .field("parallelism", &self.exec.parallelism())
            .finish()
    }
}

impl MultiKrum {
    /// Creates Multi-Krum assuming `f` Byzantine clients and selecting
    /// `select` gradients. The paper's experiments give baselines the exact
    /// Byzantine count, so `select` is typically `n - f`.
    pub fn new(assumed_byzantine: usize, select: usize) -> Self {
        Self { assumed_byzantine, select: select.max(1), exec: Arc::new(SeqExecutor) }
    }

    /// Classic Krum: select exactly one gradient.
    pub fn krum(assumed_byzantine: usize) -> Self {
        Self::new(assumed_byzantine, 1)
    }

    /// Krum scores for each gradient (lower = more trusted).
    ///
    /// # Panics
    ///
    /// Panics on an empty or ragged batch.
    pub fn scores(&self, gradients: &[Vec<f32>]) -> Vec<f32> {
        validate_gradients(gradients);
        let d2 = PairwiseDistances::compute(self.exec.as_ref(), gradients);
        let all: Vec<usize> = (0..gradients.len()).collect();
        scores_from_matrix(&d2, &all, self.assumed_byzantine)
    }
}

/// Full pairwise squared-distance matrix of a gradient batch, computed
/// sequentially.
///
/// Convenience wrapper over [`PairwiseDistances::compute`] with the inline
/// executor; rules that hold an executor (Multi-Krum, Bulyan) call
/// `compute` directly so the pass shards across the engine's pool.
pub fn pairwise_sq_distances(gradients: &[Vec<f32>]) -> PairwiseDistances {
    PairwiseDistances::compute(&SeqExecutor, gradients)
}

/// Krum scores restricted to `subset` (global indices into the matrix),
/// assuming `f` Byzantine members: for each `i ∈ subset`, the sum of its
/// `|subset| - f - 2` smallest distances to other subset members.
///
/// # Panics
///
/// Panics if `subset` is empty.
pub fn scores_from_matrix(d2: &PairwiseDistances, subset: &[usize], f: usize) -> Vec<f32> {
    assert!(!subset.is_empty(), "scores_from_matrix: empty subset");
    let n = subset.len();
    let k = n.saturating_sub(f + 2).max(1).min(n.saturating_sub(1).max(1));
    subset
        .iter()
        .map(|&i| {
            let mut row: Vec<f32> = subset.iter().filter(|&&j| j != i).map(|&j| d2.get(i, j)).collect();
            if row.is_empty() {
                return 0.0;
            }
            row.sort_unstable_by(f32::total_cmp);
            row[..k.min(row.len())].iter().sum()
        })
        .collect()
}

impl Aggregator for MultiKrum {
    fn aggregate(&mut self, gradients: &[Vec<f32>]) -> AggregationOutput {
        let scores = self.scores(gradients);
        let n = gradients.len();
        let m = self.select.min(n);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
        let mut chosen: Vec<usize> = order[..m].to_vec();
        chosen.sort_unstable();
        let gradient = mean_of(gradients, &chosen);
        AggregationOutput::selected(gradient, chosen)
    }

    fn name(&self) -> &'static str {
        "Multi-Krum"
    }

    fn set_executor(&mut self, executor: Arc<dyn ParallelExecutor>) {
        self.exec = executor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn honest_cloud(n: usize) -> Vec<Vec<f32>> {
        (0..n).map(|i| vec![1.0 + 0.01 * i as f32, -1.0 + 0.01 * i as f32]).collect()
    }

    #[test]
    fn krum_rejects_gross_outlier() {
        let mut g = honest_cloud(8);
        g.push(vec![1000.0, 1000.0]);
        let out = MultiKrum::krum(1).aggregate(&g);
        let sel = out.selected.expect("krum selects");
        assert_eq!(sel.len(), 1);
        assert!(sel[0] < 8, "selected the outlier");
        assert!(out.gradient[0] < 2.0);
    }

    #[test]
    fn multikrum_selects_m_gradients() {
        let mut g = honest_cloud(8);
        g.push(vec![500.0, 0.0]);
        g.push(vec![0.0, 500.0]);
        let out = MultiKrum::new(2, 6).aggregate(&g);
        let sel = out.selected.expect("selection");
        assert_eq!(sel.len(), 6);
        assert!(sel.iter().all(|&i| i < 8), "selected an outlier: {sel:?}");
    }

    #[test]
    fn scores_are_lower_for_central_points() {
        let mut g = honest_cloud(6);
        g.push(vec![50.0, 50.0]);
        let mk = MultiKrum::new(1, 1);
        let scores = mk.scores(&g);
        let outlier_score = scores[6];
        assert!(scores[..6].iter().all(|&s| s < outlier_score));
    }

    #[test]
    fn all_identical_selects_all_equally() {
        let g = vec![vec![2.0, 2.0]; 5];
        let out = MultiKrum::new(1, 3).aggregate(&g);
        assert_eq!(out.gradient, vec![2.0, 2.0]);
    }

    #[test]
    fn select_larger_than_n_is_clamped() {
        let g = honest_cloud(4);
        let out = MultiKrum::new(0, 100).aggregate(&g);
        assert_eq!(out.selected.expect("sel").len(), 4);
    }

    #[test]
    fn scores_agree_with_shared_distance_matrix() {
        // `scores` (via the executor path) and `scores_from_matrix` over a
        // standalone matrix are the same computation — Bulyan relies on
        // reusing one matrix across iterations.
        let g = honest_cloud(12);
        let mk = MultiKrum::new(2, 5);
        let d2 = pairwise_sq_distances(&g);
        let all: Vec<usize> = (0..g.len()).collect();
        let via_matrix = scores_from_matrix(&d2, &all, 2);
        assert_eq!(mk.scores(&g), via_matrix);
    }
}
