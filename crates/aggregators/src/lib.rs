//! Byzantine-robust gradient aggregation rules (GARs).
//!
//! These are the defense baselines the SignGuard paper compares against
//! (Table I): naive [`Mean`], [`TrimmedMean`], coordinate-wise
//! [`CoordinateMedian`], geometric median ([`GeoMed`]), [`MultiKrum`],
//! [`Bulyan`] and [`DnC`] — plus two extensions from the related-work
//! section, [`SignMajority`] (signSGD with majority vote) and
//! [`CenteredClip`] (history-aided clipping).
//!
//! Every rule implements [`Aggregator`]: a list of flattened client
//! gradients in, one aggregated gradient out, with the indices of the
//! clients that contributed when the rule performs selection (needed for
//! the paper's Table II selection-rate accounting).
//!
//! # Examples
//!
//! ```
//! use sg_aggregators::{Aggregator, TrimmedMean};
//!
//! let grads = vec![
//!     vec![1.0, 1.0],
//!     vec![1.1, 0.9],
//!     vec![100.0, -100.0], // Byzantine
//! ];
//! let mut gar = TrimmedMean::new(1);
//! let out = gar.aggregate(&grads);
//! assert!(out.gradient[0] < 2.0);
//! ```

mod bulyan;
mod centered_clip;
mod compose;
mod dnc;
mod geomed;
mod krum;
mod mean;
mod repr;
mod signmajority;
mod staleness;

pub use bulyan::Bulyan;
pub use centered_clip::CenteredClip;
pub use compose::{Composition, ShardMeanRoot, ShardSum};
pub use dnc::DnC;
pub use geomed::GeoMed;
pub use krum::{pairwise_sq_distances, scores_from_matrix, MultiKrum};
pub use mean::{CoordinateMedian, Mean, TrimmedMean};
pub use repr::{GradientRepr, QuantizedVec, SignNormVec};
pub use signmajority::SignMajority;
pub use staleness::StalenessDamped;

/// The element representation of a batch: every message in a batch shares
/// one representation (mixed-representation rounds are densified by the
/// pipeline before they reach a rule).
#[derive(Debug, Clone, Copy)]
pub enum BatchElems<'a> {
    /// Dense `f32` gradients (the reference representation).
    Dense(&'a [Vec<f32>]),
    /// Bit-packed sign + norm gradients, consumed natively by the
    /// sign-based rules (SignGuard, [`SignMajority`]).
    SignNorm(&'a [SignNormVec]),
    /// Per-vector-scaled `i8` gradients, aggregated under the
    /// dequantize-then-aggregate contract (see [`QuantizedVec`]).
    Quantized(&'a [QuantizedVec]),
}

impl BatchElems<'_> {
    /// Number of messages in the batch.
    pub fn len(&self) -> usize {
        match self {
            BatchElems::Dense(g) => g.len(),
            BatchElems::SignNorm(s) => s.len(),
            BatchElems::Quantized(q) => q.len(),
        }
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes the batch's documented dense form: sign-norm vectors
    /// reconstruct as their `±norm/√nnz` stand-ins
    /// ([`SignNormVec::to_dense`]); quantized vectors dequantize exactly
    /// ([`QuantizedVec::to_dense`]). Dense batches copy.
    pub fn to_dense(&self) -> Vec<Vec<f32>> {
        match self {
            BatchElems::Dense(g) => g.to_vec(),
            BatchElems::SignNorm(s) => s.iter().map(SignNormVec::to_dense).collect(),
            BatchElems::Quantized(q) => q.iter().map(QuantizedVec::to_dense).collect(),
        }
    }
}

/// Input to an aggregation rule: the message batch plus optional arrival
/// metadata from asynchronous schedules.
///
/// Synchronous rounds carry no metadata ([`GradientBatch::synchronous`]);
/// async schedules attach per-message staleness — how many server steps old
/// the model each gradient was computed against is — so rules can
/// down-weight or reject stale contributions (see [`StalenessDamped`])
/// without the eight batch-only rules having to know staleness exists.
///
/// The elements themselves are representation-pluggable ([`BatchElems`]):
/// sign-native rules consume [`SignNorm`](BatchElems::SignNorm) batches
/// without densifying; every other rule receives the documented dense
/// materialization via the default [`Aggregator::aggregate_batch`].
#[derive(Debug, Clone, Copy)]
pub struct GradientBatch<'a> {
    /// The client messages, one gradient per message.
    pub elems: BatchElems<'a>,
    /// Per-message staleness in server steps, aligned with the elements
    /// (`None` for synchronous rounds, where every message is fresh).
    pub staleness: Option<&'a [usize]>,
}

impl<'a> GradientBatch<'a> {
    /// A dense batch from a synchronous round (no arrival metadata).
    pub fn synchronous(gradients: &'a [Vec<f32>]) -> Self {
        Self { elems: BatchElems::Dense(gradients), staleness: None }
    }

    /// A dense batch carrying per-message staleness.
    ///
    /// # Panics
    ///
    /// Panics if `staleness` and `gradients` lengths differ.
    pub fn with_staleness(gradients: &'a [Vec<f32>], staleness: &'a [usize]) -> Self {
        assert_eq!(staleness.len(), gradients.len(), "GradientBatch: staleness/gradient count mismatch");
        Self { elems: BatchElems::Dense(gradients), staleness: Some(staleness) }
    }

    /// A synchronous batch of bit-packed sign+norm gradients.
    pub fn signnorm(packed: &'a [SignNormVec]) -> Self {
        Self { elems: BatchElems::SignNorm(packed), staleness: None }
    }

    /// A synchronous batch of `i8`-quantized gradients.
    pub fn quantized(quantized: &'a [QuantizedVec]) -> Self {
        Self { elems: BatchElems::Quantized(quantized), staleness: None }
    }

    /// The dense gradients when this is a dense batch.
    pub fn dense_gradients(&self) -> Option<&'a [Vec<f32>]> {
        match self.elems {
            BatchElems::Dense(g) => Some(g),
            _ => None,
        }
    }
}

/// Output of a gradient aggregation rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregationOutput {
    /// The aggregated gradient.
    pub gradient: Vec<f32>,
    /// Indices of client gradients that contributed to the aggregate, when
    /// the rule performs explicit selection (`None` for rules like median
    /// that blend all inputs coordinate-wise).
    pub selected: Option<Vec<usize>>,
}

impl AggregationOutput {
    /// An output with no selection information.
    pub fn blended(gradient: Vec<f32>) -> Self {
        Self { gradient, selected: None }
    }

    /// An output that used exactly the given client indices.
    pub fn selected(gradient: Vec<f32>, indices: Vec<usize>) -> Self {
        Self { gradient, selected: Some(indices) }
    }
}

/// A gradient aggregation rule.
///
/// Implementations take `&mut self` because some rules are stateful across
/// rounds ([`CenteredClip`] keeps the previous aggregate; [`DnC`] advances
/// an internal RNG for coordinate subsampling).
pub trait Aggregator {
    /// Aggregates client gradients.
    ///
    /// # Panics
    ///
    /// Implementations panic if `gradients` is empty or dimensions are
    /// inconsistent (validated via [`validate_gradients`]).
    fn aggregate(&mut self, gradients: &[Vec<f32>]) -> AggregationOutput;

    /// Aggregates a batch carrying arrival metadata (async schedules)
    /// and/or compressed elements.
    ///
    /// The default ignores the metadata and delegates to
    /// [`Aggregator::aggregate`] — directly for dense batches, on the
    /// documented dense materialization ([`BatchElems::to_dense`]) for
    /// compressed ones — so every existing rule works unchanged under any
    /// schedule and any representation. Staleness-aware rules and
    /// representation-native rules (SignGuard, [`SignMajority`]) override
    /// this instead.
    ///
    /// # Panics
    ///
    /// Same contract as [`Aggregator::aggregate`].
    fn aggregate_batch(&mut self, batch: &GradientBatch<'_>) -> AggregationOutput {
        match batch.elems {
            BatchElems::Dense(gradients) => self.aggregate(gradients),
            ref elems => self.aggregate(&elems.to_dense()),
        }
    }

    /// Rule name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// How this rule composes across the shards of a hierarchical
    /// aggregation tree — the `Composable` seam (see [`Composition`] and
    /// the contract table on [`ShardSum`]/[`ShardMeanRoot`]).
    ///
    /// The default is [`Composition::Densify`]: the rule has no shard
    /// form, and a tree runner must fall back to flat aggregation over
    /// the whole population. Rules with a shard form override this.
    fn composition(&self) -> Composition {
        Composition::Densify
    }

    /// Called by the federated server with the current global parameters
    /// before each [`Aggregator::aggregate`] call. Statistic-based rules
    /// ignore it (default no-op); validation-based rules (FLTrust, Zeno in
    /// `sg-fl`) use it to evaluate candidate gradients against a root
    /// dataset at the current model.
    fn observe_global(&mut self, _params: &[f32]) {}

    /// Installs a chunk executor so the rule's coordinate-sharded hot loops
    /// run on the caller's thread pool (see `sg_math::exec`).
    ///
    /// Rules written against the executor contract produce bit-identical
    /// output at any parallelism. The default is a no-op: rules that have
    /// no sharded implementation simply stay sequential.
    fn set_executor(&mut self, _executor: std::sync::Arc<dyn sg_math::ParallelExecutor>) {}
}

/// Validates a gradient batch, returning the common dimension.
///
/// # Panics
///
/// Panics if the batch is empty or dimensions differ.
pub fn validate_gradients(gradients: &[Vec<f32>]) -> usize {
    assert!(!gradients.is_empty(), "aggregate: empty gradient batch");
    let dim = gradients[0].len();
    assert!(dim > 0, "aggregate: zero-dimensional gradients");
    for (i, g) in gradients.iter().enumerate() {
        assert_eq!(g.len(), dim, "aggregate: gradient {i} has dim {} != {dim}", g.len());
    }
    dim
}

/// Mean of the gradients at the given indices.
///
/// # Panics
///
/// Panics if `indices` is empty or out of bounds.
pub fn mean_of(gradients: &[Vec<f32>], indices: &[usize]) -> Vec<f32> {
    assert!(!indices.is_empty(), "mean_of: empty selection");
    let dim = gradients[0].len();
    let mut out = vec![0.0f32; dim];
    for &i in indices {
        sg_math::vecops::axpy(1.0, &gradients[i], &mut out);
    }
    sg_math::vecops::scale_in_place(&mut out, 1.0 / indices.len() as f32);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_uniform() {
        let g = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert_eq!(validate_gradients(&g), 2);
    }

    #[test]
    #[should_panic(expected = "empty gradient batch")]
    fn validate_rejects_empty() {
        let _ = validate_gradients(&[]);
    }

    #[test]
    #[should_panic(expected = "has dim")]
    fn validate_rejects_ragged() {
        let _ = validate_gradients(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn mean_of_selection() {
        let g = vec![vec![1.0, 0.0], vec![3.0, 2.0], vec![100.0, 100.0]];
        assert_eq!(mean_of(&g, &[0, 1]), vec![2.0, 1.0]);
    }
}
