//! Mean, trimmed-mean and coordinate-wise median rules.

use sg_math::stats;

use crate::{validate_gradients, AggregationOutput, Aggregator};

/// Naive arithmetic mean — the no-defense baseline (FedAvg/FedSGD).
#[derive(Debug, Clone, Copy, Default)]
pub struct Mean;

impl Mean {
    /// Creates the mean rule.
    pub fn new() -> Self {
        Self
    }
}

impl Aggregator for Mean {
    fn aggregate(&mut self, gradients: &[Vec<f32>]) -> AggregationOutput {
        let dim = validate_gradients(gradients);
        AggregationOutput::blended(sg_math::vecops::mean_vector(gradients, dim))
    }

    fn name(&self) -> &'static str {
        "Mean"
    }
}

/// Coordinate-wise trimmed mean (Yin et al., ICML'18): for each coordinate,
/// drop the `k` smallest and `k` largest values, average the rest.
#[derive(Debug, Clone, Copy)]
pub struct TrimmedMean {
    trim: usize,
}

impl TrimmedMean {
    /// Creates a trimmed mean that removes `trim` values from each tail —
    /// set to the assumed number of Byzantine clients.
    pub fn new(trim: usize) -> Self {
        Self { trim }
    }
}

impl Aggregator for TrimmedMean {
    fn aggregate(&mut self, gradients: &[Vec<f32>]) -> AggregationOutput {
        let dim = validate_gradients(gradients);
        let n = gradients.len();
        // Degrade gracefully when over-trimmed: fall back to median-like
        // trimming that leaves at least one value.
        let trim = self.trim.min((n - 1) / 2);
        let mut out = vec![0.0f32; dim];
        let mut col = vec![0.0f32; n];
        for j in 0..dim {
            for (i, g) in gradients.iter().enumerate() {
                col[i] = g[j];
            }
            out[j] = stats::trimmed_mean(&col, trim);
        }
        AggregationOutput::blended(out)
    }

    fn name(&self) -> &'static str {
        "TrMean"
    }
}

/// Coordinate-wise median (Yin et al., ICML'18).
#[derive(Debug, Clone, Copy, Default)]
pub struct CoordinateMedian;

impl CoordinateMedian {
    /// Creates the coordinate-wise median rule.
    pub fn new() -> Self {
        Self
    }
}

impl Aggregator for CoordinateMedian {
    fn aggregate(&mut self, gradients: &[Vec<f32>]) -> AggregationOutput {
        let dim = validate_gradients(gradients);
        let n = gradients.len();
        let mut out = vec![0.0f32; dim];
        let mut col = vec![0.0f32; n];
        for j in 0..dim {
            for (i, g) in gradients.iter().enumerate() {
                col[i] = g[j];
            }
            out[j] = stats::median(&col);
        }
        AggregationOutput::blended(out)
    }

    fn name(&self) -> &'static str {
        "Median"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_averages() {
        let g = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let out = Mean::new().aggregate(&g);
        assert_eq!(out.gradient, vec![2.0, 3.0]);
        assert!(out.selected.is_none());
    }

    #[test]
    fn mean_is_poisoned_by_outlier() {
        let g = vec![vec![1.0], vec![1.0], vec![-100.0]];
        let out = Mean::new().aggregate(&g);
        assert!(out.gradient[0] < -30.0);
    }

    #[test]
    fn trimmed_mean_resists_outliers() {
        let g = vec![vec![1.0], vec![1.2], vec![0.8], vec![1000.0], vec![-1000.0]];
        let out = TrimmedMean::new(1).aggregate(&g);
        assert!((out.gradient[0] - 1.0).abs() < 0.2, "{}", out.gradient[0]);
    }

    #[test]
    fn trimmed_mean_zero_trim_equals_mean() {
        let g = vec![vec![1.0, -1.0], vec![3.0, 5.0]];
        let t = TrimmedMean::new(0).aggregate(&g);
        let m = Mean::new().aggregate(&g);
        assert_eq!(t.gradient, m.gradient);
    }

    #[test]
    fn trimmed_mean_overtrim_degrades_gracefully() {
        let g = vec![vec![1.0], vec![2.0], vec![3.0]];
        // trim=5 would empty the set; falls back to trim=1 (median).
        let out = TrimmedMean::new(5).aggregate(&g);
        assert_eq!(out.gradient, vec![2.0]);
    }

    #[test]
    fn median_ignores_minority_outliers() {
        let g = vec![vec![1.0, 0.0], vec![1.1, 0.1], vec![0.9, -0.1], vec![500.0, 500.0]];
        let out = CoordinateMedian::new().aggregate(&g);
        assert!((out.gradient[0] - 1.05).abs() < 0.1);
        assert!(out.gradient[1].abs() < 0.2);
    }

    #[test]
    fn median_breaks_past_half_byzantine() {
        // Sanity: with >50% attackers the median is captured — the 2m+1
        // requirement in the paper is necessary.
        let g = vec![vec![0.0], vec![10.0], vec![10.0]];
        let out = CoordinateMedian::new().aggregate(&g);
        assert_eq!(out.gradient[0], 10.0);
    }
}
