//! Mean, trimmed-mean and coordinate-wise median rules.
//!
//! All three are coordinate-independent, so their hot loops run through the
//! pluggable [`ParallelExecutor`] in [`REDUCE_BLOCK`]-sized coordinate
//! shards: per output coordinate the computation (and therefore every
//! floating-point rounding) is identical at any parallelism.

use std::sync::Arc;

use sg_math::vecops::{self, REDUCE_BLOCK};
use sg_math::{ParallelExecutor, SeqExecutor};

use crate::{validate_gradients, AggregationOutput, Aggregator, Composition};

/// Naive arithmetic mean — the no-defense baseline (FedAvg/FedSGD).
#[derive(Clone)]
pub struct Mean {
    exec: Arc<dyn ParallelExecutor>,
}

impl std::fmt::Debug for Mean {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mean").field("parallelism", &self.exec.parallelism()).finish()
    }
}

impl Mean {
    /// Creates the mean rule (sequential until an executor is installed).
    pub fn new() -> Self {
        Self { exec: Arc::new(SeqExecutor) }
    }
}

impl Default for Mean {
    fn default() -> Self {
        Self::new()
    }
}

impl Aggregator for Mean {
    fn aggregate(&mut self, gradients: &[Vec<f32>]) -> AggregationOutput {
        let dim = validate_gradients(gradients);
        let mut out = vec![0.0f32; dim];
        self.exec.run_chunks(&mut out, REDUCE_BLOCK, &|ci, chunk| {
            vecops::mean_chunk(gradients, ci * REDUCE_BLOCK, chunk);
        });
        AggregationOutput::blended(out)
    }

    fn name(&self) -> &'static str {
        "Mean"
    }

    fn composition(&self) -> Composition {
        // A scaled linear reduction: shard tree-sums recombined at the
        // root and scaled once are bit-identical to the flat mean.
        Composition::ExactSum
    }

    fn set_executor(&mut self, executor: Arc<dyn ParallelExecutor>) {
        self.exec = executor;
    }
}

/// Coordinate-wise trimmed mean (Yin et al., ICML'18): for each coordinate,
/// drop the `k` smallest and `k` largest values, average the rest.
#[derive(Clone)]
pub struct TrimmedMean {
    trim: usize,
    exec: Arc<dyn ParallelExecutor>,
}

impl std::fmt::Debug for TrimmedMean {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrimmedMean")
            .field("trim", &self.trim)
            .field("parallelism", &self.exec.parallelism())
            .finish()
    }
}

impl TrimmedMean {
    /// Creates a trimmed mean that removes `trim` values from each tail —
    /// set to the assumed number of Byzantine clients.
    pub fn new(trim: usize) -> Self {
        Self { trim, exec: Arc::new(SeqExecutor) }
    }
}

impl Aggregator for TrimmedMean {
    fn aggregate(&mut self, gradients: &[Vec<f32>]) -> AggregationOutput {
        let dim = validate_gradients(gradients);
        let n = gradients.len();
        // Degrade gracefully when over-trimmed: fall back to median-like
        // trimming that leaves at least one value.
        let trim = self.trim.min((n - 1) / 2);
        let mut out = vec![0.0f32; dim];
        self.exec.run_chunks(&mut out, REDUCE_BLOCK, &|ci, chunk| {
            vecops::trimmed_mean_chunk(gradients, trim, ci * REDUCE_BLOCK, chunk);
        });
        AggregationOutput::blended(out)
    }

    fn name(&self) -> &'static str {
        "TrMean"
    }

    fn composition(&self) -> Composition {
        // Trimmed-mean-of-trimmed-means: each composed coordinate stays
        // within the range spanned by the shard aggregates.
        Composition::Rerun
    }

    fn set_executor(&mut self, executor: Arc<dyn ParallelExecutor>) {
        self.exec = executor;
    }
}

/// Coordinate-wise median (Yin et al., ICML'18).
#[derive(Clone)]
pub struct CoordinateMedian {
    exec: Arc<dyn ParallelExecutor>,
}

impl std::fmt::Debug for CoordinateMedian {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoordinateMedian").field("parallelism", &self.exec.parallelism()).finish()
    }
}

impl CoordinateMedian {
    /// Creates the coordinate-wise median rule.
    pub fn new() -> Self {
        Self { exec: Arc::new(SeqExecutor) }
    }
}

impl Default for CoordinateMedian {
    fn default() -> Self {
        Self::new()
    }
}

impl Aggregator for CoordinateMedian {
    fn aggregate(&mut self, gradients: &[Vec<f32>]) -> AggregationOutput {
        let dim = validate_gradients(gradients);
        let mut out = vec![0.0f32; dim];
        self.exec.run_chunks(&mut out, REDUCE_BLOCK, &|ci, chunk| {
            vecops::median_chunk(gradients, ci * REDUCE_BLOCK, chunk);
        });
        AggregationOutput::blended(out)
    }

    fn name(&self) -> &'static str {
        "Median"
    }

    fn composition(&self) -> Composition {
        // Median-of-medians: each composed coordinate lies within the
        // range of the shard medians, hence within the per-coordinate
        // range of the population.
        Composition::Rerun
    }

    fn set_executor(&mut self, executor: Arc<dyn ParallelExecutor>) {
        self.exec = executor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_averages() {
        let g = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let out = Mean::new().aggregate(&g);
        assert_eq!(out.gradient, vec![2.0, 3.0]);
        assert!(out.selected.is_none());
    }

    #[test]
    fn mean_is_poisoned_by_outlier() {
        let g = vec![vec![1.0], vec![1.0], vec![-100.0]];
        let out = Mean::new().aggregate(&g);
        assert!(out.gradient[0] < -30.0);
    }

    #[test]
    fn trimmed_mean_resists_outliers() {
        let g = vec![vec![1.0], vec![1.2], vec![0.8], vec![1000.0], vec![-1000.0]];
        let out = TrimmedMean::new(1).aggregate(&g);
        assert!((out.gradient[0] - 1.0).abs() < 0.2, "{}", out.gradient[0]);
    }

    #[test]
    fn trimmed_mean_zero_trim_equals_mean() {
        let g = vec![vec![1.0, -1.0], vec![3.0, 5.0]];
        let t = TrimmedMean::new(0).aggregate(&g);
        let m = Mean::new().aggregate(&g);
        assert_eq!(t.gradient, m.gradient);
    }

    #[test]
    fn trimmed_mean_overtrim_degrades_gracefully() {
        let g = vec![vec![1.0], vec![2.0], vec![3.0]];
        // trim=5 would empty the set; falls back to trim=1 (median).
        let out = TrimmedMean::new(5).aggregate(&g);
        assert_eq!(out.gradient, vec![2.0]);
    }

    #[test]
    fn median_ignores_minority_outliers() {
        let g = vec![vec![1.0, 0.0], vec![1.1, 0.1], vec![0.9, -0.1], vec![500.0, 500.0]];
        let out = CoordinateMedian::new().aggregate(&g);
        assert!((out.gradient[0] - 1.05).abs() < 0.1);
        assert!(out.gradient[1].abs() < 0.2);
    }

    #[test]
    fn median_breaks_past_half_byzantine() {
        // Sanity: with >50% attackers the median is captured — the 2m+1
        // requirement in the paper is necessary.
        let g = vec![vec![0.0], vec![10.0], vec![10.0]];
        let out = CoordinateMedian::new().aggregate(&g);
        assert_eq!(out.gradient[0], 10.0);
    }
}
