//! Compressed gradient representations behind the [`GradientBatch`] seam.
//!
//! Clients may submit gradients in one of three representations
//! ([`GradientRepr`]): dense `f32`, bit-packed sign + L2 norm
//! ([`SignNormVec`] — 1 bit/coordinate, ~1/32nd the bytes on the wire,
//! consumed *natively* by SignGuard and SignMajority without ever
//! rematerializing dense vectors), and per-vector-scaled `i8` quantization
//! ([`QuantizedVec`] — 1/4 the bytes, for the mean-family rules).
//!
//! # Aggregation contracts
//!
//! - **Dense** is the reference representation; nothing changes.
//! - **SignNorm** carries exactly the statistics SignGuard's funnel uses
//!   (per-gradient norm, per-coordinate sign), so the sign-native rules
//!   operate on it directly. Rules that need magnitudes use the
//!   *documented dense stand-in* ([`SignNormVec::to_dense`]): every
//!   nonzero-sign coordinate gets `±norm/√nnz`, preserving both the sign
//!   pattern and the L2 norm.
//! - **QuantizedI8** follows a **dequantize-then-aggregate** contract:
//!   aggregating a quantized batch is *bit-identical* to densely
//!   aggregating the dequantized vectors ([`QuantizedVec::to_dense`],
//!   `q_i as f32 * scale`), because that is literally how the default path
//!   evaluates it — the representation changes what crosses the wire, not
//!   the aggregation arithmetic.
//!
//! [`GradientBatch`]: crate::GradientBatch

use sg_math::kernels;

/// Bit-packed sign + L2 norm representation of a gradient.
///
/// Stores one sign bit per coordinate (1 ⇔ strictly positive), a sorted
/// sparse list of zero-sign coordinates (exact zeros and NaNs — an
/// undefined coordinate carries no directional information, matching
/// `sg_math::vecops::sign_counts`), and the L2 norm of the original dense
/// vector.
#[derive(Debug, Clone, PartialEq)]
pub struct SignNormVec {
    dim: u32,
    norm: f32,
    bits: Vec<u64>,
    zeros: Vec<u32>,
}

impl SignNormVec {
    /// Packs a dense gradient (allocating fresh buffers).
    pub fn pack(v: &[f32]) -> Self {
        Self::pack_with_buffers(v, Vec::new(), Vec::new())
    }

    /// Packs a dense gradient into recycled buffers (see `sg-runtime`'s
    /// arena): both are cleared and refilled, keeping their capacity.
    pub fn pack_with_buffers(v: &[f32], mut bits: Vec<u64>, mut zeros: Vec<u32>) -> Self {
        kernels::pack_signs_into(v, &mut bits, &mut zeros);
        Self { dim: v.len() as u32, norm: sg_math::l2_norm(v), bits, zeros }
    }

    /// Reassembles a packed vector from its stored parts (the wire
    /// decoder's entry point).
    ///
    /// # Panics
    ///
    /// Panics if `bits` does not cover `dim` coordinates, a zero index is
    /// out of range or unsorted, or a listed zero has its sign bit set.
    pub fn from_parts(dim: usize, norm: f32, bits: Vec<u64>, zeros: Vec<u32>) -> Self {
        assert_eq!(bits.len(), kernels::packed_words(dim), "SignNormVec: bit words do not cover dim {dim}");
        if let Some(tail) = bits.last() {
            let used = dim - (bits.len() - 1) * 64;
            assert!(used == 64 || tail >> used == 0, "SignNormVec: sign bits beyond dim {dim}");
        }
        for (i, &z) in zeros.iter().enumerate() {
            assert!((z as usize) < dim, "SignNormVec: zero index {z} out of range");
            assert!(i == 0 || zeros[i - 1] < z, "SignNormVec: zeros not strictly ascending");
            assert!(
                (bits[(z as usize) >> 6] >> (z & 63)) & 1 == 0,
                "SignNormVec: coordinate {z} is both positive and zero"
            );
        }
        Self { dim: dim as u32, norm, bits, zeros }
    }

    /// Dimension of the original dense vector.
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// L2 norm of the original dense vector.
    pub fn norm(&self) -> f32 {
        self.norm
    }

    /// The packed sign words (bit `i` of the stream ⇔ coordinate `i` is
    /// strictly positive).
    pub fn bits(&self) -> &[u64] {
        &self.bits
    }

    /// The sorted zero-sign coordinate list.
    pub fn zeros(&self) -> &[u32] {
        &self.zeros
    }

    /// Sign of coordinate `i`: `+1`, `0` or `-1`.
    pub fn sign_at(&self, i: usize) -> i8 {
        assert!(i < self.dim(), "SignNormVec: coordinate {i} out of range");
        kernels::packed_sign_at(&self.bits, &self.zeros, i)
    }

    /// Counts of (positive, zero, negative) signs — a popcount, identical
    /// to `sg_math::vecops::sign_counts` on the original dense vector.
    pub fn sign_counts(&self) -> (usize, usize, usize) {
        kernels::packed_sign_counts(self.dim(), &self.bits, &self.zeros)
    }

    /// Sign counts over a sampled coordinate subset (the sign-cluster
    /// filter's feature statistics).
    pub fn sign_counts_at(&self, coords: &[usize]) -> (usize, usize, usize) {
        kernels::packed_sign_counts_at(&self.bits, &self.zeros, coords)
    }

    /// Number of nonzero-sign coordinates.
    pub fn nnz(&self) -> usize {
        self.dim() - self.zeros.len()
    }

    /// The documented dense stand-in: `±norm/√nnz` at every nonzero-sign
    /// coordinate, `0` elsewhere — the unique vector with this sign
    /// pattern, equal per-coordinate magnitude and the stored L2 norm.
    /// All-zero-sign vectors reconstruct as the zero vector.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim()];
        let nnz = self.nnz();
        if nnz == 0 {
            return out;
        }
        let mag = self.norm / (nnz as f32).sqrt();
        kernels::packed_signs_axpy(&self.bits, &self.zeros, mag, 0, &mut out);
        out
    }

    /// Consumes the vector, returning its buffers for recycling.
    pub fn into_buffers(self) -> (Vec<u64>, Vec<u32>) {
        (self.bits, self.zeros)
    }

    /// Heap bytes held by the packed buffers.
    pub fn resident_bytes(&self) -> usize {
        self.bits.capacity() * 8 + self.zeros.capacity() * 4
    }
}

/// Per-vector-scaled `i8` quantization of a gradient.
///
/// `scale = max|v_i| / 127` over finite coordinates; each coordinate
/// stores `round(v_i / scale)` clamped to `[-127, 127]` (NaN → 0, ±∞ →
/// ±127). Dequantization is `q_i as f32 * scale`, so for finite inputs
/// the round-trip error is bounded by `scale / 2` per coordinate.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedVec {
    scale: f32,
    q: Vec<i8>,
}

impl QuantizedVec {
    /// Quantizes a dense gradient (allocating a fresh buffer).
    pub fn quantize(v: &[f32]) -> Self {
        Self::quantize_with_buffer(v, Vec::new())
    }

    /// Quantizes into a recycled buffer (cleared and refilled, keeping
    /// capacity).
    pub fn quantize_with_buffer(v: &[f32], mut q: Vec<i8>) -> Self {
        let mut max_abs = 0.0f32;
        for &x in v {
            if x.is_finite() {
                max_abs = max_abs.max(x.abs());
            }
        }
        let scale = max_abs / 127.0;
        q.clear();
        q.reserve(v.len());
        if scale == 0.0 {
            // All coordinates are zero or non-finite; NaN → 0, ±∞ → ±127.
            q.extend(v.iter().map(|&x| {
                if x == f32::INFINITY {
                    127i8
                } else if x == f32::NEG_INFINITY {
                    -127
                } else {
                    0
                }
            }));
        } else {
            q.extend(v.iter().map(|&x| {
                let r = (x / scale).round();
                if r.is_nan() {
                    0i8
                } else {
                    r.clamp(-127.0, 127.0) as i8
                }
            }));
        }
        Self { scale, q }
    }

    /// Reassembles a quantized vector from its stored parts (the wire
    /// decoder's entry point).
    pub fn from_parts(scale: f32, q: Vec<i8>) -> Self {
        Self { scale, q }
    }

    /// Dimension of the original dense vector.
    pub fn dim(&self) -> usize {
        self.q.len()
    }

    /// The per-vector dequantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The quantized coordinates.
    pub fn levels(&self) -> &[i8] {
        &self.q
    }

    /// Dequantizes into `out` (resized to fit): `out[i] = q_i as f32 *
    /// scale` — the exact vectors the dequantize-then-aggregate contract
    /// aggregates.
    pub fn dequantize_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.extend(self.q.iter().map(|&qi| f32::from(qi) * self.scale));
    }

    /// Dequantizes into a fresh vector.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.dequantize_into(&mut out);
        out
    }

    /// Consumes the vector, returning its level buffer for recycling.
    pub fn into_buffer(self) -> Vec<i8> {
        self.q
    }

    /// Heap bytes held by the level buffer.
    pub fn resident_bytes(&self) -> usize {
        self.q.capacity()
    }
}

/// A gradient in one of the supported representations — the payload type
/// the pipeline buffers and the wire codec carries.
#[derive(Debug, Clone, PartialEq)]
pub enum GradientRepr {
    /// Dense `f32` coordinates (the reference representation).
    Dense(Vec<f32>),
    /// Bit-packed signs + L2 norm (~1/32nd the bytes).
    SignNorm(SignNormVec),
    /// Per-vector-scaled `i8` levels (1/4 the bytes).
    QuantizedI8(QuantizedVec),
}

impl GradientRepr {
    /// Dimension of the represented gradient.
    pub fn dim(&self) -> usize {
        match self {
            GradientRepr::Dense(v) => v.len(),
            GradientRepr::SignNorm(s) => s.dim(),
            GradientRepr::QuantizedI8(q) => q.dim(),
        }
    }

    /// Short representation name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            GradientRepr::Dense(_) => "dense",
            GradientRepr::SignNorm(_) => "signnorm",
            GradientRepr::QuantizedI8(_) => "quantized-i8",
        }
    }

    /// Materializes the documented dense form: dense vectors pass through
    /// unchanged (no copy), compressed ones reconstruct per their
    /// contract ([`SignNormVec::to_dense`], [`QuantizedVec::to_dense`]).
    pub fn into_dense(self) -> Vec<f32> {
        match self {
            GradientRepr::Dense(v) => v,
            GradientRepr::SignNorm(s) => s.to_dense(),
            GradientRepr::QuantizedI8(q) => q.to_dense(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signnorm_preserves_signs_including_nan() {
        // NaN packs as zero-sign (it carries no direction); the stored
        // norm is then NaN too, which downstream norm filters reject —
        // exactly as they would the dense original.
        let v = vec![1.5f32, -0.25, 0.0, 3.0, f32::NAN, -7.0, 0.0, 2.0];
        let s = SignNormVec::pack(&v);
        assert_eq!(s.dim(), v.len());
        assert_eq!(s.sign_counts(), (3, 3, 2));
        let signs: Vec<i8> = (0..v.len()).map(|i| s.sign_at(i)).collect();
        assert_eq!(signs, vec![1, -1, 0, 1, 0, -1, 0, 1]);
        assert!(s.norm().is_nan());
    }

    #[test]
    fn signnorm_dense_standin_preserves_norm() {
        let v = vec![1.5f32, -0.25, 0.0, 3.0, -7.0, 0.0, 2.0];
        let s = SignNormVec::pack(&v);
        let d = s.to_dense();
        assert!((sg_math::l2_norm(&d) - s.norm()).abs() <= 1e-3 * s.norm());
        for (x, y) in v.iter().zip(&d) {
            if *x > 0.0 {
                assert!(*y > 0.0);
            } else if *x < 0.0 {
                assert!(*y < 0.0);
            } else {
                assert_eq!(*y, 0.0);
            }
        }
    }

    #[test]
    fn signnorm_all_zero_is_zero_dense() {
        let s = SignNormVec::pack(&[0.0f32; 70]);
        assert_eq!(s.nnz(), 0);
        assert_eq!(s.to_dense(), vec![0.0f32; 70]);
    }

    #[test]
    fn signnorm_parts_round_trip() {
        let v: Vec<f32> = (0..130).map(|i| ((i * 37) % 13) as f32 - 6.0).collect();
        let s = SignNormVec::pack(&v);
        let (dim, norm) = (s.dim(), s.norm());
        let clone = s.clone();
        let (bits, zeros) = s.into_buffers();
        assert_eq!(SignNormVec::from_parts(dim, norm, bits, zeros), clone);
    }

    #[test]
    #[should_panic(expected = "beyond dim")]
    fn signnorm_rejects_stray_tail_bits() {
        let _ = SignNormVec::from_parts(4, 1.0, vec![0x10], vec![]);
    }

    #[test]
    fn quantized_error_bound() {
        let v: Vec<f32> = (0..500).map(|i| ((i as f32) * 0.71).sin() * 42.0).collect();
        let q = QuantizedVec::quantize(&v);
        let d = q.to_dense();
        let bound = q.scale() / 2.0;
        for (x, y) in v.iter().zip(&d) {
            assert!((x - y).abs() <= bound, "{x} vs {y} exceeds {bound}");
        }
    }

    #[test]
    fn quantized_handles_non_finite() {
        let v = vec![1.0f32, f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -1.0];
        let q = QuantizedVec::quantize(&v);
        assert_eq!(q.levels(), &[127, 0, 127, -127, -127]);
        let z = QuantizedVec::quantize(&[f32::NAN, f32::INFINITY]);
        assert_eq!(z.scale(), 0.0);
        assert_eq!(z.levels(), &[0, 127]);
    }

    #[test]
    fn repr_dense_passes_through() {
        let v = vec![1.0f32, -2.0];
        assert_eq!(GradientRepr::Dense(v.clone()).into_dense(), v);
        assert_eq!(GradientRepr::Dense(v.clone()).dim(), 2);
        assert_eq!(GradientRepr::SignNorm(SignNormVec::pack(&v)).kind(), "signnorm");
    }
}
