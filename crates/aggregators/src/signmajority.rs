//! signSGD with majority vote (Bernstein et al., ICML'18).

use std::sync::Arc;

use sg_math::vecops::REDUCE_BLOCK;
use sg_math::{kernels, ParallelExecutor, SeqExecutor};

use crate::{
    validate_gradients, AggregationOutput, Aggregator, BatchElems, Composition, GradientBatch, SignNormVec,
};

/// Element-wise sign majority vote, scaled by a configurable magnitude.
///
/// One of the sign-based related works the paper cites (\[22\], \[26\]): the
/// server aggregates only the sign of each coordinate. Majority voting is
/// inherently fault-tolerant below 50% Byzantine, at the cost of a
/// magnitude-free update (here scaled by `scale`, default the mean of the
/// input gradient norms divided by `sqrt(d)` so update norms stay
/// comparable to mean aggregation).
///
/// The rule is sign-native: a [`SignNorm`](BatchElems::SignNorm) batch is
/// aggregated directly from the packed bits and stored norms — votes from
/// popcount-style bit reads, the auto-scale from the norms the clients
/// already computed — without materializing a single dense vector.
pub struct SignMajority {
    scale: Option<f32>,
    exec: Arc<dyn ParallelExecutor>,
}

impl std::fmt::Debug for SignMajority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SignMajority").field("scale", &self.scale).finish()
    }
}

impl SignMajority {
    /// Creates a sign-majority rule with automatic scaling.
    pub fn new() -> Self {
        Self { scale: None, exec: Arc::new(SeqExecutor) }
    }

    /// Fixes the per-coordinate magnitude of the output.
    #[must_use]
    pub fn with_scale(mut self, scale: f32) -> Self {
        self.scale = Some(scale);
        self
    }

    /// The output magnitude for a batch with the given mean norm and
    /// dimension.
    fn resolve_scale(&self, mean_norm: f32, dim: usize) -> f32 {
        self.scale.unwrap_or(mean_norm / (dim as f32).sqrt())
    }

    /// Maps accumulated votes (exact small integers stored in `f32`) to
    /// the scaled majority sign, in place.
    fn votes_to_signs(out: &mut [f32], scale: f32) {
        for o in out.iter_mut() {
            *o = if *o > 0.0 {
                scale
            } else if *o < 0.0 {
                -scale
            } else {
                0.0
            };
        }
    }

    /// Native aggregation of a packed sign+norm batch.
    fn aggregate_packed(&mut self, packed: &[SignNormVec]) -> AggregationOutput {
        assert!(!packed.is_empty(), "aggregate: empty gradient batch");
        let dim = packed[0].dim();
        assert!(dim > 0, "aggregate: zero-dimensional gradients");
        for (i, p) in packed.iter().enumerate() {
            assert_eq!(p.dim(), dim, "aggregate: gradient {i} has dim {} != {dim}", p.dim());
        }
        let mean_norm = packed.iter().map(SignNormVec::norm).sum::<f32>() / packed.len() as f32;
        let scale = self.resolve_scale(mean_norm, dim);
        let mut out = vec![0.0f32; dim];
        self.exec.run_chunks(&mut out, REDUCE_BLOCK, &|ci, chunk| {
            let offset = ci * REDUCE_BLOCK;
            for p in packed {
                kernels::packed_signs_axpy(p.bits(), p.zeros(), 1.0, offset, chunk);
            }
            Self::votes_to_signs(chunk, scale);
        });
        AggregationOutput::blended(out)
    }
}

impl Default for SignMajority {
    fn default() -> Self {
        Self::new()
    }
}

impl Aggregator for SignMajority {
    fn aggregate(&mut self, gradients: &[Vec<f32>]) -> AggregationOutput {
        let dim = validate_gradients(gradients);
        let scale = self.scale.unwrap_or_else(|| {
            let mean_norm: f32 =
                gradients.iter().map(|g| sg_math::l2_norm(g)).sum::<f32>() / gradients.len() as f32;
            self.resolve_scale(mean_norm, dim)
        });
        // Vote accumulation: per coordinate, ±1 per gradient in gradient
        // order — exact in f32 for any realistic client count, and
        // chunk-shape independent because coordinates never interact.
        let mut out = vec![0.0f32; dim];
        self.exec.run_chunks(&mut out, REDUCE_BLOCK, &|ci, chunk| {
            let offset = ci * REDUCE_BLOCK;
            for g in gradients {
                let window = &g[offset..offset + chunk.len()];
                for (o, &x) in chunk.iter_mut().zip(window) {
                    if x > 0.0 {
                        *o += 1.0;
                    } else if x < 0.0 {
                        *o -= 1.0;
                    }
                }
            }
            Self::votes_to_signs(chunk, scale);
        });
        AggregationOutput::blended(out)
    }

    fn aggregate_batch(&mut self, batch: &GradientBatch<'_>) -> AggregationOutput {
        match batch.elems {
            BatchElems::Dense(gradients) => self.aggregate(gradients),
            BatchElems::SignNorm(packed) => self.aggregate_packed(packed),
            ref elems => self.aggregate(&elems.to_dense()),
        }
    }

    fn name(&self) -> &'static str {
        "SignSGD"
    }

    fn composition(&self) -> Composition {
        // Majority-of-majorities over packed shard sign votes: the shard
        // aggregate is itself a sign vector, so the funnel never needs to
        // densify on the wire.
        Composition::RerunSignNorm
    }

    fn set_executor(&mut self, executor: Arc<dyn ParallelExecutor>) {
        self.exec = executor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_direction_wins() {
        let g = vec![vec![1.0, -1.0], vec![2.0, -3.0], vec![-100.0, 100.0]];
        let out = SignMajority::new().with_scale(1.0).aggregate(&g);
        assert_eq!(out.gradient, vec![1.0, -1.0]);
    }

    #[test]
    fn tie_gives_zero() {
        let g = vec![vec![1.0], vec![-1.0]];
        let out = SignMajority::new().with_scale(1.0).aggregate(&g);
        assert_eq!(out.gradient, vec![0.0]);
    }

    #[test]
    fn auto_scale_is_positive() {
        let g = vec![vec![3.0, 4.0], vec![3.0, 4.0]];
        let out = SignMajority::new().aggregate(&g);
        assert!(out.gradient[0] > 0.0);
        assert_eq!(out.gradient[0], out.gradient[1]);
    }

    #[test]
    fn packed_batch_matches_dense_bits() {
        // Sign information and norms survive packing exactly, so the
        // packed path must reproduce the dense output bit-for-bit — with
        // auto scaling, since the mean norm comes from the stored norms.
        let g: Vec<Vec<f32>> =
            (0..5).map(|i| (0..300).map(|j| (((i * 300 + j) as f32) * 0.37).sin() - 0.1).collect()).collect();
        let dense = SignMajority::new().aggregate(&g);
        let packed: Vec<SignNormVec> = g.iter().map(|v| SignNormVec::pack(v)).collect();
        let native = SignMajority::new().aggregate_batch(&GradientBatch::signnorm(&packed));
        for (a, b) in dense.gradient.iter().zip(&native.gradient) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn packed_ties_and_zeros_match_dense() {
        let g = vec![vec![1.0, -2.0, 0.0, f32::NAN], vec![-1.0, -1.0, 0.0, 1.0]];
        let dense = SignMajority::new().with_scale(2.0).aggregate(&g);
        let packed: Vec<SignNormVec> = g.iter().map(|v| SignNormVec::pack(v)).collect();
        let native = SignMajority::new().with_scale(2.0).aggregate_batch(&GradientBatch::signnorm(&packed));
        assert_eq!(dense.gradient, native.gradient);
        assert_eq!(native.gradient, vec![0.0, -2.0, 0.0, 2.0]);
    }
}
