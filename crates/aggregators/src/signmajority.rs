//! signSGD with majority vote (Bernstein et al., ICML'18).

use crate::{validate_gradients, AggregationOutput, Aggregator};

/// Element-wise sign majority vote, scaled by a configurable magnitude.
///
/// One of the sign-based related works the paper cites (\[22\], \[26\]): the
/// server aggregates only the sign of each coordinate. Majority voting is
/// inherently fault-tolerant below 50% Byzantine, at the cost of a
/// magnitude-free update (here scaled by `scale`, default the mean of the
/// input gradient norms divided by `sqrt(d)` so update norms stay
/// comparable to mean aggregation).
#[derive(Debug, Clone, Copy)]
pub struct SignMajority {
    scale: Option<f32>,
}

impl SignMajority {
    /// Creates a sign-majority rule with automatic scaling.
    pub fn new() -> Self {
        Self { scale: None }
    }

    /// Fixes the per-coordinate magnitude of the output.
    #[must_use]
    pub fn with_scale(mut self, scale: f32) -> Self {
        self.scale = Some(scale);
        self
    }
}

impl Default for SignMajority {
    fn default() -> Self {
        Self::new()
    }
}

impl Aggregator for SignMajority {
    fn aggregate(&mut self, gradients: &[Vec<f32>]) -> AggregationOutput {
        let dim = validate_gradients(gradients);
        let scale = self.scale.unwrap_or_else(|| {
            let mean_norm: f32 =
                gradients.iter().map(|g| sg_math::l2_norm(g)).sum::<f32>() / gradients.len() as f32;
            mean_norm / (dim as f32).sqrt()
        });
        let mut out = vec![0.0f32; dim];
        for (j, o) in out.iter_mut().enumerate() {
            let mut vote = 0i64;
            for g in gradients {
                if g[j] > 0.0 {
                    vote += 1;
                } else if g[j] < 0.0 {
                    vote -= 1;
                }
            }
            *o = scale * (vote.signum() as f32);
        }
        AggregationOutput::blended(out)
    }

    fn name(&self) -> &'static str {
        "SignSGD"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_direction_wins() {
        let g = vec![vec![1.0, -1.0], vec![2.0, -3.0], vec![-100.0, 100.0]];
        let out = SignMajority::new().with_scale(1.0).aggregate(&g);
        assert_eq!(out.gradient, vec![1.0, -1.0]);
    }

    #[test]
    fn tie_gives_zero() {
        let g = vec![vec![1.0], vec![-1.0]];
        let out = SignMajority::new().with_scale(1.0).aggregate(&g);
        assert_eq!(out.gradient, vec![0.0]);
    }

    #[test]
    fn auto_scale_is_positive() {
        let g = vec![vec![3.0, 4.0], vec![3.0, 4.0]];
        let out = SignMajority::new().aggregate(&g);
        assert!(out.gradient[0] > 0.0);
        assert_eq!(out.gradient[0], out.gradient[1]);
    }
}
