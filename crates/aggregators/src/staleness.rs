//! Staleness-aware down-weighting: an adapter over any aggregation rule.

use std::sync::Arc;

use crate::{AggregationOutput, Aggregator, GradientBatch};

/// Wraps any rule with per-message staleness damping for asynchronous
/// schedules.
///
/// Each message computed against a model `s` server steps old is scaled by
/// `1/√(1+s)` before the inner rule runs — the polynomial staleness weight
/// of async-SGD servers (Xie et al.'s staleness-aware async SGD; FedBuff
/// uses the same family). Fresh messages (`s = 0`) pass through unscaled,
/// so on a synchronous schedule the wrapper is exactly the inner rule.
///
/// # Examples
///
/// ```
/// use sg_aggregators::{Aggregator, GradientBatch, Mean, StalenessDamped};
///
/// let grads = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
/// let staleness = vec![0, 3];
/// let mut gar = StalenessDamped::new(Box::new(Mean::new()));
/// let out = gar.aggregate_batch(&GradientBatch::with_staleness(&grads, &staleness));
/// // The stale message contributes at half weight: (1 + 0.5) / 2.
/// assert!((out.gradient[0] - 0.75).abs() < 1e-6);
/// ```
pub struct StalenessDamped {
    inner: Box<dyn Aggregator>,
}

impl std::fmt::Debug for StalenessDamped {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StalenessDamped").field("inner", &self.inner.name()).finish()
    }
}

impl StalenessDamped {
    /// Wraps `inner` with staleness damping.
    pub fn new(inner: Box<dyn Aggregator>) -> Self {
        Self { inner }
    }

    /// The damping factor for a message `staleness` steps stale.
    pub fn weight(staleness: usize) -> f32 {
        1.0 / (1.0 + staleness as f32).sqrt()
    }
}

impl Aggregator for StalenessDamped {
    fn aggregate(&mut self, gradients: &[Vec<f32>]) -> AggregationOutput {
        self.inner.aggregate(gradients)
    }

    fn aggregate_batch(&mut self, batch: &GradientBatch<'_>) -> AggregationOutput {
        let Some(staleness) = batch.staleness else {
            // No metadata: pass the batch through untouched so the inner
            // rule sees the original representation (sign-native rules
            // stay packed).
            return self.inner.aggregate_batch(&GradientBatch { elems: batch.elems, staleness: None });
        };
        assert_eq!(staleness.len(), batch.elems.len(), "StalenessDamped: metadata length mismatch");
        if staleness.iter().all(|&s| s == 0) {
            return self.inner.aggregate_batch(&GradientBatch { elems: batch.elems, staleness: None });
        }
        // Damping rescales magnitudes, which a compressed representation
        // cannot carry per-coordinate — so it is defined on the batch's
        // documented dense form (a no-op materialization for dense
        // batches).
        let dense;
        let gradients: &[Vec<f32>] = match batch.dense_gradients() {
            Some(g) => g,
            None => {
                dense = batch.elems.to_dense();
                &dense
            }
        };
        let damped: Vec<Vec<f32>> = gradients
            .iter()
            .zip(staleness)
            .map(|(g, &s)| {
                let w = Self::weight(s);
                g.iter().map(|&x| x * w).collect()
            })
            .collect();
        self.inner.aggregate(&damped)
    }

    fn name(&self) -> &'static str {
        "StaleDamped"
    }

    fn observe_global(&mut self, params: &[f32]) {
        self.inner.observe_global(params);
    }

    fn set_executor(&mut self, executor: Arc<dyn sg_math::ParallelExecutor>) {
        self.inner.set_executor(executor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mean;

    fn wrapped() -> StalenessDamped {
        StalenessDamped::new(Box::new(Mean::new()))
    }

    #[test]
    fn fresh_batch_matches_inner_rule() {
        let g = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let stale = vec![0, 0];
        let a = wrapped().aggregate_batch(&GradientBatch::with_staleness(&g, &stale));
        let b = Mean::new().aggregate(&g);
        assert_eq!(a.gradient, b.gradient);
    }

    #[test]
    fn no_metadata_delegates_unchanged() {
        let g = vec![vec![2.0], vec![4.0]];
        let a = wrapped().aggregate_batch(&GradientBatch::synchronous(&g));
        assert_eq!(a.gradient, vec![3.0]);
    }

    #[test]
    fn stale_messages_are_down_weighted() {
        let g = vec![vec![1.0], vec![1.0]];
        let stale = vec![0, 8];
        let out = wrapped().aggregate_batch(&GradientBatch::with_staleness(&g, &stale));
        // Weights 1 and 1/3: mean = (1 + 1/3) / 2 = 2/3.
        assert!((out.gradient[0] - 2.0 / 3.0).abs() < 1e-6, "{}", out.gradient[0]);
    }

    #[test]
    fn weight_decays_monotonically() {
        assert_eq!(StalenessDamped::weight(0), 1.0);
        assert!(StalenessDamped::weight(1) > StalenessDamped::weight(4));
        assert!((StalenessDamped::weight(3) - 0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "metadata length mismatch")]
    fn ragged_metadata_rejected() {
        let g = vec![vec![1.0], vec![1.0]];
        let stale = vec![0];
        let _ = wrapped()
            .aggregate_batch(&GradientBatch { elems: crate::BatchElems::Dense(&g), staleness: Some(&stale) });
    }
}
