//! Adaptive white-box attack against SignGuard itself.
//!
//! The paper's conclusion leaves "white-box and adaptive attacks" as future
//! work; this module implements the natural candidate. The attacker knows
//! SignGuard clusters on *(positive, zero, negative)* sign proportions and
//! norm-filters on the median norm, so it crafts a gradient that:
//!
//! 1. keeps the sign of the honest mean on all but a small fraction `ρ` of
//!    coordinates — so its sign statistics sit inside the honest cluster;
//! 2. flips and amplifies the `ρ`-fraction of coordinates with the largest
//!    honest magnitude — maximal damage per flipped sign;
//! 3. rescales itself to the median honest norm — sailing through the norm
//!    filter and losing nothing to clipping.
//!
//! The ablation bench (`exp_ablation`) measures how much damage survives
//! each SignGuard variant, quantifying the residual attack surface.

use sg_math::vecops;

use crate::{Attack, AttackContext};

/// Sign-statistics-mimicking adaptive attack (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveSignMimicry {
    flip_fraction: f32,
}

impl AdaptiveSignMimicry {
    /// Creates the attack with the default 10% flip budget — comparable to
    /// the per-client spread of honest sign statistics, so the crafted
    /// features stay inside the honest cluster.
    pub fn new() -> Self {
        Self { flip_fraction: 0.1 }
    }

    /// Sets the fraction of coordinates whose sign is flipped.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < flip_fraction <= 1`.
    #[must_use]
    pub fn with_flip_fraction(mut self, flip_fraction: f32) -> Self {
        assert!(
            flip_fraction > 0.0 && flip_fraction <= 1.0,
            "AdaptiveSignMimicry: flip_fraction {flip_fraction} out of (0,1]"
        );
        self.flip_fraction = flip_fraction;
        self
    }
}

impl Default for AdaptiveSignMimicry {
    fn default() -> Self {
        Self::new()
    }
}

impl Attack for AdaptiveSignMimicry {
    fn craft(&mut self, ctx: &AttackContext<'_>) -> Vec<Vec<f32>> {
        assert!(ctx.byzantine_count() > 0, "AdaptiveSignMimicry: no Byzantine clients");
        let all = ctx.all_honest();
        let dim = all[0].len();
        let mu = vecops::mean_vector(&all, dim);

        // Median honest norm: the norm filter's reference point.
        let norms: Vec<f32> = all.iter().map(|g| sg_math::l2_norm(g)).collect();
        let median_norm = sg_math::median(&norms);

        // Flip the top-|μ| coordinates.
        let k = (((dim as f32) * self.flip_fraction).round() as usize).clamp(1, dim);
        let mut order: Vec<usize> = (0..dim).collect();
        order.sort_by(|&a, &b| mu[b].abs().total_cmp(&mu[a].abs()));
        let mut crafted = mu.clone();
        for &j in order.iter().take(k) {
            // Reverse and boost: the energy freed by the rescale below is
            // concentrated into the flipped coordinates.
            crafted[j] = -3.0 * mu[j];
        }
        // Rescale to the median norm so both norm defenses are satisfied.
        let cn = sg_math::l2_norm(&crafted).max(1e-12);
        vecops::scale_in_place(&mut crafted, median_norm / cn);

        vec![crafted; ctx.byzantine_count()]
    }

    fn name(&self) -> &'static str {
        "Adaptive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population(n: usize, d: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                (0..d)
                    .map(|j| {
                        let base = if j % 4 == 0 { -0.5 } else { 0.8 };
                        base + 0.1 * ((i * d + j) as f32 * 0.37).sin()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn crafted_norm_matches_median() {
        let benign = population(8, 400);
        let byz = population(2, 400);
        let ctx = AttackContext::new(&benign, &byz, 0);
        let out = AdaptiveSignMimicry::new().craft(&ctx);
        let norms: Vec<f32> = ctx.all_honest().iter().map(|g| sg_math::l2_norm(g)).collect();
        let med = sg_math::median(&norms);
        assert!((sg_math::l2_norm(&out[0]) - med).abs() < 1e-3);
    }

    #[test]
    fn sign_statistics_stay_close_to_honest() {
        let benign = population(8, 1000);
        let byz = population(2, 1000);
        let ctx = AttackContext::new(&benign, &byz, 0);
        let out = AdaptiveSignMimicry::new().craft(&ctx);
        let frac_pos = |v: &[f32]| {
            let (p, z, n) = vecops::sign_counts(v);
            p as f32 / (p + z + n) as f32
        };
        let honest_pos = frac_pos(&benign[0]);
        let crafted_pos = frac_pos(&out[0]);
        // Within ~2x the flip budget of the honest statistics.
        assert!((honest_pos - crafted_pos).abs() <= 0.2, "honest {honest_pos} crafted {crafted_pos}");
    }

    #[test]
    fn attack_reverses_the_heaviest_coordinates() {
        let benign = population(8, 100);
        let byz = population(2, 100);
        let ctx = AttackContext::new(&benign, &byz, 0);
        let all = ctx.all_honest();
        let mu = vecops::mean_vector(&all, 100);
        let out = AdaptiveSignMimicry::new().craft(&ctx);
        // The single largest-|μ| coordinate must have flipped sign.
        let top = (0..100).max_by(|&a, &b| mu[a].abs().total_cmp(&mu[b].abs())).expect("non-empty");
        assert!(out[0][top] * mu[top] < 0.0, "top coordinate not reversed");
    }

    #[test]
    fn flip_budget_is_respected() {
        let benign = population(10, 500);
        let byz = population(2, 500);
        let ctx = AttackContext::new(&benign, &byz, 0);
        let all = ctx.all_honest();
        let mu = vecops::mean_vector(&all, 500);
        let out = AdaptiveSignMimicry::new().with_flip_fraction(0.05).craft(&ctx);
        let flipped = out[0].iter().zip(&mu).filter(|(&c, &m)| c * m < 0.0).count();
        assert!(flipped <= 25 + 5, "flipped {flipped} of 500");
    }
}
