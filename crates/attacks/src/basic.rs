//! Simple attacks: random Gaussian, additive noise, sign flip, label flip,
//! scaled reverse.

use rand::rngs::StdRng;
use sg_math::{seeded_rng, NormalSampler};

use crate::{Attack, AttackContext};

/// Random attack: each Byzantine client sends `N(μ, σ²I)` noise instead of
/// a gradient. Paper default: `μ = 0`, `σ = 0.5`.
#[derive(Debug)]
pub struct RandomAttack {
    sampler: NormalSampler,
    rng: StdRng,
}

impl RandomAttack {
    /// Creates the paper-default random attack (`μ = 0`, `σ = 0.5`).
    pub fn new() -> Self {
        Self::with_params(0.0, 0.5, 0xa77ac)
    }

    /// Creates a random attack with explicit Gaussian parameters and seed.
    pub fn with_params(mean: f64, std: f64, seed: u64) -> Self {
        Self { sampler: NormalSampler::new(mean, std), rng: seeded_rng(seed) }
    }
}

impl Default for RandomAttack {
    fn default() -> Self {
        Self::new()
    }
}

impl Attack for RandomAttack {
    fn craft(&mut self, ctx: &AttackContext<'_>) -> Vec<Vec<f32>> {
        let dim = ctx.byzantine_honest.first().map_or(0, Vec::len);
        (0..ctx.byzantine_count()).map(|_| self.sampler.sample_vec(&mut self.rng, dim)).collect()
    }

    fn name(&self) -> &'static str {
        "Random"
    }
}

/// Noise attack: each Byzantine client perturbs its own honest gradient
/// with Gaussian noise, `g_m = g_b + N(μ, σ²I)`. Paper default matches the
/// random attack's Gaussian.
#[derive(Debug)]
pub struct NoiseAttack {
    sampler: NormalSampler,
    rng: StdRng,
}

impl NoiseAttack {
    /// Creates the paper-default noise attack (`μ = 0`, `σ = 0.5`).
    pub fn new() -> Self {
        Self::with_params(0.0, 0.5, 0x5e15e)
    }

    /// Creates a noise attack with explicit Gaussian parameters and seed.
    pub fn with_params(mean: f64, std: f64, seed: u64) -> Self {
        Self { sampler: NormalSampler::new(mean, std), rng: seeded_rng(seed) }
    }
}

impl Default for NoiseAttack {
    fn default() -> Self {
        Self::new()
    }
}

impl Attack for NoiseAttack {
    fn craft(&mut self, ctx: &AttackContext<'_>) -> Vec<Vec<f32>> {
        ctx.byzantine_honest
            .iter()
            .map(|g| {
                let noise = self.sampler.sample_vec(&mut self.rng, g.len());
                sg_math::vecops::add(g, &noise)
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "Noise"
    }
}

/// Sign-flipping attack: `g_m = -g_b` (reverse gradient without scaling).
#[derive(Debug, Clone, Copy, Default)]
pub struct SignFlip;

impl SignFlip {
    /// Creates the sign-flip attack.
    pub fn new() -> Self {
        Self
    }
}

impl Attack for SignFlip {
    fn craft(&mut self, ctx: &AttackContext<'_>) -> Vec<Vec<f32>> {
        ctx.byzantine_honest.iter().map(|g| sg_math::vecops::scale(g, -1.0)).collect()
    }

    fn name(&self) -> &'static str {
        "Sign-flip"
    }
}

/// Reverse attack with scaling (DETOX \[34\], used in the paper's Table III
/// ablation): `g_m = -r · g_b` with `r` chosen against the defense's norm
/// bound (or a large value like 100 when no norm defense is present).
#[derive(Debug, Clone, Copy)]
pub struct ReverseScaling {
    scale: f32,
}

impl ReverseScaling {
    /// Creates a reverse attack with scaling factor `r > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn new(scale: f32) -> Self {
        assert!(scale > 0.0, "ReverseScaling: scale must be positive");
        Self { scale }
    }
}

impl Attack for ReverseScaling {
    fn craft(&mut self, ctx: &AttackContext<'_>) -> Vec<Vec<f32>> {
        ctx.byzantine_honest.iter().map(|g| sg_math::vecops::scale(g, -self.scale)).collect()
    }

    fn name(&self) -> &'static str {
        "Reverse"
    }
}

/// Label-flipping data poison: Byzantine clients train on labels remapped
/// as `l → C − 1 − l`. The flipping happens inside the federated client
/// (see `sg-fl`); `craft` passes the poisoned gradients through.
#[derive(Debug, Clone, Copy, Default)]
pub struct LabelFlip;

impl LabelFlip {
    /// Creates the label-flip attack marker.
    pub fn new() -> Self {
        Self
    }
}

impl Attack for LabelFlip {
    fn craft(&mut self, ctx: &AttackContext<'_>) -> Vec<Vec<f32>> {
        ctx.byzantine_honest.to_vec()
    }

    fn name(&self) -> &'static str {
        "Label-flip"
    }

    fn is_data_poisoning(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_fixture(benign: &[Vec<f32>], byz: &[Vec<f32>]) -> AttackContext<'static> {
        // Leak for test brevity; fine in unit tests.
        AttackContext::new(
            Box::leak(benign.to_vec().into_boxed_slice()),
            Box::leak(byz.to_vec().into_boxed_slice()),
            0,
        )
    }

    #[test]
    fn random_attack_statistics() {
        let byz = vec![vec![0.0; 10_000]; 2];
        let ctx = ctx_fixture(&[], &byz);
        let out = RandomAttack::new().craft(&ctx);
        assert_eq!(out.len(), 2);
        let m = sg_math::mean(&out[0]);
        let s = sg_math::std_dev(&out[0]);
        assert!(m.abs() < 0.05, "mean {m}");
        assert!((s - 0.5).abs() < 0.05, "std {s}");
    }

    #[test]
    fn noise_attack_stays_near_honest() {
        let byz = vec![vec![5.0; 10_000]];
        let ctx = ctx_fixture(&[], &byz);
        let out = NoiseAttack::new().craft(&ctx);
        let m = sg_math::mean(&out[0]);
        assert!((m - 5.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn sign_flip_negates() {
        let byz = vec![vec![1.0, -2.0, 0.0]];
        let ctx = ctx_fixture(&[], &byz);
        assert_eq!(SignFlip::new().craft(&ctx)[0], vec![-1.0, 2.0, 0.0]);
    }

    #[test]
    fn reverse_scales_and_negates() {
        let byz = vec![vec![1.0, -2.0]];
        let ctx = ctx_fixture(&[], &byz);
        assert_eq!(ReverseScaling::new(3.0).craft(&ctx)[0], vec![-3.0, 6.0]);
    }

    #[test]
    fn label_flip_is_data_poisoning_passthrough() {
        let byz = vec![vec![7.0]];
        let ctx = ctx_fixture(&[], &byz);
        let mut a = LabelFlip::new();
        assert!(a.is_data_poisoning());
        assert_eq!(a.craft(&ctx)[0], vec![7.0]);
    }
}
