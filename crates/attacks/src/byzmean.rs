//! The paper's ByzMean hybrid attack (Section III, Eq. (8)).

use crate::lie::Lie;
use crate::{Attack, AttackContext};

/// ByzMean: makes the *mean of all gradients* equal an arbitrary target.
///
/// The Byzantine clients split into two sets: `m1 = ⌊m/2⌋` clients send the
/// target gradient `g_m1` (by default crafted by [`Lie`], as in the paper's
/// experiments), and the remaining `m2 = m − m1` send
/// `g_m2 = ((n − m1)·g_m1 − Σ_benign g) / m2`,
/// so that the batch mean is exactly `g_m1`. Any inner attack can provide
/// the target, which is why the paper calls it a hybrid that strengthens
/// every existing attack.
pub struct ByzMean {
    inner: Box<dyn Attack>,
}

impl std::fmt::Debug for ByzMean {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ByzMean").field("inner", &self.inner.name()).finish()
    }
}

impl ByzMean {
    /// Creates ByzMean with the paper default target (LIE).
    pub fn new() -> Self {
        Self { inner: Box::new(Lie::new()) }
    }

    /// Creates ByzMean steering the mean towards `inner`'s crafted gradient.
    pub fn with_inner(inner: Box<dyn Attack>) -> Self {
        Self { inner }
    }
}

impl Default for ByzMean {
    fn default() -> Self {
        Self::new()
    }
}

impl Attack for ByzMean {
    fn craft(&mut self, ctx: &AttackContext<'_>) -> Vec<Vec<f32>> {
        let m = ctx.byzantine_count();
        assert!(m > 0, "ByzMean: no Byzantine clients");
        let n = ctx.total_clients();
        let dim = ctx.byzantine_honest[0].len();

        // Target gradient from the inner attack (its first malicious vector).
        let gm1 = self.inner.craft(ctx).into_iter().next().expect("inner attack returned no gradients");

        let m1 = m / 2;
        let m2 = m - m1;
        if m2 == 0 {
            return vec![gm1; m];
        }
        // g_m2 = ((n - m1) * g_m1 - sum_benign) / m2.
        let mut sum_benign = vec![0.0f32; dim];
        for g in ctx.benign {
            sg_math::vecops::axpy(1.0, g, &mut sum_benign);
        }
        let gm2: Vec<f32> =
            gm1.iter().zip(&sum_benign).map(|(&t, &s)| ((n - m1) as f32 * t - s) / m2 as f32).collect();

        let mut out = Vec::with_capacity(m);
        out.extend(std::iter::repeat_with(|| gm1.clone()).take(m1));
        out.extend(std::iter::repeat_with(|| gm2.clone()).take(m2));
        out
    }

    fn name(&self) -> &'static str {
        "ByzMean"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::RandomAttack;

    #[test]
    fn mean_of_all_gradients_equals_target() {
        let benign: Vec<Vec<f32>> = (0..8).map(|i| vec![i as f32, 1.0, -0.5]).collect();
        let byz: Vec<Vec<f32>> = (0..2).map(|_| vec![0.0, 0.0, 0.0]).collect();
        let ctx = AttackContext::new(&benign, &byz, 0);

        let mut attack = ByzMean::new();
        let malicious = attack.craft(&ctx);
        assert_eq!(malicious.len(), 2);
        let target = &malicious[0]; // m1 = 1 sends the target

        // Combined mean over benign + malicious must equal the target.
        let mut all: Vec<Vec<f32>> = malicious.clone();
        all.extend(benign.clone());
        let mean = sg_math::vecops::mean_vector(&all, 3);
        for (a, b) in mean.iter().zip(target) {
            assert!((a - b).abs() < 1e-3, "mean {a} target {b}");
        }
    }

    #[test]
    fn works_with_random_inner() {
        let benign: Vec<Vec<f32>> = (0..6).map(|i| vec![(i as f32).cos(); 4]).collect();
        let byz = vec![vec![0.0; 4]; 4];
        let ctx = AttackContext::new(&benign, &byz, 0);
        let mut attack = ByzMean::with_inner(Box::new(RandomAttack::new()));
        let out = attack.craft(&ctx);
        assert_eq!(out.len(), 4);
        // m1 = 2 identical targets, m2 = 2 identical compensators.
        assert_eq!(out[0], out[1]);
        assert_eq!(out[2], out[3]);
        assert_ne!(out[0], out[2]);
    }

    #[test]
    fn single_byzantine_sends_compensator() {
        // m = 1 => m1 = 0, m2 = 1: the lone attacker must steer the mean alone.
        let benign = vec![vec![2.0], vec![4.0]];
        let byz = vec![vec![0.0]];
        let ctx = AttackContext::new(&benign, &byz, 0);
        let mut attack = ByzMean::with_inner(Box::new(crate::basic::SignFlip::new()));
        let out = attack.craft(&ctx);
        assert_eq!(out.len(), 1);
        assert!(out[0][0].is_finite());
    }
}
