//! Model-poisoning attacks from the SignGuard paper (Section V-B).
//!
//! Simple attacks: [`RandomAttack`], [`NoiseAttack`], [`SignFlip`],
//! [`LabelFlip`] (a data poison executed inside the client),
//! [`ReverseScaling`] (the ablation's scaled sign-flip).
//!
//! State-of-the-art attacks: [`Lie`] (Little is Enough, Baruch et al.),
//! [`MinMax`] / [`MinSum`] (Shejwalkar & Houmansadr), and the paper's own
//! hybrid [`ByzMean`] (Section III) which steers the batch mean to an
//! arbitrary target gradient.
//!
//! The adversary is the paper's strongest threat model: full knowledge of
//! every honest gradient and collusion among all Byzantine clients.
//!
//! # Examples
//!
//! ```
//! use sg_attacks::{Attack, AttackContext, SignFlip};
//!
//! let benign = vec![vec![1.0, -2.0]];
//! let byz_honest = vec![vec![0.5, -1.0]];
//! let ctx = AttackContext::new(&benign, &byz_honest, 0);
//! let malicious = SignFlip::new().craft(&ctx);
//! assert_eq!(malicious[0], vec![-0.5, 1.0]);
//! ```

mod adaptive;
mod basic;
mod byzmean;
mod lie;
mod minmax;
mod time_varying;

pub use adaptive::AdaptiveSignMimicry;
pub use basic::{LabelFlip, NoiseAttack, RandomAttack, ReverseScaling, SignFlip};
pub use byzmean::ByzMean;
pub use lie::{lie_z_max, Lie};
pub use minmax::{MinMax, MinSum};
pub use time_varying::TimeVarying;

/// What the adversary sees when crafting a round's malicious gradients.
#[derive(Debug, Clone, Copy)]
pub struct AttackContext<'a> {
    /// Honest gradients of the benign clients this round.
    pub benign: &'a [Vec<f32>],
    /// Honest gradients the Byzantine clients computed on their own data
    /// (they hold real data too; several attacks perturb these).
    pub byzantine_honest: &'a [Vec<f32>],
    /// Training round index (time-varying strategies key off this).
    pub round: usize,
    /// Arrival view under asynchronous schedules: per-message staleness in
    /// server steps for the batch about to be aggregated — the first
    /// `byzantine_count()` entries describe the Byzantine messages, the
    /// rest the benign ones. Empty on synchronous rounds, where the
    /// adversary learns nothing beyond the gradients themselves; adaptive
    /// attacks can exploit it to, e.g., mimic the freshest honest updates.
    pub staleness: &'a [usize],
}

impl<'a> AttackContext<'a> {
    /// A synchronous-round context (no arrival metadata).
    pub fn new(benign: &'a [Vec<f32>], byzantine_honest: &'a [Vec<f32>], round: usize) -> Self {
        Self { benign, byzantine_honest, round, staleness: &[] }
    }

    /// A context carrying the async arrival view (per-message staleness,
    /// Byzantine messages first).
    ///
    /// # Panics
    ///
    /// Panics if `staleness` does not cover every message of the batch.
    pub fn with_staleness(
        benign: &'a [Vec<f32>],
        byzantine_honest: &'a [Vec<f32>],
        round: usize,
        staleness: &'a [usize],
    ) -> Self {
        assert_eq!(
            staleness.len(),
            benign.len() + byzantine_honest.len(),
            "AttackContext: staleness must cover every message"
        );
        Self { benign, byzantine_honest, round, staleness }
    }

    /// Total number of clients `n`.
    pub fn total_clients(&self) -> usize {
        self.benign.len() + self.byzantine_honest.len()
    }

    /// Number of Byzantine clients `m`.
    pub fn byzantine_count(&self) -> usize {
        self.byzantine_honest.len()
    }

    /// Staleness of the `i`-th Byzantine message, `0` on synchronous
    /// rounds (no arrival view ⇒ every message is fresh).
    pub fn byzantine_staleness(&self, i: usize) -> usize {
        self.staleness.get(i).copied().unwrap_or(0)
    }

    /// Staleness of the `i`-th benign message, `0` on synchronous rounds.
    pub fn benign_staleness(&self, i: usize) -> usize {
        self.staleness.get(self.byzantine_count() + i).copied().unwrap_or(0)
    }

    /// All honest gradients (benign + Byzantine-held), cloned into one
    /// population — the estimate set for full-knowledge attacks.
    pub fn all_honest(&self) -> Vec<Vec<f32>> {
        let mut all = Vec::with_capacity(self.total_clients());
        all.extend_from_slice(self.byzantine_honest);
        all.extend_from_slice(self.benign);
        all
    }
}

/// A model-poisoning attack.
pub trait Attack {
    /// Produces the `m` malicious gradients for this round
    /// (`m = ctx.byzantine_count()`).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `ctx` has no Byzantine clients.
    fn craft(&mut self, ctx: &AttackContext<'_>) -> Vec<Vec<f32>>;

    /// Attack name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// `true` for data-poisoning attacks (label flipping) that corrupt
    /// client-side training instead of fabricating gradients; the federated
    /// simulator then flips labels inside the Byzantine clients and `craft`
    /// passes their (poisoned) gradients through unchanged.
    fn is_data_poisoning(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_counts() {
        let benign = vec![vec![0.0]; 7];
        let byz = vec![vec![0.0]; 3];
        let ctx = AttackContext::new(&benign, &byz, 0);
        assert_eq!(ctx.total_clients(), 10);
        assert_eq!(ctx.byzantine_count(), 3);
        assert_eq!(ctx.all_honest().len(), 10);
    }

    #[test]
    fn synchronous_context_has_fresh_view() {
        let benign = vec![vec![0.0]; 2];
        let byz = vec![vec![0.0]; 1];
        let ctx = AttackContext::new(&benign, &byz, 4);
        assert!(ctx.staleness.is_empty());
        assert_eq!(ctx.byzantine_staleness(0), 0);
        assert_eq!(ctx.benign_staleness(1), 0);
    }

    #[test]
    fn staleness_view_splits_byzantine_first() {
        let benign = vec![vec![0.0]; 2];
        let byz = vec![vec![0.0]; 1];
        let stale = vec![5, 0, 2];
        let ctx = AttackContext::with_staleness(&benign, &byz, 9, &stale);
        assert_eq!(ctx.byzantine_staleness(0), 5);
        assert_eq!(ctx.benign_staleness(0), 0);
        assert_eq!(ctx.benign_staleness(1), 2);
    }

    #[test]
    #[should_panic(expected = "staleness must cover")]
    fn short_staleness_rejected() {
        let benign = vec![vec![0.0]; 2];
        let byz = vec![vec![0.0]; 1];
        let stale = vec![1];
        let _ = AttackContext::with_staleness(&benign, &byz, 0, &stale);
    }
}
