//! The Little-is-Enough attack (Baruch et al., NeurIPS'19), Eq. (1)–(2) of
//! the SignGuard paper.

use sg_math::{normal_quantile, vecops};

use crate::{Attack, AttackContext};

/// Computes the LIE attack factor `z_max` of Eq. (2):
/// `z_max = max_z { φ(z) < (n − ⌊n/2 + 1⌋) / (n − m) }`.
///
/// # Panics
///
/// Panics if `n == 0`, `m >= n`, or the supremum probability leaves the
/// open interval `(0, 1)` (which happens only for degenerate `n`, `m`).
pub fn lie_z_max(n: usize, m: usize) -> f64 {
    assert!(n > 0 && m < n, "lie_z_max: need 0 < n and m < n, got n={n} m={m}");
    let s = (n as f64 - (n as f64 / 2.0 + 1.0).floor()) / (n - m) as f64;
    assert!(s > 0.0 && s < 1.0, "lie_z_max: degenerate supremum {s} for n={n} m={m}");
    normal_quantile(s)
}

/// Little is Enough: every Byzantine client sends
/// `(g_m)_j = μ_j − z·σ_j`, where `μ`, `σ` are the coordinate-wise mean and
/// standard deviation of the honest gradients.
///
/// Small `z` keeps the malicious gradient statistically inside the honest
/// population (Proposition 1), while still dragging many coordinates' signs
/// negative (the paper's Fig. 2 observation that motivates SignGuard).
#[derive(Debug, Clone, Copy)]
pub struct Lie {
    z: Option<f64>,
}

impl Lie {
    /// Creates LIE with the paper's experimental default `z = 0.3`.
    pub fn new() -> Self {
        Self { z: Some(0.3) }
    }

    /// Creates LIE with a fixed attack factor.
    pub fn with_z(z: f64) -> Self {
        Self { z: Some(z) }
    }

    /// Creates LIE that derives `z_max` from the population via Eq. (2).
    pub fn auto() -> Self {
        Self { z: None }
    }

    /// The crafted gradient for a given honest population.
    pub fn craft_single(&self, all_honest: &[Vec<f32>], n: usize, m: usize) -> Vec<f32> {
        let dim = all_honest[0].len();
        let mu = vecops::mean_vector(all_honest, dim);
        let sigma = vecops::std_vector(all_honest, dim);
        let z = self.z.unwrap_or_else(|| lie_z_max(n, m)) as f32;
        mu.iter().zip(&sigma).map(|(&u, &s)| u - z * s).collect()
    }
}

impl Default for Lie {
    fn default() -> Self {
        Self::new()
    }
}

impl Attack for Lie {
    fn craft(&mut self, ctx: &AttackContext<'_>) -> Vec<Vec<f32>> {
        assert!(ctx.byzantine_count() > 0, "Lie: no Byzantine clients");
        let all = ctx.all_honest();
        let g = self.craft_single(&all, ctx.total_clients(), ctx.byzantine_count());
        vec![g; ctx.byzantine_count()]
    }

    fn name(&self) -> &'static str {
        "LIE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_math::normal_cdf;

    #[test]
    fn z_max_matches_cdf_bound() {
        // For n = 50, m = 10: s = (50 - 26)/40 = 0.6.
        let z = lie_z_max(50, 10);
        let s = normal_cdf(z);
        assert!((s - 0.6).abs() < 1e-6, "s={s}");
        assert!(z > 0.2 && z < 0.3, "z={z}"); // Φ⁻¹(0.6) ≈ 0.2533
    }

    #[test]
    fn z_max_grows_with_byzantine_fraction() {
        let z10 = lie_z_max(50, 5);
        let z20 = lie_z_max(50, 10);
        let z40 = lie_z_max(50, 20);
        assert!(z10 < z20 && z20 < z40, "{z10} {z20} {z40}");
    }

    #[test]
    #[should_panic(expected = "lie_z_max")]
    fn z_max_rejects_m_geq_n() {
        let _ = lie_z_max(5, 5);
    }

    #[test]
    fn crafted_gradient_is_mu_minus_z_sigma() {
        // Two honest gradients: mean [1, 0], std [1, 2].
        let honest = vec![vec![0.0, -2.0], vec![2.0, 2.0]];
        let lie = Lie::with_z(0.5);
        let g = lie.craft_single(&honest, 10, 2);
        assert!((g[0] - (1.0 - 0.5)).abs() < 1e-5);
        assert!((g[1] - (0.0 - 1.0)).abs() < 1e-5);
    }

    #[test]
    fn all_byzantine_send_identical() {
        let benign: Vec<Vec<f32>> = (0..8).map(|i| vec![i as f32, 1.0]).collect();
        let byz: Vec<Vec<f32>> = (0..2).map(|i| vec![i as f32, 1.0]).collect();
        let ctx = AttackContext::new(&benign, &byz, 0);
        let out = Lie::new().craft(&ctx);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], out[1]);
    }

    #[test]
    fn small_z_keeps_malicious_gradient_close() {
        // Distance of the LIE gradient to the mean is z * ||sigma||, which
        // for small z is below the typical honest distance (Proposition 1).
        let honest: Vec<Vec<f32>> =
            (0..20).map(|i| (0..50).map(|j| ((i * 53 + j * 17) as f32).sin()).collect()).collect();
        let dim = 50;
        let mu = vecops::mean_vector(&honest, dim);
        let lie = Lie::with_z(0.3);
        let gm = lie.craft_single(&honest, 25, 5);
        let d_mal = sg_math::l2_distance(&gm, &mu);
        let mean_honest_dist: f32 =
            honest.iter().map(|g| sg_math::l2_distance(g, &mu)).sum::<f32>() / honest.len() as f32;
        assert!(d_mal < mean_honest_dist, "malicious {d_mal} vs honest avg {mean_honest_dist}");
    }
}
