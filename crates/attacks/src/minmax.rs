//! Min-Max and Min-Sum attacks (Shejwalkar & Houmansadr, NDSS'21),
//! Eq. (13)–(15) of the SignGuard paper.

use sg_math::vecops;

use crate::{Attack, AttackContext};

/// Perturbation direction for the Min-Max / Min-Sum attacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Perturbation {
    /// `∇p = −std(g)`, the paper's default (inverse standard deviation).
    InverseStd,
    /// `∇p = −mean(g)/‖mean(g)‖`, the inverse unit gradient.
    InverseUnit,
}

fn perturbation(all: &[Vec<f32>], dim: usize, kind: Perturbation) -> Vec<f32> {
    match kind {
        Perturbation::InverseStd => vecops::scale(&vecops::std_vector(all, dim), -1.0),
        Perturbation::InverseUnit => {
            let mu = vecops::mean_vector(all, dim);
            let n = sg_math::l2_norm(&mu).max(1e-12);
            vecops::scale(&mu, -1.0 / n)
        }
    }
}

/// Finds the largest `γ ≥ 0` with `constraint(γ)` true, by doubling then
/// bisection. Assumes the constraint is monotone (true for small γ).
fn max_gamma(constraint: impl Fn(f32) -> bool) -> f32 {
    if !constraint(0.0) {
        return 0.0;
    }
    let mut hi = 1.0f32;
    let mut doublings = 0;
    while constraint(hi) && doublings < 40 {
        hi *= 2.0;
        doublings += 1;
    }
    let mut lo = if doublings == 0 { 0.0 } else { hi / 2.0 };
    for _ in 0..50 {
        let mid = 0.5 * (lo + hi);
        if constraint(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Min-Max attack: `g_m = mean(g) + γ·∇p` with the largest `γ` such that
/// the malicious gradient's distance to every honest gradient stays within
/// the maximum honest-to-honest distance (Eq. (14)). All Byzantine clients
/// send the same vector.
#[derive(Debug, Clone, Copy)]
pub struct MinMax {
    kind: Perturbation,
}

impl MinMax {
    /// Creates Min-Max with the paper-default inverse-std perturbation.
    pub fn new() -> Self {
        Self { kind: Perturbation::InverseStd }
    }

    /// Chooses the perturbation direction.
    #[must_use]
    pub fn with_perturbation(mut self, kind: Perturbation) -> Self {
        self.kind = kind;
        self
    }
}

impl Default for MinMax {
    fn default() -> Self {
        Self::new()
    }
}

impl Attack for MinMax {
    fn craft(&mut self, ctx: &AttackContext<'_>) -> Vec<Vec<f32>> {
        assert!(ctx.byzantine_count() > 0, "MinMax: no Byzantine clients");
        let all = ctx.all_honest();
        let dim = all[0].len();
        let mu = vecops::mean_vector(&all, dim);
        let p = perturbation(&all, dim, self.kind);

        // Threshold: max pairwise distance among honest gradients.
        let mut max_pair = 0.0f32;
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                max_pair = max_pair.max(vecops::l2_distance(&all[i], &all[j]));
            }
        }
        let gamma = max_gamma(|g| {
            let gm: Vec<f32> = mu.iter().zip(&p).map(|(&m, &pp)| m + g * pp).collect();
            all.iter().map(|h| vecops::l2_distance(&gm, h)).fold(0.0, f32::max) <= max_pair
        });
        let gm: Vec<f32> = mu.iter().zip(&p).map(|(&m, &pp)| m + gamma * pp).collect();
        vec![gm; ctx.byzantine_count()]
    }

    fn name(&self) -> &'static str {
        "Min-Max"
    }
}

/// Min-Sum attack: like [`MinMax`] but the constraint bounds the *sum* of
/// squared distances from the malicious gradient to all honest gradients by
/// the worst honest sum (Eq. (15)).
#[derive(Debug, Clone, Copy)]
pub struct MinSum {
    kind: Perturbation,
}

impl MinSum {
    /// Creates Min-Sum with the paper-default inverse-std perturbation.
    pub fn new() -> Self {
        Self { kind: Perturbation::InverseStd }
    }

    /// Chooses the perturbation direction.
    #[must_use]
    pub fn with_perturbation(mut self, kind: Perturbation) -> Self {
        self.kind = kind;
        self
    }
}

impl Default for MinSum {
    fn default() -> Self {
        Self::new()
    }
}

impl Attack for MinSum {
    fn craft(&mut self, ctx: &AttackContext<'_>) -> Vec<Vec<f32>> {
        assert!(ctx.byzantine_count() > 0, "MinSum: no Byzantine clients");
        let all = ctx.all_honest();
        let dim = all[0].len();
        let mu = vecops::mean_vector(&all, dim);
        let p = perturbation(&all, dim, self.kind);

        // Threshold: max over honest i of sum_j ||g_i - g_j||^2.
        let mut max_sum = 0.0f32;
        for i in 0..all.len() {
            let s: f32 = all.iter().map(|g| vecops::l2_distance_sq(&all[i], g)).sum();
            max_sum = max_sum.max(s);
        }
        let gamma = max_gamma(|g| {
            let gm: Vec<f32> = mu.iter().zip(&p).map(|(&m, &pp)| m + g * pp).collect();
            all.iter().map(|h| vecops::l2_distance_sq(&gm, h)).sum::<f32>() <= max_sum
        });
        let gm: Vec<f32> = mu.iter().zip(&p).map(|(&m, &pp)| m + gamma * pp).collect();
        vec![gm; ctx.byzantine_count()]
    }

    fn name(&self) -> &'static str {
        "Min-Sum"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population(n: usize, d: usize) -> Vec<Vec<f32>> {
        (0..n).map(|i| (0..d).map(|j| 1.0 + 0.3 * ((i * 31 + j * 7) as f32).sin()).collect()).collect()
    }

    #[test]
    fn minmax_satisfies_distance_constraint() {
        let benign = population(10, 20);
        let byz = population(3, 20);
        let ctx = AttackContext::new(&benign, &byz, 0);
        let out = MinMax::new().craft(&ctx);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], out[2]);

        let all = ctx.all_honest();
        let mut max_pair = 0.0f32;
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                max_pair = max_pair.max(vecops::l2_distance(&all[i], &all[j]));
            }
        }
        let worst = all.iter().map(|h| vecops::l2_distance(&out[0], h)).fold(0.0, f32::max);
        assert!(worst <= max_pair * 1.01, "worst {worst} > bound {max_pair}");
    }

    #[test]
    fn minsum_satisfies_sum_constraint() {
        let benign = population(8, 16);
        let byz = population(2, 16);
        let ctx = AttackContext::new(&benign, &byz, 0);
        let out = MinSum::new().craft(&ctx);

        let all = ctx.all_honest();
        let mut max_sum = 0.0f32;
        for i in 0..all.len() {
            let s: f32 = all.iter().map(|g| vecops::l2_distance_sq(&all[i], g)).sum();
            max_sum = max_sum.max(s);
        }
        let s: f32 = all.iter().map(|h| vecops::l2_distance_sq(&out[0], h)).sum();
        assert!(s <= max_sum * 1.01, "sum {s} > bound {max_sum}");
    }

    #[test]
    fn attack_actually_deviates_from_mean() {
        let benign = population(10, 20);
        let byz = population(3, 20);
        let ctx = AttackContext::new(&benign, &byz, 0);
        let all = ctx.all_honest();
        let mu = vecops::mean_vector(&all, 20);
        let out = MinMax::new().craft(&ctx);
        let dist = vecops::l2_distance(&out[0], &mu);
        assert!(dist > 0.01, "gamma collapsed to zero: {dist}");
    }

    #[test]
    fn identical_honest_gradients_zero_gamma() {
        // With zero honest spread the constraints force gamma -> 0, so the
        // malicious gradient equals the mean.
        let benign = vec![vec![1.0, 2.0]; 5];
        let byz = vec![vec![1.0, 2.0]; 2];
        let ctx = AttackContext::new(&benign, &byz, 0);
        let out = MinMax::new().craft(&ctx);
        assert!((out[0][0] - 1.0).abs() < 1e-4);
        assert!((out[0][1] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn inverse_unit_perturbation_supported() {
        let benign = population(6, 10);
        let byz = population(2, 10);
        let ctx = AttackContext::new(&benign, &byz, 0);
        let out = MinMax::new().with_perturbation(Perturbation::InverseUnit).craft(&ctx);
        assert!(out[0].iter().all(|x| x.is_finite()));
    }
}
