//! Time-varying attack strategy (paper Fig. 5): re-sample the attack each
//! epoch, including a "no attack" behaviour.

use rand::rngs::StdRng;
use rand::Rng;
use sg_math::seeded_rng;

use crate::{Attack, AttackContext};

/// Randomly switches between a pool of attacks (and optionally no attack)
/// once per epoch.
///
/// The paper's Fig. 5 evaluation changes the attack at every training epoch;
/// this wrapper re-samples whenever `round / rounds_per_epoch` advances.
pub struct TimeVarying {
    attacks: Vec<Box<dyn Attack>>,
    include_no_attack: bool,
    rounds_per_epoch: usize,
    rng: StdRng,
    current_epoch: Option<usize>,
    current_choice: usize, // attacks.len() means "no attack"
}

impl std::fmt::Debug for TimeVarying {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimeVarying")
            .field("attacks", &self.attacks.iter().map(|a| a.name()).collect::<Vec<_>>())
            .field("include_no_attack", &self.include_no_attack)
            .field("rounds_per_epoch", &self.rounds_per_epoch)
            .finish()
    }
}

impl TimeVarying {
    /// Creates a time-varying strategy over `attacks`.
    ///
    /// # Panics
    ///
    /// Panics if `attacks` is empty or `rounds_per_epoch == 0`.
    pub fn new(
        attacks: Vec<Box<dyn Attack>>,
        include_no_attack: bool,
        rounds_per_epoch: usize,
        seed: u64,
    ) -> Self {
        assert!(!attacks.is_empty(), "TimeVarying: empty attack pool");
        assert!(rounds_per_epoch > 0, "TimeVarying: rounds_per_epoch must be positive");
        Self {
            attacks,
            include_no_attack,
            rounds_per_epoch,
            rng: seeded_rng(seed),
            current_epoch: None,
            current_choice: 0,
        }
    }

    /// The name of the attack active for the most recent `craft` call
    /// (`"None"` when behaving honestly).
    pub fn active_attack(&self) -> &'static str {
        if self.current_choice == self.attacks.len() {
            "None"
        } else {
            self.attacks[self.current_choice].name()
        }
    }
}

impl Attack for TimeVarying {
    fn craft(&mut self, ctx: &AttackContext<'_>) -> Vec<Vec<f32>> {
        let epoch = ctx.round / self.rounds_per_epoch;
        if self.current_epoch != Some(epoch) {
            self.current_epoch = Some(epoch);
            let options = self.attacks.len() + usize::from(self.include_no_attack);
            self.current_choice = self.rng.gen_range(0..options);
        }
        if self.current_choice == self.attacks.len() {
            // Behave honestly this epoch.
            ctx.byzantine_honest.to_vec()
        } else {
            self.attacks[self.current_choice].craft(ctx)
        }
    }

    fn name(&self) -> &'static str {
        "Time-varying"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::{RandomAttack, SignFlip};
    use crate::lie::Lie;

    fn pool() -> Vec<Box<dyn Attack>> {
        vec![Box::new(SignFlip::new()), Box::new(RandomAttack::new()), Box::new(Lie::new())]
    }

    #[test]
    fn choice_is_stable_within_epoch() {
        let benign = vec![vec![1.0, -1.0]; 5];
        let byz = vec![vec![1.0, -1.0]; 2];
        let mut tv = TimeVarying::new(pool(), false, 10, 7);
        let mut names = Vec::new();
        for round in 0..10 {
            let ctx = AttackContext::new(&benign, &byz, round);
            let _ = tv.craft(&ctx);
            names.push(tv.active_attack());
        }
        assert!(names.windows(2).all(|w| w[0] == w[1]), "{names:?}");
    }

    #[test]
    fn choice_changes_across_epochs() {
        let benign = vec![vec![1.0, -1.0]; 5];
        let byz = vec![vec![1.0, -1.0]; 2];
        let mut tv = TimeVarying::new(pool(), true, 1, 11);
        let mut seen = std::collections::HashSet::new();
        for round in 0..40 {
            let ctx = AttackContext::new(&benign, &byz, round);
            let _ = tv.craft(&ctx);
            seen.insert(tv.active_attack());
        }
        assert!(seen.len() >= 3, "only saw {seen:?}");
    }

    #[test]
    fn no_attack_epochs_pass_honest_gradients() {
        let benign = vec![vec![2.0]; 3];
        let byz = vec![vec![5.0]; 1];
        // Single dummy attack + no-attack, so both behaviours appear.
        let mut tv = TimeVarying::new(vec![Box::new(SignFlip::new())], true, 1, 3);
        let mut saw_honest = false;
        for round in 0..30 {
            let ctx = AttackContext::new(&benign, &byz, round);
            let out = tv.craft(&ctx);
            if tv.active_attack() == "None" {
                assert_eq!(out[0], vec![5.0]);
                saw_honest = true;
            } else {
                assert_eq!(out[0], vec![-5.0]);
            }
        }
        assert!(saw_honest);
    }
}
