//! Aggregation-rule throughput vs. client count and gradient dimension.
//!
//! Backs the paper's efficiency claim (Section IV "Defense Goal"): the
//! defense must be computationally cheap relative to a training round.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sg_aggregators::{Aggregator, Bulyan, CoordinateMedian, DnC, GeoMed, Mean, MultiKrum, TrimmedMean};
use sg_bench::synthetic_gradients;
use sg_core::SignGuard;

fn bench_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregators_n50_d10k");
    group.sample_size(10);
    let grads = synthetic_gradients(50, 10_000, 1);
    type RuleCtor = Box<dyn Fn() -> Box<dyn Aggregator>>;
    let rules: Vec<(&str, RuleCtor)> = vec![
        ("Mean", Box::new(|| Box::new(Mean::new()))),
        ("TrMean", Box::new(|| Box::new(TrimmedMean::new(10)))),
        ("Median", Box::new(|| Box::new(CoordinateMedian::new()))),
        ("GeoMed", Box::new(|| Box::new(GeoMed::new().with_max_iter(20)))),
        ("MultiKrum", Box::new(|| Box::new(MultiKrum::new(10, 40)))),
        ("Bulyan", Box::new(|| Box::new(Bulyan::new(10)))),
        ("DnC", Box::new(|| Box::new(DnC::new(10).with_subsample_dim(2000)))),
        ("SignGuard", Box::new(|| Box::new(SignGuard::plain(0)))),
        ("SignGuard-Sim", Box::new(|| Box::new(SignGuard::sim(0)))),
    ];
    for (name, make) in rules {
        group.bench_function(name, |b| {
            let mut gar = make();
            b.iter(|| std::hint::black_box(gar.aggregate(&grads)));
        });
    }
    group.finish();
}

fn bench_scaling_d(c: &mut Criterion) {
    let mut group = c.benchmark_group("signguard_vs_dimension");
    group.sample_size(10);
    for d in [1_000usize, 10_000, 100_000] {
        let grads = synthetic_gradients(50, d, 2);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            let mut gar = SignGuard::plain(0);
            b.iter(|| std::hint::black_box(gar.aggregate(&grads)));
        });
    }
    group.finish();
}

fn bench_scaling_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("multikrum_vs_clients");
    group.sample_size(10);
    for n in [20usize, 50, 100] {
        let grads = synthetic_gradients(n, 10_000, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut gar = MultiKrum::new(n / 5, n - n / 5);
            b.iter(|| std::hint::black_box(gar.aggregate(&grads)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rules, bench_scaling_d, bench_scaling_n);
criterion_main!(benches);
