//! Attack-crafting cost: how expensive is the adversary's side of each
//! round (relevant to the threat model's plausibility at scale).

use criterion::{criterion_group, criterion_main, Criterion};
use sg_attacks::{Attack, AttackContext, ByzMean, Lie, MinMax, MinSum, RandomAttack, SignFlip};
use sg_bench::synthetic_gradients;

fn bench_attacks(c: &mut Criterion) {
    let mut group = c.benchmark_group("attacks_n50_d10k");
    group.sample_size(10);
    let all = synthetic_gradients(50, 10_000, 1);
    let (byz, benign) = all.split_at(10);

    type AttackCtor = Box<dyn Fn() -> Box<dyn Attack>>;
    let attacks: Vec<(&str, AttackCtor)> = vec![
        ("Random", Box::new(|| Box::new(RandomAttack::new()))),
        ("SignFlip", Box::new(|| Box::new(SignFlip::new()))),
        ("LIE", Box::new(|| Box::new(Lie::new()))),
        ("ByzMean", Box::new(|| Box::new(ByzMean::new()))),
        ("MinMax", Box::new(|| Box::new(MinMax::new()))),
        ("MinSum", Box::new(|| Box::new(MinSum::new()))),
    ];
    for (name, make) in attacks {
        group.bench_function(name, |b| {
            let mut attack = make();
            b.iter(|| {
                let ctx = AttackContext::new(benign, byz, 0);
                std::hint::black_box(attack.craft(&ctx))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_attacks);
criterion_main!(benches);
