//! Clustering back-end scaling: MeanShift vs KMeans over point count and
//! feature dimension (the ablation axis called out in DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use sg_cluster::{KMeans, MeanShift};

fn points(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = sg_math::seeded_rng(seed);
    (0..n)
        .map(|i| {
            let center = if i % 5 == 0 { 1.0 } else { 0.0 };
            (0..d).map(|_| center + rng.gen_range(-0.05..0.05)).collect()
        })
        .collect()
}

fn bench_meanshift(c: &mut Criterion) {
    let mut group = c.benchmark_group("meanshift");
    group.sample_size(20);
    for n in [50usize, 100, 200] {
        let pts = points(n, 4, 1);
        group.bench_with_input(BenchmarkId::new("n", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(MeanShift::new().fit(&pts)));
        });
    }
    group.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_k2");
    group.sample_size(20);
    for n in [50usize, 100, 200] {
        let pts = points(n, 4, 2);
        group.bench_with_input(BenchmarkId::new("n", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(KMeans::new(2).fit(&pts)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_meanshift, bench_kmeans);
criterion_main!(benches);
