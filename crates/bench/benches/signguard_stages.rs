//! Per-stage cost of SignGuard's pipeline: norm filter, feature
//! extraction, MeanShift clustering, full aggregation.
//!
//! The paper argues thresholding is kept *because* it is nearly free
//! compared to clustering; this bench quantifies that.

use criterion::{criterion_group, criterion_main, Criterion};
use sg_aggregators::Aggregator;
use sg_bench::synthetic_gradients;
use sg_cluster::MeanShift;
use sg_core::{FeatureExtractor, Filter, NormFilter, SignGuard, SimilarityFeature};

fn bench_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("signguard_stages_n50_d10k");
    group.sample_size(20);
    let grads = synthetic_gradients(50, 10_000, 1);
    let norms: Vec<f32> = grads.iter().map(|g| sg_math::l2_norm(g)).collect();

    group.bench_function("norm_filter", |b| {
        let mut f = NormFilter::new();
        b.iter(|| std::hint::black_box(f.filter(&grads, &norms)));
    });

    group.bench_function("feature_extraction_10pct", |b| {
        let fe = FeatureExtractor::new();
        let mut rng = sg_math::seeded_rng(0);
        b.iter(|| std::hint::black_box(fe.extract(&mut rng, &grads, None)));
    });

    group.bench_function("feature_extraction_cosine", |b| {
        let fe = FeatureExtractor { coord_fraction: 0.1, similarity: SimilarityFeature::Cosine };
        let mut rng = sg_math::seeded_rng(0);
        let reference = grads[0].clone();
        b.iter(|| std::hint::black_box(fe.extract(&mut rng, &grads, Some(&reference))));
    });

    group.bench_function("meanshift_50pts", |b| {
        let fe = FeatureExtractor::new();
        let mut rng = sg_math::seeded_rng(0);
        let points: Vec<Vec<f32>> =
            fe.extract(&mut rng, &grads, None).into_iter().map(|f| f.to_vec()).collect();
        b.iter(|| std::hint::black_box(MeanShift::new().fit(&points)));
    });

    group.bench_function("full_aggregate", |b| {
        let mut gar = SignGuard::plain(0);
        b.iter(|| std::hint::black_box(gar.aggregate(&grads)));
    });
    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
