//! Extended ablations beyond the paper's Table III, covering the design
//! choices DESIGN.md calls out:
//!
//! * coordinate-sampling fraction for the sign statistics (paper default
//!   10%);
//! * clustering back-end: MeanShift (adaptive) vs KMeans(2) (the paper's
//!   remark for identical colluding attackers);
//! * the adaptive white-box attack (`AdaptiveSignMimicry`) against every
//!   SignGuard variant — probing the paper's future-work attack surface;
//! * validation-based defenses (FLTrust, Zeno) on the same grid, making
//!   the paper's "auxiliary data" trade-off concrete.
//!
//! ```sh
//! cargo run --release -p sg-bench --bin exp_ablation -- [--epochs N] [--task fashion]
//!                                                        [--jobs N] [--smoke]
//!                                                        [--journal PATH] [--resume]
//! ```
//!
//! Every (configuration, attack) pair is one [`sg_runtime::RunPlan`] cell
//! run concurrently by [`sg_runtime::GridRunner`]; output is reproducible
//! at any `--jobs` value and the CSV lands in
//! `target/experiments/ablation.csv`.
//!
//! `--journal PATH` / `--resume` checkpoint the sweep and continue an
//! interrupted one (see the crate docs on checkpoint & resume).

fn main() {
    sg_bench::sweep::run_standalone("ablation");
}
