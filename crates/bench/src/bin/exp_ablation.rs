//! Extended ablations beyond the paper's Table III, covering the design
//! choices DESIGN.md calls out:
//!
//! * coordinate-sampling fraction for the sign statistics (paper default
//!   10%);
//! * clustering back-end: MeanShift (adaptive) vs KMeans(2) (the paper's
//!   remark for identical colluding attackers);
//! * the adaptive white-box attack (`AdaptiveSignMimicry`) against every
//!   SignGuard variant — probing the paper's future-work attack surface;
//! * validation-based defenses (FLTrust, Zeno) on the same grid, making
//!   the paper's "auxiliary data" trade-off concrete.
//!
//! ```sh
//! cargo run --release -p sg-bench --bin exp_ablation -- [--epochs N] [--task fashion]
//! ```

use sg_attacks::{AdaptiveSignMimicry, Attack, Lie, SignFlip};
use sg_bench::{arg_value, build_task, write_csv};
use sg_core::{ClusteringBackend, SignGuard, SignGuardBuilder, SimilarityFeature};
use sg_data::Dataset;
use sg_fl::{FlConfig, Simulator, ValidatingServer, ValidationRule};
use sg_math::seeded_rng;

fn attack_by(name: &str) -> Option<Box<dyn Attack>> {
    match name {
        "None" => None,
        "Sign-flip" => Some(Box::new(SignFlip::new())),
        "LIE" => Some(Box::new(Lie::new())),
        "Adaptive" => Some(Box::new(AdaptiveSignMimicry::new())),
        other => panic!("unknown attack {other}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let epochs: usize = arg_value(&args, "--epochs").map_or(8, |v| v.parse().expect("--epochs N"));
    let task_name = arg_value(&args, "--task").unwrap_or_else(|| "fashion".into());
    let cfg = FlConfig { epochs, learning_rate: 0.05, ..FlConfig::default() };
    let attacks = ["None", "Sign-flip", "LIE", "Adaptive"];

    let mut csv = vec![vec!["section".to_string(), "config".into(), "attack".into(), "best_accuracy".into()]];

    // 1. Coordinate-sampling fraction sweep.
    println!("== coordinate-sampling fraction (plain SignGuard) ==");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}",
        "fraction", attacks[0], attacks[1], attacks[2], attacks[3]
    );
    for frac in [0.01f32, 0.1, 0.5, 1.0] {
        print!("{frac:<12}");
        for attack_name in attacks {
            let gar = SignGuardBuilder::new().coord_fraction(frac).seed(0).build();
            let mut sim =
                Simulator::new(build_task(&task_name, 7), cfg.clone(), Box::new(gar), attack_by(attack_name));
            let r = sim.run();
            print!(" {:>9.2}%", 100.0 * r.best_accuracy);
            csv.push(vec![
                "coord_fraction".into(),
                frac.to_string(),
                attack_name.into(),
                format!("{:.2}", 100.0 * r.best_accuracy),
            ]);
        }
        println!();
    }

    // 2. Clustering back-end.
    println!("\n== clustering back-end (SignGuard-Sim) ==");
    println!("{:<12} {:>10} {:>10} {:>10} {:>10}", "backend", attacks[0], attacks[1], attacks[2], attacks[3]);
    for (label, backend) in
        [("MeanShift", ClusteringBackend::MeanShift), ("KMeans-2", ClusteringBackend::KMeans(2))]
    {
        print!("{label:<12}");
        for attack_name in attacks {
            let gar = SignGuardBuilder::new()
                .similarity(SimilarityFeature::Cosine)
                .clustering(backend)
                .seed(0)
                .build();
            let mut sim =
                Simulator::new(build_task(&task_name, 7), cfg.clone(), Box::new(gar), attack_by(attack_name));
            let r = sim.run();
            print!(" {:>9.2}%", 100.0 * r.best_accuracy);
            csv.push(vec![
                "backend".into(),
                label.into(),
                attack_name.into(),
                format!("{:.2}", 100.0 * r.best_accuracy),
            ]);
        }
        println!();
    }

    // 3. SignGuard variants + validation-based defenses under the same attacks.
    println!("\n== defense family comparison (incl. validation-based) ==");
    println!("{:<15} {:>10} {:>10} {:>10} {:>10}", "defense", attacks[0], attacks[1], attacks[2], attacks[3]);
    let defense_names = ["SignGuard", "SignGuard-Sim", "FLTrust", "Zeno"];
    for defense in defense_names {
        print!("{defense:<15}");
        for attack_name in attacks {
            let task = build_task(&task_name, 7);
            let gar: Box<dyn sg_aggregators::Aggregator> = match defense {
                "SignGuard" => Box::new(SignGuard::plain(0)),
                "SignGuard-Sim" => Box::new(SignGuard::sim(0)),
                name => {
                    // Validation defenses hold 100 root samples at the server
                    // (split off the test set, as in the cited works).
                    let mut rng = seeded_rng(0);
                    let model = task.build_model(&mut rng);
                    let root = Dataset::new(
                        task.test.samples()[..100].to_vec(),
                        task.test.item_shape().to_vec(),
                        task.test.num_classes(),
                    );
                    let rule = if name == "FLTrust" {
                        ValidationRule::FlTrust
                    } else {
                        ValidationRule::Zeno { b: cfg.byzantine_count(), rho: 1e-4, gamma: cfg.learning_rate }
                    };
                    Box::new(ValidatingServer::new(rule, model, root, 32, 5))
                }
            };
            let mut sim = Simulator::new(task, cfg.clone(), gar, attack_by(attack_name));
            let r = sim.run();
            print!(" {:>9.2}%", 100.0 * r.best_accuracy);
            csv.push(vec![
                "family".into(),
                defense.into(),
                attack_name.into(),
                format!("{:.2}", 100.0 * r.best_accuracy),
            ]);
        }
        println!();
    }
    write_csv("ablation_extra", &csv);
}
