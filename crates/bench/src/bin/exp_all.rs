//! **exp_all**: the entire paper grid — Tables I–III, Figs. 2/4/5/6 and
//! the extended ablations — as **one** resource-shared, two-level-parallel
//! sweep, emitting a consolidated JSON report.
//!
//! ```sh
//! cargo run --release -p sg-bench --bin exp_all -- [--smoke] [--jobs N] [--epochs N]
//!                                                   [--seed N] [--task NAME|both|all]
//!                                                   [--only table1,fig4,...] [--out PATH]
//! ```
//!
//! * `--smoke` shrinks every section to a CI-sized grid (MLP task, one
//!   epoch, trimmed matrices) while still exercising each experiment.
//! * `--jobs N` bounds the grid fan-out (default all cores); cells also
//!   shard their inner work on the grid's engine, so the thread budget is
//!   shared by both levels.
//! * `--only` restricts the sweep to a comma-separated subset of
//!   experiments (`table1 table2 table3 fig2 fig4 fig5 fig6 ablation`).
//!
//! All cells of one task share a single generated dataset through the
//! sweep's task cache, and the report (default
//! `target/experiments/ALL.json`) is **byte-identical at any `--jobs`
//! value** — CI's `grid-smoke` job runs the sweep at `--jobs 4` and
//! `--jobs 1` and `cmp`s the two files.

use sg_bench::sweep::{self, Rows, Section, SweepOpts, ALL_EXPERIMENTS};
use sg_bench::{experiments_dir, ExpArgs};
use sg_runtime::{GridRunner, RunPlan};

fn main() {
    let a = ExpArgs::parse();
    let o = SweepOpts::from_args(&a);
    let selected: Vec<String> = match a.value("--only") {
        Some(list) => list.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect(),
        None => ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect(),
    };

    let mut plan: RunPlan<Rows> = RunPlan::new(o.seed);
    let sections: Vec<Section> = selected.iter().map(|exp| sweep::plan_section(exp, &mut plan, &o)).collect();
    let runner = GridRunner::new(a.jobs());
    eprintln!(
        "[exp_all] {} experiments, {} cells, {} grid workers{}",
        sections.len(),
        plan.len(),
        runner.parallelism(),
        if o.smoke { " (smoke)" } else { "" }
    );

    let report = runner.run(plan);

    // Slice the plan-ordered report back into sections and post-process
    // (Fig. 4 gains its attack_impact column from the baseline cell).
    let mut cells = report.cells.into_iter();
    let mut results: Vec<(Section, Rows)> = Vec::with_capacity(sections.len());
    for mut s in sections {
        let rows: Rows =
            (0..s.cells).flat_map(|_| cells.next().expect("report covers the plan").output).collect();
        let (header, rows) = sweep::finish(s.exp, s.header, rows);
        s.header = header;
        results.push((s, rows));
    }

    println!("== exp_all — consolidated sweep ==");
    for (s, rows) in &results {
        println!("{:<10} {:>5} cells  {:>6} rows   {}", s.exp, s.cells, rows.len(), s.title);
    }
    println!(
        "datasets: {} generated, {} cache hits, {} misses",
        o.res.tasks.len(),
        o.res.tasks.hits(),
        o.res.tasks.misses()
    );
    println!(
        "partitions: {} computed, {} cache hits, {} misses",
        o.res.parts.len(),
        o.res.parts.hits(),
        o.res.parts.misses()
    );

    let json = sweep::consolidated_json(&o, &results);
    let path = a.out().unwrap_or_else(|| experiments_dir().join("ALL.json"));
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).expect("create report dir");
    }
    std::fs::write(&path, json).expect("write consolidated report");
    println!("[report] {}", path.display());
}
