//! **exp_all**: the entire paper grid — Tables I–III, Figs. 2/4/5/6, the
//! extended ablations and the schedule axis — as **one** resource-shared,
//! two-level-parallel, crash-safe sweep, emitting a consolidated JSON
//! report.
//!
//! ```sh
//! cargo run --release -p sg-bench --bin exp_all -- [--smoke] [--jobs N] [--epochs N]
//!                                                   [--seed N] [--task NAME|both|all]
//!                                                   [--only table1,fig4,...] [--out PATH]
//!                                                   [--journal PATH] [--resume]
//!                                                   [--trace PATH]
//! ```
//!
//! * `--smoke` shrinks every section to a CI-sized grid (MLP task, one
//!   epoch, trimmed matrices) while still exercising each experiment.
//! * `--jobs N` bounds the grid fan-out (default all cores); cells also
//!   shard their inner work on the grid's engine, so the thread budget is
//!   shared by both levels.
//! * `--only` restricts the sweep to a comma-separated subset of
//!   experiments (`table1 table2 table3 fig2 fig4 fig5 fig6 ablation
//!   async`).
//! * `--journal PATH` checkpoints every completed cell to an fsync'd
//!   journal (default `target/experiments/sweep.journal` under
//!   `--resume`); `--resume` validates an existing journal against the
//!   freshly planned sweep, hydrates the completed cells and executes
//!   only the remainder. A journal written by a *different* sweep (edited
//!   plan, smoke vs full, another seed) is refused, never mixed in.
//! * `--trace PATH` streams an `sg-obs` JSONL trace: one span event per
//!   grid cell (labeled, with wall time) and per pipeline stage, plus the
//!   pool/cache/filter metrics at the end. Observation only — the report
//!   bytes are identical with or without it (CI's `trace-smoke` proves
//!   this against the untraced `grid-smoke` artifact).
//!
//! All cells of one task share a single generated dataset through the
//! sweep's task cache, and the report (default
//! `target/experiments/ALL.json`) is **byte-identical at any `--jobs`
//! value and across a crash/resume cycle** — CI's `grid-smoke` job
//! compares `--jobs 4` vs `--jobs 1`, and `resume-smoke` kills a sweep
//! mid-run, resumes it, and compares against an uninterrupted report.

use sg_bench::sweep::{self, SweepOpts, ALL_EXPERIMENTS};
use sg_bench::{experiments_dir, ExpArgs};

fn main() {
    let a = ExpArgs::parse();
    a.init_obs();
    let o = SweepOpts::from_args(&a);
    let selected: Vec<String> = match a.value("--only") {
        Some(list) => list.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect(),
        None => ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect(),
    };
    let journal = a.journal_cfg(&experiments_dir().join("sweep.journal"));

    let outcome = match sweep::run_sections(&selected, &o, a.jobs(), &journal) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("[exp_all] {e}");
            std::process::exit(2);
        }
    };

    println!("== exp_all — consolidated sweep{} ==", if o.smoke { " (smoke)" } else { "" });
    for (s, rows) in &outcome.results {
        println!("{:<10} {:>5} cells  {:>6} rows   {}", s.exp, s.cells, rows.len(), s.title);
    }
    println!(
        "cells: {} total, {} executed, {} resumed from the journal",
        outcome.total_cells, outcome.executed, outcome.hydrated
    );
    // The dataset/partition cache tallies flow through the sg-obs registry
    // (one telemetry sink) and land in the summary's counter block below.
    o.res.tasks.publish("task");
    o.res.parts.publish("partition");

    let json = sweep::consolidated_json(&o, &outcome.results);
    let path = a.out().unwrap_or_else(|| experiments_dir().join("ALL.json"));
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).expect("create report dir");
    }
    std::fs::write(&path, json).expect("write consolidated report");
    println!("[report] {}", path.display());

    // Per-cell wall times live in the trace/summary only, never in the
    // report — print the costliest cells for grid-placement tuning.
    if !sg_obs::quiet() {
        eprint!("{}", sg_obs::render_top("cell", 10));
    }
    sg_bench::finish_obs();
}
