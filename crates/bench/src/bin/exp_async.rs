//! **exp_async**: defense robustness across client schedules — the
//! paper grid's schedule axis (sync / straggler / FedBuf-style buffered
//! async), opened by the round-pipeline refactor.
//!
//! ```sh
//! cargo run --release -p sg-bench --bin exp_async -- [--smoke] [--jobs N]
//!                                                     [--epochs N] [--seed N] [--task NAME]
//!                                                     [--journal PATH] [--resume]
//! ```
//!
//! Rows report best accuracy plus the staleness profile the server saw
//! (applied rounds, mean batch staleness). Like every section, the sweep
//! is bit-for-bit reproducible at any `--jobs` value: the async schedules
//! run on a seeded virtual clock, not wall time.
//!
//! `--journal PATH` / `--resume` checkpoint the sweep and continue an
//! interrupted one (see the crate docs on checkpoint & resume).

fn main() {
    sg_bench::sweep::run_standalone("async");
}
