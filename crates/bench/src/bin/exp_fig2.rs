//! **Fig. 2**: sign statistics (positive / zero / negative proportions) of
//! the honest gradients versus a virtual LIE-crafted gradient, recorded
//! over training iterations for the CNN and the residual network.
//!
//! The paper's observation: honest sign statistics are stable across
//! training while the LIE gradient's are visibly shifted — the insight the
//! whole SignGuard filter is built on.
//!
//! ```sh
//! cargo run --release -p sg-bench --bin exp_fig2 -- [--epochs N] [--jobs N]
//! ```
//!
//! The two model traces are independent scenarios, so they run as two
//! cells of a [`sg_runtime::RunPlan`] on [`sg_runtime::GridRunner`] —
//! concurrently under `--jobs 2`, byte-identical output either way.

use sg_attacks::Lie;
use sg_bench::{arg_value, build_task, write_csv};
use sg_fl::{Client, FlConfig};
use sg_math::vecops::sign_counts;
use sg_math::SeedStream;
use sg_runtime::{GridRunner, RunPlan};

fn stats(v: &[f32]) -> (f32, f32, f32) {
    let (p, z, n) = sign_counts(v);
    let t = (p + z + n) as f32;
    (p as f32 / t, z as f32 / t, n as f32 / t)
}

/// One model's full trace: printed lines plus CSV rows.
struct Trace {
    header: String,
    lines: Vec<String>,
    csv_rows: Vec<Vec<String>>,
}

fn trace_task(task_name: &str, cfg: &FlConfig) -> Trace {
    let task = build_task(task_name, 7);
    let mut lines = Vec::new();
    let mut csv_rows = Vec::new();

    let mut seeds = SeedStream::new(cfg.seed);
    let mut model_rng = seeds.next_rng();
    let global_model = task.build_model(&mut model_rng);
    let mut params = global_model.param_vector();
    let mut part_rng = seeds.next_rng();
    let parts = sg_data::partition_iid(task.train.len(), cfg.num_clients, &mut part_rng);
    let mut clients: Vec<Client> = parts
        .into_iter()
        .enumerate()
        .map(|(id, idx)| {
            let mut r = seeds.next_rng();
            let replica = task.build_model(&mut r);
            Client::new(id, replica, idx, cfg.momentum, cfg.weight_decay, seeds.next_rng())
        })
        .collect();

    let total = cfg.total_rounds(task.train.len());
    let lie = Lie::new();
    let m = cfg.byzantine_count();
    for round in 0..total {
        let grads: Vec<Vec<f32>> =
            clients.iter_mut().map(|c| c.local_gradient(&params, &task.train, cfg.batch_size)).collect();
        let dim = grads[0].len();

        // Average honest sign statistics across clients.
        let mut hon = (0.0f32, 0.0f32, 0.0f32);
        for g in &grads {
            let s = stats(g);
            hon = (hon.0 + s.0, hon.1 + s.1, hon.2 + s.2);
        }
        let inv = 1.0 / grads.len() as f32;
        hon = (hon.0 * inv, hon.1 * inv, hon.2 * inv);

        // Virtual LIE gradient crafted from the same population (Eq. 1).
        let virt = lie.craft_single(&grads, cfg.num_clients, m);
        let mal = stats(&virt);

        if round % 5 == 0 || round + 1 == total {
            lines.push(format!(
                "{:>6} | {:>7.3} {:>7.3} {:>7.3} | {:>7.3} {:>7.3} {:>7.3}",
                round, hon.0, hon.1, hon.2, mal.0, mal.1, mal.2
            ));
        }
        csv_rows.push(vec![
            task_name.to_string(),
            round.to_string(),
            format!("{:.4}", hon.0),
            format!("{:.4}", hon.1),
            format!("{:.4}", hon.2),
            format!("{:.4}", mal.0),
            format!("{:.4}", mal.1),
            format!("{:.4}", mal.2),
        ]);

        // Honest (mean-aggregated) training step keeps the trajectory
        // identical to the paper's no-attack setting.
        let mean = sg_math::vecops::mean_vector(&grads, dim);
        for (p, g) in params.iter_mut().zip(&mean) {
            *p -= cfg.learning_rate * g;
        }
    }
    Trace { header: format!("== {} ==", task.name), lines, csv_rows }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let epochs: usize = arg_value(&args, "--epochs").map_or(10, |v| v.parse().expect("--epochs N"));
    let jobs: usize = arg_value(&args, "--jobs").map_or(0, |v| v.parse().expect("--jobs N"));
    let cfg = FlConfig { epochs, learning_rate: 0.05, ..FlConfig::default() };

    let mut plan: RunPlan<Trace> = RunPlan::new(cfg.seed);
    for task_name in ["mnist", "cifar"] {
        let cfg = cfg.clone();
        plan.cell(task_name, move |_ctx| trace_task(task_name, &cfg));
    }
    let report = GridRunner::new(jobs).run(plan);

    let mut csv = vec![vec![
        "model".to_string(),
        "round".into(),
        "honest_pos".into(),
        "honest_zero".into(),
        "honest_neg".into(),
        "lie_pos".into(),
        "lie_zero".into(),
        "lie_neg".into(),
    ]];
    for cell in &report.cells {
        println!("{}", cell.output.header);
        println!(
            "{:>6} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7}",
            "round", "hon+", "hon0", "hon-", "lie+", "lie0", "lie-"
        );
        for line in &cell.output.lines {
            println!("{line}");
        }
        println!();
        csv.extend(cell.output.csv_rows.iter().cloned());
    }
    write_csv("fig2", &csv);
}
