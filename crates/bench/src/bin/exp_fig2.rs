//! **Fig. 2**: sign statistics (positive / zero / negative proportions) of
//! the honest gradients versus a virtual LIE-crafted gradient, recorded
//! over training iterations for the CNN and the residual network.
//!
//! The paper's observation: honest sign statistics are stable across
//! training while the LIE gradient's are visibly shifted — the insight the
//! whole SignGuard filter is built on.
//!
//! ```sh
//! cargo run --release -p sg-bench --bin exp_fig2 -- [--epochs N] [--jobs N] [--smoke]
//! cargo run --release -p sg-bench --bin exp_fig2 -- [--journal PATH] [--resume]
//! ```
//!
//! The model traces are independent scenarios, so each runs as one cell of
//! a [`sg_runtime::RunPlan`] on [`sg_runtime::GridRunner`] — concurrently
//! under `--jobs`, byte-identical output either way.
//!
//! `--journal PATH` / `--resume` checkpoint the sweep and continue an
//! interrupted one (see the crate docs on checkpoint & resume).

fn main() {
    sg_bench::sweep::run_standalone("fig2");
}
