//! **Fig. 4**: attack impact (accuracy drop vs. the no-attack/no-defense
//! baseline) as the Byzantine fraction sweeps 0–40%, for five defenses
//! under the five strongest attacks.
//!
//! ```sh
//! cargo run --release -p sg-bench --bin exp_fig4 -- [--task fashion|cifar|both]
//!                                                    [--epochs N] [--full]
//! ```
//!
//! `--full` runs all five attacks of the paper's figure; the default keeps
//! the three headline ones to stay fast.

use sg_bench::{arg_present, arg_value, build_attack, build_defense, build_task, write_csv};
use sg_fl::{FlConfig, Simulator};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let epochs: usize = arg_value(&args, "--epochs").map_or(8, |v| v.parse().expect("--epochs N"));
    let task_arg = arg_value(&args, "--task").unwrap_or_else(|| "fashion".into());
    let tasks: Vec<&str> = match task_arg.as_str() {
        "both" => vec!["fashion", "cifar"],
        "fashion" => vec!["fashion"],
        "cifar" => vec!["cifar"],
        other => panic!("unknown task {other}"),
    };
    let attacks: Vec<&str> = if arg_present(&args, "--full") {
        vec!["ByzMean", "Sign-flip", "LIE", "Min-Max", "Min-Sum"]
    } else {
        vec!["ByzMean", "Sign-flip", "LIE"]
    };
    let defenses = ["Median", "TrMean", "Multi-Krum", "DnC", "SignGuard-Sim"];
    let fractions = [0.0f32, 0.1, 0.2, 0.3, 0.4];

    let mut csv = vec![vec![
        "task".to_string(),
        "defense".into(),
        "attack".into(),
        "byz_fraction".into(),
        "best_accuracy".into(),
        "attack_impact".into(),
    ]];

    for task_name in &tasks {
        // No-attack / no-defense baseline (Definition 3 reference point).
        let base_cfg =
            FlConfig { epochs, learning_rate: 0.05, byzantine_fraction: 0.0, ..FlConfig::default() };
        let mut baseline_sim =
            Simulator::new(build_task(task_name, 7), base_cfg, build_defense("Mean", 50, 0), None);
        let baseline = baseline_sim.run().best_accuracy;
        println!(
            "== {} == baseline (Mean, no attack): {:.2}%\n",
            build_task(task_name, 7).name,
            100.0 * baseline
        );

        for defense in defenses {
            println!("-- defense: {defense}");
            print!("{:<11}", "attack");
            for f in fractions {
                print!("{:>9}", format!("{}%", (f * 100.0) as usize));
            }
            println!("   (attack impact, percentage points)");
            for attack_name in &attacks {
                print!("{attack_name:<11}");
                for frac in fractions {
                    let cfg = FlConfig {
                        epochs,
                        learning_rate: 0.05,
                        byzantine_fraction: frac,
                        ..FlConfig::default()
                    };
                    let m = cfg.byzantine_count();
                    let attack = if frac == 0.0 { None } else { build_attack(attack_name) };
                    let mut sim =
                        Simulator::new(build_task(task_name, 7), cfg, build_defense(defense, 50, m), attack);
                    let r = sim.run();
                    let impact = r.attack_impact(baseline);
                    print!("{:>9.2}", 100.0 * impact);
                    csv.push(vec![
                        task_name.to_string(),
                        defense.to_string(),
                        attack_name.to_string(),
                        format!("{frac:.1}"),
                        format!("{:.2}", 100.0 * r.best_accuracy),
                        format!("{:.2}", 100.0 * impact),
                    ]);
                }
                println!();
            }
            println!();
        }
    }
    write_csv("fig4", &csv);
}
