//! **Fig. 4**: attack impact (accuracy drop vs. the no-attack/no-defense
//! baseline) as the Byzantine fraction sweeps 0–40%, for five defenses
//! under the strongest attacks.
//!
//! ```sh
//! cargo run --release -p sg-bench --bin exp_fig4 -- [--task fashion|cifar|both]
//!                                                    [--epochs N] [--full] [--jobs N] [--smoke]
//!                                                    [--journal PATH] [--resume]
//! ```
//!
//! `--full` runs all five attacks of the paper's figure; the default keeps
//! the three headline ones to stay fast. Every (defense, attack, fraction)
//! point — and the per-task baseline itself — is one
//! [`sg_runtime::RunPlan`] cell run concurrently by
//! [`sg_runtime::GridRunner`]; the `attack_impact` column is appended from
//! the baseline cell after the sweep. Output is reproducible at any
//! `--jobs` value.
//!
//! `--journal PATH` / `--resume` checkpoint the sweep and continue an
//! interrupted one (see the crate docs on checkpoint & resume).

fn main() {
    sg_bench::sweep::run_standalone("fig4");
}
