//! **Fig. 5**: test-accuracy curves under a time-varying attack strategy
//! (the adversary re-rolls its attack every epoch, including "no attack"),
//! for the state-of-the-art defenses against a no-attack baseline.
//!
//! ```sh
//! cargo run --release -p sg-bench --bin exp_fig5 -- [--task fashion|cifar|both] [--epochs N] [--jobs N]
//! ```
//!
//! Every (task, defense) curve — including the no-attack baseline — is one
//! [`sg_runtime::RunPlan`] cell executed concurrently by
//! [`sg_runtime::GridRunner`] (`--jobs` bounds the fan-out; default all
//! cores). Cells share the config seed and no RNG state, so the curves
//! match a sequential run at any `--jobs` value.

use sg_attacks::{Attack, ByzMean, Lie, MinMax, RandomAttack, SignFlip, TimeVarying};
use sg_bench::{arg_value, build_defense, build_task, write_csv};
use sg_fl::{FlConfig, Simulator};
use sg_runtime::{GridRunner, RunPlan};

fn attack_pool() -> Vec<Box<dyn Attack>> {
    vec![
        Box::new(RandomAttack::new()),
        Box::new(SignFlip::new()),
        Box::new(Lie::new()),
        Box::new(ByzMean::new()),
        Box::new(MinMax::new()),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let epochs: usize = arg_value(&args, "--epochs").map_or(12, |v| v.parse().expect("--epochs N"));
    let jobs: usize = arg_value(&args, "--jobs").map_or(0, |v| v.parse().expect("--jobs N"));
    let task_arg = arg_value(&args, "--task").unwrap_or_else(|| "fashion".into());
    let tasks: Vec<&str> = match task_arg.as_str() {
        "both" => vec!["fashion", "cifar"],
        "fashion" => vec!["fashion"],
        "cifar" => vec!["cifar"],
        other => panic!("unknown task {other}"),
    };
    let defenses = ["Multi-Krum", "Bulyan", "DnC", "SignGuard"];

    let cfg = FlConfig { epochs, learning_rate: 0.05, ..FlConfig::default() };
    let (n, m) = (cfg.num_clients, cfg.byzantine_count());

    // One cell per curve, declared task-major (baseline first, then the
    // defenses) so the report reads back in presentation order.
    let mut plan: RunPlan<Vec<(usize, f32)>> = RunPlan::new(cfg.seed);
    for task_name in &tasks {
        let task_name = task_name.to_string();
        {
            let task_name = task_name.clone();
            let cfg = cfg.clone();
            plan.cell(format!("{task_name}/Baseline"), move |_ctx| {
                // Baseline: no attack, no defense.
                let base_cfg = FlConfig { byzantine_fraction: 0.0, ..cfg };
                let mut sim =
                    Simulator::new(build_task(&task_name, 7), base_cfg, build_defense("Mean", n, 0), None);
                sim.run().accuracy_curve
            });
        }
        for defense in defenses {
            let task_name = task_name.clone();
            let cfg = cfg.clone();
            plan.cell(format!("{task_name}/{defense}"), move |_ctx| {
                let task = build_task(&task_name, 7);
                let rpe = cfg.rounds_per_epoch(task.train.len());
                let attack = TimeVarying::new(attack_pool(), true, rpe, 99);
                let mut sim = Simulator::new(task, cfg, build_defense(defense, n, m), Some(Box::new(attack)));
                sim.run().accuracy_curve
            });
        }
    }
    let runner = GridRunner::new(jobs);
    let report = runner.run(plan);

    let mut csv = vec![vec!["task".to_string(), "defense".into(), "epoch".into(), "accuracy".into()]];
    let mut cells_iter = report.cells.iter();
    for task_name in &tasks {
        println!(
            "== {} — per-epoch accuracy under the time-varying attack ({} grid workers) ==\n",
            build_task(task_name, 7).name,
            runner.parallelism()
        );
        for label in std::iter::once("Baseline").chain(defenses) {
            let curve = &cells_iter.next().expect("report covers every curve").output;
            print_curve(label, curve);
            for (e, (_, acc)) in curve.iter().enumerate() {
                csv.push(vec![task_name.to_string(), label.to_string(), e.to_string(), format!("{acc:.4}")]);
            }
        }
        println!();
    }
    write_csv("fig5", &csv);
}

fn print_curve(name: &str, curve: &[(usize, f32)]) {
    let cells: Vec<String> = curve.iter().map(|(_, a)| format!("{:>4.0}", 100.0 * a)).collect();
    let best = curve.iter().map(|(_, a)| *a).fold(0.0f32, f32::max);
    println!("{:<12} [{}]  best {:>5.1}%", name, cells.join(""), 100.0 * best);
}
