//! **Fig. 5**: test-accuracy curves under a time-varying attack strategy
//! (the adversary re-rolls its attack every epoch, including "no attack"),
//! for the state-of-the-art defenses against a no-attack baseline.
//!
//! ```sh
//! cargo run --release -p sg-bench --bin exp_fig5 -- [--task fashion|cifar|both] [--epochs N]
//! ```

use sg_attacks::{Attack, ByzMean, Lie, MinMax, RandomAttack, SignFlip, TimeVarying};
use sg_bench::{arg_value, build_defense, build_task, write_csv};
use sg_fl::{FlConfig, Simulator};

fn attack_pool() -> Vec<Box<dyn Attack>> {
    vec![
        Box::new(RandomAttack::new()),
        Box::new(SignFlip::new()),
        Box::new(Lie::new()),
        Box::new(ByzMean::new()),
        Box::new(MinMax::new()),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let epochs: usize = arg_value(&args, "--epochs").map_or(12, |v| v.parse().expect("--epochs N"));
    let task_arg = arg_value(&args, "--task").unwrap_or_else(|| "fashion".into());
    let tasks: Vec<&str> = match task_arg.as_str() {
        "both" => vec!["fashion", "cifar"],
        "fashion" => vec!["fashion"],
        "cifar" => vec!["cifar"],
        other => panic!("unknown task {other}"),
    };
    let defenses = ["Multi-Krum", "Bulyan", "DnC", "SignGuard"];

    let mut csv = vec![vec!["task".to_string(), "defense".into(), "epoch".into(), "accuracy".into()]];

    for task_name in &tasks {
        let cfg = FlConfig { epochs, learning_rate: 0.05, ..FlConfig::default() };
        let (n, m) = (cfg.num_clients, cfg.byzantine_count());
        println!(
            "== {} — per-epoch accuracy under the time-varying attack ==\n",
            build_task(task_name, 7).name
        );

        // Baseline: no attack, no defense.
        let base_cfg = FlConfig { byzantine_fraction: 0.0, ..cfg.clone() };
        let mut base_sim =
            Simulator::new(build_task(task_name, 7), base_cfg, build_defense("Mean", n, 0), None);
        let base = base_sim.run();
        print_curve("Baseline", &base.accuracy_curve);
        for (e, (_, acc)) in base.accuracy_curve.iter().enumerate() {
            csv.push(vec![task_name.to_string(), "Baseline".into(), e.to_string(), format!("{:.4}", acc)]);
        }

        for defense in defenses {
            let task = build_task(task_name, 7);
            let rpe = cfg.rounds_per_epoch(task.train.len());
            let attack = TimeVarying::new(attack_pool(), true, rpe, 99);
            let mut sim =
                Simulator::new(task, cfg.clone(), build_defense(defense, n, m), Some(Box::new(attack)));
            let r = sim.run();
            print_curve(defense, &r.accuracy_curve);
            for (e, (_, acc)) in r.accuracy_curve.iter().enumerate() {
                csv.push(vec![
                    task_name.to_string(),
                    defense.to_string(),
                    e.to_string(),
                    format!("{:.4}", acc),
                ]);
            }
        }
        println!();
    }
    write_csv("fig5", &csv);
}

fn print_curve(name: &str, curve: &[(usize, f32)]) {
    let cells: Vec<String> = curve.iter().map(|(_, a)| format!("{:>4.0}", 100.0 * a)).collect();
    let best = curve.iter().map(|(_, a)| *a).fold(0.0f32, f32::max);
    println!("{:<12} [{}]  best {:>5.1}%", name, cells.join(""), 100.0 * best);
}
