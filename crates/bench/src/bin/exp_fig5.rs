//! **Fig. 5**: test-accuracy curves under a time-varying attack strategy
//! (the adversary re-rolls its attack every epoch, including "no attack"),
//! for the state-of-the-art defenses against a no-attack baseline.
//!
//! ```sh
//! cargo run --release -p sg-bench --bin exp_fig5 -- [--task fashion|cifar|both] [--epochs N]
//!                                                    [--jobs N] [--smoke]
//!                                                    [--journal PATH] [--resume]
//! ```
//!
//! Every (task, defense) curve — including the no-attack baseline — is one
//! [`sg_runtime::RunPlan`] cell executed concurrently by
//! [`sg_runtime::GridRunner`] (`--jobs` bounds the fan-out; default all
//! cores). Cells share the config seed, the task's cached dataset, and no
//! RNG state, so the curves match a sequential run at any `--jobs` value.
//!
//! `--journal PATH` / `--resume` checkpoint the sweep and continue an
//! interrupted one (see the crate docs on checkpoint & resume).

fn main() {
    sg_bench::sweep::run_standalone("fig5");
}
