//! **Fig. 6**: model accuracy under non-IID data at three skew levels
//! `s ∈ {0.3, 0.5, 0.8}` for the strongest attacks and defenses.
//!
//! ```sh
//! cargo run --release -p sg-bench --bin exp_fig6 -- [--task fashion|cifar|both]
//!                                                    [--epochs N] [--jobs N] [--smoke]
//!                                                    [--journal PATH] [--resume]
//! ```
//!
//! Every (task, attack, defense, skew) combination is one
//! [`sg_runtime::RunPlan`] cell run concurrently by
//! [`sg_runtime::GridRunner`], sharing datasets through the sweep's task
//! cache. Output is reproducible at any `--jobs` value.
//!
//! `--journal PATH` / `--resume` checkpoint the sweep and continue an
//! interrupted one (see the crate docs on checkpoint & resume).

fn main() {
    sg_bench::sweep::run_standalone("fig6");
}
