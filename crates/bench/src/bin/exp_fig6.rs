//! **Fig. 6**: model accuracy under non-IID data at three skew levels
//! `s ∈ {0.3, 0.5, 0.8}` for the strongest attacks and defenses.
//!
//! ```sh
//! cargo run --release -p sg-bench --bin exp_fig6 -- [--task fashion|cifar|both] [--epochs N]
//! ```

use sg_bench::{arg_value, build_attack, build_defense, build_task, write_csv};
use sg_fl::{FlConfig, Partitioning, Simulator};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let epochs: usize = arg_value(&args, "--epochs").map_or(10, |v| v.parse().expect("--epochs N"));
    let task_arg = arg_value(&args, "--task").unwrap_or_else(|| "fashion".into());
    let tasks: Vec<&str> = match task_arg.as_str() {
        "both" => vec!["fashion", "cifar"],
        "fashion" => vec!["fashion"],
        "cifar" => vec!["cifar"],
        other => panic!("unknown task {other}"),
    };
    let attacks = ["Sign-flip", "LIE", "ByzMean"];
    let defenses = ["TrMean", "Multi-Krum", "Bulyan", "DnC", "SignGuard-Sim"];
    let skews = [0.3f32, 0.5, 0.8];

    let mut csv =
        vec![vec!["task".to_string(), "attack".into(), "defense".into(), "s".into(), "best_accuracy".into()]];

    for task_name in &tasks {
        println!("== {} — non-IID accuracy (best %) ==", build_task(task_name, 7).name);
        for attack_name in attacks {
            println!("\n-- attack: {attack_name}");
            println!("{:<15} {:>8} {:>8} {:>8}", "defense", "s=0.3", "s=0.5", "s=0.8");
            for defense in defenses {
                print!("{defense:<15}");
                for s in skews {
                    let cfg = FlConfig {
                        epochs,
                        learning_rate: 0.05,
                        partitioning: Partitioning::NonIid { s },
                        ..FlConfig::default()
                    };
                    let (n, m) = (cfg.num_clients, cfg.byzantine_count());
                    let mut sim = Simulator::new(
                        build_task(task_name, 7),
                        cfg,
                        build_defense(defense, n, m),
                        build_attack(attack_name),
                    );
                    let r = sim.run();
                    print!(" {:>7.2}%", 100.0 * r.best_accuracy);
                    csv.push(vec![
                        task_name.to_string(),
                        attack_name.to_string(),
                        defense.to_string(),
                        format!("{s:.1}"),
                        format!("{:.2}", 100.0 * r.best_accuracy),
                    ]);
                }
                println!();
            }
        }
        println!();
    }
    write_csv("fig6", &csv);
}
