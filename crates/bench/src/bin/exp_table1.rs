//! **Table I**: best test accuracy of every defense under every attack.
//!
//! ```sh
//! cargo run --release -p sg-bench --bin exp_table1 -- [--task mnist|fashion|cifar|agnews|all]
//!                                                      [--epochs N] [--quick]
//! ```
//!
//! `--quick` restricts to the Fashion-like task and the state-of-the-art
//! attacks so the table regenerates in a couple of minutes.

use sg_bench::{arg_present, arg_value, build_attack, build_defense, build_task, write_csv, TABLE1_ATTACKS, TABLE1_DEFENSES};
use sg_fl::{FlConfig, Simulator};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = arg_present(&args, "--quick");
    let epochs: usize = arg_value(&args, "--epochs").map_or(12, |v| v.parse().expect("--epochs N"));
    let task_arg = arg_value(&args, "--task").unwrap_or_else(|| if quick { "fashion".into() } else { "all".into() });

    let task_names: Vec<&str> = match task_arg.as_str() {
        "all" => vec!["mnist", "fashion", "cifar", "agnews"],
        one => vec![match one {
            "mnist" => "mnist",
            "fashion" => "fashion",
            "cifar" => "cifar",
            "agnews" => "agnews",
            other => panic!("unknown task {other}"),
        }],
    };
    let attacks: Vec<&str> = if quick {
        vec!["No Attack", "ByzMean", "Sign-flip", "LIE", "Min-Max", "Min-Sum"]
    } else {
        TABLE1_ATTACKS.to_vec()
    };

    let cfg = FlConfig { epochs, learning_rate: 0.05, ..FlConfig::default() };
    let (n, m) = (cfg.num_clients, cfg.byzantine_count());
    println!("Table I reproduction — {n} clients, {m} Byzantine, {epochs} epochs, IID\n");

    let mut csv = vec![{
        let mut h = vec!["task".to_string(), "defense".to_string()];
        h.extend(attacks.iter().map(|a| a.to_string()));
        h
    }];

    for task_name in &task_names {
        println!("== {} ==", build_task(task_name, 7).name);
        print!("{:<15}", "GAR");
        for a in &attacks {
            print!("{a:>11}");
        }
        println!();
        for defense in TABLE1_DEFENSES {
            print!("{defense:<15}");
            let mut row = vec![task_name.to_string(), defense.to_string()];
            for attack_name in &attacks {
                let task = build_task(task_name, 7);
                let gar = build_defense(defense, n, m);
                let attack = build_attack(attack_name);
                let mut sim = Simulator::new(task, cfg.clone(), gar, attack);
                let r = sim.run();
                print!("{:>10.2}%", 100.0 * r.best_accuracy);
                row.push(format!("{:.2}", 100.0 * r.best_accuracy));
            }
            println!();
            csv.push(row);
        }
        println!();
    }
    write_csv("table1", &csv);
}
