//! **Table I**: best test accuracy of every defense under every attack.
//!
//! ```sh
//! cargo run --release -p sg-bench --bin exp_table1 -- [--task mnist|fashion|cifar|agnews|all]
//!                                                      [--epochs N] [--quick] [--jobs N]
//! ```
//!
//! `--quick` restricts to the Fashion-like task and the state-of-the-art
//! attacks so the table regenerates in a couple of minutes. `--jobs N`
//! bounds the scenario-grid parallelism (default: all cores).
//!
//! Every (task, defense, attack) cell is one [`sg_runtime::RunPlan`] cell
//! executed by [`sg_runtime::GridRunner`]; cells run concurrently but all
//! share the config seed (defenses must be compared on the same model
//! init / partition / batch trajectory), so the table is reproducible at
//! any `--jobs` value and matches a sequential run.

use sg_bench::{
    arg_present, arg_value, build_attack, build_defense, build_task, write_csv, TABLE1_ATTACKS,
    TABLE1_DEFENSES,
};
use sg_fl::{FlConfig, Simulator};
use sg_runtime::{GridRunner, RunPlan};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = arg_present(&args, "--quick");
    let epochs: usize = arg_value(&args, "--epochs").map_or(12, |v| v.parse().expect("--epochs N"));
    let jobs: usize = arg_value(&args, "--jobs").map_or(0, |v| v.parse().expect("--jobs N"));
    let task_arg =
        arg_value(&args, "--task").unwrap_or_else(|| if quick { "fashion".into() } else { "all".into() });

    let task_names: Vec<&str> = match task_arg.as_str() {
        "all" => vec!["mnist", "fashion", "cifar", "agnews"],
        one => vec![match one {
            "mnist" => "mnist",
            "fashion" => "fashion",
            "cifar" => "cifar",
            "agnews" => "agnews",
            other => panic!("unknown task {other}"),
        }],
    };
    let attacks: Vec<&str> = if quick {
        vec!["No Attack", "ByzMean", "Sign-flip", "LIE", "Min-Max", "Min-Sum"]
    } else {
        TABLE1_ATTACKS.to_vec()
    };

    let cfg = FlConfig { epochs, learning_rate: 0.05, ..FlConfig::default() };
    let (n, m) = (cfg.num_clients, cfg.byzantine_count());
    let total_cells = task_names.len() * TABLE1_DEFENSES.len() * attacks.len();
    let runner = GridRunner::new(jobs);
    println!(
        "Table I reproduction — {n} clients, {m} Byzantine, {epochs} epochs, IID, {} grid workers\n",
        runner.parallelism()
    );

    // One grid cell per (task, defense, attack); cells are declared in
    // row-major table order so the report reads back directly into rows.
    // Every cell keeps the shared cfg.seed (not its per-cell schedule
    // seed): Table I compares defenses on the *same* model init, data
    // partition and client-batch trajectory, and cells share no RNG
    // state, so the shared seed is both comparable and parallel-safe.
    let mut plan: RunPlan<f32> = RunPlan::new(cfg.seed);
    for task_name in &task_names {
        for defense in TABLE1_DEFENSES {
            for attack_name in &attacks {
                let (task_name, defense, attack_name) =
                    (task_name.to_string(), defense.to_string(), attack_name.to_string());
                let cfg = cfg.clone();
                plan.cell(format!("{task_name}/{defense}/{attack_name}"), move |ctx| {
                    let task = build_task(&task_name, 7);
                    let gar = build_defense(&defense, n, m);
                    let attack = build_attack(&attack_name);
                    let mut sim = Simulator::new(task, cfg, gar, attack);
                    let acc = sim.run().best_accuracy;
                    // Progress to stderr as cells finish (stdout carries
                    // the table, printed in order at the end).
                    eprintln!(
                        "[grid {}/{}] {} -> {:.2}%",
                        ctx.index + 1,
                        total_cells,
                        ctx.label,
                        100.0 * acc
                    );
                    acc
                });
            }
        }
    }
    let report = runner.run(plan);

    let mut csv = vec![{
        let mut h = vec!["task".to_string(), "defense".to_string()];
        h.extend(attacks.iter().map(|a| a.to_string()));
        h
    }];

    let mut cells = report.cells.iter();
    for task_name in &task_names {
        println!("== {} ==", build_task(task_name, 7).name);
        print!("{:<15}", "GAR");
        for a in &attacks {
            print!("{a:>11}");
        }
        println!();
        for defense in TABLE1_DEFENSES {
            print!("{defense:<15}");
            let mut row = vec![task_name.to_string(), defense.to_string()];
            for _ in &attacks {
                let cell = cells.next().expect("report covers the full grid");
                let acc = cell.output;
                print!("{:>10.2}%", 100.0 * acc);
                row.push(format!("{:.2}", 100.0 * acc));
            }
            println!();
            csv.push(row);
        }
        println!();
    }
    write_csv("table1", &csv);
}
