//! **Table I**: best test accuracy of every defense under every attack.
//!
//! ```sh
//! cargo run --release -p sg-bench --bin exp_table1 -- [--task mnist|fashion|cifar|agnews|all]
//!                                                      [--epochs N] [--quick] [--jobs N] [--smoke]
//!                                                      [--journal PATH] [--resume]
//! ```
//!
//! `--quick` restricts to the Fashion-like task and the state-of-the-art
//! attacks so the table regenerates in minutes. Every (task, defense,
//! attack) cell is one [`sg_runtime::RunPlan`] cell executed by
//! [`sg_runtime::GridRunner`] (`--jobs` bounds the fan-out; default all
//! cores): cells share each task's generated dataset through the sweep's
//! task cache, shard their inner work on the grid's two-level engine, and
//! all share the config seed — defenses must be compared on the same
//! model init / partition / batch trajectory — so the table is
//! reproducible at any `--jobs` value and matches a sequential run.
//!
//! `--journal PATH` / `--resume` checkpoint the sweep and continue an
//! interrupted one (see the crate docs on checkpoint & resume).

fn main() {
    sg_bench::sweep::run_standalone("table1");
}
