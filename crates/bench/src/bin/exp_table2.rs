//! **Table II**: average selected rate of honest (H) and malicious (M)
//! gradients for the three SignGuard variants on the residual-network task.
//!
//! ```sh
//! cargo run --release -p sg-bench --bin exp_table2 -- [--epochs N] [--task cifar]
//! ```

use sg_bench::{arg_value, build_attack, build_task, write_csv};
use sg_core::SignGuard;
use sg_fl::{FlConfig, Simulator};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let epochs: usize = arg_value(&args, "--epochs").map_or(8, |v| v.parse().expect("--epochs N"));
    let task_name = arg_value(&args, "--task").unwrap_or_else(|| "cifar".into());

    let attacks = ["ByzMean", "Sign-flip", "LIE", "Min-Max", "Min-Sum"];
    type VariantCtor = fn() -> SignGuard;
    let variants: [(&str, VariantCtor); 3] = [
        ("SignGuard", || SignGuard::plain(0)),
        ("SignGuard-Sim", || SignGuard::sim(0)),
        ("SignGuard-Dist", || SignGuard::dist(0)),
    ];

    let cfg = FlConfig { epochs, learning_rate: 0.05, ..FlConfig::default() };
    println!(
        "Table II reproduction — selection rates on {} ({} clients, {} Byzantine)\n",
        build_task(&task_name, 7).name,
        cfg.num_clients,
        cfg.byzantine_count()
    );
    println!(
        "{:<11} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Attack", "SG H", "SG M", "Sim H", "Sim M", "Dist H", "Dist M"
    );

    let mut csv = vec![vec![
        "attack".to_string(),
        "signguard_h".to_string(),
        "signguard_m".to_string(),
        "sim_h".to_string(),
        "sim_m".to_string(),
        "dist_h".to_string(),
        "dist_m".to_string(),
    ]];

    for attack_name in attacks {
        let mut cells = Vec::new();
        for (_, make) in &variants {
            let task = build_task(&task_name, 7);
            let attack = build_attack(attack_name);
            let mut sim = Simulator::new(task, cfg.clone(), Box::new(make()), attack);
            let r = sim.run();
            cells.push((r.selection.honest_rate(), r.selection.malicious_rate()));
        }
        println!(
            "{:<11} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
            attack_name, cells[0].0, cells[0].1, cells[1].0, cells[1].1, cells[2].0, cells[2].1
        );
        csv.push(vec![
            attack_name.to_string(),
            format!("{:.4}", cells[0].0),
            format!("{:.4}", cells[0].1),
            format!("{:.4}", cells[1].0),
            format!("{:.4}", cells[1].1),
            format!("{:.4}", cells[2].0),
            format!("{:.4}", cells[2].1),
        ]);
    }
    write_csv("table2", &csv);
}
