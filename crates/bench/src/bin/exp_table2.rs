//! **Table II**: average selected rate of honest (H) and malicious (M)
//! gradients for the three SignGuard variants on the residual-network task.
//!
//! ```sh
//! cargo run --release -p sg-bench --bin exp_table2 -- [--epochs N] [--task cifar] [--jobs N] [--smoke]
//! cargo run --release -p sg-bench --bin exp_table2 -- [--journal PATH] [--resume]
//! ```
//!
//! Every (attack, variant) pair is one [`sg_runtime::RunPlan`] cell
//! executed concurrently by [`sg_runtime::GridRunner`] (`--jobs` bounds
//! the fan-out; default all cores). Cells share the config seed — variants
//! must be compared on the same model init / partition / batch trajectory
//! — and the task's dataset (via the sweep cache), and share no RNG
//! state, so the table matches a sequential run at any `--jobs` value.
//!
//! `--journal PATH` / `--resume` checkpoint the sweep and continue an
//! interrupted one (see the crate docs on checkpoint & resume).

fn main() {
    sg_bench::sweep::run_standalone("table2");
}
