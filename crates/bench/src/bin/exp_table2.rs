//! **Table II**: average selected rate of honest (H) and malicious (M)
//! gradients for the three SignGuard variants on the residual-network task.
//!
//! ```sh
//! cargo run --release -p sg-bench --bin exp_table2 -- [--epochs N] [--task cifar] [--jobs N]
//! ```
//!
//! Every (attack, variant) cell is one [`sg_runtime::RunPlan`] cell
//! executed concurrently by [`sg_runtime::GridRunner`] (`--jobs` bounds the
//! fan-out; default all cores). Cells share the config seed — variants must
//! be compared on the same model init / partition / batch trajectory — and
//! share no RNG state, so the table matches a sequential run at any
//! `--jobs` value.

use sg_bench::{arg_value, build_attack, build_task, write_csv};
use sg_core::SignGuard;
use sg_fl::{FlConfig, Simulator};
use sg_runtime::{GridRunner, RunPlan};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let epochs: usize = arg_value(&args, "--epochs").map_or(8, |v| v.parse().expect("--epochs N"));
    let jobs: usize = arg_value(&args, "--jobs").map_or(0, |v| v.parse().expect("--jobs N"));
    let task_name = arg_value(&args, "--task").unwrap_or_else(|| "cifar".into());

    let attacks = ["ByzMean", "Sign-flip", "LIE", "Min-Max", "Min-Sum"];
    type VariantCtor = fn() -> SignGuard;
    let variants: [(&str, VariantCtor); 3] = [
        ("SignGuard", || SignGuard::plain(0)),
        ("SignGuard-Sim", || SignGuard::sim(0)),
        ("SignGuard-Dist", || SignGuard::dist(0)),
    ];

    let cfg = FlConfig { epochs, learning_rate: 0.05, ..FlConfig::default() };
    let runner = GridRunner::new(jobs);
    println!(
        "Table II reproduction — selection rates on {} ({} clients, {} Byzantine, {} grid workers)\n",
        build_task(&task_name, 7).name,
        cfg.num_clients,
        cfg.byzantine_count(),
        runner.parallelism()
    );

    // One cell per (attack, variant), declared in row-major table order so
    // the report reads back directly into rows.
    let mut plan: RunPlan<(f32, f32)> = RunPlan::new(cfg.seed);
    for attack_name in attacks {
        for (variant_name, make) in &variants {
            let make = *make;
            let cfg = cfg.clone();
            let task_name = task_name.clone();
            plan.cell(format!("{attack_name}/{variant_name}"), move |_ctx| {
                let task = build_task(&task_name, 7);
                let attack = build_attack(attack_name);
                let mut sim = Simulator::new(task, cfg, Box::new(make()), attack);
                let r = sim.run();
                (r.selection.honest_rate(), r.selection.malicious_rate())
            });
        }
    }
    let report = runner.run(plan);

    println!(
        "{:<11} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Attack", "SG H", "SG M", "Sim H", "Sim M", "Dist H", "Dist M"
    );

    let mut csv = vec![vec![
        "attack".to_string(),
        "signguard_h".to_string(),
        "signguard_m".to_string(),
        "sim_h".to_string(),
        "sim_m".to_string(),
        "dist_h".to_string(),
        "dist_m".to_string(),
    ]];

    let mut cells_iter = report.cells.iter();
    for attack_name in attacks {
        let cells: Vec<(f32, f32)> =
            variants.iter().map(|_| cells_iter.next().expect("report covers the grid").output).collect();
        println!(
            "{:<11} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
            attack_name, cells[0].0, cells[0].1, cells[1].0, cells[1].1, cells[2].0, cells[2].1
        );
        csv.push(vec![
            attack_name.to_string(),
            format!("{:.4}", cells[0].0),
            format!("{:.4}", cells[0].1),
            format!("{:.4}", cells[1].0),
            format!("{:.4}", cells[1].1),
            format!("{:.4}", cells[2].0),
            format!("{:.4}", cells[2].1),
        ]);
    }
    write_csv("table2", &csv);
}
