//! **Table III**: ablation of SignGuard's defensive components —
//! norm thresholding, sign clustering, norm clipping — under the Random,
//! Reverse-with-scaling and LIE attacks.
//!
//! The reverse attack scales the flipped gradient by the norm bound `R`
//! when thresholding/clipping is active, or by 100 otherwise (as in the
//! paper's Section VI-C).
//!
//! ```sh
//! cargo run --release -p sg-bench --bin exp_table3 -- [--epochs N] [--task cifar]
//! ```

use sg_attacks::{Attack, Lie, RandomAttack, ReverseScaling};
use sg_bench::{arg_value, build_task, write_csv};
use sg_core::{SignGuardBuilder, SimilarityFeature};
use sg_fl::{FlConfig, Simulator};

struct Row {
    thresholding: bool,
    clustering: bool,
    clipping: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let epochs: usize = arg_value(&args, "--epochs").map_or(8, |v| v.parse().expect("--epochs N"));
    let task_name = arg_value(&args, "--task").unwrap_or_else(|| "cifar".into());

    let rows = [
        Row { thresholding: true, clustering: false, clipping: false },
        Row { thresholding: false, clustering: true, clipping: false },
        Row { thresholding: false, clustering: false, clipping: true },
        Row { thresholding: true, clustering: true, clipping: false },
        Row { thresholding: false, clustering: true, clipping: true },
        Row { thresholding: true, clustering: true, clipping: true },
    ];

    let cfg = FlConfig { epochs, learning_rate: 0.05, ..FlConfig::default() };
    println!(
        "Table III reproduction — component ablation on {} (SignGuard-Sim)\n",
        build_task(&task_name, 7).name
    );
    println!(
        "{:<14}{:<12}{:<10} {:>9} {:>9} {:>9}",
        "Thresholding", "Clustering", "NormClip", "Random", "Reverse", "LIE"
    );

    let mut csv = vec![vec![
        "thresholding".into(),
        "clustering".into(),
        "norm_clip".into(),
        "random".into(),
        "reverse".into(),
        "lie".to_string(),
    ]];

    for row in &rows {
        let mark = |b: bool| if b { "yes" } else { "-" };
        print!("{:<14}{:<12}{:<10}", mark(row.thresholding), mark(row.clustering), mark(row.clipping));
        let mut cells: Vec<String> = Vec::new();
        for attack_name in ["random", "reverse", "lie"] {
            // Reverse scaling r: the norm bound R when a norm defense is up,
            // otherwise a blatant 100x.
            let r_scale = if row.thresholding || row.clipping { 3.0 } else { 100.0 };
            let attack: Box<dyn Attack> = match attack_name {
                "random" => Box::new(RandomAttack::new()),
                "reverse" => Box::new(ReverseScaling::new(r_scale)),
                _ => Box::new(Lie::new()),
            };
            let gar = SignGuardBuilder::new()
                .similarity(SimilarityFeature::Cosine)
                .norm_filter(row.thresholding)
                .cluster_filter(row.clustering)
                .norm_clipping(row.clipping)
                .seed(0)
                .build();
            let task = build_task(&task_name, 7);
            let mut sim = Simulator::new(task, cfg.clone(), Box::new(gar), Some(attack));
            let res = sim.run();
            print!(" {:>8.2}%", 100.0 * res.best_accuracy);
            cells.push(format!("{:.2}", 100.0 * res.best_accuracy));
        }
        println!();
        csv.push(vec![
            row.thresholding.to_string(),
            row.clustering.to_string(),
            row.clipping.to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    write_csv("table3", &csv);
}
