//! **Table III**: ablation of SignGuard's defensive components —
//! norm thresholding, sign clustering, norm clipping — under the Random,
//! Reverse-with-scaling and LIE attacks.
//!
//! ```sh
//! cargo run --release -p sg-bench --bin exp_table3 -- [--epochs N] [--task cifar]
//!                                                      [--jobs N] [--smoke] [--seed N]
//!                                                      [--journal PATH] [--resume]
//! ```
//!
//! Every (component row, attack) pair is one [`sg_runtime::RunPlan`] cell
//! run by [`sg_runtime::GridRunner`] (`--jobs` bounds the fan-out); cells
//! share the generated dataset through the sweep's task cache and shard
//! their inner work on the grid's two-level engine. Output is
//! reproducible at any `--jobs` value. The reverse attack scales the
//! flipped gradient by the norm bound `R` when thresholding/clipping is
//! active, or by 100 otherwise (paper Section VI-C).
//!
//! `--journal PATH` / `--resume` checkpoint the sweep and continue an
//! interrupted one (see the crate docs on checkpoint & resume).

fn main() {
    sg_bench::sweep::run_standalone("table3");
}
