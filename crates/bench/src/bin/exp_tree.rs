//! Flat vs two-level hierarchical aggregation (the `tree` section).
//!
//! Default mode sweeps the flat/tree comparison grid under the paper's
//! attacks (see `sg_bench::sweep::plan_tree`) and writes the CSV under
//! `target/experiments/tree.csv` — byte-identical at any `--jobs`, which
//! CI's `tree-smoke` job enforces with `cmp`.
//!
//! `--tcp-check` instead runs one two-leaf fan-in twice — over the
//! deterministic loopback and over real sockets — and writes both root
//! models as bit-exact artifacts (`--out-loopback`, `--out-tcp`; defaults
//! under `target/experiments/`). The run itself asserts the TCP root model
//! reproduces the loopback one bit for bit; CI additionally `cmp`s the two
//! artifact files.

use std::sync::Arc;

use sg_bench::{build_attack, netargs, ExpArgs};
use sg_core::SignGuard;
use sg_fl::{FlConfig, VirtualPopulation};
use sg_net::{run_tree_loopback, run_tree_tcp, TreeTopology};
use sg_runtime::Engine;

fn main() {
    let args = ExpArgs::parse();
    if args.flag("--tcp-check") {
        tcp_check(&args);
        return;
    }
    sg_bench::sweep::run_standalone("tree");
}

/// Two-leaf TCP fan-in vs loopback: same seeds, same topology, two
/// transports, one root model.
fn tcp_check(args: &ExpArgs) {
    args.init_obs();
    let seed = args.seed(42);
    let task = sg_bench::build_task(&args.task("mlp"), sg_bench::sweep::DATA_SEED);
    // Two leaves: 8 clients in 4-wide shards, full shard participation.
    let cfg = FlConfig {
        num_clients: 8,
        byzantine_fraction: 0.25,
        batch_size: 8,
        learning_rate: 0.05,
        seed,
        ..FlConfig::default()
    };
    let topo = TreeTopology::new(cfg.num_clients, 4, 4, seed);
    let rounds = 3;
    let attack_name = args.value("--attack").unwrap_or_else(|| "Sign-flip".into());
    let pop = Arc::new(VirtualPopulation::build(
        &task,
        &cfg,
        build_attack(&attack_name).as_deref(),
        &sg_fl::PartitionCache::new(),
    ));
    let engine = Engine::parallel(args.jobs());

    let gf = || Box::new(SignGuard::plain(0)) as Box<dyn sg_aggregators::Aggregator>;
    let attack_name_ref = &attack_name;
    let af = move || build_attack(attack_name_ref);
    let loopback = run_tree_loopback(&task, &cfg, &topo, rounds, &pop, &gf, &af, &engine, 1, 3);
    let tcp = run_tree_tcp(&task, &cfg, &topo, rounds, &pop, gf, af, &engine, 2);

    let dir = sg_bench::experiments_dir();
    let out_loop = args
        .value("--out-loopback")
        .map_or_else(|| dir.join("tree_loopback.model"), std::path::PathBuf::from);
    let out_tcp =
        args.value("--out-tcp").map_or_else(|| dir.join("tree_tcp.model"), std::path::PathBuf::from);
    netargs::write_model(&out_loop, &loopback.final_params);
    netargs::write_model(&out_tcp, &tcp.final_params);

    let loop_bits: Vec<u32> = loopback.final_params.iter().map(|p| p.to_bits()).collect();
    let tcp_bits: Vec<u32> = tcp.final_params.iter().map(|p| p.to_bits()).collect();
    let losses_match =
        loopback.round_losses.iter().map(|l| l.to_bits()).eq(tcp.round_losses.iter().map(|l| l.to_bits()));
    println!(
        "[exp_tree] tcp-check: {} leaves x {rounds} rounds under {attack_name}; \
         loopback -> {}, tcp -> {}",
        topo.num_leaves(),
        out_loop.display(),
        out_tcp.display()
    );
    sg_bench::finish_obs();
    if loop_bits != tcp_bits || !losses_match {
        eprintln!("[exp_tree] FAIL: TCP root model diverged from the loopback run");
        std::process::exit(3);
    }
    println!("[exp_tree] OK: TCP root model reproduces the loopback run bit for bit");
}
