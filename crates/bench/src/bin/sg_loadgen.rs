//! **sg-loadgen**: drives N synthetic federated clients against an
//! `sg-server` — one thread per client, each running the real
//! [`sg_net::ClientDriver`] protocol state machine over a
//! [`sg_net::TcpClient`] — or, with `--loopback`, runs the same fleet
//! in-process on the deterministic [`sg_net::LoopbackNet`] to produce the
//! bit-exact reference model.
//!
//! ```sh
//! cargo run --release -p sg-bench --bin sg-loadgen -- \
//!     [--task NAME] [--seed N] [--clients N] [--byz F] [--batch N] [--epochs N] \
//!     [--attack NAME] [--rate F] \
//!     (--addr HOST:PORT | --port-file PATH | --loopback) \
//!     [--defense NAME] [--latency-seed N] [--max-latency N] [--out MODEL]
//! ```
//!
//! * The scenario flags must match the server's: the fleet is built by
//!   [`sg_fl::build_participants`] from the same seed schedule, so the
//!   gradients crossing the socket are bit-identical to the ones an
//!   in-process run would produce. The honest/Byzantine mix is inherent —
//!   clients `0..⌊βn⌋` carry any data poisoning the attack specifies, and
//!   the server's adversary rewrites their submissions at the drain.
//! * `--rate F` throttles each client to at most `F` submits/sec
//!   (`0` = unthrottled); backpressure rejects back off exponentially and
//!   resend the *cached* gradient, so throttling never perturbs the model.
//! * `--loopback` ignores the address flags and runs the whole protocol
//!   in-process (virtual clock seeded by `--latency-seed`); with `--out`
//!   it writes the reference model artifact the `net-smoke` CI job
//!   compares the socket run against. `--defense` is only meaningful here
//!   (over TCP the server owns the defense).
//!
//! Exit status: `0` when every client finished its run, `4` when any
//! client errored out.

use std::net::SocketAddr;
use std::path::Path;
use std::time::{Duration, Instant};

use sg_bench::netargs::{self, NetScenario};
use sg_bench::ExpArgs;
use sg_fl::{build_participants, PartitionCache};
use sg_net::wire::{Message, RejectReason};
use sg_net::{ClientDriver, FlService, LoopbackNet, TcpClient};
use sg_runtime::Engine;

fn main() {
    let a = ExpArgs::parse();
    a.init_obs();
    let sc = NetScenario::from_args(&a);
    let task = sc.task();
    let cfg = sc.fl_config();
    cfg.validate();
    let attack = sg_bench::build_attack(&sc.attack_name);

    let participants = build_participants(&task, &cfg, attack.as_deref(), &PartitionCache::new());
    let drivers: Vec<ClientDriver> = participants
        .clients
        .into_iter()
        .map(|c| ClientDriver::new(c, task.train.clone(), cfg.batch_size))
        .collect();

    if a.flag("--loopback") {
        let latency_seed = a.value("--latency-seed").map_or(1, |v| v.parse().expect("--latency-seed N"));
        let max_latency = a.value("--max-latency").map_or(5, |v| v.parse().expect("--max-latency N"));
        let defense = a.value("--defense").unwrap_or_else(|| "SignGuard".into());
        let gar = sg_bench::build_defense(&defense, cfg.num_clients, cfg.byzantine_count());
        println!("[sg-loadgen] loopback reference · {} · defense {defense}", sc.describe());
        let mut net = LoopbackNet::new(drivers, latency_seed, max_latency);
        let service = FlService::new(&task, &cfg, gar, attack, &Engine::sequential());
        let report = service.run(&mut net);
        println!(
            "[sg-loadgen] {} rounds · msgs {}/{} in/out · virtual clock {}",
            report.rounds,
            report.messages_in,
            report.messages_out,
            net.now()
        );
        if let Some(out) = a.out() {
            netargs::write_model(&out, &report.final_params);
            println!("[model] {}", out.display());
        }
        sg_bench::finish_obs();
        return;
    }

    let addr = resolve_addr(&a);
    let rate: f64 = a.value("--rate").map_or(0.0, |v| v.parse().expect("--rate F"));
    println!(
        "[sg-loadgen] {} client(s) -> {addr} · rate {} · {}",
        cfg.num_clients,
        if rate > 0.0 { format!("{rate}/s per client") } else { "unthrottled".into() },
        sc.describe()
    );

    let start = Instant::now();
    let handles: Vec<_> = drivers
        .into_iter()
        .map(|driver| {
            let id = driver.id();
            let handle = std::thread::spawn(move || run_client(addr, driver, rate));
            (id, handle)
        })
        .collect();

    let mut submits = 0u64;
    let mut retries = 0u64;
    let mut failures = 0usize;
    for (id, handle) in handles {
        match handle.join().expect("client thread panicked") {
            Ok((s, r)) => {
                submits += s;
                retries += r;
            }
            Err(e) => {
                eprintln!("[sg-loadgen] client {id}: {e}");
                failures += 1;
            }
        }
    }
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    println!(
        "[sg-loadgen] {} submits ({retries} backpressure retries) in {wall:.2}s — {:.1} updates/s, {failures} failed client(s)",
        submits,
        submits as f64 / wall
    );
    sg_bench::finish_obs();
    if failures > 0 {
        std::process::exit(4);
    }
}

/// `--addr HOST:PORT` directly, or `--port-file PATH` published by the
/// server (waits up to 30s for it to appear).
fn resolve_addr(a: &ExpArgs) -> SocketAddr {
    if let Some(addr) = a.value("--addr") {
        return addr.parse().expect("--addr HOST:PORT");
    }
    if let Some(path) = a.value("--port-file") {
        return netargs::wait_for_port_file(Path::new(&path), Duration::from_secs(30))
            .expect("resolve server address");
    }
    panic!("one of --addr, --port-file or --loopback is required");
}

/// One client's life: connect, join, then pump the protocol state
/// machine until the server announces the final round. Returns
/// `(submits, backpressure retries)`.
fn run_client(addr: SocketAddr, mut driver: ClientDriver, rate: f64) -> std::io::Result<(u64, u64)> {
    let mut conn = TcpClient::connect(&addr)?;
    let min_gap = if rate > 0.0 { Some(Duration::from_secs_f64(1.0 / rate)) } else { None };
    let mut last_submit: Option<Instant> = None;
    let mut backoff = 0u32;
    for msg in driver.on_connect() {
        conn.send(&msg)?;
    }
    while !driver.is_done() {
        let incoming = conn.recv()?;
        // Pace retries: the server's submit queue was full, and hammering
        // it only burns the socket — the cached gradient can wait.
        if matches!(incoming, Message::SubmitReject { reason: RejectReason::Backpressure, .. }) {
            backoff = backoff.saturating_add(1);
            std::thread::sleep(netargs::backpressure_backoff(backoff));
        } else {
            backoff = 0;
        }
        for reply in driver.on_message(&incoming) {
            if matches!(reply, Message::SubmitUpdate { .. }) {
                if let (Some(gap), Some(at)) = (min_gap, last_submit) {
                    let since = at.elapsed();
                    if since < gap {
                        std::thread::sleep(gap - since);
                    }
                }
                last_submit = Some(Instant::now());
            }
            conn.send(&reply)?;
        }
    }
    Ok((driver.submits(), driver.retries()))
}
