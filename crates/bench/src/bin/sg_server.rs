//! **sg-server**: the SignGuard parameter server over real sockets — the
//! [`sg_net::FlService`] round pipeline behind the framed wire protocol
//! on a [`sg_net::TcpServerTransport`].
//!
//! ```sh
//! cargo run --release -p sg-bench --bin sg-server -- \
//!     [--task NAME] [--seed N] [--clients N] [--byz F] [--batch N] [--epochs N] \
//!     [--defense NAME] [--attack NAME] [--jobs N] \
//!     [--port N] [--port-file PATH] [--max-conns N] [--max-pending N] \
//!     [--idle-timeout SECS] [--out MODEL] [--metrics ADDR] [--trace PATH]
//! ```
//!
//! * The scenario flags (`--task … --attack`) must match the loadgen's —
//!   they fix the seed schedule both sides derive their state from.
//! * `--port 0` (default) binds an ephemeral port; `--port-file PATH`
//!   publishes the resolved address for `sg-loadgen --port-file`.
//! * `--max-pending N` bounds the inbound submit queue — submits past it
//!   are answered with `SubmitReject(Backpressure)` by the connection
//!   handler and retried by the client.
//! * `--out MODEL` writes the final parameter vector as a bit-exact
//!   artifact ([`sg_bench::netargs::write_model`]); the `net-smoke` CI
//!   job `cmp`s it against a loopback run's to prove the socket path
//!   preserves the model bit-for-bit.
//! * `--metrics ADDR` serves the live `sg-obs` summary as plain text over
//!   HTTP; `--trace PATH` streams the JSONL trace (per-connection spans
//!   included), like every other harness binary.
//!
//! Exit status: `0` when every scheduled round was applied, `3` when the
//! run ended early (idle timeout with clients missing).

use std::time::Duration;

use sg_bench::netargs::{self, NetScenario};
use sg_bench::ExpArgs;
use sg_net::TcpServerTransport;
use sg_runtime::Engine;

fn main() {
    let a = ExpArgs::parse();
    a.init_obs();
    let sc = NetScenario::from_args(&a);
    let task = sc.task();
    let cfg = sc.fl_config();
    cfg.validate();

    let defense = a.value("--defense").unwrap_or_else(|| "SignGuard".into());
    let gar = sg_bench::build_defense(&defense, cfg.num_clients, cfg.byzantine_count());
    let attack = sg_bench::build_attack(&sc.attack_name);
    let jobs = a.jobs();
    let engine = if jobs <= 1 { Engine::sequential() } else { Engine::parallel(jobs) };

    let port: u16 = a.value("--port").map_or(0, |v| v.parse().expect("--port N"));
    let max_conns = a.value("--max-conns").map_or(cfg.num_clients + 2, |v| v.parse().expect("--max-conns N"));
    let max_pending =
        a.value("--max-pending").map_or(cfg.num_clients, |v| v.parse().expect("--max-pending N"));
    let mut transport = TcpServerTransport::bind(&format!("127.0.0.1:{port}"), max_conns, max_pending)
        .expect("bind server port");
    if let Some(secs) = a.value("--idle-timeout") {
        transport.set_idle_timeout(Duration::from_secs(secs.parse().expect("--idle-timeout SECS")));
    }
    let addr = transport.local_addr();
    println!("[sg-server] listening on {addr}");
    println!("[sg-server] {} · defense {defense}", sc.describe());
    if let Some(port_file) = a.value("--port-file") {
        netargs::write_port_file(std::path::Path::new(&port_file), addr);
    }
    let metrics = a.value("--metrics").map(|maddr| {
        let server = netargs::serve_metrics(&maddr).expect("bind metrics endpoint");
        println!("[sg-server] metrics at http://{}/", server.addr());
        server
    });

    let service = sg_net::FlService::new(&task, &cfg, gar, attack, &engine);
    let total_rounds = service.total_rounds();
    let report = service.run(&mut transport);

    // Graceful teardown: the transport first (unblocks and joins every
    // connection handler), then the metrics endpoint.
    transport.shutdown();
    if let Some(server) = metrics {
        server.stop();
    }

    let complete = report.rounds == total_rounds;
    println!(
        "[sg-server] {} — rounds {}/{total_rounds} · msgs {}/{} in/out · {} protocol rejects",
        if complete { "run complete" } else { "run INCOMPLETE" },
        report.rounds,
        report.messages_in,
        report.messages_out,
        report.rejects,
    );
    if let Some(last) = report.round_losses.last() {
        println!("[sg-server] final mean honest loss {last:.6}");
    }
    if let Some(out) = a.out() {
        netargs::write_model(&out, &report.final_params);
        println!("[model] {}", out.display());
    }
    sg_bench::finish_obs();
    if !complete {
        std::process::exit(3);
    }
}
