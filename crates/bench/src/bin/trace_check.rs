//! **trace_check**: validates an `sg-obs` JSONL trace.
//!
//! ```sh
//! cargo run --release -p sg-bench --bin trace_check -- PATH [--min-spans N]
//! ```
//!
//! Every non-empty line must be a well-formed JSON object carrying an
//! `"ev"` field (checked by `sg_obs::validate_jsonl` — no JSON crate
//! involved). Prints the event/span tally; exits 1 on a malformed trace,
//! a missing `"end"` trailer, or fewer than `--min-spans` span events
//! (CI's `trace-smoke` job uses this to assert a traced sweep actually
//! emitted stage-level spans for its cells).

use sg_bench::{arg_value, ExpArgs};

fn main() {
    let a = ExpArgs::parse();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = args
        .iter()
        .find(|s| !s.starts_with("--") && arg_value(&args, "--min-spans").as_deref() != Some(s))
        .unwrap_or_else(|| {
            eprintln!("usage: trace_check PATH [--min-spans N]");
            std::process::exit(2);
        });
    let min_spans: usize = a.value("--min-spans").map_or(1, |v| v.parse().expect("--min-spans N"));

    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("trace_check: {path}: {e}");
        std::process::exit(1);
    });
    match sg_obs::validate_jsonl(&text) {
        Ok(stats) => {
            println!(
                "trace_check: {path}: {} events, {} spans, terminated: {}",
                stats.lines, stats.spans, stats.terminated
            );
            if !stats.terminated {
                eprintln!("trace_check: trace has no \"end\" trailer (run died mid-sweep?)");
                std::process::exit(1);
            }
            if stats.spans < min_spans {
                eprintln!("trace_check: only {} span event(s), expected >= {min_spans}", stats.spans);
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("trace_check: {path}: {e}");
            std::process::exit(1);
        }
    }
}
