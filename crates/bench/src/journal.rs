//! Checkpoint & resume: the crash-safe sweep journal.
//!
//! Long `exp_all` sweeps are the unit of paper reproduction, and a crash
//! or CI timeout must not throw away completed cells. The journal makes a
//! sweep restartable with a hard guarantee: **a resumed sweep emits a
//! consolidated report byte-identical to an uninterrupted run** (see
//! [`crate::sweep::run_sections`], which owns the orchestration).
//!
//! # File format
//!
//! A journal is an append-only file: an 8-byte magic (`b"SGJRNL1\n"`),
//! then a sequence of *frames*. Every frame is
//!
//! ```text
//! len: u32 LE | len_chk: u32 LE (= !len) | payload[len] | crc32(payload): u32 LE
//! ```
//!
//! The first frame's payload is the [`JournalHeader`] (kind byte `H`);
//! every later frame is one [`CellRecord`] (kind byte `C`) holding a
//! completed grid cell's plan index, schedule seed, label and output rows
//! inline. Records are appended — and fsync'd — one per completed cell,
//! in plan order (the [`sg_runtime::RunOpts::on_cell`] hook guarantees
//! plan order regardless of worker interleaving), so the journal is
//! always a plan-order prefix of the executed cells.
//!
//! # Fingerprint keying
//!
//! The header pins everything a resume must agree on before any journaled
//! row may be trusted: the plan fingerprint (a digest over the option set,
//! every section's cell labels and the `--jobs`-independent seed
//! schedule), per-section fingerprints (so a mismatch can name the
//! offending section), the dataset fingerprints of every task the plan
//! touches, the master/data seeds, and a digest of the executable itself
//! (so a rebuilt binary with changed simulation code cannot quietly adopt
//! cells computed by the old code). A journal written by a different
//! plan or build — an edited section, smoke vs full, another seed, a code
//! change — is **refused**, never silently mixed into a report.
//!
//! # Crash safety
//!
//! * Each append is a single `write_all` followed by `fsync`, so a crash
//!   leaves at most one *torn* frame at the tail.
//! * [`parse`] recovers the longest valid prefix: a trailing incomplete
//!   frame is dropped (and reported via [`Parsed::torn_bytes`]);
//!   [`JournalWriter::resume`] truncates it before appending.
//! * Corruption is never mistaken for truncation: the frame length is
//!   stored with its bitwise complement and the payload carries a CRC-32,
//!   so a flipped byte anywhere in a *complete* frame fails parsing with
//!   [`JournalError::Corrupt`] instead of shortening the journal.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::Path;

/// File magic: identifies a sweep journal, version 1.
pub const MAGIC: &[u8; 8] = b"SGJRNL1\n";

/// Header payload kind byte.
const KIND_HEADER: u8 = b'H';
/// Cell-record payload kind byte.
const KIND_CELL: u8 = b'C';

/// Frame overhead: `len` + `len_chk` before the payload, CRC after it.
const FRAME_PREFIX: usize = 8;
const FRAME_SUFFIX: usize = 4;

// ---- CRC-32 (IEEE 802.3) ----------------------------------------------

/// CRC-32 (IEEE) over `bytes` — the per-frame payload checksum.
///
/// Shared with the `sg-net` wire protocol; the implementation lives in
/// [`sg_math::crc`], re-exported here for the journal's callers.
pub use sg_math::crc32;

// ---- Errors ------------------------------------------------------------

/// Why a journal could not be read.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure.
    Io(io::Error),
    /// The file does not start with the journal magic.
    BadMagic,
    /// The file ends before a complete header frame — nothing usable.
    TornHeader,
    /// A complete frame failed validation (length complement or CRC), or
    /// its payload did not decode: the journal is damaged, not torn.
    Corrupt {
        /// Byte offset of the offending frame.
        offset: usize,
        /// What failed.
        reason: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "journal I/O error: {e}"),
            Self::BadMagic => write!(f, "not a sweep journal (bad magic)"),
            Self::TornHeader => write!(f, "journal header is incomplete (crash before the first fsync?)"),
            Self::Corrupt { offset, reason } => {
                write!(f, "journal corrupt at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

// ---- Data model --------------------------------------------------------

/// One section's identity inside the header: enough to name the offending
/// section when a resume is refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionMark {
    /// Experiment key (`table1`, `fig4`, …).
    pub exp: String,
    /// Number of plan cells the section declared.
    pub cells: u32,
    /// Digest over the section's header columns, cell labels and seeds.
    pub fp: u64,
}

/// One generated dataset's identity: task name plus the train/test
/// [`Dataset::fingerprint`](sg_data::Dataset::fingerprint) digests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetMark {
    /// Task short name (`mlp`, `cifar`, …).
    pub task: String,
    /// Fingerprint of the generated training split.
    pub train_fp: u64,
    /// Fingerprint of the generated test split.
    pub test_fp: u64,
}

/// The journal's first record: the full identity of the sweep it belongs
/// to. A resume validates every field against the freshly planned sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// Format version (currently 1).
    pub version: u32,
    /// The plan's master seed (`SweepOpts::seed`).
    pub plan_seed: u64,
    /// Digest over options, sections, labels and the seed schedule.
    pub plan_fp: u64,
    /// Digest of the executable that wrote the journal: a rebuilt binary
    /// (changed simulation/aggregation code) must not silently mix its
    /// cells with journaled ones, even when the plan shape is unchanged.
    pub code_fp: u64,
    /// Dataset-generation seed (`sweep::DATA_SEED`).
    pub data_seed: u64,
    /// Total cells the plan declared (journaled + still to run).
    pub total_cells: u32,
    /// Human-readable option summary (smoke/full/quick/epochs/tasks).
    pub opts: String,
    /// Per-section identities, in sweep order.
    pub sections: Vec<SectionMark>,
    /// Dataset fingerprints of every task the plan touches, sorted.
    pub datasets: Vec<DatasetMark>,
}

/// One journaled grid cell: its plan position, schedule seed, label and
/// the output rows, stored inline so a resume needs no recomputation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellRecord {
    /// Plan index of the cell.
    pub index: u32,
    /// Seed the cell ran with (from the plan's seed schedule).
    pub seed: u64,
    /// The cell's plan label.
    pub label: String,
    /// The rows the cell produced.
    pub rows: Vec<Vec<String>>,
}

/// A fully parsed journal.
#[derive(Debug)]
pub struct Parsed {
    /// The validated header.
    pub header: JournalHeader,
    /// Every complete, checksum-valid cell record, in append order.
    pub cells: Vec<CellRecord>,
    /// Offset of the first byte past the header frame.
    pub header_len: usize,
    /// Offset of the first byte past the last valid frame.
    pub valid_len: usize,
    /// Trailing bytes of a torn (incomplete) frame, dropped by recovery.
    pub torn_bytes: usize,
}

// ---- Payload codec -----------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
}

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| format!("payload underrun at {}", self.pos))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| format!("invalid utf8 at {}", self.pos))
    }
    fn finish(self) -> Result<(), String> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("{} trailing payload bytes", self.bytes.len() - self.pos))
        }
    }
}

fn encode_header_payload(h: &JournalHeader) -> Vec<u8> {
    let mut e = Enc(Vec::new());
    e.u8(KIND_HEADER);
    e.u32(h.version);
    e.u64(h.plan_seed);
    e.u64(h.plan_fp);
    e.u64(h.code_fp);
    e.u64(h.data_seed);
    e.u32(h.total_cells);
    e.str(&h.opts);
    e.u32(h.sections.len() as u32);
    for s in &h.sections {
        e.str(&s.exp);
        e.u32(s.cells);
        e.u64(s.fp);
    }
    e.u32(h.datasets.len() as u32);
    for d in &h.datasets {
        e.str(&d.task);
        e.u64(d.train_fp);
        e.u64(d.test_fp);
    }
    e.0
}

fn decode_header_payload(payload: &[u8]) -> Result<JournalHeader, String> {
    let mut d = Dec { bytes: payload, pos: 0 };
    if d.u8()? != KIND_HEADER {
        return Err("first frame is not a header".into());
    }
    let version = d.u32()?;
    if version != 1 {
        return Err(format!("unsupported journal version {version}"));
    }
    let plan_seed = d.u64()?;
    let plan_fp = d.u64()?;
    let code_fp = d.u64()?;
    let data_seed = d.u64()?;
    let total_cells = d.u32()?;
    let opts = d.str()?;
    let sections = (0..d.u32()?)
        .map(|_| Ok(SectionMark { exp: d.str()?, cells: d.u32()?, fp: d.u64()? }))
        .collect::<Result<_, String>>()?;
    let datasets = (0..d.u32()?)
        .map(|_| Ok(DatasetMark { task: d.str()?, train_fp: d.u64()?, test_fp: d.u64()? }))
        .collect::<Result<_, String>>()?;
    let header = JournalHeader {
        version,
        plan_seed,
        plan_fp,
        code_fp,
        data_seed,
        total_cells,
        opts,
        sections,
        datasets,
    };
    d.finish()?;
    Ok(header)
}

fn encode_cell_payload(c: &CellRecord) -> Vec<u8> {
    let mut e = Enc(Vec::new());
    e.u8(KIND_CELL);
    e.u32(c.index);
    e.u64(c.seed);
    e.str(&c.label);
    e.u32(c.rows.len() as u32);
    for row in &c.rows {
        e.u32(row.len() as u32);
        for cell in row {
            e.str(cell);
        }
    }
    e.0
}

fn decode_cell_payload(payload: &[u8]) -> Result<CellRecord, String> {
    let mut d = Dec { bytes: payload, pos: 0 };
    if d.u8()? != KIND_CELL {
        return Err("frame is not a cell record".into());
    }
    let index = d.u32()?;
    let seed = d.u64()?;
    let label = d.str()?;
    let rows = (0..d.u32()?)
        .map(|_| (0..d.u32()?).map(|_| d.str()).collect::<Result<Vec<_>, _>>())
        .collect::<Result<_, String>>()?;
    let record = CellRecord { index, seed, label, rows };
    d.finish()?;
    Ok(record)
}

// ---- Frame codec -------------------------------------------------------

/// Wraps a payload in the `len | !len | payload | crc` frame.
fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let len = payload.len() as u32;
    let mut out = Vec::with_capacity(FRAME_PREFIX + payload.len() + FRAME_SUFFIX);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&(!len).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

enum Frame<'a> {
    /// A complete, checksum-valid payload and the offset just past it.
    Ok { payload: &'a [u8], next: usize },
    /// The file ends inside this frame: torn tail.
    Torn,
}

fn read_frame(bytes: &[u8], offset: usize) -> Result<Frame<'_>, JournalError> {
    let rest = &bytes[offset..];
    if rest.len() < FRAME_PREFIX {
        return Ok(Frame::Torn);
    }
    let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
    let len_chk = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
    // The complement check distinguishes corruption from truncation: a
    // torn tail can only ever *shorten* a frame, never damage the length
    // field of bytes that are present.
    if len != !len_chk {
        return Err(JournalError::Corrupt { offset, reason: "frame length fails complement check".into() });
    }
    let len = len as usize;
    let total = FRAME_PREFIX + len + FRAME_SUFFIX;
    if rest.len() < total {
        return Ok(Frame::Torn);
    }
    let payload = &rest[FRAME_PREFIX..FRAME_PREFIX + len];
    let stored = u32::from_le_bytes(rest[FRAME_PREFIX + len..total].try_into().expect("4 bytes"));
    let actual = crc32(payload);
    if stored != actual {
        return Err(JournalError::Corrupt {
            offset,
            reason: format!("payload CRC mismatch (stored {stored:08x}, computed {actual:08x})"),
        });
    }
    Ok(Frame::Ok { payload, next: offset + total })
}

// ---- Whole-journal encode / parse --------------------------------------

/// Serializes a complete journal to bytes (magic + header + cells) — the
/// pure counterpart of [`JournalWriter`], used by the codec property
/// tests.
pub fn encode(header: &JournalHeader, cells: &[CellRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&encode_frame(&encode_header_payload(header)));
    for cell in cells {
        out.extend_from_slice(&encode_frame(&encode_cell_payload(cell)));
    }
    out
}

/// Parses journal bytes, recovering the longest valid prefix.
///
/// A trailing **incomplete** frame (crash mid-append) is dropped and
/// reported through [`Parsed::torn_bytes`]. A **complete** frame that
/// fails its complement check or CRC — a flipped byte, not a short write —
/// is an error: resuming from a damaged journal would risk silently wrong
/// science.
///
/// # Errors
///
/// [`JournalError::BadMagic`] / [`JournalError::TornHeader`] when the file
/// isn't a journal or ends before one full header frame;
/// [`JournalError::Corrupt`] on any checksum or decode failure.
pub fn parse(bytes: &[u8]) -> Result<Parsed, JournalError> {
    if bytes.len() < MAGIC.len() {
        return Err(JournalError::TornHeader);
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(JournalError::BadMagic);
    }
    let header_off = MAGIC.len();
    let (header, header_len) = match read_frame(bytes, header_off)? {
        Frame::Ok { payload, next } => {
            let header = decode_header_payload(payload)
                .map_err(|reason| JournalError::Corrupt { offset: header_off, reason })?;
            (header, next)
        }
        Frame::Torn => return Err(JournalError::TornHeader),
    };

    let mut cells = Vec::new();
    let mut offset = header_len;
    loop {
        if offset == bytes.len() {
            return Ok(Parsed { header, cells, header_len, valid_len: offset, torn_bytes: 0 });
        }
        match read_frame(bytes, offset)? {
            Frame::Ok { payload, next } => {
                cells.push(
                    decode_cell_payload(payload)
                        .map_err(|reason| JournalError::Corrupt { offset, reason })?,
                );
                offset = next;
            }
            Frame::Torn => {
                return Ok(Parsed {
                    header,
                    cells,
                    header_len,
                    valid_len: offset,
                    torn_bytes: bytes.len() - offset,
                });
            }
        }
    }
}

// ---- Durable writer ----------------------------------------------------

/// Appends fsync'd records to a journal file.
///
/// Every append is durable before the call returns, so the on-disk
/// journal never lags the sweep by more than the record being written —
/// the property the kill/resume harness relies on.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
}

/// Makes `path`'s directory entry itself durable: without an fsync of the
/// parent directory, a power loss can forget a freshly created file even
/// though every write *into* it was synced. No-op where directories can't
/// be opened for syncing.
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    if !cfg!(unix) {
        return Ok(());
    }
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    File::open(parent)?.sync_all()
}

impl JournalWriter {
    /// Creates (or truncates) a journal and durably writes its header —
    /// including the parent-directory entry, so the file survives a crash
    /// right after creation.
    pub fn create(path: &Path, header: &JournalHeader) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = File::create(path)?;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&encode_frame(&encode_header_payload(header)));
        file.write_all(&bytes)?;
        file.sync_all()?;
        sync_parent_dir(path)?;
        Ok(Self { file })
    }

    /// Opens an existing journal for resumption: parses it, truncates any
    /// torn tail left by the crash, and positions for appending.
    ///
    /// # Errors
    ///
    /// Propagates [`parse`] errors; the caller still has to validate the
    /// header against its freshly planned sweep.
    pub fn resume(path: &Path) -> Result<(Self, Parsed), JournalError> {
        let bytes = std::fs::read(path)?;
        let parsed = parse(&bytes)?;
        let file = OpenOptions::new().write(true).open(path)?;
        if parsed.torn_bytes > 0 {
            file.set_len(parsed.valid_len as u64)?;
            file.sync_all()?;
        }
        let mut writer = Self { file };
        use std::io::Seek as _;
        writer.file.seek(io::SeekFrom::Start(parsed.valid_len as u64))?;
        Ok((writer, parsed))
    }

    /// Durably appends one completed cell.
    pub fn append(&mut self, cell: &CellRecord) -> io::Result<()> {
        self.file.write_all(&encode_frame(&encode_cell_payload(cell)))?;
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> JournalHeader {
        JournalHeader {
            version: 1,
            plan_seed: 42,
            plan_fp: 0xDEAD_BEEF_CAFE_F00D,
            code_fp: 0x0123_4567_89AB_CDEF,
            data_seed: 7,
            total_cells: 3,
            opts: "smoke=true seed=42".into(),
            sections: vec![
                SectionMark { exp: "table1".into(), cells: 2, fp: 11 },
                SectionMark { exp: "fig4".into(), cells: 1, fp: 22 },
            ],
            datasets: vec![DatasetMark { task: "mlp".into(), train_fp: 1, test_fp: 2 }],
        }
    }

    fn sample_cells() -> Vec<CellRecord> {
        vec![
            CellRecord {
                index: 0,
                seed: 99,
                label: "table1/mlp/Mean/No Attack".into(),
                rows: vec![vec!["mlp".into(), "Mean".into(), "71.00".into()]],
            },
            CellRecord { index: 2, seed: 101, label: "fig4/mlp/Baseline".into(), rows: vec![] },
        ]
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_parse_round_trip() {
        let bytes = encode(&sample_header(), &sample_cells());
        let parsed = parse(&bytes).expect("parse");
        assert_eq!(parsed.header, sample_header());
        assert_eq!(parsed.cells, sample_cells());
        assert_eq!(parsed.torn_bytes, 0);
        assert_eq!(parsed.valid_len, bytes.len());
    }

    #[test]
    fn torn_tail_is_dropped() {
        let full = encode(&sample_header(), &sample_cells());
        let one = encode(&sample_header(), &sample_cells()[..1]);
        // Cut in the middle of the second cell record.
        let cut = &full[..one.len() + 5];
        let parsed = parse(cut).expect("parse");
        assert_eq!(parsed.cells.len(), 1);
        assert_eq!(parsed.valid_len, one.len());
        assert_eq!(parsed.torn_bytes, 5);
    }

    #[test]
    fn flipped_byte_is_rejected() {
        let mut bytes = encode(&sample_header(), &sample_cells());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(parse(&bytes).is_err(), "flip at {mid} must fail");
    }

    #[test]
    fn writer_appends_durably_and_resumes() {
        let dir = std::env::temp_dir().join(format!("sg-journal-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("unit.journal");
        let cells = sample_cells();
        {
            let mut w = JournalWriter::create(&path, &sample_header()).expect("create");
            w.append(&cells[0]).expect("append");
        }
        // Simulate a crash mid-append of the second record.
        let mut bytes = std::fs::read(&path).expect("read");
        let mut torn = encode_frame(&encode_cell_payload(&cells[1]));
        torn.truncate(torn.len() - 3);
        bytes.extend_from_slice(&torn);
        std::fs::write(&path, &bytes).expect("write torn");

        let (mut w, parsed) = JournalWriter::resume(&path).expect("resume");
        assert_eq!(parsed.cells.len(), 1);
        assert_eq!(parsed.torn_bytes, torn.len());
        w.append(&cells[1]).expect("re-append");
        drop(w);

        let parsed = parse(&std::fs::read(&path).expect("read")).expect("parse");
        assert_eq!(parsed.cells, cells);
        std::fs::remove_file(&path).ok();
    }
}
