//! Shared infrastructure for the experiment binaries (`exp_*`) and the
//! Criterion micro-benchmarks.
//!
//! Each `exp_*` binary regenerates one table or figure of the SignGuard
//! paper (see `DESIGN.md` for the experiment index), prints paper-style
//! rows and writes a CSV under `target/experiments/`.
//!
//! # Checkpoint & resume
//!
//! Sweeps are crash-safe. With `--journal PATH` (or bare `--resume`,
//! which defaults the path) every completed grid cell is appended to a
//! sweep journal — one fsync'd, CRC-framed record per cell, written in
//! plan order, with the cell's rows inline — so a crash or CI timeout
//! loses at most the cell in flight. Rerunning with `--resume` opens the
//! journal, validates its header against the freshly planned sweep, and
//! executes **only** the non-journaled cells, hydrating the rest.
//!
//! The header is keyed by a *plan fingerprint* — the option set, every
//! section's cell labels and header columns, the `--jobs`-independent
//! per-cell seed schedule, and the dataset fingerprints of every task the
//! plan touches — plus a digest of the executable itself. A journal
//! written by a different sweep or build — an edited section, smoke vs
//! full, another seed, regenerated data, a recompiled binary — is
//! **refused** with an error naming the offending section; no partial
//! rows ever leak into a report.
//!
//! The guarantee is strict **byte identity**: an interrupted-then-resumed
//! sweep's consolidated JSON `cmp`s equal to an uninterrupted run's, at
//! any `--jobs` value (CI's `resume-smoke` job kills `exp_all --smoke`
//! mid-run and enforces exactly this; `tests/sweep_resume.rs` does the
//! same in-process). Record-format details live in [`journal`];
//! orchestration in [`sweep::run_sections`].
//!
//! # Observability
//!
//! Every binary also shares `--trace PATH` (stream an `sg-obs` JSONL
//! trace — per-cell and per-stage spans, pool/cache/filter metrics) and
//! prints an aggregated span-tree summary to stderr at exit (suppress
//! with `SG_QUIET=1`). Tracing is observation only: the consolidated JSON
//! and CSVs are byte-identical with it on or off — CI's `trace-smoke` job
//! `cmp`s a traced sweep against the untraced `grid-smoke` artifact. See
//! the `sg-obs` crate docs for the determinism contract.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use sg_aggregators::{
    Aggregator, Bulyan, CenteredClip, CoordinateMedian, DnC, GeoMed, Mean, MultiKrum, SignMajority,
    TrimmedMean,
};
use sg_attacks::{Attack, ByzMean, LabelFlip, Lie, MinMax, MinSum, NoiseAttack, RandomAttack, SignFlip};
use sg_core::SignGuard;
use sg_fl::{tasks, Task};

pub mod journal;
pub mod netargs;
pub mod sweep;

/// Names of all defenses in the paper's Table I row order.
pub const TABLE1_DEFENSES: &[&str] = &[
    "Mean",
    "TrMean",
    "Median",
    "GeoMed",
    "Multi-Krum",
    "Bulyan",
    "DnC",
    "SignGuard",
    "SignGuard-Sim",
    "SignGuard-Dist",
];

/// Names of all attacks in the paper's Table I column order.
pub const TABLE1_ATTACKS: &[&str] =
    &["No Attack", "Random", "Noise", "Label-flip", "ByzMean", "Sign-flip", "LIE", "Min-Max", "Min-Sum"];

/// Builds a defense by table name. `n` is the client count and `m` the
/// Byzantine count handed to the baselines (the paper gives baselines the
/// exact `m`; SignGuard never needs it).
///
/// # Panics
///
/// Panics on an unknown name.
pub fn build_defense(name: &str, n: usize, m: usize) -> Box<dyn Aggregator> {
    match name {
        "Mean" => Box::new(Mean::new()),
        "TrMean" => Box::new(TrimmedMean::new(m)),
        "Median" => Box::new(CoordinateMedian::new()),
        "GeoMed" => Box::new(GeoMed::new().with_max_iter(20)),
        "Multi-Krum" => Box::new(MultiKrum::new(m, n.saturating_sub(m).max(1))),
        "Bulyan" => Box::new(Bulyan::new(m)),
        "DnC" => Box::new(DnC::new(m).with_subsample_dim(2000)),
        "SignGuard" => Box::new(SignGuard::plain(0)),
        "SignGuard-Sim" => Box::new(SignGuard::sim(0)),
        "SignGuard-Dist" => Box::new(SignGuard::dist(0)),
        "SignSGD" => Box::new(SignMajority::new()),
        "CClip" => Box::new(CenteredClip::new(10.0)),
        other => panic!("unknown defense {other:?}"),
    }
}

/// Builds an attack by table name (`None` for "No Attack").
///
/// # Panics
///
/// Panics on an unknown name.
pub fn build_attack(name: &str) -> Option<Box<dyn Attack>> {
    match name {
        "No Attack" => None,
        "Random" => Some(Box::new(RandomAttack::new())),
        "Noise" => Some(Box::new(NoiseAttack::new())),
        "Label-flip" => Some(Box::new(LabelFlip::new())),
        "ByzMean" => Some(Box::new(ByzMean::new())),
        "Sign-flip" => Some(Box::new(SignFlip::new())),
        "LIE" => Some(Box::new(Lie::new())),
        "Min-Max" => Some(Box::new(MinMax::new())),
        "Min-Sum" => Some(Box::new(MinSum::new())),
        other => panic!("unknown attack {other:?}"),
    }
}

/// Builds a task by short name (delegates to [`tasks::by_name`]).
///
/// # Panics
///
/// Panics on an unknown name.
pub fn build_task(name: &str, seed: u64) -> Task {
    tasks::by_name(name, seed)
}

/// Output directory for experiment CSVs (`target/experiments`).
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// Writes CSV rows (first row = header) to `target/experiments/<name>.csv`.
pub fn write_csv(name: &str, rows: &[Vec<String>]) {
    write_csv_to(&experiments_dir().join(format!("{name}.csv")), rows);
}

/// Writes CSV rows (first row = header) to an explicit path.
pub fn write_csv_to(path: &std::path::Path, rows: &[Vec<String>]) {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).expect("create csv dir");
    }
    let mut f = fs::File::create(path).expect("create csv");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("write csv");
    }
    println!("\n[csv] {}", path.display());
}

/// Parses `--flag value` style arguments, returning the value after `flag`.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

/// Whether a bare `--flag` is present.
pub fn arg_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// The command line shared by every `exp_*` binary:
/// `--epochs N  --jobs N  --task NAME  --seed N  --out PATH  --trace PATH`
/// plus bare flags (`--quick`, `--full`, `--smoke`). One parser instead of
/// eight hand-rolled copies.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    args: Vec<String>,
}

impl ExpArgs {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        Self::from_vec(std::env::args().skip(1).collect())
    }

    /// Builds from an explicit argument vector (tests).
    pub fn from_vec(args: Vec<String>) -> Self {
        Self { args }
    }

    /// The value following `--<flag>`, if present.
    pub fn value(&self, flag: &str) -> Option<String> {
        arg_value(&self.args, flag)
    }

    /// Whether a bare `--<flag>` is present.
    pub fn flag(&self, flag: &str) -> bool {
        arg_present(&self.args, flag)
    }

    /// `--epochs N` (panics on a malformed value).
    pub fn epochs(&self, default: usize) -> usize {
        self.value("--epochs").map_or(default, |v| v.parse().expect("--epochs N"))
    }

    /// Epochs as an override: `Some(N)` only when `--epochs` was given.
    pub fn epochs_override(&self) -> Option<usize> {
        self.value("--epochs").map(|v| v.parse().expect("--epochs N"))
    }

    /// `--jobs N` grid parallelism (default `0` = all cores).
    pub fn jobs(&self) -> usize {
        self.value("--jobs").map_or(0, |v| v.parse().expect("--jobs N"))
    }

    /// `--seed N` master seed.
    pub fn seed(&self, default: u64) -> u64 {
        self.value("--seed").map_or(default, |v| v.parse().expect("--seed N"))
    }

    /// `--out PATH` output override.
    pub fn out(&self) -> Option<PathBuf> {
        self.value("--out").map(PathBuf::from)
    }

    /// Bare `--resume`: continue an interrupted sweep from its journal.
    pub fn resume(&self) -> bool {
        self.flag("--resume")
    }

    /// `--journal PATH` checkpoint-journal override.
    pub fn journal(&self) -> Option<PathBuf> {
        self.value("--journal").map(PathBuf::from)
    }

    /// `--trace PATH`: where to stream the sg-obs JSONL trace.
    pub fn trace(&self) -> Option<PathBuf> {
        self.value("--trace").map(PathBuf::from)
    }

    /// Arms the `sg-obs` registry for this process: the in-memory
    /// aggregates (the end-of-run stderr summary) are always on for the
    /// experiment binaries, and `--trace PATH` additionally attaches the
    /// JSONL event sink. Call once, before any cell runs; pair with
    /// [`finish_obs`] after the report is written.
    pub fn init_obs(&self) {
        match self.trace() {
            Some(path) => {
                if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                    std::fs::create_dir_all(parent).expect("create trace dir");
                }
                sg_obs::init_trace(&path).unwrap_or_else(|e| panic!("--trace {}: {e}", path.display()));
            }
            None => sg_obs::enable(),
        }
    }

    /// The sweep's [`sweep::JournalCfg`]: checkpointing is enabled by
    /// `--journal PATH` (explicit file) or bare `--resume` (journal at
    /// `default`); without either, no journal is written.
    pub fn journal_cfg(&self, default: &std::path::Path) -> sweep::JournalCfg {
        let resume = self.resume();
        match self.journal() {
            Some(path) => sweep::JournalCfg::at(path, resume),
            None if resume => sweep::JournalCfg::at(default, true),
            None => sweep::JournalCfg::none(),
        }
    }

    /// `--task NAME` as a single validated task name.
    ///
    /// # Panics
    ///
    /// Panics on an unknown task name.
    pub fn task(&self, default: &str) -> String {
        self_validated(&self.value("--task").unwrap_or_else(|| default.into()))
    }

    /// `--task NAME|both|all` expanded to a validated task list:
    /// `all` → the four paper tasks, `both` → `fashion, cifar`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown task name.
    pub fn task_list(&self, default: &str) -> Vec<String> {
        let arg = self.value("--task").unwrap_or_else(|| default.into());
        match arg.as_str() {
            "all" => ["mnist", "fashion", "cifar", "agnews"].map(String::from).to_vec(),
            "both" => ["fashion", "cifar"].map(String::from).to_vec(),
            one => vec![self_validated(one)],
        }
    }
}

fn self_validated(name: &str) -> String {
    assert!(tasks::TASK_NAMES.contains(&name), "unknown task {name:?}");
    name.to_string()
}

/// Flushes the `sg-obs` registry at the end of an experiment binary:
/// prints the aggregated span-tree summary to stderr (suppressed by
/// `SG_QUIET`), then drains the JSONL sink, if any, via
/// [`sg_obs::finish`]. Strictly after the report/CSV is written — nothing
/// here can reach the deterministic output path.
pub fn finish_obs() {
    if !sg_obs::quiet() {
        eprint!("{}", sg_obs::render_summary());
    }
    if let Err(e) = sg_obs::finish() {
        eprintln!("[obs] trace flush failed: {e}");
    }
}

/// Deterministic synthetic gradient population for the Criterion benches:
/// `n` honest-like gradients of dimension `d` around a shared direction.
pub fn synthetic_gradients(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    use rand::Rng;
    let mut rng = sg_math::seeded_rng(seed);
    let base: Vec<f32> = (0..d).map(|j| (j as f32 * 0.11).sin()).collect();
    (0..n).map(|_| base.iter().map(|&b| b + rng.gen_range(-0.3..0.3)).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registries_cover_table1() {
        for d in TABLE1_DEFENSES {
            let _ = build_defense(d, 50, 10);
        }
        for a in TABLE1_ATTACKS {
            let _ = build_attack(a);
        }
    }

    #[test]
    fn arg_helpers() {
        let args: Vec<String> = ["--epochs", "12", "--quick"].iter().map(|s| s.to_string()).collect();
        assert_eq!(arg_value(&args, "--epochs").as_deref(), Some("12"));
        assert!(arg_present(&args, "--quick"));
        assert!(!arg_present(&args, "--full"));
    }

    #[test]
    fn exp_args_accessors() {
        let a = ExpArgs::from_vec(
            ["--epochs", "3", "--jobs", "2", "--task", "both", "--seed", "9", "--smoke", "--out", "x.json"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        assert_eq!(a.epochs(12), 3);
        assert_eq!(a.epochs_override(), Some(3));
        assert_eq!(a.jobs(), 2);
        assert_eq!(a.seed(42), 9);
        assert!(a.flag("--smoke"));
        assert_eq!(a.out().unwrap().to_str(), Some("x.json"));
        assert_eq!(a.task_list("fashion"), vec!["fashion".to_string(), "cifar".into()]);

        let d = ExpArgs::from_vec(vec![]);
        assert_eq!(d.epochs(12), 12);
        assert_eq!(d.epochs_override(), None);
        assert_eq!(d.jobs(), 0);
        assert_eq!(d.task("cifar"), "cifar");
        assert_eq!(d.task_list("all").len(), 4);
    }

    #[test]
    fn synthetic_gradients_shape() {
        let g = synthetic_gradients(5, 100, 1);
        assert_eq!(g.len(), 5);
        assert!(g.iter().all(|v| v.len() == 100));
    }
}
