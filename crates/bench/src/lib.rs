//! Shared infrastructure for the experiment binaries (`exp_*`) and the
//! Criterion micro-benchmarks.
//!
//! Each `exp_*` binary regenerates one table or figure of the SignGuard
//! paper (see `DESIGN.md` for the experiment index), prints paper-style
//! rows and writes a CSV under `target/experiments/`.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use sg_aggregators::{
    Aggregator, Bulyan, CenteredClip, CoordinateMedian, DnC, GeoMed, Mean, MultiKrum, SignMajority,
    TrimmedMean,
};
use sg_attacks::{Attack, ByzMean, LabelFlip, Lie, MinMax, MinSum, NoiseAttack, RandomAttack, SignFlip};
use sg_core::SignGuard;
use sg_fl::{tasks, Task};

/// Names of all defenses in the paper's Table I row order.
pub const TABLE1_DEFENSES: &[&str] = &[
    "Mean",
    "TrMean",
    "Median",
    "GeoMed",
    "Multi-Krum",
    "Bulyan",
    "DnC",
    "SignGuard",
    "SignGuard-Sim",
    "SignGuard-Dist",
];

/// Names of all attacks in the paper's Table I column order.
pub const TABLE1_ATTACKS: &[&str] =
    &["No Attack", "Random", "Noise", "Label-flip", "ByzMean", "Sign-flip", "LIE", "Min-Max", "Min-Sum"];

/// Builds a defense by table name. `n` is the client count and `m` the
/// Byzantine count handed to the baselines (the paper gives baselines the
/// exact `m`; SignGuard never needs it).
///
/// # Panics
///
/// Panics on an unknown name.
pub fn build_defense(name: &str, n: usize, m: usize) -> Box<dyn Aggregator> {
    match name {
        "Mean" => Box::new(Mean::new()),
        "TrMean" => Box::new(TrimmedMean::new(m)),
        "Median" => Box::new(CoordinateMedian::new()),
        "GeoMed" => Box::new(GeoMed::new().with_max_iter(20)),
        "Multi-Krum" => Box::new(MultiKrum::new(m, n.saturating_sub(m).max(1))),
        "Bulyan" => Box::new(Bulyan::new(m)),
        "DnC" => Box::new(DnC::new(m).with_subsample_dim(2000)),
        "SignGuard" => Box::new(SignGuard::plain(0)),
        "SignGuard-Sim" => Box::new(SignGuard::sim(0)),
        "SignGuard-Dist" => Box::new(SignGuard::dist(0)),
        "SignSGD" => Box::new(SignMajority::new()),
        "CClip" => Box::new(CenteredClip::new(10.0)),
        other => panic!("unknown defense {other:?}"),
    }
}

/// Builds an attack by table name (`None` for "No Attack").
///
/// # Panics
///
/// Panics on an unknown name.
pub fn build_attack(name: &str) -> Option<Box<dyn Attack>> {
    match name {
        "No Attack" => None,
        "Random" => Some(Box::new(RandomAttack::new())),
        "Noise" => Some(Box::new(NoiseAttack::new())),
        "Label-flip" => Some(Box::new(LabelFlip::new())),
        "ByzMean" => Some(Box::new(ByzMean::new())),
        "Sign-flip" => Some(Box::new(SignFlip::new())),
        "LIE" => Some(Box::new(Lie::new())),
        "Min-Max" => Some(Box::new(MinMax::new())),
        "Min-Sum" => Some(Box::new(MinSum::new())),
        other => panic!("unknown attack {other:?}"),
    }
}

/// Builds a task by short name.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn build_task(name: &str, seed: u64) -> Task {
    match name {
        "mnist" => tasks::mnist_like(seed),
        "fashion" => tasks::fashion_like(seed),
        "cifar" => tasks::cifar_like(seed),
        "agnews" => tasks::agnews_like(seed),
        "mlp" => tasks::mlp_task(seed),
        other => panic!("unknown task {other:?} (mnist|fashion|cifar|agnews|mlp)"),
    }
}

/// Output directory for experiment CSVs (`target/experiments`).
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// Writes CSV rows (first row = header) to `target/experiments/<name>.csv`.
pub fn write_csv(name: &str, rows: &[Vec<String>]) {
    let path = experiments_dir().join(format!("{name}.csv"));
    let mut f = fs::File::create(&path).expect("create csv");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("write csv");
    }
    println!("\n[csv] {}", path.display());
}

/// Parses `--flag value` style arguments, returning the value after `flag`.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

/// Whether a bare `--flag` is present.
pub fn arg_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Deterministic synthetic gradient population for the Criterion benches:
/// `n` honest-like gradients of dimension `d` around a shared direction.
pub fn synthetic_gradients(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    use rand::Rng;
    let mut rng = sg_math::seeded_rng(seed);
    let base: Vec<f32> = (0..d).map(|j| (j as f32 * 0.11).sin()).collect();
    (0..n).map(|_| base.iter().map(|&b| b + rng.gen_range(-0.3..0.3)).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registries_cover_table1() {
        for d in TABLE1_DEFENSES {
            let _ = build_defense(d, 50, 10);
        }
        for a in TABLE1_ATTACKS {
            let _ = build_attack(a);
        }
    }

    #[test]
    fn arg_helpers() {
        let args: Vec<String> = ["--epochs", "12", "--quick"].iter().map(|s| s.to_string()).collect();
        assert_eq!(arg_value(&args, "--epochs").as_deref(), Some("12"));
        assert!(arg_present(&args, "--quick"));
        assert!(!arg_present(&args, "--full"));
    }

    #[test]
    fn synthetic_gradients_shape() {
        let g = synthetic_gradients(5, 100, 1);
        assert_eq!(g.len(), 5);
        assert!(g.iter().all(|v| v.len() == 100));
    }
}
