//! Shared plumbing for the networked-service binaries (`sg-server` and
//! `sg-loadgen`): the FL scenario both sides must agree on, the
//! port-file handshake, the model artifact codec, and the `--metrics`
//! endpoint.
//!
//! The two binaries deliberately parse the *same* scenario flags
//! (`--task --seed --clients --byz --batch --epochs --attack`): the
//! server derives the round schedule and the loadgen derives the client
//! fleet from them, and only matching values make a socket run
//! comparable — bit-for-bit, on the final model — to the loopback
//! reference (`sg-loadgen --loopback`).

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sg_fl::{tasks, FlConfig, Task};

use crate::ExpArgs;

/// The scenario shared by `sg-server` and `sg-loadgen`.
#[derive(Debug, Clone)]
pub struct NetScenario {
    /// Task short name (see [`tasks::TASK_NAMES`]).
    pub task_name: String,
    /// Master seed: model init, shards, client RNG streams — everything.
    pub seed: u64,
    /// Client count `n`.
    pub clients: usize,
    /// Byzantine fraction `β`.
    pub byz_fraction: f32,
    /// Per-client mini-batch size.
    pub batch_size: usize,
    /// Training epochs (sets the round count).
    pub epochs: usize,
    /// Attack name from the paper's Table I columns (`"No Attack"` for an
    /// all-honest run). Both sides need it: the server installs the
    /// adversary, the loadgen bakes any data poisoning into its shards.
    pub attack_name: String,
}

impl NetScenario {
    /// Parses the scenario flags, with smoke-sized defaults.
    pub fn from_args(a: &ExpArgs) -> Self {
        Self {
            task_name: a.task("mlp"),
            seed: a.seed(7),
            clients: a.value("--clients").map_or(10, |v| v.parse().expect("--clients N")),
            byz_fraction: a.value("--byz").map_or(0.2, |v| v.parse().expect("--byz F")),
            batch_size: a.value("--batch").map_or(8, |v| v.parse().expect("--batch N")),
            epochs: a.epochs(1),
            attack_name: a.value("--attack").unwrap_or_else(|| "Sign-flip".into()),
        }
    }

    /// Builds the (deterministic, seed-keyed) task.
    pub fn task(&self) -> Task {
        tasks::by_name(&self.task_name, self.seed)
    }

    /// The [`FlConfig`] this scenario describes.
    pub fn fl_config(&self) -> FlConfig {
        FlConfig {
            num_clients: self.clients,
            byzantine_fraction: self.byz_fraction,
            batch_size: self.batch_size,
            epochs: self.epochs,
            seed: self.seed,
            ..FlConfig::default()
        }
    }

    /// One-line description for startup banners.
    pub fn describe(&self) -> String {
        format!(
            "task {} seed {} · {} clients (β={}) · batch {} · {} epoch(s) · attack {}",
            self.task_name,
            self.seed,
            self.clients,
            self.byz_fraction,
            self.batch_size,
            self.epochs,
            self.attack_name
        )
    }
}

/// Magic prefix of the model artifact (version-stamped).
const MODEL_MAGIC: &[u8; 8] = b"SGMODEL1";

/// Writes a final parameter vector as a comparable binary artifact:
/// magic, `u32` length, then each `f32` as its raw little-endian bit
/// pattern. Two runs that agree bit-for-bit produce `cmp`-equal files —
/// exactly how the `net-smoke` CI job checks the socket run against the
/// loopback reference.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn write_model(path: &Path, params: &[f32]) {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).expect("create model dir");
    }
    let mut bytes = Vec::with_capacity(MODEL_MAGIC.len() + 4 + params.len() * 4);
    bytes.extend_from_slice(MODEL_MAGIC);
    bytes.extend_from_slice(&u32::try_from(params.len()).expect("model fits u32").to_le_bytes());
    for p in params {
        bytes.extend_from_slice(&p.to_bits().to_le_bytes());
    }
    std::fs::write(path, bytes).unwrap_or_else(|e| panic!("write model {}: {e}", path.display()));
}

/// Reads a model artifact back (exact inverse of [`write_model`]).
///
/// # Panics
///
/// Panics on a missing file, a bad magic, or a truncated payload.
pub fn read_model(path: &Path) -> Vec<f32> {
    let bytes = std::fs::read(path).unwrap_or_else(|e| panic!("read model {}: {e}", path.display()));
    assert!(bytes.len() >= MODEL_MAGIC.len() + 4, "model artifact too short");
    assert_eq!(&bytes[..MODEL_MAGIC.len()], MODEL_MAGIC, "bad model magic");
    let mut off = MODEL_MAGIC.len();
    let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("len")) as usize;
    off += 4;
    assert_eq!(bytes.len() - off, len * 4, "model artifact truncated");
    (0..len)
        .map(|i| {
            let at = off + i * 4;
            f32::from_bits(u32::from_le_bytes(bytes[at..at + 4].try_into().expect("f32")))
        })
        .collect()
}

/// Publishes the server's bound address for the loadgen: written to a
/// temp file and renamed into place, so a reader never sees a partial
/// address.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn write_port_file(path: &Path, addr: SocketAddr) {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).expect("create port-file dir");
    }
    let tmp = PathBuf::from(format!("{}.tmp", path.display()));
    std::fs::write(&tmp, addr.to_string())
        .unwrap_or_else(|e| panic!("write port file {}: {e}", tmp.display()));
    std::fs::rename(&tmp, path).unwrap_or_else(|e| panic!("publish port file {}: {e}", path.display()));
}

/// Polls for a port file until it appears (the server writes it right
/// after binding) and parses the address.
///
/// # Errors
///
/// Fails if the file does not appear within `timeout` or holds a
/// malformed address.
pub fn wait_for_port_file(path: &Path, timeout: Duration) -> std::io::Result<SocketAddr> {
    let start = Instant::now();
    loop {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                return text.trim().parse().map_err(|e| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("port file {}: {e}", path.display()),
                    )
                });
            }
            Err(_) if start.elapsed() < timeout => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => {
                return Err(std::io::Error::new(
                    e.kind(),
                    format!("port file {} never appeared: {e}", path.display()),
                ))
            }
        }
    }
}

/// A minimal plain-text metrics endpoint: every HTTP request is answered
/// with the current [`sg_obs::render_summary`] snapshot. One thread, one
/// request at a time — an operator peek, not a metrics pipeline.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (resolves an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the endpoint and joins its thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop the same way the transport does.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Serves [`sg_obs::render_summary`] over HTTP on `addr` (use port 0 for
/// ephemeral). `curl http://ADDR/` mid-run shows live span/counter
/// aggregates.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve_metrics(addr: &str) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if flag.load(Ordering::SeqCst) {
                break;
            }
            let Ok(mut stream) = stream else { continue };
            // Drain (one read of) the request; the path is irrelevant —
            // every route serves the same snapshot.
            let mut scratch = [0u8; 1024];
            let _ = stream.read(&mut scratch);
            let body = sg_obs::render_summary();
            let response = format!(
                "HTTP/1.1 200 OK\r\nContent-Type: text/plain; charset=utf-8\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            );
            let _ = stream.write_all(response.as_bytes());
        }
    });
    Ok(MetricsServer { addr: local, stop, handle: Some(handle) })
}

/// First backpressure retry pause, in milliseconds.
pub const BACKOFF_BASE_MS: u64 = 4;
/// Ceiling for the backpressure retry pause, in milliseconds. Reached
/// after [`BACKOFF_SATURATION_ATTEMPT`] consecutive rejects; every later
/// attempt stays here.
pub const BACKOFF_MAX_MS: u64 = 128;
/// The attempt number at which the exponential schedule first hits
/// [`BACKOFF_MAX_MS`] (`BASE << (6 - 1) = 128`).
pub const BACKOFF_SATURATION_ATTEMPT: u32 = 6;

/// The pause before backpressure retry number `attempt` (1-based; 0
/// means "no rejects yet" and returns zero). Exponential from
/// [`BACKOFF_BASE_MS`], saturating at [`BACKOFF_MAX_MS`] — computed with
/// overflow-proof arithmetic, so an arbitrarily long reject streak (or a
/// counter that wrapped) can never shift past the integer width and
/// come back around as a zero-length busy-loop delay.
pub fn backpressure_backoff(attempt: u32) -> Duration {
    if attempt == 0 {
        return Duration::ZERO;
    }
    // Clamp the exponent *before* shifting: `checked_shl` only rejects
    // shift amounts >= 64, it happily discards bits shifted out of the
    // value (`4 << 62 == 0`), which is precisely the wrap-to-zero bug
    // this helper exists to prevent.
    let shift = attempt.saturating_sub(1).min(BACKOFF_SATURATION_ATTEMPT - 1);
    Duration::from_millis((BACKOFF_BASE_MS << shift).min(BACKOFF_MAX_MS))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_saturates() {
        assert_eq!(backpressure_backoff(0), Duration::ZERO);
        let mut prev = 0u128;
        for attempt in 1..=BACKOFF_SATURATION_ATTEMPT {
            let ms = backpressure_backoff(attempt).as_millis();
            assert_eq!(ms, (BACKOFF_BASE_MS as u128) << (attempt - 1), "attempt {attempt}");
            assert!(ms > prev, "attempt {attempt}: schedule must grow until saturation");
            prev = ms;
        }
        assert_eq!(backpressure_backoff(BACKOFF_SATURATION_ATTEMPT).as_millis(), BACKOFF_MAX_MS as u128);
    }

    #[test]
    fn backoff_is_clamped_for_any_attempt_count() {
        // The saturation point and everything beyond it — including the
        // shift-overflow region (attempt > 63) and the very last u32 —
        // must pin to the ceiling, never wrap to a zero busy-loop delay.
        let max = Duration::from_millis(BACKOFF_MAX_MS);
        for attempt in [
            BACKOFF_SATURATION_ATTEMPT,
            BACKOFF_SATURATION_ATTEMPT + 1,
            10,
            63,
            64,
            65,
            1_000,
            1_000_000,
            u32::MAX,
        ] {
            assert_eq!(backpressure_backoff(attempt), max, "attempt {attempt}");
        }
    }

    #[test]
    fn model_artifact_round_trips_bit_for_bit() {
        let dir = std::env::temp_dir().join("sg-netargs-test");
        let path = dir.join("model.bin");
        let params = vec![0.0f32, -1.5, f32::MIN_POSITIVE, 3.25e7, -0.0];
        write_model(&path, &params);
        let back = read_model(&path);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&params), bits(&back));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn port_file_handshake() {
        let dir = std::env::temp_dir().join("sg-netargs-port-test");
        let path = dir.join("port");
        let addr: SocketAddr = "127.0.0.1:4455".parse().expect("addr");
        write_port_file(&path, addr);
        let read = wait_for_port_file(&path, Duration::from_secs(1)).expect("port file");
        assert_eq!(read, addr);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_endpoint_serves_summary() {
        let server = serve_metrics("127.0.0.1:0").expect("bind metrics");
        let mut conn = TcpStream::connect(server.addr()).expect("connect");
        conn.write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n").expect("request");
        let mut response = String::new();
        conn.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        server.stop();
    }

    #[test]
    fn scenario_defaults_are_smoke_sized() {
        let sc = NetScenario::from_args(&ExpArgs::from_vec(vec![]));
        assert_eq!(sc.task_name, "mlp");
        assert_eq!(sc.clients, 10);
        sc.fl_config().validate();
    }
}
