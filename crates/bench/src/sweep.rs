//! The paper grid as declarative [`RunPlan`] sections.
//!
//! Every experiment of the paper — Tables I–III, Figs. 2/4/5/6, the
//! extended ablations, and the schedule axis (`async`: sync vs straggler
//! vs buffered-async clients) — is declared here as a `plan_*` function
//! that appends cells to a shared [`RunPlan`] and returns its [`Section`]
//! layout. The `exp_*` binaries run a single section; `exp_all` plans all
//! of them into **one** grid and sweeps the entire paper in one go.
//!
//! Cells are built for scale:
//!
//! * **Shared inputs** — every cell draws its task from the sweep's
//!   [`TaskCache`], so all cells of one `(task, data seed)` share a single
//!   generated dataset instead of regenerating it per cell, and its client
//!   shards from the shared [`PartitionCache`], so one
//!   `(task, partitioning, n, seed)` partition is computed once.
//! * **Two-level parallelism** — cells run their simulators on
//!   [`CellContext::engine`], the engine carved from the grid's own worker
//!   pool, so client training and aggregation kernels shard across the
//!   same threads that fan the cells out.
//! * **Bit-for-bit reproducibility** — cell outputs are plain formatted
//!   rows computed from deterministic simulations, declared and collected
//!   in plan order; a sweep at `--jobs 1` and `--jobs 4` emits identical
//!   bytes (enforced by CI's `grid-smoke` job).
//! * **Crash safety** — with a [`JournalCfg`], [`run_sections`] appends
//!   every completed cell to an fsync'd [`crate::journal`] and can resume
//!   an interrupted sweep, re-executing only the missing cells while
//!   keeping the consolidated report byte-identical to an uninterrupted
//!   run (enforced by CI's `resume-smoke` job and
//!   `tests/sweep_resume.rs`).
//!
//! `SweepOpts::smoke` shrinks every section — the MLP task, one epoch, a
//! trimmed attack/defense matrix — so the whole grid stays CI-sized while
//! still exercising each experiment's code path.

use sg_aggregators::Aggregator;
use sg_attacks::{Attack, ByzMean, Lie, MinMax, RandomAttack, ReverseScaling, SignFlip, TimeVarying};
use sg_core::{ClusteringBackend, SignGuard, SignGuardBuilder, SimilarityFeature};
use sg_data::Dataset;
use sg_fl::{
    Client, FlConfig, PartitionCache, Partitioning, RunResult, Schedule, Simulator, TaskCache,
    ValidatingServer, ValidationRule,
};
use sg_math::vecops::sign_counts;
use sg_math::{seeded_rng, SeedStream};
use sg_runtime::{CellContext, GridRunner, RunPlan};

use crate::{build_attack, build_defense, ExpArgs, TABLE1_ATTACKS, TABLE1_DEFENSES};

/// Dataset generation seed shared by every experiment (matches the
/// original per-figure binaries).
pub const DATA_SEED: u64 = 7;

/// One cell's output: CSV-style data rows (no header).
pub type Rows = Vec<Vec<String>>;

/// Layout of one experiment inside a plan: which cells are its, and how
/// their rows are labelled.
#[derive(Debug, Clone)]
pub struct Section {
    /// Short experiment key (`table1`, `fig4`, …).
    pub exp: &'static str,
    /// Human title for printed output.
    pub title: &'static str,
    /// Column names for the section's rows.
    pub header: Vec<String>,
    /// Number of plan cells the section declared.
    pub cells: usize,
    /// Task names the section's cells draw from the shared [`TaskCache`] —
    /// the deterministic dataset inventory of the sweep (the consolidated
    /// report and the journal header derive their dataset fingerprints
    /// from this, independent of which cells actually executed).
    pub tasks: Vec<String>,
}

/// Options shared by every section of a sweep.
#[derive(Debug, Clone)]
pub struct SweepOpts {
    /// Shrink every section to a CI-sized smoke grid.
    pub smoke: bool,
    /// Widen sections that have an extended matrix (Fig. 4's full attack
    /// set).
    pub full: bool,
    /// Table I quick mode: the Fashion task and the state-of-the-art
    /// attacks only, at full epochs.
    pub quick: bool,
    /// Epoch override (`None` = per-section paper defaults).
    pub epochs: Option<usize>,
    /// Task-list override (`None` = per-section paper defaults).
    pub tasks: Option<Vec<String>>,
    /// Master config seed for every cell.
    pub seed: u64,
    /// Memoized resources shared by every cell of the sweep.
    pub res: SweepResources,
}

/// The memoized resources shared by every cell of a sweep: generated
/// datasets ([`TaskCache`]) and client-data partitions
/// ([`PartitionCache`]). Clones are cheap and share state — move one into
/// each cell closure.
#[derive(Clone, Debug, Default)]
pub struct SweepResources {
    /// Shared generated datasets, keyed by `(task, data seed)`.
    pub tasks: TaskCache,
    /// Shared client-data partitions, keyed by
    /// `(dataset, partitioning, n, seed)`.
    pub parts: PartitionCache,
}

impl SweepOpts {
    /// Paper-default options at the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            smoke: false,
            full: false,
            quick: false,
            epochs: None,
            tasks: None,
            seed,
            res: SweepResources::default(),
        }
    }

    /// Options from a parsed `exp_*` command line
    /// (`--smoke --full --quick --epochs --task --seed`).
    pub fn from_args(a: &ExpArgs) -> Self {
        Self {
            smoke: a.flag("--smoke"),
            full: a.flag("--full"),
            quick: a.flag("--quick"),
            epochs: a.epochs_override(),
            tasks: a.value("--task").map(|_| a.task_list("fashion")),
            seed: a.seed(42),
            res: SweepResources::default(),
        }
    }

    /// Base config for a section whose paper default is `default_epochs`.
    fn cfg(&self, default_epochs: usize) -> FlConfig {
        let mut cfg = FlConfig { learning_rate: 0.05, seed: self.seed, ..FlConfig::default() };
        cfg.epochs = self.epochs.unwrap_or(default_epochs);
        if self.smoke {
            cfg.num_clients = 10;
            cfg.batch_size = 8;
            cfg.epochs = self.epochs.unwrap_or(1);
        }
        cfg
    }

    /// The task list a section sweeps (smoke → the cheap MLP task).
    fn tasks_for(&self, defaults: &[&str]) -> Vec<String> {
        if self.smoke {
            return vec!["mlp".into()];
        }
        self.tasks.clone().unwrap_or_else(|| defaults.iter().map(|s| s.to_string()).collect())
    }

    /// Picks the smoke or full variant of a name list.
    fn pick<'a>(&self, full: &[&'a str], smoke: &[&'a str]) -> Vec<&'a str> {
        if self.smoke {
            smoke.to_vec()
        } else {
            full.to_vec()
        }
    }
}

fn pct(x: f32) -> String {
    format!("{:.2}", 100.0 * x)
}

fn rate(x: f32) -> String {
    format!("{x:.4}")
}

/// Runs one simulation cell on the grid's engine with cached task data and
/// cached client partitions.
fn run_sim(
    res: &SweepResources,
    task_name: &str,
    cfg: &FlConfig,
    gar: Box<dyn Aggregator>,
    attack: Option<Box<dyn Attack>>,
    ctx: &CellContext,
) -> RunResult {
    let task = res.tasks.get(task_name, DATA_SEED);
    let mut sim = Simulator::with_resources(task, cfg.clone(), gar, attack, ctx.engine().clone(), &res.parts);
    let result = sim.run();
    sg_obs::progress(|| format!("[grid {}] {}", ctx.index + 1, ctx.label));
    result
}

fn section(
    plan_before: usize,
    plan: &RunPlan<Rows>,
    exp: &'static str,
    title: &'static str,
    header: &[&str],
    tasks: &[String],
) -> Section {
    Section {
        exp,
        title,
        header: header.iter().map(|s| s.to_string()).collect(),
        cells: plan.len() - plan_before,
        tasks: tasks.to_vec(),
    }
}

// ---- Table I ----------------------------------------------------------

/// Best accuracy of every defense under every attack (paper Table I).
/// `SweepOpts::quick` restricts to the Fashion task and the
/// state-of-the-art attacks so the table regenerates in minutes.
pub fn plan_table1(plan: &mut RunPlan<Rows>, o: &SweepOpts) -> Section {
    let before = plan.len();
    let quick = o.quick && !o.smoke;
    let tasks = if quick && o.tasks.is_none() {
        vec!["fashion".to_string()]
    } else {
        o.tasks_for(&["mnist", "fashion", "cifar", "agnews"])
    };
    let defenses = o.pick(TABLE1_DEFENSES, &["Mean", "TrMean", "Multi-Krum", "SignGuard"]);
    let attacks = if quick {
        vec!["No Attack", "ByzMean", "Sign-flip", "LIE", "Min-Max", "Min-Sum"]
    } else {
        o.pick(TABLE1_ATTACKS, &["No Attack", "Sign-flip", "LIE"])
    };
    let cfg = o.cfg(12);
    let (n, m) = (cfg.num_clients, cfg.byzantine_count());
    for task in &tasks {
        for defense in &defenses {
            for attack in &attacks {
                let (task, defense, attack) = (task.clone(), defense.to_string(), attack.to_string());
                let (cfg, res) = (cfg.clone(), o.res.clone());
                plan.cell(format!("table1/{task}/{defense}/{attack}"), move |ctx| {
                    let gar = build_defense(&defense, n, m);
                    let r = run_sim(&res, &task, &cfg, gar, build_attack(&attack), ctx);
                    vec![vec![task, defense, attack, pct(r.best_accuracy)]]
                });
            }
        }
    }
    section(
        before,
        plan,
        "table1",
        "Table I — best accuracy per (defense, attack)",
        &["task", "defense", "attack", "best_accuracy"],
        &tasks,
    )
}

// ---- Table II ---------------------------------------------------------

/// Honest/malicious selection rates of the SignGuard variants (Table II).
pub fn plan_table2(plan: &mut RunPlan<Rows>, o: &SweepOpts) -> Section {
    let before = plan.len();
    let tasks = o.tasks_for(&["cifar"]);
    let attacks = o.pick(&["ByzMean", "Sign-flip", "LIE", "Min-Max", "Min-Sum"], &["Sign-flip", "LIE"]);
    let variants = ["SignGuard", "SignGuard-Sim", "SignGuard-Dist"];
    let cfg = o.cfg(8);
    for task in &tasks {
        for attack in &attacks {
            for variant in variants {
                let (task, attack, variant) = (task.clone(), attack.to_string(), variant.to_string());
                let (cfg, res) = (cfg.clone(), o.res.clone());
                plan.cell(format!("table2/{task}/{attack}/{variant}"), move |ctx| {
                    let gar: Box<dyn Aggregator> = match variant.as_str() {
                        "SignGuard" => Box::new(SignGuard::plain(0)),
                        "SignGuard-Sim" => Box::new(SignGuard::sim(0)),
                        _ => Box::new(SignGuard::dist(0)),
                    };
                    let r = run_sim(&res, &task, &cfg, gar, build_attack(&attack), ctx);
                    vec![vec![
                        task,
                        attack,
                        variant,
                        rate(r.selection.honest_rate()),
                        rate(r.selection.malicious_rate()),
                    ]]
                });
            }
        }
    }
    section(
        before,
        plan,
        "table2",
        "Table II — SignGuard selection rates",
        &["task", "attack", "variant", "honest_rate", "malicious_rate"],
        &tasks,
    )
}

// ---- Table III --------------------------------------------------------

/// Component ablation rows: which SignGuard stages are enabled.
const TABLE3_ROWS: &[(bool, bool, bool)] = &[
    (true, false, false),
    (false, true, false),
    (false, false, true),
    (true, true, false),
    (false, true, true),
    (true, true, true),
];

/// Ablation of SignGuard's stages under Random / Reverse / LIE (Table III).
pub fn plan_table3(plan: &mut RunPlan<Rows>, o: &SweepOpts) -> Section {
    let before = plan.len();
    let tasks = o.tasks_for(&["cifar"]);
    let rows: Vec<(bool, bool, bool)> =
        if o.smoke { vec![(true, true, true), (true, false, false)] } else { TABLE3_ROWS.to_vec() };
    let attacks = o.pick(&["random", "reverse", "lie"], &["random", "lie"]);
    let cfg = o.cfg(8);
    for task in &tasks {
        for &(thresholding, clustering, clipping) in &rows {
            for attack in &attacks {
                let (task, attack) = (task.clone(), attack.to_string());
                let (cfg, res) = (cfg.clone(), o.res.clone());
                let label = format!("table3/{task}/t{thresholding}-c{clustering}-n{clipping}/{attack}");
                plan.cell(label, move |ctx| {
                    // Reverse scaling r: the norm bound R when a norm
                    // defense is up, otherwise a blatant 100x (paper §VI-C).
                    let r_scale = if thresholding || clipping { 3.0 } else { 100.0 };
                    let atk: Box<dyn Attack> = match attack.as_str() {
                        "random" => Box::new(RandomAttack::new()),
                        "reverse" => Box::new(ReverseScaling::new(r_scale)),
                        _ => Box::new(Lie::new()),
                    };
                    let gar = SignGuardBuilder::new()
                        .similarity(SimilarityFeature::Cosine)
                        .norm_filter(thresholding)
                        .cluster_filter(clustering)
                        .norm_clipping(clipping)
                        .seed(0)
                        .build();
                    let r = run_sim(&res, &task, &cfg, Box::new(gar), Some(atk), ctx);
                    vec![vec![
                        task,
                        thresholding.to_string(),
                        clustering.to_string(),
                        clipping.to_string(),
                        attack,
                        pct(r.best_accuracy),
                    ]]
                });
            }
        }
    }
    section(
        before,
        plan,
        "table3",
        "Table III — SignGuard component ablation",
        &["task", "thresholding", "clustering", "norm_clip", "attack", "best_accuracy"],
        &tasks,
    )
}

// ---- Fig. 2 -----------------------------------------------------------

fn sign_stats(v: &[f32]) -> (f32, f32, f32) {
    let (p, z, n) = sign_counts(v);
    let t = (p + z + n) as f32;
    (p as f32 / t, z as f32 / t, n as f32 / t)
}

/// One model's honest-vs-LIE sign-statistics trace (the Fig. 2 insight).
fn trace_rows(cache: &TaskCache, task_name: &str, cfg: &FlConfig) -> Rows {
    let task = cache.get(task_name, DATA_SEED);
    let mut rows = Vec::new();

    let mut seeds = SeedStream::new(cfg.seed);
    let mut model_rng = seeds.next_rng();
    let global_model = task.build_model(&mut model_rng);
    let mut params = global_model.param_vector();
    let mut part_rng = seeds.next_rng();
    let parts = sg_data::partition_iid(task.train.len(), cfg.num_clients, &mut part_rng);
    let mut clients: Vec<Client> = parts
        .into_iter()
        .enumerate()
        .map(|(id, idx)| {
            let mut r = seeds.next_rng();
            let replica = task.build_model(&mut r);
            Client::new(id, replica, idx, cfg.momentum, cfg.weight_decay, seeds.next_rng())
        })
        .collect();

    let total = cfg.total_rounds(task.train.len());
    let lie = Lie::new();
    let m = cfg.byzantine_count();
    for round in 0..total {
        let grads: Vec<Vec<f32>> =
            clients.iter_mut().map(|c| c.local_gradient(&params, &task.train, cfg.batch_size)).collect();
        let dim = grads[0].len();

        // Average honest sign statistics across clients.
        let mut hon = (0.0f32, 0.0f32, 0.0f32);
        for g in &grads {
            let s = sign_stats(g);
            hon = (hon.0 + s.0, hon.1 + s.1, hon.2 + s.2);
        }
        let inv = 1.0 / grads.len() as f32;
        hon = (hon.0 * inv, hon.1 * inv, hon.2 * inv);

        // Virtual LIE gradient crafted from the same population (Eq. 1).
        let virt = lie.craft_single(&grads, cfg.num_clients, m);
        let mal = sign_stats(&virt);

        rows.push(vec![
            task_name.to_string(),
            round.to_string(),
            rate(hon.0),
            rate(hon.1),
            rate(hon.2),
            rate(mal.0),
            rate(mal.1),
            rate(mal.2),
        ]);

        // Honest (mean-aggregated) training step keeps the trajectory
        // identical to the paper's no-attack setting.
        let mean = sg_math::vecops::mean_vector(&grads, dim);
        for (p, g) in params.iter_mut().zip(&mean) {
            *p -= cfg.learning_rate * g;
        }
    }
    rows
}

/// Honest vs LIE sign statistics over training (Fig. 2).
pub fn plan_fig2(plan: &mut RunPlan<Rows>, o: &SweepOpts) -> Section {
    let before = plan.len();
    let tasks = o.tasks_for(&["mnist", "cifar"]);
    let cfg = o.cfg(10);
    for task in &tasks {
        let task = task.clone();
        let (cfg, res) = (cfg.clone(), o.res.clone());
        plan.cell(format!("fig2/{task}"), move |_ctx| trace_rows(&res.tasks, &task, &cfg));
    }
    section(
        before,
        plan,
        "fig2",
        "Fig. 2 — sign statistics, honest vs LIE",
        &["model", "round", "honest_pos", "honest_zero", "honest_neg", "lie_pos", "lie_zero", "lie_neg"],
        &tasks,
    )
}

// ---- Fig. 4 -----------------------------------------------------------

/// Attack impact across Byzantine fractions 0–40% (Fig. 4). The
/// per-task no-attack/no-defense baseline is itself a cell (defense
/// `Baseline`); the `attack_impact` column is appended from it by
/// [`finish`].
pub fn plan_fig4(plan: &mut RunPlan<Rows>, o: &SweepOpts) -> Section {
    let before = plan.len();
    let tasks = o.tasks_for(&["fashion"]);
    let defenses =
        o.pick(&["Median", "TrMean", "Multi-Krum", "DnC", "SignGuard-Sim"], &["TrMean", "SignGuard-Sim"]);
    let attacks = if o.full && !o.smoke {
        vec!["ByzMean", "Sign-flip", "LIE", "Min-Max", "Min-Sum"]
    } else {
        o.pick(&["ByzMean", "Sign-flip", "LIE"], &["Sign-flip"])
    };
    let fractions: Vec<f32> = if o.smoke { vec![0.0, 0.2] } else { vec![0.0, 0.1, 0.2, 0.3, 0.4] };
    let cfg = o.cfg(8);
    for task in &tasks {
        {
            // No-attack / no-defense reference point (Definition 3).
            let task = task.clone();
            let (cfg, res) = (cfg.clone(), o.res.clone());
            plan.cell(format!("fig4/{task}/Baseline"), move |ctx| {
                let base_cfg = FlConfig { byzantine_fraction: 0.0, ..cfg };
                let n = base_cfg.num_clients;
                let r = run_sim(&res, &task, &base_cfg, build_defense("Mean", n, 0), None, ctx);
                vec![vec![task, "Baseline".into(), "No Attack".into(), "0.0".into(), pct(r.best_accuracy)]]
            });
        }
        for defense in &defenses {
            for attack in &attacks {
                for &frac in &fractions {
                    let (task, defense, attack) = (task.clone(), defense.to_string(), attack.to_string());
                    let (cfg, res) = (cfg.clone(), o.res.clone());
                    plan.cell(format!("fig4/{task}/{defense}/{attack}/{frac:.1}"), move |ctx| {
                        let cfg = FlConfig { byzantine_fraction: frac, ..cfg };
                        let (n, m) = (cfg.num_clients, cfg.byzantine_count());
                        let atk = if frac == 0.0 { None } else { build_attack(&attack) };
                        let r = run_sim(&res, &task, &cfg, build_defense(&defense, n, m), atk, ctx);
                        vec![vec![task, defense, attack, format!("{frac:.1}"), pct(r.best_accuracy)]]
                    });
                }
            }
        }
    }
    section(
        before,
        plan,
        "fig4",
        "Fig. 4 — attack impact vs Byzantine fraction",
        &["task", "defense", "attack", "byz_fraction", "best_accuracy"],
        &tasks,
    )
}

// ---- Fig. 5 -----------------------------------------------------------

fn attack_pool() -> Vec<Box<dyn Attack>> {
    vec![
        Box::new(RandomAttack::new()),
        Box::new(SignFlip::new()),
        Box::new(Lie::new()),
        Box::new(ByzMean::new()),
        Box::new(MinMax::new()),
    ]
}

/// Accuracy curves under the time-varying attack (Fig. 5).
pub fn plan_fig5(plan: &mut RunPlan<Rows>, o: &SweepOpts) -> Section {
    let before = plan.len();
    let tasks = o.tasks_for(&["fashion"]);
    let defenses = o.pick(&["Multi-Krum", "Bulyan", "DnC", "SignGuard"], &["Multi-Krum", "SignGuard"]);
    let cfg = o.cfg(12);
    let curve_rows = |task: &str, defense: &str, curve: &[(usize, f32)]| -> Rows {
        curve
            .iter()
            .enumerate()
            .map(|(e, (_, acc))| vec![task.to_string(), defense.to_string(), e.to_string(), rate(*acc)])
            .collect()
    };
    for task in &tasks {
        {
            let task = task.clone();
            let (cfg, res) = (cfg.clone(), o.res.clone());
            plan.cell(format!("fig5/{task}/Baseline"), move |ctx| {
                // Baseline: no attack, no defense.
                let base_cfg = FlConfig { byzantine_fraction: 0.0, ..cfg };
                let n = base_cfg.num_clients;
                let r = run_sim(&res, &task, &base_cfg, build_defense("Mean", n, 0), None, ctx);
                curve_rows(&task, "Baseline", &r.accuracy_curve)
            });
        }
        for defense in &defenses {
            let (task, defense) = (task.clone(), defense.to_string());
            let (cfg, res) = (cfg.clone(), o.res.clone());
            plan.cell(format!("fig5/{task}/{defense}"), move |ctx| {
                let (n, m) = (cfg.num_clients, cfg.byzantine_count());
                let rpe = cfg.rounds_per_epoch(res.tasks.get(&task, DATA_SEED).train.len());
                let attack = TimeVarying::new(attack_pool(), true, rpe, 99);
                let r =
                    run_sim(&res, &task, &cfg, build_defense(&defense, n, m), Some(Box::new(attack)), ctx);
                curve_rows(&task, &defense, &r.accuracy_curve)
            });
        }
    }
    section(
        before,
        plan,
        "fig5",
        "Fig. 5 — accuracy under the time-varying attack",
        &["task", "defense", "epoch", "accuracy"],
        &tasks,
    )
}

// ---- Fig. 6 -----------------------------------------------------------

/// Non-IID accuracy at three skew levels (Fig. 6).
pub fn plan_fig6(plan: &mut RunPlan<Rows>, o: &SweepOpts) -> Section {
    let before = plan.len();
    let tasks = o.tasks_for(&["fashion"]);
    let attacks = o.pick(&["Sign-flip", "LIE", "ByzMean"], &["Sign-flip"]);
    let defenses =
        o.pick(&["TrMean", "Multi-Krum", "Bulyan", "DnC", "SignGuard-Sim"], &["TrMean", "SignGuard-Sim"]);
    let skews: Vec<f32> = if o.smoke { vec![0.3, 0.8] } else { vec![0.3, 0.5, 0.8] };
    let cfg = o.cfg(10);
    for task in &tasks {
        for attack in &attacks {
            for defense in &defenses {
                for &s in &skews {
                    let (task, attack, defense) = (task.clone(), attack.to_string(), defense.to_string());
                    let (cfg, res) = (cfg.clone(), o.res.clone());
                    plan.cell(format!("fig6/{task}/{attack}/{defense}/s{s:.1}"), move |ctx| {
                        let cfg = FlConfig { partitioning: Partitioning::NonIid { s }, ..cfg };
                        let (n, m) = (cfg.num_clients, cfg.byzantine_count());
                        let r = run_sim(
                            &res,
                            &task,
                            &cfg,
                            build_defense(&defense, n, m),
                            build_attack(&attack),
                            ctx,
                        );
                        vec![vec![task, attack, defense, format!("{s:.1}"), pct(r.best_accuracy)]]
                    });
                }
            }
        }
    }
    section(
        before,
        plan,
        "fig6",
        "Fig. 6 — non-IID accuracy across skew levels",
        &["task", "attack", "defense", "s", "best_accuracy"],
        &tasks,
    )
}

// ---- Extended ablations -----------------------------------------------

fn ablation_attack(name: &str) -> Option<Box<dyn Attack>> {
    match name {
        "None" => None,
        "Sign-flip" => Some(Box::new(SignFlip::new())),
        "LIE" => Some(Box::new(Lie::new())),
        "Adaptive" => Some(Box::new(sg_attacks::AdaptiveSignMimicry::new())),
        other => panic!("unknown ablation attack {other}"),
    }
}

/// Extended ablations: coordinate-sampling fraction, clustering back-end,
/// and the defense-family comparison including validation-based rules.
pub fn plan_ablation(plan: &mut RunPlan<Rows>, o: &SweepOpts) -> Section {
    let before = plan.len();
    let tasks = o.tasks_for(&["fashion"]);
    let attacks = o.pick(&["None", "Sign-flip", "LIE", "Adaptive"], &["None", "Sign-flip"]);
    let fractions: Vec<f32> = if o.smoke { vec![0.1] } else { vec![0.01, 0.1, 0.5, 1.0] };
    let backends = [("MeanShift", ClusteringBackend::MeanShift), ("KMeans-2", ClusteringBackend::KMeans(2))];
    let families = o.pick(&["SignGuard", "SignGuard-Sim", "FLTrust", "Zeno"], &["SignGuard", "FLTrust"]);
    let cfg = o.cfg(8);

    for task in &tasks {
        // 1. Coordinate-sampling fraction sweep (plain SignGuard).
        for &frac in &fractions {
            for attack in &attacks {
                let (task, attack) = (task.clone(), attack.to_string());
                let (cfg, res) = (cfg.clone(), o.res.clone());
                plan.cell(format!("ablation/{task}/coord{frac}/{attack}"), move |ctx| {
                    let gar = SignGuardBuilder::new().coord_fraction(frac).seed(0).build();
                    let r = run_sim(&res, &task, &cfg, Box::new(gar), ablation_attack(&attack), ctx);
                    vec![vec!["coord_fraction".into(), frac.to_string(), attack, pct(r.best_accuracy)]]
                });
            }
        }
        // 2. Clustering back-end (SignGuard-Sim).
        for (label, backend) in backends {
            for attack in &attacks {
                let (task, attack) = (task.clone(), attack.to_string());
                let (cfg, res) = (cfg.clone(), o.res.clone());
                plan.cell(format!("ablation/{task}/{label}/{attack}"), move |ctx| {
                    let gar = SignGuardBuilder::new()
                        .similarity(SimilarityFeature::Cosine)
                        .clustering(backend)
                        .seed(0)
                        .build();
                    let r = run_sim(&res, &task, &cfg, Box::new(gar), ablation_attack(&attack), ctx);
                    vec![vec!["backend".into(), label.into(), attack, pct(r.best_accuracy)]]
                });
            }
        }
        // 3. Defense families, incl. validation-based rules holding 100
        //    root samples at the server (split off the test set).
        for family in &families {
            for attack in &attacks {
                let (task, attack, family) = (task.clone(), attack.to_string(), family.to_string());
                let (cfg, res) = (cfg.clone(), o.res.clone());
                plan.cell(format!("ablation/{task}/{family}/{attack}"), move |ctx| {
                    let gar: Box<dyn Aggregator> = match family.as_str() {
                        "SignGuard" => Box::new(SignGuard::plain(0)),
                        "SignGuard-Sim" => Box::new(SignGuard::sim(0)),
                        name => {
                            let t = res.tasks.get(&task, DATA_SEED);
                            let mut rng = seeded_rng(0);
                            let model = t.build_model(&mut rng);
                            let root = Dataset::new(
                                t.test.samples()[..100].to_vec(),
                                t.test.item_shape().to_vec(),
                                t.test.num_classes(),
                            );
                            let rule = if name == "FLTrust" {
                                ValidationRule::FlTrust
                            } else {
                                ValidationRule::Zeno {
                                    b: cfg.byzantine_count(),
                                    rho: 1e-4,
                                    gamma: cfg.learning_rate,
                                }
                            };
                            Box::new(ValidatingServer::new(rule, model, root, 32, 5))
                        }
                    };
                    let r = run_sim(&res, &task, &cfg, gar, ablation_attack(&attack), ctx);
                    vec![vec!["family".into(), family, attack, pct(r.best_accuracy)]]
                });
            }
        }
    }
    section(
        before,
        plan,
        "ablation",
        "Extended ablations (sampling / clustering / families)",
        &["section", "config", "attack", "best_accuracy"],
        &tasks,
    )
}

// ---- Async / staleness schedules ---------------------------------------

/// The schedule matrix a sweep runs: the paper's synchronous setting plus
/// the straggler and FedBuf-style buffered-async modes (30% stragglers /
/// half-population buffer, staleness up to 4 steps).
fn schedule_matrix(num_clients: usize) -> Vec<Schedule> {
    vec![
        Schedule::Sync,
        Schedule::Straggler { slow_fraction: 0.3, max_delay: 4 },
        Schedule::AsyncBuffered { k: (num_clients / 2).max(1), max_delay: 4 },
    ]
}

/// Defense robustness across client schedules (the scenario axis opened by
/// the round-pipeline refactor): every (schedule × defense × attack) cell
/// reports best accuracy plus the staleness profile the server actually
/// saw. The smoke variant keeps **all three schedules** — the schedule
/// axis is exactly what CI's determinism comparison must cover — and trims
/// the defense/attack matrix instead.
pub fn plan_async(plan: &mut RunPlan<Rows>, o: &SweepOpts) -> Section {
    let before = plan.len();
    let tasks = o.tasks_for(&["fashion"]);
    let defenses = o.pick(&["Mean", "TrMean", "Multi-Krum", "SignGuard"], &["Mean", "SignGuard"]);
    let attacks = o.pick(&["No Attack", "Sign-flip", "LIE", "Min-Max"], &["Sign-flip"]);
    let cfg = o.cfg(8);
    for task in &tasks {
        for schedule in schedule_matrix(cfg.num_clients) {
            for defense in &defenses {
                for attack in &attacks {
                    let (task, defense, attack) = (task.clone(), defense.to_string(), attack.to_string());
                    let (cfg, res) = (cfg.clone(), o.res.clone());
                    let label = format!("async/{task}/{}/{defense}/{attack}", schedule.label());
                    plan.cell(label, move |ctx| {
                        let cfg = FlConfig { schedule, ..cfg };
                        let (n, m) = (cfg.num_clients, cfg.byzantine_count());
                        let r = run_sim(
                            &res,
                            &task,
                            &cfg,
                            build_defense(&defense, n, m),
                            build_attack(&attack),
                            ctx,
                        );
                        vec![vec![
                            task,
                            schedule.label().to_string(),
                            defense,
                            attack,
                            pct(r.best_accuracy),
                            r.applied_rounds().to_string(),
                            rate(r.mean_batch_staleness()),
                        ]]
                    });
                }
            }
        }
    }
    section(
        before,
        plan,
        "async",
        "Schedule axis — accuracy under sync / straggler / async-buffered",
        &["task", "schedule", "defense", "attack", "best_accuracy", "applied_rounds", "mean_staleness"],
        &tasks,
    )
}

// ---- Tree (hierarchical aggregation) -----------------------------------

/// The topology the tree section sweeps:
/// `(num_clients, shard_size, participation, rounds)`.
pub fn tree_shape(smoke: bool) -> (usize, usize, usize, usize) {
    if smoke {
        (16, 4, 4, 3)
    } else {
        (128, 16, 8, 10)
    }
}

/// Hex fingerprint of a parameter vector's exact bits.
fn params_fp(params: &[f32]) -> String {
    let mut fp = Fp::new();
    for p in params {
        fp.u64(u64::from(p.to_bits()));
    }
    format!("{:016x}", fp.done())
}

/// Flat vs two-level tree aggregation under the paper's attacks. Every
/// cell runs **both arms** over the same [`sg_fl::VirtualPopulation`] —
/// the flat reference ([`sg_net::run_flat_virtual`]: one global adversary,
/// one flat aggregation) and the two-level loopback funnel
/// ([`sg_net::run_tree_loopback`]: shard-local adversaries, composed root)
/// — and reports both final-model fingerprints side by side. `ExactSum`
/// rules (Mean) must agree bit for bit under `No Attack`; the rerun
/// strategies show the documented approximation, and the attack columns
/// show what shard-locality does to each defense.
pub fn plan_tree(plan: &mut RunPlan<Rows>, o: &SweepOpts) -> Section {
    use std::sync::Arc;

    let before = plan.len();
    let tasks = o.tasks_for(&["mlp"]);
    let defenses = o.pick(&["Mean", "Median", "TrMean", "SignGuard"], &["Mean", "SignGuard"]);
    let attacks = o.pick(&["No Attack", "Sign-flip", "LIE", "ByzMean"], &["No Attack", "Sign-flip"]);
    let (n, shard, part, rounds) = tree_shape(o.smoke);
    let cfg = FlConfig {
        num_clients: n,
        byzantine_fraction: 0.25,
        batch_size: 8,
        learning_rate: 0.05,
        seed: o.seed,
        ..FlConfig::default()
    };
    // Leaf-level trim count for TrMean: the per-shard Byzantine budget.
    let trim = (part / 4).max(1);
    for task in &tasks {
        for defense in &defenses {
            for attack in &attacks {
                let (task, defense, attack) = (task.clone(), defense.to_string(), attack.to_string());
                let (cfg, res) = (cfg.clone(), o.res.clone());
                plan.cell(format!("tree/{task}/{defense}/{attack}"), move |ctx| {
                    let t = res.tasks.get(&task, DATA_SEED);
                    let topo = sg_net::TreeTopology::new(cfg.num_clients, shard, part, cfg.seed);
                    let pop = Arc::new(sg_fl::VirtualPopulation::build(
                        &t,
                        &cfg,
                        build_attack(&attack).as_deref(),
                        &res.parts,
                    ));
                    let gf = || build_defense(&defense, part, trim);
                    let af = || build_attack(&attack);
                    let composition = format!("{:?}", gf().composition());
                    let flat =
                        sg_net::run_flat_virtual(&t, &cfg, &topo, rounds, &pop, &gf, &af, ctx.engine());
                    let tree = sg_net::run_tree_loopback(
                        &t,
                        &cfg,
                        &topo,
                        rounds,
                        &pop,
                        &gf,
                        &af,
                        ctx.engine(),
                        1,
                        3,
                    );
                    sg_obs::progress(|| format!("[grid {}] {}", ctx.index + 1, ctx.label));
                    let flat_fp = params_fp(&flat.final_params);
                    let tree_fp = params_fp(&tree.final_params);
                    let compose = if flat_fp == tree_fp { "bitwise" } else { "approx" };
                    vec![vec![
                        task,
                        defense,
                        attack,
                        composition,
                        flat_fp,
                        tree_fp,
                        compose.to_string(),
                        rate(*flat.round_losses.last().expect("flat rounds")),
                        rate(*tree.round_losses.last().expect("tree rounds")),
                    ]]
                });
            }
        }
    }
    section(
        before,
        plan,
        "tree",
        "Tree — flat vs two-level hierarchical aggregation",
        &[
            "task",
            "defense",
            "attack",
            "composition",
            "flat_fp",
            "tree_fp",
            "compose",
            "flat_loss",
            "tree_loss",
        ],
        &tasks,
    )
}

// ---- Dispatch, rendering, drivers -------------------------------------

/// Every experiment key, in sweep order.
pub const ALL_EXPERIMENTS: &[&str] =
    &["table1", "table2", "table3", "fig2", "fig4", "fig5", "fig6", "ablation", "async", "tree"];

/// Plans one experiment by key.
///
/// # Panics
///
/// Panics on an unknown key.
pub fn plan_section(exp: &str, plan: &mut RunPlan<Rows>, o: &SweepOpts) -> Section {
    match exp {
        "table1" => plan_table1(plan, o),
        "table2" => plan_table2(plan, o),
        "table3" => plan_table3(plan, o),
        "fig2" => plan_fig2(plan, o),
        "fig4" => plan_fig4(plan, o),
        "fig5" => plan_fig5(plan, o),
        "fig6" => plan_fig6(plan, o),
        "ablation" => plan_ablation(plan, o),
        "async" => plan_async(plan, o),
        "tree" => plan_tree(plan, o),
        other => panic!("unknown experiment {other:?} (expected one of {ALL_EXPERIMENTS:?})"),
    }
}

/// Post-processes a section's collected rows. Fig. 4 appends the
/// `attack_impact` column (percentage points below the task's `Baseline`
/// cell); other sections pass through.
pub fn finish(exp: &str, header: Vec<String>, rows: Rows) -> (Vec<String>, Rows) {
    if exp != "fig4" {
        return (header, rows);
    }
    let baselines: Vec<(String, f32)> = rows
        .iter()
        .filter(|r| r[1] == "Baseline")
        .map(|r| (r[0].clone(), r[4].parse().expect("baseline accuracy")))
        .collect();
    let mut header = header;
    header.push("attack_impact".into());
    let rows = rows
        .into_iter()
        .map(|mut r| {
            let base =
                baselines.iter().find(|(t, _)| *t == r[0]).map(|&(_, b)| b).expect("fig4 baseline for task");
            let acc: f32 = r[4].parse().expect("fig4 accuracy");
            // Definition 3 clamps impact at zero: beating the baseline is
            // "no impact", not negative impact (see RunResult::attack_impact).
            r.push(format!("{:.2}", (base - acc).max(0.0)));
            r
        })
        .collect();
    (header, rows)
}

/// Renders a header + rows as an aligned text table.
pub fn render(header: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |row: &[String]| -> String {
        row.iter()
            .zip(&widths)
            .map(|(cell, &w)| format!("{cell:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let mut out = vec![line(header)];
    out.extend(rows.iter().map(|r| line(r)));
    out.join("\n")
}

/// Full driver for a single-experiment binary: parse the shared CLI, plan
/// the section, sweep it on a [`GridRunner`] — checkpointing/resuming when
/// `--journal`/`--resume` are given — print the rows and write the CSV
/// under `target/experiments/<exp>.csv`.
pub fn run_standalone(exp: &'static str) {
    let a = ExpArgs::parse();
    a.init_obs();
    let o = SweepOpts::from_args(&a);
    let selected = vec![exp.to_string()];
    let journal = a.journal_cfg(&crate::experiments_dir().join(format!("{exp}.journal")));
    let outcome = match run_sections(&selected, &o, a.jobs(), &journal) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("[{exp}] {e}");
            std::process::exit(2);
        }
    };
    let (s, rows) = outcome.results.into_iter().next().expect("one section");
    eprintln!(
        "[{exp}] {} cells: {} executed, {} resumed from the journal",
        outcome.total_cells, outcome.executed, outcome.hydrated
    );
    println!("== {} ==", s.title);
    println!("{}", render(&s.header, &rows));
    // What used to be an ad-hoc `[cache] …` stderr line now goes through
    // the one telemetry sink and shows up in the summary's counter block.
    o.res.tasks.publish("task");
    o.res.parts.publish("partition");
    let mut csv = vec![s.header];
    csv.extend(rows);
    match a.out() {
        Some(path) => crate::write_csv_to(&path, &csv),
        None => crate::write_csv(exp, &csv),
    }
    crate::finish_obs();
}

// ---- Checkpoint & resume orchestration ---------------------------------

/// FNV-1a (64-bit) accumulator for plan and section fingerprints. Field
/// boundaries are delimited so `("ab","c")` and `("a","bc")` differ.
struct Fp(u64);

impl Fp {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
    fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
        self.bytes(&[0xFF]);
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn done(self) -> u64 {
        self.0
    }
}

/// How a sweep uses the checkpoint journal.
#[derive(Debug, Clone, Default)]
pub struct JournalCfg {
    /// Journal file. `None` disables checkpointing entirely.
    pub path: Option<std::path::PathBuf>,
    /// Resume from an existing journal at `path` (validate its header,
    /// hydrate its cells, execute only the remainder). Without this, an
    /// existing journal is overwritten.
    pub resume: bool,
    /// Crash-test fault injection: panic after this many journaled cells
    /// (see [`sg_runtime::RunOpts::fault_after`]). Also settable through
    /// the `SG_SWEEP_FAULT_CELLS` environment variable.
    pub fault_after: Option<usize>,
}

impl JournalCfg {
    /// No journaling.
    pub fn none() -> Self {
        Self::default()
    }

    /// Journal at `path`, resuming if `resume`.
    pub fn at(path: impl Into<std::path::PathBuf>, resume: bool) -> Self {
        Self { path: Some(path.into()), resume, fault_after: None }
    }
}

/// Why [`run_sections`] refused to produce results.
#[derive(Debug)]
pub enum SweepError {
    /// The journal file could not be read or failed its checksums.
    Journal(crate::journal::JournalError),
    /// The journal belongs to a different sweep: the stored plan
    /// fingerprint disagrees with the freshly planned one. The reason
    /// names what diverged (the offending section, option set, seed or
    /// dataset); **no journaled rows are used** when this happens.
    Stale {
        /// Human-readable description of the first divergence.
        reason: String,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Journal(e) => write!(f, "{e}"),
            Self::Stale { reason } => {
                write!(f, "stale journal refused: {reason} (delete the journal or rerun without --resume)")
            }
        }
    }
}

impl std::error::Error for SweepError {}

impl From<crate::journal::JournalError> for SweepError {
    fn from(e: crate::journal::JournalError) -> Self {
        Self::Journal(e)
    }
}

/// A completed (possibly resumed) sweep.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Per-section headers and post-processed rows, in sweep order.
    pub results: Vec<(Section, Rows)>,
    /// Cells the plan declared.
    pub total_cells: usize,
    /// Cells actually executed this run.
    pub executed: usize,
    /// Cells hydrated from the journal instead of executing.
    pub hydrated: usize,
}

/// The sorted, deduplicated union of every section's task list — the
/// sweep's deterministic dataset inventory.
fn union_tasks<'a>(sections: impl Iterator<Item = &'a Section>) -> Vec<String> {
    let mut tasks: Vec<String> = sections.flat_map(|s| s.tasks.iter().cloned()).collect();
    tasks.sort();
    tasks.dedup();
    tasks
}

/// Canonical one-line option summary; part of the plan fingerprint and
/// quoted verbatim in stale-journal errors.
fn opts_line(selected: &[String], o: &SweepOpts) -> String {
    format!(
        "selected={} smoke={} full={} quick={} epochs={} tasks={} seed={}",
        selected.join(","),
        o.smoke,
        o.full,
        o.quick,
        o.epochs.map_or_else(|| "default".to_string(), |e| e.to_string()),
        o.tasks.as_ref().map_or_else(|| "default".to_string(), |t| t.join(",")),
        o.seed
    )
}

/// Digest of the running executable — the code-identity half of the
/// journal key. A rebuilt binary (changed simulation, aggregation or
/// attack code) hashes differently even when the plan shape is unchanged,
/// so its resume is refused instead of silently mixing old and new cells.
/// Memoized per process; `0` when the executable cannot be read (both
/// sides then degrade to plan-only keying rather than refusing falsely).
fn code_fingerprint() -> u64 {
    static FP: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *FP.get_or_init(|| {
        std::env::current_exe().ok().and_then(|p| std::fs::read(p).ok()).map_or(0, |bytes| {
            // Word-chunked FNV fold rather than the byte-wise [`Fp`]: this
            // hashes the whole executable (hundreds of MB for a debug test
            // binary) once per process, where byte-at-a-time folding is
            // ~8x slower. Seeding with the length keeps zero-padding to a
            // word boundary from colliding.
            let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (bytes.len() as u64).wrapping_mul(0x100_0000_01b3);
            for chunk in bytes.chunks(8) {
                let mut word = [0u8; 8];
                word[..chunk.len()].copy_from_slice(chunk);
                h = (h ^ u64::from_le_bytes(word)).wrapping_mul(0x100_0000_01b3);
            }
            h
        })
    })
}

/// Builds the journal header for a freshly planned sweep: per-section
/// fingerprints over labels + seed schedule, dataset fingerprints of every
/// task the plan touches (generated through the shared [`TaskCache`], so
/// nothing is wasted), the executable digest, and the plan fingerprint
/// tying it all together.
fn journal_header(
    selected: &[String],
    o: &SweepOpts,
    sections: &[Section],
    labels: &[String],
    seeds: &[u64],
) -> crate::journal::JournalHeader {
    use crate::journal::{DatasetMark, JournalHeader, SectionMark};
    let mut marks = Vec::with_capacity(sections.len());
    let mut offset = 0usize;
    for s in sections {
        let mut fp = Fp::new();
        fp.str(s.exp);
        for col in &s.header {
            fp.str(col);
        }
        for i in offset..offset + s.cells {
            fp.str(&labels[i]);
            fp.u64(seeds[i]);
        }
        marks.push(SectionMark { exp: s.exp.to_string(), cells: s.cells as u32, fp: fp.done() });
        offset += s.cells;
    }
    let datasets: Vec<DatasetMark> = union_tasks(sections.iter())
        .into_iter()
        .map(|task| {
            let t = o.res.tasks.get(&task, DATA_SEED);
            DatasetMark { task, train_fp: t.train.fingerprint(), test_fp: t.test.fingerprint() }
        })
        .collect();
    let opts = opts_line(selected, o);
    let mut fp = Fp::new();
    fp.str(&opts);
    fp.u64(DATA_SEED);
    fp.u64(o.seed);
    fp.u64(labels.len() as u64);
    for m in &marks {
        fp.str(&m.exp);
        fp.u64(m.cells as u64);
        fp.u64(m.fp);
    }
    for d in &datasets {
        fp.str(&d.task);
        fp.u64(d.train_fp);
        fp.u64(d.test_fp);
    }
    JournalHeader {
        version: 1,
        plan_seed: o.seed,
        plan_fp: fp.done(),
        code_fp: code_fingerprint(),
        data_seed: DATA_SEED,
        total_cells: labels.len() as u32,
        opts,
        sections: marks,
        datasets,
    }
}

/// Pinpoints the first divergence between a stored journal header and the
/// freshly planned one, naming the offending section where possible.
fn stale_reason(stored: &crate::journal::JournalHeader, current: &crate::journal::JournalHeader) -> String {
    if stored.plan_seed != current.plan_seed {
        return format!("master seed changed (journal {}, current {})", stored.plan_seed, current.plan_seed);
    }
    if stored.data_seed != current.data_seed {
        return format!("data seed changed (journal {}, current {})", stored.data_seed, current.data_seed);
    }
    if stored.code_fp != current.code_fp {
        return format!(
            "the binary changed since the journal was written (code fingerprint {:016x} vs {:016x}) — \
             journaled cells from a different build cannot be mixed with fresh ones",
            stored.code_fp, current.code_fp
        );
    }
    // Section-level diagnosis first, so the error names the offending
    // section: extra/missing by name, then count and fingerprint drift.
    let missing: Vec<&str> = current
        .sections
        .iter()
        .filter(|c| stored.sections.iter().all(|s| s.exp != c.exp))
        .map(|c| c.exp.as_str())
        .collect();
    if !missing.is_empty() {
        return format!("section(s) `{}` missing from the journal", missing.join("`, `"));
    }
    let extra: Vec<&str> = stored
        .sections
        .iter()
        .filter(|s| current.sections.iter().all(|c| c.exp != s.exp))
        .map(|s| s.exp.as_str())
        .collect();
    if !extra.is_empty() {
        return format!("journal has extra section(s) `{}`", extra.join("`, `"));
    }
    for (i, (s, c)) in stored.sections.iter().zip(&current.sections).enumerate() {
        if s.exp != c.exp {
            return format!(
                "section order changed at position {i} (journal `{}`, current `{}`)",
                s.exp, c.exp
            );
        }
        if s.cells != c.cells {
            return format!(
                "section `{}` changed cell count (journal {}, current {})",
                c.exp, s.cells, c.cells
            );
        }
        if s.fp != c.fp {
            return format!("section `{}` changed its cell labels or seed schedule", c.exp);
        }
    }
    for i in 0..stored.datasets.len().max(current.datasets.len()) {
        match (stored.datasets.get(i), current.datasets.get(i)) {
            (Some(d), None) => return format!("journal has an extra dataset `{}`", d.task),
            (None, Some(d)) => return format!("dataset `{}` is missing from the journal", d.task),
            (Some(s), Some(c)) if s != c => {
                return format!("dataset fingerprints changed for task `{}`", c.task)
            }
            _ => {}
        }
    }
    if stored.opts != current.opts {
        return format!("option set changed (journal: `{}`; current: `{}`)", stored.opts, current.opts);
    }
    format!("plan fingerprint mismatch (journal {:016x}, current {:016x})", stored.plan_fp, current.plan_fp)
}

/// Fault-injection cell count from `SG_SWEEP_FAULT_CELLS` (CI's crash
/// harness sets it on the real binaries; in-process tests use
/// [`JournalCfg::fault_after`] directly).
///
/// # Panics
///
/// Panics on a malformed value.
fn fault_from_env() -> Option<usize> {
    let raw = std::env::var("SG_SWEEP_FAULT_CELLS").ok()?;
    let n: usize = raw.parse().expect("SG_SWEEP_FAULT_CELLS must be an integer");
    assert!(n > 0, "SG_SWEEP_FAULT_CELLS must be >= 1");
    Some(n)
}

/// Validates a parsed journal against the freshly planned sweep and
/// hydrates its cells into `hydrated`; returns the writer positioned for
/// appending the remainder.
fn resume_into(
    parsed: crate::journal::Parsed,
    header: &crate::journal::JournalHeader,
    labels: &[String],
    seeds: &[u64],
    hydrated: &mut std::collections::BTreeMap<usize, Rows>,
    writer: crate::journal::JournalWriter,
) -> Result<crate::journal::JournalWriter, SweepError> {
    if parsed.header != *header {
        return Err(SweepError::Stale { reason: stale_reason(&parsed.header, header) });
    }
    let torn_bytes = parsed.torn_bytes;
    for cell in parsed.cells {
        let index = cell.index as usize;
        let valid = index < labels.len()
            && labels[index] == cell.label
            && seeds[index] == cell.seed
            && !hydrated.contains_key(&index);
        if !valid {
            return Err(SweepError::Stale {
                reason: format!(
                    "journaled cell {index} (`{}`) does not match the plan's label/seed schedule",
                    cell.label
                ),
            });
        }
        hydrated.insert(index, cell.rows);
    }
    if torn_bytes > 0 {
        eprintln!(
            "[journal] dropped a torn {torn_bytes}-byte tail (crash mid-append); {} cells recovered",
            hydrated.len()
        );
    }
    Ok(writer)
}

/// Plans and sweeps `selected` experiments as one grid, optionally
/// checkpointing each completed cell to a journal and resuming from one.
///
/// This is the engine behind `exp_all` and [`run_standalone`]. With
/// `journal.resume` set and a valid journal at `journal.path`, the
/// already-journaled cells are **hydrated** (their rows read back, their
/// closures never run) and only the remainder executes — the returned
/// results, and therefore [`consolidated_json`], are byte-identical to an
/// uninterrupted run at any `--jobs` value.
///
/// # Errors
///
/// [`SweepError::Journal`] when the journal is unreadable or corrupt;
/// [`SweepError::Stale`] when it belongs to a different sweep (edited
/// plan, smoke vs full, different seed, changed datasets). On error **no
/// cells run and no partial rows are returned**.
///
/// # Panics
///
/// Panics when a cell or the journal append fails mid-sweep, and on the
/// injected fault (crash testing) — exactly like the crash it simulates.
pub fn run_sections(
    selected: &[String],
    o: &SweepOpts,
    jobs: usize,
    journal: &JournalCfg,
) -> Result<SweepOutcome, SweepError> {
    use crate::journal::{CellRecord, JournalWriter};
    use std::collections::{BTreeMap, HashSet};

    let mut plan: RunPlan<Rows> = RunPlan::new(o.seed);
    let sections: Vec<Section> = selected.iter().map(|exp| plan_section(exp, &mut plan, o)).collect();
    let total_cells = plan.len();
    let labels: Vec<String> = plan.labels().map(str::to_string).collect();
    // Replay the runner's seed schedule (fixed by cell index, independent
    // of --jobs and of any skip set) for fingerprinting and validation.
    let mut stream = SeedStream::new(o.seed);
    let seeds: Vec<u64> = (0..total_cells).map(|_| stream.next_seed()).collect();

    let mut hydrated: BTreeMap<usize, Rows> = BTreeMap::new();
    let mut writer: Option<JournalWriter> = None;
    if let Some(path) = &journal.path {
        let header = journal_header(selected, o, &sections, &labels, &seeds);
        if journal.resume && path.exists() {
            // A header that never made it to disk whole (crash in the
            // window between `File::create` and the first fsync) means
            // zero recoverable cells — that is "nothing to resume", not
            // damage, so fall through to a fresh journal instead of
            // demanding a manual delete. Anything else unreadable is
            // refused as usual.
            let resumed = match JournalWriter::resume(path) {
                Ok(resumed) => Some(resumed),
                Err(crate::journal::JournalError::TornHeader) => {
                    eprintln!(
                        "[journal] header at {} is incomplete (crash during creation); starting fresh",
                        path.display()
                    );
                    None
                }
                Err(e) => return Err(e.into()),
            };
            match resumed {
                None => {
                    writer =
                        Some(JournalWriter::create(path, &header).map_err(crate::journal::JournalError::Io)?);
                }
                Some((w, parsed)) => {
                    writer = Some(resume_into(parsed, &header, &labels, &seeds, &mut hydrated, w)?);
                }
            }
        } else {
            if journal.resume {
                eprintln!("[journal] nothing to resume at {}; starting fresh", path.display());
            }
            writer = Some(JournalWriter::create(path, &header).map_err(crate::journal::JournalError::Io)?);
        }
    }

    let skip: HashSet<usize> = hydrated.keys().copied().collect();
    let hydrated_count = hydrated.len();
    let on_cell: Option<sg_runtime::CellHook<'_, Rows>> = writer.map(|mut w| {
        Box::new(move |c: &sg_runtime::CellResult<Rows>| {
            let record = CellRecord {
                index: c.index as u32,
                seed: c.seed,
                label: c.label.clone(),
                rows: c.output.clone(),
            };
            w.append(&record).expect("journal append");
        }) as sg_runtime::CellHook<'_, Rows>
    });
    let opts =
        sg_runtime::RunOpts { skip, on_cell, fault_after: journal.fault_after.or_else(fault_from_env) };

    let runner = GridRunner::new(jobs);
    let report = runner.run_opts(plan, opts);
    let executed = report.cells.len();

    // Merge executed outputs with hydrated rows, in plan order.
    let mut outputs: Vec<Option<Rows>> = (0..total_cells).map(|_| None).collect();
    for (index, rows) in hydrated {
        outputs[index] = Some(rows);
    }
    for cell in report.cells {
        outputs[cell.index] = Some(cell.output);
    }
    let mut outputs = outputs.into_iter();
    let mut results: Vec<(Section, Rows)> = Vec::with_capacity(sections.len());
    for mut s in sections {
        let rows: Rows = (0..s.cells)
            .flat_map(|_| outputs.next().expect("plan covers sections").expect("cell output"))
            .collect();
        let (header, rows) = finish(s.exp, s.header, rows);
        s.header = header;
        results.push((s, rows));
    }
    Ok(SweepOutcome { results, total_cells, executed, hydrated: hydrated_count })
}

// ---- Consolidated report ----------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_string_array(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| format!("\"{}\"", json_escape(s))).collect();
    format!("[{}]", quoted.join(", "))
}

/// Serializes a sweep into the consolidated report JSON. Everything in the
/// report is a **pure function of the plan and its cell outputs** —
/// plan-ordered rows, dataset fingerprints derived from the plan's task
/// inventory; no timings, no thread counts, no runtime cache counters — so
/// the bytes are identical at any `--jobs` value **and** across a
/// checkpoint resume: an interrupted-then-resumed sweep emits exactly the
/// bytes of an uninterrupted one (CI's `grid-smoke` and `resume-smoke`
/// jobs both compare runs with `cmp`). Execution-dependent diagnostics
/// (cache hit/miss counters) go to stderr instead.
pub fn consolidated_json(o: &SweepOpts, results: &[(Section, Rows)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"sg-exp-all/v3\",\n");
    out.push_str(&format!("  \"seed\": {},\n", o.seed));
    out.push_str(&format!("  \"smoke\": {},\n", o.smoke));
    out.push_str(&format!("  \"data_seed\": {DATA_SEED},\n"));

    // The dataset inventory comes from the sections' task lists, not from
    // whatever the run happened to generate: a resumed sweep that hydrated
    // most cells still reports the full, identical inventory (generation
    // is seeded, so fingerprints are reproducible on demand).
    let datasets: Vec<String> = union_tasks(results.iter().map(|(s, _)| s))
        .into_iter()
        .map(|name| {
            let t = o.res.tasks.get(&name, DATA_SEED);
            format!(
                "    {{\"task\": \"{}\", \"data_seed\": {DATA_SEED}, \"train_fp\": \"{:016x}\", \
                 \"test_fp\": \"{:016x}\"}}",
                json_escape(&name),
                t.train.fingerprint(),
                t.test.fingerprint()
            )
        })
        .collect();
    out.push_str(&format!("  \"datasets\": [\n{}\n  ],\n", datasets.join(",\n")));

    let sections: Vec<String> = results
        .iter()
        .map(|(s, rows)| {
            let row_lines: Vec<String> =
                rows.iter().map(|r| format!("        {}", json_string_array(r))).collect();
            let rows_block = if row_lines.is_empty() {
                "[]".to_string()
            } else {
                format!("[\n{}\n      ]", row_lines.join(",\n"))
            };
            format!(
                "    {{\n      \"exp\": \"{}\",\n      \"title\": \"{}\",\n      \"cells\": {},\n      \
                 \"header\": {},\n      \"rows\": {}\n    }}",
                s.exp,
                json_escape(s.title),
                s.cells,
                json_string_array(&s.header),
                rows_block
            )
        })
        .collect();
    out.push_str(&format!("  \"sections\": [\n{}\n  ]\n", sections.join(",\n")));
    out.push_str("}\n");
    out
}
