//! KMeans clustering with k-means++ initialization.

use rand::Rng;
use sg_math::seeded_rng;

use crate::{squared_distance, Clustering};

/// Lloyd's algorithm with k-means++ seeding.
///
/// The paper notes KMeans with `k = 2` suffices for SignGuard when all
/// attackers submit one identical gradient; it is also the ablation
/// baseline for the clustering back-end.
#[derive(Debug, Clone)]
pub struct KMeans {
    k: usize,
    max_iter: usize,
    seed: u64,
}

impl KMeans {
    /// Creates a KMeans with `k` clusters.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "KMeans: k must be positive");
        Self { k, max_iter: 100, seed: 0x5ee0 }
    }

    /// Sets the RNG seed used by k-means++ (default fixed for
    /// reproducibility).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps Lloyd iterations (default 100).
    #[must_use]
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter.max(1);
        self
    }

    /// Runs KMeans on `points`. If there are fewer distinct points than
    /// `k`, the effective cluster count shrinks accordingly.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or dimensions are inconsistent.
    pub fn fit(&self, points: &[Vec<f32>]) -> Clustering {
        assert!(!points.is_empty(), "KMeans::fit: no points");
        let dim = points[0].len();
        assert!(points.iter().all(|p| p.len() == dim), "KMeans::fit: inconsistent dimensions");
        let k = self.k.min(points.len());
        let mut rng = seeded_rng(self.seed);

        // k-means++ seeding.
        let mut centers: Vec<Vec<f32>> = Vec::with_capacity(k);
        centers.push(points[rng.gen_range(0..points.len())].clone());
        while centers.len() < k {
            let d2: Vec<f32> = points
                .iter()
                .map(|p| centers.iter().map(|c| squared_distance(p, c)).fold(f32::INFINITY, f32::min))
                .collect();
            let total: f32 = d2.iter().sum();
            if total <= 1e-12 {
                break; // all remaining points coincide with a center
            }
            let mut target = rng.gen::<f32>() * total;
            let mut chosen = points.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            centers.push(points[chosen].clone());
        }

        // Lloyd iterations.
        let mut labels = vec![0usize; points.len()];
        for _ in 0..self.max_iter {
            let mut changed = false;
            for (i, p) in points.iter().enumerate() {
                let mut best = 0usize;
                let mut best_d = f32::INFINITY;
                for (c_idx, c) in centers.iter().enumerate() {
                    let d = squared_distance(p, c);
                    if d < best_d {
                        best_d = d;
                        best = c_idx;
                    }
                }
                if labels[i] != best {
                    labels[i] = best;
                    changed = true;
                }
            }
            // Recompute centers; empty clusters keep their previous center.
            let mut acc = vec![vec![0.0f32; dim]; centers.len()];
            let mut counts = vec![0usize; centers.len()];
            for (i, p) in points.iter().enumerate() {
                counts[labels[i]] += 1;
                for (a, &v) in acc[labels[i]].iter_mut().zip(p) {
                    *a += v;
                }
            }
            for (c_idx, center) in centers.iter_mut().enumerate() {
                if counts[c_idx] > 0 {
                    let inv = 1.0 / counts[c_idx] as f32;
                    for (c, a) in center.iter_mut().zip(&acc[c_idx]) {
                        *c = a * inv;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        Clustering { labels, centers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn blob<R: Rng>(rng: &mut R, center: &[f32], n: usize, spread: f32) -> Vec<Vec<f32>> {
        (0..n).map(|_| center.iter().map(|&c| c + rng.gen_range(-spread..spread)).collect()).collect()
    }

    #[test]
    fn separates_two_blobs() {
        let mut rng = seeded_rng(0);
        let mut pts = blob(&mut rng, &[0.0, 0.0], 25, 0.3);
        pts.extend(blob(&mut rng, &[8.0, 8.0], 15, 0.3));
        let c = KMeans::new(2).fit(&pts);
        assert_eq!(c.num_clusters(), 2);
        // All of blob A share a label, all of blob B share the other.
        let a = c.labels[0];
        assert!(c.labels[..25].iter().all(|&l| l == a));
        assert!(c.labels[25..].iter().all(|&l| l != a));
        assert_eq!(c.largest_cluster().len(), 25);
    }

    #[test]
    fn k_larger_than_points_shrinks() {
        let pts = vec![vec![0.0], vec![1.0]];
        let c = KMeans::new(10).fit(&pts);
        assert!(c.num_clusters() <= 2);
    }

    #[test]
    fn identical_points_one_cluster() {
        let pts = vec![vec![2.0, 2.0]; 8];
        let c = KMeans::new(3).fit(&pts);
        assert_eq!(c.sizes().iter().sum::<usize>(), 8);
        // All points get the same label.
        assert!(c.labels.iter().all(|&l| l == c.labels[0]));
    }

    #[test]
    fn deterministic_with_seed() {
        let mut rng = seeded_rng(5);
        let pts = blob(&mut rng, &[0.0, 0.0], 30, 1.0);
        let a = KMeans::new(3).with_seed(9).fit(&pts);
        let b = KMeans::new(3).with_seed(9).fit(&pts);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn centers_are_cluster_means() {
        let pts = vec![vec![0.0], vec![2.0], vec![10.0], vec![12.0]];
        let c = KMeans::new(2).fit(&pts);
        let mut centers: Vec<f32> = c.centers.iter().map(|v| v[0]).collect();
        centers.sort_by(f32::total_cmp);
        assert!((centers[0] - 1.0).abs() < 1e-5);
        assert!((centers[1] - 11.0).abs() < 1e-5);
    }
}
