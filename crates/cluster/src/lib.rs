//! Unsupervised clustering for SignGuard's sign-based gradient filter.
//!
//! The paper clusters per-gradient feature vectors (sign statistics plus an
//! optional similarity feature) with **MeanShift** — chosen because the
//! number of clusters is unknown a priori — and notes that **KMeans** with
//! two clusters suffices when all attackers send one identical vector. Both
//! algorithms are implemented here from scratch against plain `f32` points.
//!
//! # Examples
//!
//! ```
//! use sg_cluster::MeanShift;
//!
//! let pts = vec![
//!     vec![0.0, 0.0], vec![0.1, 0.0], vec![0.0, 0.1],
//!     vec![5.0, 5.0], vec![5.1, 5.0],
//! ];
//! let clustering = MeanShift::new().with_bandwidth(1.0).fit(&pts);
//! let biggest = clustering.largest_cluster();
//! assert_eq!(biggest.len(), 3);
//! ```

mod kmeans;
mod meanshift;

pub use kmeans::KMeans;
pub use meanshift::MeanShift;

/// Result of a clustering run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Cluster label per input point.
    pub labels: Vec<usize>,
    /// Cluster centers, indexed by label.
    pub centers: Vec<Vec<f32>>,
}

impl Clustering {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.centers.len()
    }

    /// Sizes of each cluster, indexed by label.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centers.len()];
        for &l in &self.labels {
            sizes[l] += 1;
        }
        sizes
    }

    /// Indices of points in the most populous cluster (ties resolve to the
    /// lowest label). This is SignGuard's trusted-set selection rule.
    ///
    /// # Panics
    ///
    /// Panics if the clustering is empty.
    pub fn largest_cluster(&self) -> Vec<usize> {
        assert!(!self.centers.is_empty(), "largest_cluster on empty clustering");
        let sizes = self.sizes();
        let best = sizes
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
            .map(|(i, _)| i)
            .expect("non-empty");
        self.labels.iter().enumerate().filter(|(_, &l)| l == best).map(|(i, _)| i).collect()
    }
}

pub(crate) fn squared_distance(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_largest() {
        let c = Clustering { labels: vec![0, 1, 1, 1, 0], centers: vec![vec![0.0], vec![1.0]] };
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.sizes(), vec![2, 3]);
        assert_eq!(c.largest_cluster(), vec![1, 2, 3]);
    }

    #[test]
    fn largest_cluster_tie_prefers_lowest_label() {
        let c = Clustering { labels: vec![0, 1, 0, 1], centers: vec![vec![0.0], vec![1.0]] };
        assert_eq!(c.largest_cluster(), vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "empty clustering")]
    fn largest_of_empty_panics() {
        let c = Clustering { labels: vec![], centers: vec![] };
        let _ = c.largest_cluster();
    }
}
