//! MeanShift clustering with a flat (uniform) kernel.

use crate::{squared_distance, Clustering};

/// MeanShift with a flat kernel and automatic bandwidth estimation.
///
/// Every point seeds a mode search; each iteration moves the seed to the
/// mean of all points within `bandwidth`. Converged modes closer than half
/// a bandwidth are merged, and points are assigned to the nearest surviving
/// mode. The adaptive cluster count is why the paper picks MeanShift: the
/// server does not know how many attack populations exist.
#[derive(Debug, Clone)]
pub struct MeanShift {
    bandwidth: Option<f32>,
    max_iter: usize,
    tol: f32,
}

impl MeanShift {
    /// Creates a MeanShift with automatic bandwidth.
    pub fn new() -> Self {
        Self { bandwidth: None, max_iter: 100, tol: 1e-4 }
    }

    /// Fixes the kernel bandwidth instead of estimating it.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is not positive.
    #[must_use]
    pub fn with_bandwidth(mut self, bandwidth: f32) -> Self {
        assert!(bandwidth > 0.0, "MeanShift: bandwidth must be positive");
        self.bandwidth = Some(bandwidth);
        self
    }

    /// Caps mode-seeking iterations (default 100).
    #[must_use]
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter.max(1);
        self
    }

    /// Estimates a bandwidth as sklearn's `estimate_bandwidth` does: the
    /// mean over all points of the distance to their `⌊0.3 · n⌋`-th nearest
    /// neighbor.
    ///
    /// Returns a small positive floor if all points coincide.
    pub fn estimate_bandwidth(points: &[Vec<f32>]) -> f32 {
        let n = points.len();
        if n < 2 {
            return 1e-3;
        }
        let k = ((n as f32) * 0.3).floor().max(1.0) as usize;
        let mut total = 0.0f64;
        for i in 0..n {
            let mut dists: Vec<f32> =
                (0..n).filter(|&j| j != i).map(|j| squared_distance(&points[i], &points[j]).sqrt()).collect();
            let kth = k.min(dists.len()) - 1;
            let (_, d, _) = dists.select_nth_unstable_by(kth, f32::total_cmp);
            total += f64::from(*d);
        }
        let bw = (total / n as f64) as f32;
        if bw > 1e-6 {
            bw
        } else {
            1e-3
        }
    }

    /// Runs MeanShift on `points`.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or dimensions are inconsistent.
    pub fn fit(&self, points: &[Vec<f32>]) -> Clustering {
        assert!(!points.is_empty(), "MeanShift::fit: no points");
        let dim = points[0].len();
        assert!(points.iter().all(|p| p.len() == dim), "MeanShift::fit: inconsistent dimensions");

        let bandwidth = self.bandwidth.unwrap_or_else(|| Self::estimate_bandwidth(points));
        let bw_sq = bandwidth * bandwidth;

        // Mode-seek from every point.
        let mut modes: Vec<Vec<f32>> = Vec::with_capacity(points.len());
        for start in points {
            let mut mode = start.clone();
            for _ in 0..self.max_iter {
                let mut acc = vec![0.0f32; dim];
                let mut count = 0usize;
                for p in points {
                    if squared_distance(&mode, p) <= bw_sq {
                        for (a, &v) in acc.iter_mut().zip(p) {
                            *a += v;
                        }
                        count += 1;
                    }
                }
                if count == 0 {
                    break;
                }
                let inv = 1.0 / count as f32;
                let mut shift_sq = 0.0f32;
                for (a, m) in acc.iter_mut().zip(&mut mode) {
                    *a *= inv;
                    let d = *a - *m;
                    shift_sq += d * d;
                    *m = *a;
                }
                if shift_sq.sqrt() < self.tol {
                    break;
                }
            }
            modes.push(mode);
        }

        // Merge modes within one bandwidth (as sklearn's mode dedup does).
        let merge_sq = bw_sq;
        let mut centers: Vec<Vec<f32>> = Vec::new();
        let mut weights: Vec<usize> = Vec::new();
        for mode in modes {
            match centers.iter().position(|c| squared_distance(c, &mode) <= merge_sq) {
                Some(k) => {
                    // Running mean of merged modes keeps centers stable.
                    let w = weights[k] as f32;
                    for (c, &m) in centers[k].iter_mut().zip(&mode) {
                        *c = (*c * w + m) / (w + 1.0);
                    }
                    weights[k] += 1;
                }
                None => {
                    centers.push(mode);
                    weights.push(1);
                }
            }
        }

        // Assign each point to the nearest center.
        let labels = points
            .iter()
            .map(|p| {
                let mut best = 0usize;
                let mut best_d = f32::INFINITY;
                for (k, c) in centers.iter().enumerate() {
                    let d = squared_distance(p, c);
                    if d < best_d {
                        best_d = d;
                        best = k;
                    }
                }
                best
            })
            .collect();
        Clustering { labels, centers }
    }
}

impl Default for MeanShift {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use sg_math::seeded_rng;

    fn blob<R: Rng>(rng: &mut R, center: &[f32], n: usize, spread: f32) -> Vec<Vec<f32>> {
        (0..n).map(|_| center.iter().map(|&c| c + rng.gen_range(-spread..spread)).collect()).collect()
    }

    #[test]
    fn two_well_separated_blobs() {
        let mut rng = seeded_rng(0);
        let mut pts = blob(&mut rng, &[0.0, 0.0], 20, 0.2);
        pts.extend(blob(&mut rng, &[10.0, 10.0], 10, 0.2));
        let c = MeanShift::new().fit(&pts);
        assert_eq!(c.num_clusters(), 2, "centers: {:?}", c.centers);
        let big = c.largest_cluster();
        assert_eq!(big.len(), 20);
        assert!(big.iter().all(|&i| i < 20));
    }

    #[test]
    fn single_blob_mostly_one_cluster() {
        // A uniform blob can legitimately split into a couple of modes under
        // a flat kernel (the paper's Table II shows honest selection rates
        // below 1.0 for the same reason); what matters is that the dominant
        // cluster holds a clear majority.
        let mut rng = seeded_rng(1);
        let pts = blob(&mut rng, &[1.0, 2.0, 3.0], 30, 0.1);
        let c = MeanShift::new().fit(&pts);
        assert!(c.num_clusters() <= 3, "clusters: {}", c.num_clusters());
        assert!(c.largest_cluster().len() >= 20, "largest: {}", c.largest_cluster().len());
    }

    #[test]
    fn identical_points_do_not_crash() {
        let pts = vec![vec![0.5, 0.5]; 10];
        let c = MeanShift::new().fit(&pts);
        assert_eq!(c.num_clusters(), 1);
    }

    #[test]
    fn three_blobs_adaptive_count() {
        let mut rng = seeded_rng(2);
        let mut pts = blob(&mut rng, &[0.0, 0.0], 15, 0.15);
        pts.extend(blob(&mut rng, &[6.0, 0.0], 12, 0.15));
        pts.extend(blob(&mut rng, &[0.0, 6.0], 8, 0.15));
        let c = MeanShift::new().fit(&pts);
        assert_eq!(c.num_clusters(), 3, "centers: {:?}", c.centers);
    }

    #[test]
    fn fixed_bandwidth_controls_granularity() {
        let pts = vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]];
        // Huge bandwidth: everything is one cluster.
        let coarse = MeanShift::new().with_bandwidth(100.0).fit(&pts);
        assert_eq!(coarse.num_clusters(), 1);
        // Tight bandwidth: pairs split.
        let fine = MeanShift::new().with_bandwidth(2.0).fit(&pts);
        assert_eq!(fine.num_clusters(), 2);
    }

    #[test]
    fn bandwidth_estimate_positive() {
        let pts = vec![vec![0.0, 0.0], vec![3.0, 4.0], vec![1.0, 1.0]];
        assert!(MeanShift::estimate_bandwidth(&pts) > 0.0);
        assert!(MeanShift::estimate_bandwidth(&[vec![1.0]]) > 0.0);
    }

    #[test]
    #[should_panic(expected = "no points")]
    fn empty_input_panics() {
        let _ = MeanShift::new().fit(&[]);
    }
}
