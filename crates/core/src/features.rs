//! Gradient feature extraction: sign statistics and similarity features.

use rand::Rng;
use sg_aggregators::SignNormVec;
use sg_math::{kernels, vecops};
use sg_math::{ParallelExecutor, SeqExecutor};

/// Sign statistics of one gradient (proportions over a coordinate subset).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradientFeatures {
    /// Fraction of strictly positive coordinates.
    pub positive: f32,
    /// Fraction of exact-zero (or NaN) coordinates.
    pub zero: f32,
    /// Fraction of strictly negative coordinates.
    pub negative: f32,
    /// Optional similarity feature (cosine or normalized distance to a
    /// reference gradient).
    pub similarity: Option<f32>,
}

impl GradientFeatures {
    /// Flattens into the clustering feature vector.
    pub fn to_vec(self) -> Vec<f32> {
        match self.similarity {
            Some(s) => vec![self.positive, self.zero, self.negative, s],
            None => vec![self.positive, self.zero, self.negative],
        }
    }
}

/// Which similarity feature to append to the sign statistics.
///
/// The paper's plain SignGuard uses [`SimilarityFeature::None`];
/// SignGuard-Sim appends the cosine similarity to a reference gradient and
/// SignGuard-Dist the (normalized) Euclidean distance. The reference is the
/// previous round's aggregate when available — the cheap option the paper
/// recommends — otherwise the coordinate-wise median of the current round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimilarityFeature {
    /// Sign statistics only (plain SignGuard).
    #[default]
    None,
    /// Append ReLU-free cosine similarity (SignGuard-Sim).
    Cosine,
    /// Append Euclidean distance, normalized by the median distance
    /// (SignGuard-Dist).
    Euclidean,
}

/// Extracts clustering features from a batch of gradients.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    /// Fraction of coordinates to sample (paper default 0.1).
    pub coord_fraction: f32,
    /// Similarity feature variant.
    pub similarity: SimilarityFeature,
}

impl FeatureExtractor {
    /// Creates an extractor with the paper defaults (10% coordinates, no
    /// similarity feature).
    pub fn new() -> Self {
        Self { coord_fraction: 0.1, similarity: SimilarityFeature::None }
    }

    /// Computes features for every gradient (sequentially).
    ///
    /// `reference` is the "correct" gradient used by the similarity
    /// feature; pass the previous aggregate when available.
    ///
    /// # Panics
    ///
    /// Panics if `gradients` is empty or `coord_fraction` is outside
    /// `(0, 1]`.
    pub fn extract<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        gradients: &[Vec<f32>],
        reference: Option<&[f32]>,
    ) -> Vec<GradientFeatures> {
        self.extract_with(&SeqExecutor, rng, gradients, reference)
    }

    /// Computes features for every gradient, sharding per-gradient work
    /// (sign counting and similarity) across `exec`.
    ///
    /// The coordinate subset is sampled from `rng` on the calling thread
    /// before any parallel work, and per-gradient results are integer
    /// counts or pure functions of one gradient — so the output is
    /// bit-identical to [`FeatureExtractor::extract`] at any parallelism.
    ///
    /// # Panics
    ///
    /// Panics if `gradients` is empty or `coord_fraction` is outside
    /// `(0, 1]`.
    pub fn extract_with<R: Rng + ?Sized>(
        &self,
        exec: &dyn ParallelExecutor,
        rng: &mut R,
        gradients: &[Vec<f32>],
        reference: Option<&[f32]>,
    ) -> Vec<GradientFeatures> {
        assert!(!gradients.is_empty(), "FeatureExtractor: empty batch");
        assert!(
            self.coord_fraction > 0.0 && self.coord_fraction <= 1.0,
            "FeatureExtractor: coord_fraction {} out of (0,1]",
            self.coord_fraction
        );
        let dim = gradients[0].len();
        let k = (((dim as f32) * self.coord_fraction).round() as usize).clamp(1, dim);
        let coords = sg_math::rng::sample_indices(rng, dim, k);

        // One row of width 3 (sign stats) or 4 (+ similarity) per gradient;
        // each row is one executor chunk, so a gradient's features are
        // always computed whole by one worker.
        let with_sim = self.similarity != SimilarityFeature::None;
        let width = if with_sim { 4 } else { 3 };
        let reference = if with_sim { Some(self.resolve_reference(gradients, reference)) } else { None };
        let similarity = self.similarity;
        let mut rows = vec![0.0f32; gradients.len() * width];
        exec.run_chunks(&mut rows, width, &|i, row| {
            let g = &gradients[i];
            let (pos, zero, neg) = kernels::sign_counts_at(g, &coords);
            let inv = 1.0 / coords.len() as f32;
            row[0] = pos as f32 * inv;
            row[1] = zero as f32 * inv;
            row[2] = neg as f32 * inv;
            match (similarity, &reference) {
                (SimilarityFeature::Cosine, Some(r)) => row[3] = vecops::cosine_similarity(g, r),
                (SimilarityFeature::Euclidean, Some(r)) => row[3] = vecops::l2_distance(g, r),
                _ => {}
            }
        });

        // Distance features are normalized by their median, which needs all
        // gradients — done after the parallel pass, in index order.
        if similarity == SimilarityFeature::Euclidean {
            let dists: Vec<f32> = rows.chunks(width).map(|r| r[3]).collect();
            let med = sg_math::median(&dists).max(1e-12);
            for r in rows.chunks_mut(width) {
                r[3] /= med;
            }
        }

        rows.chunks(width)
            .map(|r| GradientFeatures {
                positive: r[0],
                zero: r[1],
                negative: r[2],
                similarity: with_sim.then(|| r[3]),
            })
            .collect()
    }

    /// Computes features for a bit-packed sign+norm batch, never
    /// materializing a dense gradient: sign statistics are popcount-style
    /// reads over the sampled coordinates, and similarity features use the
    /// sign-dot identities on the packed words (for a packed vector with
    /// stand-in magnitude `c = norm/√nnz`: `cos = Σ sᵢrᵢ / (√nnz·‖r‖)`,
    /// `dist² = norm² − 2c·Σ sᵢrᵢ + ‖r‖²`).
    ///
    /// The coordinate subset is drawn exactly as in
    /// [`FeatureExtractor::extract_with`], and every per-gradient feature
    /// is a pure function of one packed vector — so the output is
    /// bit-identical at any parallelism and either `SG_SIMD` width.
    ///
    /// # Panics
    ///
    /// Panics if `packed` is empty or `coord_fraction` is outside `(0, 1]`.
    pub fn extract_packed_with<R: Rng + ?Sized>(
        &self,
        exec: &dyn ParallelExecutor,
        rng: &mut R,
        packed: &[SignNormVec],
        reference: Option<&[f32]>,
    ) -> Vec<GradientFeatures> {
        assert!(!packed.is_empty(), "FeatureExtractor: empty batch");
        assert!(
            self.coord_fraction > 0.0 && self.coord_fraction <= 1.0,
            "FeatureExtractor: coord_fraction {} out of (0,1]",
            self.coord_fraction
        );
        let dim = packed[0].dim();
        let k = (((dim as f32) * self.coord_fraction).round() as usize).clamp(1, dim);
        let coords = sg_math::rng::sample_indices(rng, dim, k);

        let with_sim = self.similarity != SimilarityFeature::None;
        let width = if with_sim { 4 } else { 3 };
        let reference = if with_sim { Some(self.resolve_reference_packed(packed, reference)) } else { None };
        let similarity = self.similarity;
        let mut rows = vec![0.0f32; packed.len() * width];
        exec.run_chunks(&mut rows, width, &|i, row| {
            let p = &packed[i];
            let (pos, zero, neg) = p.sign_counts_at(&coords);
            let inv = 1.0 / coords.len() as f32;
            row[0] = pos as f32 * inv;
            row[1] = zero as f32 * inv;
            row[2] = neg as f32 * inv;
            match (similarity, &reference) {
                (SimilarityFeature::Cosine, Some(r)) => row[3] = packed_cosine(p, r),
                (SimilarityFeature::Euclidean, Some(r)) => row[3] = packed_distance(p, r),
                _ => {}
            }
        });

        if similarity == SimilarityFeature::Euclidean {
            let dists: Vec<f32> = rows.chunks(width).map(|r| r[3]).collect();
            let med = sg_math::median(&dists).max(1e-12);
            for r in rows.chunks_mut(width) {
                r[3] /= med;
            }
        }

        rows.chunks(width)
            .map(|r| GradientFeatures {
                positive: r[0],
                zero: r[1],
                negative: r[2],
                similarity: with_sim.then(|| r[3]),
            })
            .collect()
    }

    /// Uses the supplied reference, or falls back to the coordinate-wise
    /// median of the current batch (a robust stand-in for the unavailable
    /// "correct" gradient).
    fn resolve_reference(&self, gradients: &[Vec<f32>], reference: Option<&[f32]>) -> Vec<f32> {
        if let Some(r) = reference {
            if r.len() == gradients[0].len() {
                return r.to_vec();
            }
        }
        let dim = gradients[0].len();
        let n = gradients.len();
        let mut out = vec![0.0f32; dim];
        let mut col = vec![0.0f32; n];
        for j in 0..dim {
            for (i, g) in gradients.iter().enumerate() {
                col[i] = g[j];
            }
            out[j] = sg_math::median(&col);
        }
        out
    }

    /// Packed-batch reference fallback: per-coordinate *majority sign* of
    /// the batch (coordinate medians need magnitudes the representation
    /// does not carry), scaled so the reference norm tracks the median
    /// client norm. A supplied reference of the right dimension (the
    /// previous aggregate — dense by construction) is used as-is.
    fn resolve_reference_packed(&self, packed: &[SignNormVec], reference: Option<&[f32]>) -> Vec<f32> {
        if let Some(r) = reference {
            if r.len() == packed[0].dim() {
                return r.to_vec();
            }
        }
        let dim = packed[0].dim();
        let mut votes = vec![0.0f32; dim];
        for p in packed {
            kernels::packed_signs_axpy(p.bits(), p.zeros(), 1.0, 0, &mut votes);
        }
        let norms: Vec<f32> = packed.iter().map(SignNormVec::norm).filter(|n| n.is_finite()).collect();
        let med = if norms.is_empty() { 1.0 } else { sg_math::median(&norms) };
        let mag = med / (dim as f32).sqrt();
        for v in votes.iter_mut() {
            *v = if *v > 0.0 {
                mag
            } else if *v < 0.0 {
                -mag
            } else {
                0.0
            };
        }
        votes
    }
}

/// Cosine similarity of a packed vector's dense stand-in to `r`, via the
/// sign-dot identity (`‖stand-in‖ = c·√nnz` cancels the magnitude `c`):
/// `cos = Σ sᵢrᵢ / (√nnz · ‖r‖)`. Zero-norm either side gives `0.0`,
/// matching [`vecops::cosine_similarity`].
fn packed_cosine(p: &SignNormVec, r: &[f32]) -> f32 {
    let nnz = p.nnz();
    let rn = kernels::l2_norm_sq_f64(r).sqrt();
    if nnz == 0 || p.norm() == 0.0 || rn == 0.0 {
        return 0.0;
    }
    let dot = kernels::packed_signs_dot_f64(p.bits(), p.zeros(), r);
    ((dot / ((nnz as f64).sqrt() * rn)) as f32).clamp(-1.0, 1.0)
}

/// Euclidean distance of a packed vector's dense stand-in to `r`, expanded
/// over the sign dot: `dist² = c²·nnz − 2c·Σ sᵢrᵢ + ‖r‖²` with stand-in
/// magnitude `c = norm/√nnz`.
fn packed_distance(p: &SignNormVec, r: &[f32]) -> f32 {
    let nnz = p.nnz();
    let c = if nnz == 0 { 0.0f64 } else { f64::from(p.norm()) / (nnz as f64).sqrt() };
    let g2 = c * c * nnz as f64;
    let dot = kernels::packed_signs_dot_f64(p.bits(), p.zeros(), r);
    let r2 = kernels::l2_norm_sq_f64(r);
    (g2 - 2.0 * c * dot + r2).max(0.0).sqrt() as f32
}

impl Default for FeatureExtractor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_math::seeded_rng;

    #[test]
    fn sign_fractions_sum_to_one() {
        let mut rng = seeded_rng(0);
        let grads = vec![vec![1.0, -1.0, 0.0, 2.0, -3.0, 0.0, 1.0, 1.0, -1.0, 0.5]];
        let fe = FeatureExtractor { coord_fraction: 1.0, ..FeatureExtractor::new() };
        let f = fe.extract(&mut rng, &grads, None);
        let sum = f[0].positive + f[0].zero + f[0].negative;
        assert!((sum - 1.0).abs() < 1e-6);
        assert_eq!(f[0].positive, 0.5);
        assert_eq!(f[0].zero, 0.2);
        assert_eq!(f[0].negative, 0.3);
    }

    #[test]
    fn sign_flip_swaps_pos_neg() {
        let mut rng = seeded_rng(1);
        let g: Vec<f32> = (0..100).map(|i| if i % 3 == 0 { -1.0 } else { 1.0 }).collect();
        let flipped: Vec<f32> = g.iter().map(|x| -x).collect();
        let fe = FeatureExtractor { coord_fraction: 1.0, ..FeatureExtractor::new() };
        let f = fe.extract(&mut rng, &[g, flipped], None);
        assert!((f[0].positive - f[1].negative).abs() < 1e-6);
        assert!((f[0].negative - f[1].positive).abs() < 1e-6);
    }

    #[test]
    fn cosine_feature_distinguishes_reversed_gradient() {
        let mut rng = seeded_rng(2);
        let honest: Vec<Vec<f32>> =
            (0..5).map(|i| (0..40).map(|j| 1.0 + 0.1 * ((i + j) as f32).sin()).collect()).collect();
        let mut grads = honest.clone();
        grads.push(honest[0].iter().map(|x| -x).collect());
        let reference = sg_math::vecops::mean_vector(&honest, 40);
        let fe = FeatureExtractor { coord_fraction: 1.0, similarity: SimilarityFeature::Cosine };
        let f = fe.extract(&mut rng, &grads, Some(&reference));
        for hf in &f[..5] {
            assert!(hf.similarity.expect("sim") > 0.9);
        }
        assert!(f[5].similarity.expect("sim") < -0.9);
    }

    #[test]
    fn distance_feature_normalized_by_median() {
        let mut rng = seeded_rng(3);
        let grads = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![10.0, 10.0]];
        let fe = FeatureExtractor { coord_fraction: 1.0, similarity: SimilarityFeature::Euclidean };
        let f = fe.extract(&mut rng, &grads, Some(&[0.0, 0.0]));
        // Distances 1, 1, 14.14 -> median 1 -> features 1, 1, 14.14.
        assert!((f[0].similarity.expect("d") - 1.0).abs() < 1e-5);
        assert!(f[2].similarity.expect("d") > 10.0);
    }

    #[test]
    fn reference_fallback_is_median_gradient() {
        let mut rng = seeded_rng(4);
        let grads = vec![vec![1.0; 4], vec![1.0; 4], vec![-50.0; 4]];
        let fe = FeatureExtractor { coord_fraction: 1.0, similarity: SimilarityFeature::Cosine };
        // No reference: the coordinate median ([1,1,1,1]) anchors the cosine.
        let f = fe.extract(&mut rng, &grads, None);
        assert!(f[0].similarity.expect("sim") > 0.99);
        assert!(f[2].similarity.expect("sim") < -0.99);
    }

    #[test]
    fn feature_vector_length_matches_variant() {
        let mut rng = seeded_rng(5);
        let grads = vec![vec![1.0, -1.0]];
        let plain = FeatureExtractor { coord_fraction: 1.0, similarity: SimilarityFeature::None }
            .extract(&mut rng, &grads, None);
        assert_eq!(plain[0].to_vec().len(), 3);
        let sim = FeatureExtractor { coord_fraction: 1.0, similarity: SimilarityFeature::Cosine }
            .extract(&mut rng, &grads, None);
        assert_eq!(sim[0].to_vec().len(), 4);
    }

    #[test]
    fn subsampling_uses_requested_fraction() {
        let mut rng = seeded_rng(6);
        // A gradient positive on exactly the first half of coordinates; over
        // many subsample draws the mean positive fraction must approach 0.5.
        let g: Vec<f32> = (0..1000).map(|i| if i < 500 { 1.0 } else { -1.0 }).collect();
        let fe = FeatureExtractor { coord_fraction: 0.1, ..FeatureExtractor::new() };
        let mut total = 0.0;
        for _ in 0..50 {
            let f = fe.extract(&mut rng, std::slice::from_ref(&g), None);
            total += f[0].positive;
        }
        let mean = total / 50.0;
        assert!((mean - 0.5).abs() < 0.05, "mean positive fraction {mean}");
    }
}
