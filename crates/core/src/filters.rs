//! The collaborative filters of SignGuard's Algorithm 2.

use std::collections::BTreeSet;
use std::sync::Arc;

use rand::rngs::StdRng;

use sg_aggregators::SignNormVec;
use sg_cluster::{KMeans, MeanShift};
use sg_math::{ParallelExecutor, SeqExecutor};

use crate::features::{FeatureExtractor, SimilarityFeature};
use crate::signguard::ClusteringBackend;

/// A gradient filter: maps a batch of gradients to the set of indices it
/// trusts. SignGuard intersects the outputs of several filters (paper
/// Fig. 3).
pub trait Filter {
    /// Returns the indices of trusted gradients.
    fn filter(&mut self, gradients: &[Vec<f32>], norms: &[f32]) -> BTreeSet<usize>;

    /// Filter name for diagnostics.
    fn name(&self) -> &'static str;
}

/// Norm-based thresholding (Algorithm 2, Step 1): trust gradient `i` iff
/// `L ≤ ‖g_i‖ / median(‖g‖) ≤ R`.
///
/// The paper motivates the asymmetric bounds: small gradients do little
/// harm (loose lower bound `L = 0.1`) while very large ones are surely
/// malicious (strict upper bound `R = 3.0`).
#[derive(Debug, Clone, Copy)]
pub struct NormFilter {
    /// Lower relative-norm bound `L`.
    pub lower: f32,
    /// Upper relative-norm bound `R`.
    pub upper: f32,
}

impl NormFilter {
    /// Creates the filter with the paper's defaults `L = 0.1`, `R = 3.0`.
    pub fn new() -> Self {
        Self { lower: 0.1, upper: 3.0 }
    }

    /// Creates the filter with explicit bounds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= lower <= upper`.
    pub fn with_bounds(lower: f32, upper: f32) -> Self {
        assert!(lower >= 0.0 && lower <= upper, "NormFilter: invalid bounds [{lower}, {upper}]");
        Self { lower, upper }
    }
}

impl NormFilter {
    /// The filter decision from norms alone — the filter never looks at
    /// gradient coordinates, so packed batches (whose norms arrive
    /// precomputed in the representation) use this directly.
    pub fn filter_norms(&self, norms: &[f32]) -> BTreeSet<usize> {
        let finite: Vec<f32> = norms.iter().copied().filter(|n| n.is_finite()).collect();
        if finite.is_empty() {
            return BTreeSet::new();
        }
        let median = sg_math::median(&finite).max(1e-12);
        norms
            .iter()
            .enumerate()
            .filter(|(_, &n)| {
                let r = n / median;
                n.is_finite() && r >= self.lower && r <= self.upper
            })
            .map(|(i, _)| i)
            .collect()
    }
}

impl Default for NormFilter {
    fn default() -> Self {
        Self::new()
    }
}

impl Filter for NormFilter {
    fn filter(&mut self, _gradients: &[Vec<f32>], norms: &[f32]) -> BTreeSet<usize> {
        self.filter_norms(norms)
    }

    fn name(&self) -> &'static str {
        "norm-threshold"
    }
}

/// Sign-based clustering (Algorithm 2, Step 2): extract sign-statistics
/// features on a random coordinate subset, cluster, trust the largest
/// cluster.
pub struct SignClusterFilter {
    extractor: FeatureExtractor,
    backend: ClusteringBackend,
    rng: StdRng,
    reference: Option<Vec<f32>>,
    exec: Arc<dyn ParallelExecutor>,
}

impl std::fmt::Debug for SignClusterFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SignClusterFilter")
            .field("extractor", &self.extractor)
            .field("backend", &self.backend)
            .field("parallelism", &self.exec.parallelism())
            .finish()
    }
}

impl SignClusterFilter {
    /// Creates the filter.
    pub fn new(
        coord_fraction: f32,
        similarity: SimilarityFeature,
        backend: ClusteringBackend,
        seed: u64,
    ) -> Self {
        Self {
            extractor: FeatureExtractor { coord_fraction, similarity },
            backend,
            rng: sg_math::seeded_rng(seed),
            reference: None,
            exec: Arc::new(SeqExecutor),
        }
    }

    /// Supplies the "correct" reference gradient for similarity features
    /// (typically the previous round's aggregate).
    pub fn set_reference(&mut self, reference: Option<Vec<f32>>) {
        self.reference = reference;
    }

    /// Installs a chunk executor for the per-gradient feature pass.
    pub fn set_executor(&mut self, executor: Arc<dyn ParallelExecutor>) {
        self.exec = executor;
    }

    /// The packed-batch twin of [`Filter::filter`]: clusters sign
    /// statistics read directly from the bit-packed representation (see
    /// [`FeatureExtractor::extract_packed_with`]), never materializing a
    /// dense gradient.
    pub fn filter_packed(&mut self, packed: &[SignNormVec], norms: &[f32]) -> BTreeSet<usize> {
        let valid: Vec<usize> = (0..packed.len()).filter(|&i| norms[i].is_finite()).collect();
        if valid.is_empty() {
            return BTreeSet::new();
        }
        let sub: Vec<SignNormVec>;
        let batch: &[SignNormVec] = if valid.len() == packed.len() {
            packed
        } else {
            sub = valid.iter().map(|&i| packed[i].clone()).collect();
            &sub
        };
        let feats = self.extractor.extract_packed_with(
            self.exec.as_ref(),
            &mut self.rng,
            batch,
            self.reference.as_deref(),
        );
        let points: Vec<Vec<f32>> = feats.iter().map(|f| f.to_vec()).collect();

        let clustering = match self.backend {
            ClusteringBackend::MeanShift => MeanShift::new().fit(&points),
            ClusteringBackend::KMeans(k) => KMeans::new(k).fit(&points),
        };
        clustering.largest_cluster().into_iter().map(|i| valid[i]).collect()
    }
}

impl Filter for SignClusterFilter {
    fn filter(&mut self, gradients: &[Vec<f32>], norms: &[f32]) -> BTreeSet<usize> {
        // Exclude non-finite gradients up front: their features would poison
        // the clustering geometry. The common all-finite case borrows the
        // batch as-is instead of cloning every gradient.
        let valid: Vec<usize> = (0..gradients.len()).filter(|&i| norms[i].is_finite()).collect();
        if valid.is_empty() {
            return BTreeSet::new();
        }
        let sub: Vec<Vec<f32>>;
        let batch: &[Vec<f32>] = if valid.len() == gradients.len() {
            gradients
        } else {
            sub = valid.iter().map(|&i| gradients[i].clone()).collect();
            &sub
        };
        let feats =
            self.extractor.extract_with(self.exec.as_ref(), &mut self.rng, batch, self.reference.as_deref());
        let points: Vec<Vec<f32>> = feats.iter().map(|f| f.to_vec()).collect();

        let clustering = match self.backend {
            ClusteringBackend::MeanShift => MeanShift::new().fit(&points),
            ClusteringBackend::KMeans(k) => KMeans::new(k).fit(&points),
        };
        clustering.largest_cluster().into_iter().map(|i| valid[i]).collect()
    }

    fn name(&self) -> &'static str {
        "sign-cluster"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norms_of(grads: &[Vec<f32>]) -> Vec<f32> {
        grads.iter().map(|g| sg_math::l2_norm(g)).collect()
    }

    #[test]
    fn norm_filter_drops_giant_and_tiny() {
        let grads = vec![
            vec![1.0, 0.0],   // norm 1
            vec![0.0, 1.1],   // norm 1.1
            vec![0.9, 0.0],   // norm 0.9
            vec![100.0, 0.0], // giant
            vec![0.001, 0.0], // tiny
        ];
        let mut f = NormFilter::new();
        let kept = f.filter(&grads, &norms_of(&grads));
        assert_eq!(kept, BTreeSet::from([0, 1, 2]));
    }

    #[test]
    fn norm_filter_keeps_all_when_uniform() {
        let grads = vec![vec![1.0]; 6];
        let mut f = NormFilter::new();
        assert_eq!(f.filter(&grads, &norms_of(&grads)).len(), 6);
    }

    #[test]
    fn norm_filter_excludes_nan() {
        let grads = vec![vec![1.0], vec![f32::NAN], vec![1.0]];
        let mut f = NormFilter::new();
        let kept = f.filter(&grads, &norms_of(&grads));
        assert_eq!(kept, BTreeSet::from([0, 2]));
    }

    #[test]
    fn sign_cluster_separates_flipped_gradients() {
        // 8 honest positive-leaning gradients, 3 sign-flipped.
        let honest: Vec<Vec<f32>> =
            (0..8).map(|i| (0..200).map(|j| if (i + j) % 4 == 0 { -1.0 } else { 1.0 }).collect()).collect();
        let mut grads = honest.clone();
        for g in honest.iter().take(3) {
            grads.push(g.iter().map(|x| -x).collect());
        }
        let mut f = SignClusterFilter::new(1.0, SimilarityFeature::None, ClusteringBackend::MeanShift, 7);
        let kept = f.filter(&grads, &norms_of(&grads));
        assert!(kept.iter().all(|&i| i < 8), "kept flipped: {kept:?}");
        assert!(kept.len() >= 6, "too few honest kept: {kept:?}");
    }

    #[test]
    fn sign_cluster_kmeans_backend_works() {
        let honest: Vec<Vec<f32>> =
            (0..6).map(|_| (0..100).map(|j| if j % 5 == 0 { -1.0 } else { 1.0 }).collect()).collect();
        let mut grads = honest.clone();
        grads.push(honest[0].iter().map(|x| -x).collect());
        let mut f = SignClusterFilter::new(1.0, SimilarityFeature::None, ClusteringBackend::KMeans(2), 8);
        let kept = f.filter(&grads, &norms_of(&grads));
        assert!(kept.iter().all(|&i| i < 6));
        assert_eq!(kept.len(), 6);
    }

    #[test]
    fn sign_cluster_survives_nan_gradient() {
        let mut grads: Vec<Vec<f32>> = (0..5).map(|_| vec![1.0; 50]).collect();
        grads.push(vec![f32::NAN; 50]);
        let mut f = SignClusterFilter::new(1.0, SimilarityFeature::None, ClusteringBackend::MeanShift, 9);
        let kept = f.filter(&grads, &norms_of(&grads));
        assert!(!kept.contains(&5));
        assert_eq!(kept.len(), 5);
    }

    #[test]
    fn similarity_reference_improves_reversed_detection() {
        // Build gradients whose sign statistics are balanced (≈50/50), the
        // hard case from the paper (ResNet-18 regime): plain sign stats
        // cannot tell honest from reversed, cosine to a reference can.
        let honest: Vec<Vec<f32>> = (0..8)
            .map(|i| {
                (0..100).map(|j| (j as f32 * 0.7).sin() + 0.15 * ((i * 100 + j) as f32 * 1.3).cos()).collect()
            })
            .collect();
        let mut grads = honest.clone();
        for g in honest.iter().take(3) {
            grads.push(g.iter().map(|x| -x).collect());
        }
        let reference = sg_math::vecops::mean_vector(&honest, 100);
        let mut f = SignClusterFilter::new(1.0, SimilarityFeature::Cosine, ClusteringBackend::MeanShift, 10);
        f.set_reference(Some(reference));
        let kept = f.filter(&grads, &norms_of(&grads));
        assert!(kept.iter().all(|&i| i < 8), "kept reversed: {kept:?}");
    }
}
