//! **SignGuard** — collaborative malicious gradient filtering for
//! Byzantine-robust federated learning (Xu, Huang, Song, Lan — ICDCS 2022).
//!
//! SignGuard is a server-side gradient aggregation rule. Each round it:
//!
//! 1. computes the l2 norm and element-wise sign statistics of every
//!    received gradient;
//! 2. runs a **norm filter**: keep gradients whose norm relative to the
//!    median lies in `[L, R]` (paper defaults `L = 0.1`, `R = 3.0`);
//! 3. runs a **sign-clustering filter**: extract the proportions of
//!    positive / zero / negative signs on a random coordinate subset
//!    (paper default 10%), optionally append a similarity feature, cluster
//!    with MeanShift and keep the largest cluster;
//! 4. aggregates the **intersection** of the filters by mean with
//!    per-gradient norm clipping at the median norm.
//!
//! The three variants of the paper map to [`SignGuard::plain`],
//! [`SignGuard::sim`] (adds cosine similarity) and [`SignGuard::dist`]
//! (adds Euclidean distance).
//!
//! # Examples
//!
//! ```
//! use sg_aggregators::Aggregator;
//! use sg_core::SignGuard;
//!
//! // 8 honest gradients and 2 copies of an obvious sign-flipped attack.
//! let mut grads: Vec<Vec<f32>> = (0..8)
//!     .map(|i| (0..64).map(|j| 1.0 + 0.01 * ((i * 64 + j) as f32).sin()).collect())
//!     .collect();
//! grads.push(grads[0].iter().map(|x| -x).collect());
//! grads.push(grads[1].iter().map(|x| -x).collect());
//!
//! let mut gar = SignGuard::plain(42);
//! let out = gar.aggregate(&grads);
//! let selected = out.selected.unwrap();
//! assert!(selected.iter().all(|&i| i < 8), "attackers filtered out");
//! ```

mod features;
mod filters;
mod signguard;

pub use features::{FeatureExtractor, GradientFeatures, SimilarityFeature};
pub use filters::{Filter, NormFilter, SignClusterFilter};
pub use signguard::{ClusteringBackend, SignGuard, SignGuardBuilder};
