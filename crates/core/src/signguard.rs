//! The SignGuard aggregation rule (paper Algorithm 2) and its builder.

use std::collections::BTreeSet;
use std::sync::Arc;

use sg_aggregators::{
    validate_gradients, AggregationOutput, Aggregator, BatchElems, Composition, GradientBatch, SignNormVec,
};
use sg_math::vecops::REDUCE_BLOCK;
use sg_math::{kernels, ParallelExecutor, SeqExecutor};

use crate::features::SimilarityFeature;
use crate::filters::{Filter, NormFilter, SignClusterFilter};

/// Clustering back-end for the sign filter.
///
/// The paper uses MeanShift for its adaptive cluster count, remarking that
/// KMeans with two clusters suffices when all attackers collude on one
/// vector; both are available for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusteringBackend {
    /// MeanShift with automatic bandwidth (paper default).
    MeanShift,
    /// KMeans with a fixed cluster count.
    KMeans(usize),
}

/// Builder for [`SignGuard`], exposing every knob the paper ablates
/// (Table III): the norm-thresholding filter, the sign-clustering filter,
/// and norm clipping at aggregation.
#[derive(Debug, Clone)]
pub struct SignGuardBuilder {
    lower: f32,
    upper: f32,
    coord_fraction: f32,
    similarity: SimilarityFeature,
    backend: ClusteringBackend,
    use_norm_filter: bool,
    use_cluster_filter: bool,
    use_norm_clipping: bool,
    seed: u64,
}

impl SignGuardBuilder {
    /// Starts from the paper's default configuration.
    pub fn new() -> Self {
        Self {
            lower: 0.1,
            upper: 3.0,
            coord_fraction: 0.1,
            similarity: SimilarityFeature::None,
            backend: ClusteringBackend::MeanShift,
            use_norm_filter: true,
            use_cluster_filter: true,
            use_norm_clipping: true,
            seed: 0,
        }
    }

    /// Sets the relative-norm bounds `[L, R]` (defaults 0.1 / 3.0).
    #[must_use]
    pub fn norm_bounds(mut self, lower: f32, upper: f32) -> Self {
        assert!(lower >= 0.0 && lower <= upper, "SignGuardBuilder: invalid bounds [{lower}, {upper}]");
        self.lower = lower;
        self.upper = upper;
        self
    }

    /// Sets the fraction of coordinates sampled for sign statistics
    /// (default 0.1).
    #[must_use]
    pub fn coord_fraction(mut self, fraction: f32) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "SignGuardBuilder: coord_fraction {fraction} out of (0,1]"
        );
        self.coord_fraction = fraction;
        self
    }

    /// Chooses the similarity feature (plain / Sim / Dist variants).
    #[must_use]
    pub fn similarity(mut self, similarity: SimilarityFeature) -> Self {
        self.similarity = similarity;
        self
    }

    /// Chooses the clustering back-end.
    #[must_use]
    pub fn clustering(mut self, backend: ClusteringBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Enables or disables the norm-thresholding filter (ablation).
    #[must_use]
    pub fn norm_filter(mut self, enabled: bool) -> Self {
        self.use_norm_filter = enabled;
        self
    }

    /// Enables or disables the sign-clustering filter (ablation).
    #[must_use]
    pub fn cluster_filter(mut self, enabled: bool) -> Self {
        self.use_cluster_filter = enabled;
        self
    }

    /// Enables or disables norm clipping at aggregation (ablation).
    #[must_use]
    pub fn norm_clipping(mut self, enabled: bool) -> Self {
        self.use_norm_clipping = enabled;
        self
    }

    /// Seeds the randomized coordinate selection.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the aggregator.
    pub fn build(self) -> SignGuard {
        let norm_filter = NormFilter::with_bounds(self.lower, self.upper);
        let cluster_filter =
            SignClusterFilter::new(self.coord_fraction, self.similarity, self.backend, self.seed);
        SignGuard {
            norm_filter,
            cluster_filter,
            use_norm_filter: self.use_norm_filter,
            use_cluster_filter: self.use_cluster_filter,
            use_norm_clipping: self.use_norm_clipping,
            similarity: self.similarity,
            prev_aggregate: None,
            last_selected: Vec::new(),
            exec: Arc::new(SeqExecutor),
        }
    }
}

impl Default for SignGuardBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// The SignGuard gradient aggregation rule.
///
/// See the [crate docs](crate) for the algorithm. Unlike the baselines,
/// SignGuard does **not** need to know the Byzantine fraction — the paper
/// highlights this as a practical advantage.
pub struct SignGuard {
    norm_filter: NormFilter,
    cluster_filter: SignClusterFilter,
    use_norm_filter: bool,
    use_cluster_filter: bool,
    use_norm_clipping: bool,
    similarity: SimilarityFeature,
    prev_aggregate: Option<Vec<f32>>,
    last_selected: Vec<usize>,
    exec: Arc<dyn ParallelExecutor>,
}

impl std::fmt::Debug for SignGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SignGuard")
            .field("norm_filter", &self.norm_filter)
            .field("cluster_filter", &self.cluster_filter)
            .field("similarity", &self.similarity)
            .field("parallelism", &self.exec.parallelism())
            .finish()
    }
}

impl SignGuard {
    /// Plain SignGuard (sign statistics only), with the paper defaults.
    pub fn plain(seed: u64) -> Self {
        SignGuardBuilder::new().seed(seed).build()
    }

    /// SignGuard-Sim: adds the cosine-similarity feature.
    pub fn sim(seed: u64) -> Self {
        SignGuardBuilder::new().similarity(SimilarityFeature::Cosine).seed(seed).build()
    }

    /// SignGuard-Dist: adds the Euclidean-distance feature.
    pub fn dist(seed: u64) -> Self {
        SignGuardBuilder::new().similarity(SimilarityFeature::Euclidean).seed(seed).build()
    }

    /// Indices selected by the most recent [`Aggregator::aggregate`] call
    /// (the paper's Table II selection-rate accounting reads this).
    pub fn last_selected(&self) -> &[usize] {
        &self.last_selected
    }

    /// The similarity variant this instance runs.
    pub fn similarity_feature(&self) -> SimilarityFeature {
        self.similarity
    }

    /// The shared trust funnel: observation counters, filter
    /// intersection, and the availability fallback (used identically by
    /// the dense and packed paths).
    fn select_trusted(
        &mut self,
        s1: BTreeSet<usize>,
        s2: BTreeSet<usize>,
        norms: &[f32],
        n: usize,
    ) -> Vec<usize> {
        // Per-stage accept/reject tallies (paper Fig. 5/6 diagnostics);
        // observation only — the filter decisions above are already made.
        if sg_obs::enabled() {
            sg_obs::counter_add("signguard.rounds", 1);
            sg_obs::counter_add("signguard.norm.accepted", s1.len() as u64);
            sg_obs::counter_add("signguard.norm.rejected", (n - s1.len()) as u64);
            sg_obs::counter_add("signguard.sign.accepted", s2.len() as u64);
            sg_obs::counter_add("signguard.sign.rejected", (n - s2.len()) as u64);
        }

        let mut trusted: Vec<usize> = s1.intersection(&s2).copied().collect();
        if trusted.is_empty() {
            sg_obs::counter_add("signguard.fallback_rounds", 1);
            // Fall back to whichever filter kept anything, else everything
            // finite — availability over precision in the degenerate case.
            trusted = if !s1.is_empty() {
                s1.into_iter().collect()
            } else if !s2.is_empty() {
                s2.into_iter().collect()
            } else {
                (0..n).filter(|&i| norms[i].is_finite()).collect()
            };
        }
        trusted
    }

    /// Native aggregation of a bit-packed sign+norm batch: the same
    /// funnel as the dense path — norm filter, sign-cluster filter,
    /// median-norm clipping, trusted mean — but with every per-gradient
    /// quantity read from the packed representation (stored norms,
    /// popcount sign statistics, sign-bit accumulation at the dense
    /// stand-in magnitude `±norm/√nnz`). No dense client vector is ever
    /// materialized.
    fn aggregate_packed(&mut self, packed: &[SignNormVec]) -> AggregationOutput {
        assert!(!packed.is_empty(), "aggregate: empty gradient batch");
        let dim = packed[0].dim();
        assert!(dim > 0, "aggregate: zero-dimensional gradients");
        for (i, p) in packed.iter().enumerate() {
            assert_eq!(p.dim(), dim, "aggregate: gradient {i} has dim {} != {dim}", p.dim());
        }
        let n = packed.len();
        // The clients already computed the norms; the representation
        // carries them.
        let norms: Vec<f32> = packed.iter().map(SignNormVec::norm).collect();

        let all: BTreeSet<usize> = (0..n).collect();
        let s1 = if self.use_norm_filter { self.norm_filter.filter_norms(&norms) } else { all.clone() };
        let s2 = if self.use_cluster_filter {
            self.cluster_filter.set_reference(self.prev_aggregate.clone());
            self.cluster_filter.filter_packed(packed, &norms)
        } else {
            all.clone()
        };

        let trusted = self.select_trusted(s1, s2, &norms, n);
        if trusted.is_empty() {
            sg_obs::counter_add("signguard.rejected", n as u64);
            self.last_selected = Vec::new();
            return AggregationOutput::selected(vec![0.0; dim], Vec::new());
        }
        if sg_obs::enabled() {
            sg_obs::counter_add("signguard.accepted", trusted.len() as u64);
            sg_obs::counter_add("signguard.rejected", (n - trusted.len()) as u64);
        }

        // Clipped trusted mean over the packed signs: gradient `i`
        // contributes `±alpha_i * norm_i/√nnz_i` per nonzero coordinate.
        // Accumulation per coordinate runs in trusted order regardless of
        // chunking, so any `SG_THREADS` produces the same bits.
        let finite: Vec<f32> = norms.iter().copied().filter(|x| x.is_finite()).collect();
        let clip = sg_math::median(&finite).max(1e-12);
        let use_clipping = self.use_norm_clipping;
        let weights: Vec<f32> = trusted
            .iter()
            .map(|&i| {
                let p = &packed[i];
                let nnz = p.nnz();
                if nnz == 0 {
                    return 0.0;
                }
                let alpha = if use_clipping && norms[i] > clip { clip / norms[i] } else { 1.0 };
                alpha * p.norm() / (nnz as f32).sqrt()
            })
            .collect();
        let inv = 1.0 / trusted.len() as f32;
        let mut acc = vec![0.0f32; dim];
        self.exec.run_chunks(&mut acc, REDUCE_BLOCK, &|ci, chunk| {
            let base = ci * REDUCE_BLOCK;
            for (&i, &w) in trusted.iter().zip(&weights) {
                if w != 0.0 {
                    let p = &packed[i];
                    kernels::packed_signs_axpy(p.bits(), p.zeros(), w, base, chunk);
                }
            }
            for o in chunk.iter_mut() {
                *o *= inv;
            }
        });

        self.prev_aggregate = Some(acc.clone());
        self.last_selected = trusted.clone();
        AggregationOutput::selected(acc, trusted)
    }
}

impl Aggregator for SignGuard {
    fn aggregate(&mut self, gradients: &[Vec<f32>]) -> AggregationOutput {
        let dim = validate_gradients(gradients);
        let n = gradients.len();
        // Per-gradient norms, one executor chunk per gradient. `l2_norm`
        // follows the fixed reduction tree, so the values are bit-identical
        // at any parallelism.
        let mut norms = vec![0.0f32; n];
        self.exec.run_chunks(&mut norms, 1, &|i, slot| {
            slot[0] = sg_math::l2_norm(&gradients[i]);
        });

        let all: BTreeSet<usize> = (0..n).collect();
        let s1 = if self.use_norm_filter { self.norm_filter.filter(gradients, &norms) } else { all.clone() };
        let s2 = if self.use_cluster_filter {
            self.cluster_filter.set_reference(self.prev_aggregate.clone());
            self.cluster_filter.filter(gradients, &norms)
        } else {
            all.clone()
        };

        let trusted = self.select_trusted(s1, s2, &norms, n);
        if trusted.is_empty() {
            // Every gradient was non-finite; emit a zero update.
            sg_obs::counter_add("signguard.rejected", n as u64);
            self.last_selected = Vec::new();
            return AggregationOutput::selected(vec![0.0; dim], Vec::new());
        }
        if sg_obs::enabled() {
            sg_obs::counter_add("signguard.accepted", trusted.len() as u64);
            sg_obs::counter_add("signguard.rejected", (n - trusted.len()) as u64);
        }

        // Aggregation with norm clipping at the median norm (Alg. 2 line
        // 14), sharded over coordinate chunks. Each output coordinate
        // accumulates across the trusted set in the same order as the
        // sequential axpy loop, so chunking never changes a bit.
        let finite: Vec<f32> = norms.iter().copied().filter(|x| x.is_finite()).collect();
        let clip = sg_math::median(&finite).max(1e-12);
        let use_clipping = self.use_norm_clipping;
        let inv = 1.0 / trusted.len() as f32;
        let mut acc = vec![0.0f32; dim];
        self.exec.run_chunks(&mut acc, REDUCE_BLOCK, &|ci, chunk| {
            let base = ci * REDUCE_BLOCK;
            let len = chunk.len();
            for &i in &trusted {
                let alpha = if use_clipping && norms[i] > clip { clip / norms[i] } else { 1.0 };
                for (o, &x) in chunk.iter_mut().zip(&gradients[i][base..base + len]) {
                    *o += alpha * x;
                }
            }
            for o in chunk.iter_mut() {
                *o *= inv;
            }
        });

        self.prev_aggregate = Some(acc.clone());
        self.last_selected = trusted.clone();
        AggregationOutput::selected(acc, trusted)
    }

    fn aggregate_batch(&mut self, batch: &GradientBatch<'_>) -> AggregationOutput {
        match batch.elems {
            BatchElems::Dense(gradients) => self.aggregate(gradients),
            BatchElems::SignNorm(packed) => self.aggregate_packed(packed),
            ref elems => self.aggregate(&elems.to_dense()),
        }
    }

    fn name(&self) -> &'static str {
        match self.similarity {
            SimilarityFeature::None => "SignGuard",
            SimilarityFeature::Cosine => "SignGuard-Sim",
            SimilarityFeature::Euclidean => "SignGuard-Dist",
        }
    }

    fn composition(&self) -> Composition {
        // Sharded SignGuard: each leaf runs the full funnel on its shard
        // and forwards the aggregate's sign bits + norm (`SignNormVec`);
        // the root reruns the funnel natively on the packed shard
        // statistics via `aggregate_packed`, so the tree never densifies.
        Composition::RerunSignNorm
    }

    fn set_executor(&mut self, executor: Arc<dyn ParallelExecutor>) {
        self.cluster_filter.set_executor(executor.clone());
        self.exec = executor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Honest gradients in the "unbalanced signs" regime (CNN-like): mostly
    /// positive coordinates plus client noise.
    fn honest_population(n: usize, d: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                (0..d)
                    .map(|j| {
                        let base = if j % 4 == 0 { -0.5 } else { 0.8 };
                        base + 0.1 * ((i * d + j) as f32 * 0.37).sin()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn no_attack_recovers_near_mean() {
        let grads = honest_population(10, 128);
        let mean = sg_math::vecops::mean_vector(&grads, 128);
        let mut gar = SignGuard::plain(1);
        let out = gar.aggregate(&grads);
        // Most honest gradients survive; aggregate close to the mean.
        assert!(out.selected.as_ref().expect("sel").len() >= 7);
        let cos = sg_math::cosine_similarity(&out.gradient, &mean);
        assert!(cos > 0.99, "cosine {cos}");
    }

    #[test]
    fn sign_flip_attack_filtered() {
        let mut grads = honest_population(8, 128);
        for i in 0..2 {
            let flipped: Vec<f32> = grads[i].iter().map(|x| -x).collect();
            grads.push(flipped);
        }
        let mut gar = SignGuard::plain(2);
        let out = gar.aggregate(&grads);
        let sel = out.selected.expect("sel");
        assert!(sel.iter().all(|&i| i < 8), "attacker kept: {sel:?}");
    }

    #[test]
    fn large_norm_attack_filtered_by_norm_threshold() {
        let mut grads = honest_population(8, 64);
        grads.push(grads[0].iter().map(|x| x * 100.0).collect());
        let mut gar = SignGuard::plain(3);
        let out = gar.aggregate(&grads);
        assert!(out.selected.expect("sel").iter().all(|&i| i < 8));
    }

    #[test]
    fn lie_like_attack_filtered_by_sign_statistics() {
        // Craft mu - z*sigma with a z large enough to visibly shift signs
        // (z=1.5); the sign-statistics cluster should isolate the attackers.
        let honest = honest_population(8, 256);
        let mu = sg_math::vecops::mean_vector(&honest, 256);
        let sigma = sg_math::vecops::std_vector(&honest, 256);
        let lie: Vec<f32> = mu.iter().zip(&sigma).map(|(&m, &s)| m - 12.0 * s).collect();
        let mut grads = honest.clone();
        grads.push(lie.clone());
        grads.push(lie);
        let mut gar = SignGuard::plain(4);
        let out = gar.aggregate(&grads);
        let sel = out.selected.expect("sel");
        assert!(sel.iter().all(|&i| i < 8), "LIE kept: {sel:?}");
    }

    #[test]
    fn clipping_bounds_aggregate_norm() {
        let mut grads = honest_population(6, 32);
        // Moderate outlier that slips past R=3.0 but gets clipped.
        grads.push(grads[0].iter().map(|x| x * 2.5).collect());
        let norms: Vec<f32> = grads.iter().map(|g| sg_math::l2_norm(g)).collect();
        let med = sg_math::median(&norms);
        let mut gar = SignGuard::plain(5);
        let out = gar.aggregate(&grads);
        assert!(sg_math::l2_norm(&out.gradient) <= med * 1.05);
    }

    #[test]
    fn all_nan_batch_yields_zero_gradient() {
        let grads = vec![vec![f32::NAN; 8]; 4];
        let mut gar = SignGuard::plain(6);
        let out = gar.aggregate(&grads);
        assert_eq!(out.gradient, vec![0.0; 8]);
        assert!(out.selected.expect("sel").is_empty());
    }

    #[test]
    fn ablation_toggles_change_behaviour() {
        let mut grads = honest_population(8, 64);
        grads.push(grads[0].iter().map(|x| x * -100.0).collect());

        // Clustering only (no threshold, no clip): large reversed gradient
        // is caught by sign statistics.
        let mut cluster_only =
            SignGuardBuilder::new().norm_filter(false).norm_clipping(false).seed(7).build();
        let out = cluster_only.aggregate(&grads);
        assert!(out.selected.expect("sel").iter().all(|&i| i < 8));

        // Threshold only: the giant is caught by its norm.
        let mut thresh_only =
            SignGuardBuilder::new().cluster_filter(false).norm_clipping(false).seed(8).build();
        let out = thresh_only.aggregate(&grads);
        assert!(out.selected.expect("sel").iter().all(|&i| i < 8));
    }

    #[test]
    fn variant_names_match_paper() {
        assert_eq!(SignGuard::plain(0).name(), "SignGuard");
        assert_eq!(SignGuard::sim(0).name(), "SignGuard-Sim");
        assert_eq!(SignGuard::dist(0).name(), "SignGuard-Dist");
    }

    #[test]
    fn last_selected_matches_output() {
        let grads = honest_population(6, 32);
        let mut gar = SignGuard::sim(9);
        let out = gar.aggregate(&grads);
        assert_eq!(gar.last_selected(), out.selected.expect("sel").as_slice());
    }

    #[test]
    fn packed_batch_filters_sign_flip_without_densifying() {
        // The native SignNorm path must run the same funnel: flipped signs
        // land in the minority cluster and are dropped.
        let mut grads = honest_population(8, 128);
        for i in 0..2 {
            let flipped: Vec<f32> = grads[i].iter().map(|x| -x).collect();
            grads.push(flipped);
        }
        let packed: Vec<SignNormVec> = grads.iter().map(|g| SignNormVec::pack(g)).collect();
        let mut gar = SignGuard::plain(2);
        let out = gar.aggregate_batch(&GradientBatch::signnorm(&packed));
        let sel = out.selected.expect("sel");
        assert!(sel.iter().all(|&i| i < 8), "attacker kept: {sel:?}");
        // The aggregate points the honest way and carries honest-scale
        // magnitude (stand-in norms are preserved by the representation).
        let mean = sg_math::vecops::mean_vector(&grads[..8], 128);
        assert!(sg_math::cosine_similarity(&out.gradient, &mean) > 0.9);
    }

    #[test]
    fn packed_batch_norm_filter_uses_stored_norms() {
        let mut grads = honest_population(8, 64);
        grads.push(grads[0].iter().map(|x| x * 100.0).collect());
        let packed: Vec<SignNormVec> = grads.iter().map(|g| SignNormVec::pack(g)).collect();
        let mut gar = SignGuard::plain(3);
        let out = gar.aggregate_batch(&GradientBatch::signnorm(&packed));
        assert!(out.selected.expect("sel").iter().all(|&i| i < 8));
    }

    #[test]
    fn packed_all_nan_batch_yields_zero_gradient() {
        let packed: Vec<SignNormVec> = (0..4).map(|_| SignNormVec::pack(&[f32::NAN; 8])).collect();
        let mut gar = SignGuard::plain(6);
        let out = gar.aggregate_batch(&GradientBatch::signnorm(&packed));
        assert_eq!(out.gradient, vec![0.0; 8]);
        assert!(out.selected.expect("sel").is_empty());
    }

    #[test]
    fn packed_sim_variant_uses_prev_aggregate_reference() {
        // Round 1 (dense) establishes prev_aggregate; round 2 (packed)
        // must consume it as the similarity reference without issue.
        let grads = honest_population(8, 128);
        let mut gar = SignGuard::sim(11);
        let _ = gar.aggregate(&grads);
        let packed: Vec<SignNormVec> = grads.iter().map(|g| SignNormVec::pack(g)).collect();
        let out = gar.aggregate_batch(&GradientBatch::signnorm(&packed));
        assert!(out.selected.expect("sel").len() >= 6);
    }

    #[test]
    fn does_not_require_byzantine_count() {
        // Works at any attacker fraction without being told it: 40%.
        let mut grads = honest_population(6, 128);
        for i in 0..4 {
            let flipped: Vec<f32> = grads[i % 6].iter().map(|x| -x * 1.5).collect();
            grads.push(flipped);
        }
        let mut gar = SignGuard::plain(10);
        let out = gar.aggregate(&grads);
        let sel = out.selected.expect("sel");
        assert!(sel.iter().all(|&i| i < 6), "kept attacker: {sel:?}");
        assert!(sel.len() >= 4);
    }
}
