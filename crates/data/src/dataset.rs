//! In-memory dataset container and batching.

/// One labelled sample: flat features plus a class index.
///
/// Image samples store `[C*H*W]` pixel values; text samples store token ids
/// as `f32` (the embedding layer casts them back).
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Flattened feature values.
    pub features: Vec<f32>,
    /// Class index in `0..num_classes`.
    pub label: usize,
}

/// A mini-batch ready for a model: row-major features `[B, ...]` and labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Concatenated features of all rows.
    pub features: Vec<f32>,
    /// Per-item shape (without the batch axis).
    pub item_shape: Vec<usize>,
    /// Labels, one per row.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Full tensor shape including the batch axis.
    pub fn shape(&self) -> Vec<usize> {
        let mut s = Vec::with_capacity(1 + self.item_shape.len());
        s.push(self.labels.len());
        s.extend_from_slice(&self.item_shape);
        s
    }
}

/// An in-memory labelled dataset with fixed per-item shape.
#[derive(Debug, Clone)]
pub struct Dataset {
    samples: Vec<Sample>,
    item_shape: Vec<usize>,
    num_classes: usize,
    /// Lazily computed [`Dataset::fingerprint`] — the contents are
    /// immutable after construction, so the digest never goes stale.
    fingerprint: std::sync::OnceLock<u64>,
}

impl Dataset {
    /// Creates a dataset, validating every sample against `item_shape` and
    /// `num_classes`.
    ///
    /// # Panics
    ///
    /// Panics if any sample has the wrong feature count or an out-of-range
    /// label, or if `num_classes == 0`.
    pub fn new(samples: Vec<Sample>, item_shape: Vec<usize>, num_classes: usize) -> Self {
        assert!(num_classes > 0, "Dataset: num_classes must be positive");
        let numel: usize = item_shape.iter().product();
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(
                s.features.len(),
                numel,
                "Dataset: sample {i} has {} features, expected {numel}",
                s.features.len()
            );
            assert!(
                s.label < num_classes,
                "Dataset: sample {i} label {} out of range {num_classes}",
                s.label
            );
        }
        Self { samples, item_shape, num_classes, fingerprint: std::sync::OnceLock::new() }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Per-item feature shape (without batch axis).
    pub fn item_shape(&self) -> &[usize] {
        &self.item_shape
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Label of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn label(&self, i: usize) -> usize {
        self.samples[i].label
    }

    /// Assembles a batch from the given sample indices.
    ///
    /// An optional `label_map` rewrites labels on the fly — this implements
    /// the paper's label-flipping data poison without copying the dataset.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds or `indices` is empty.
    pub fn batch(&self, indices: &[usize], label_map: Option<&dyn Fn(usize) -> usize>) -> Batch {
        assert!(!indices.is_empty(), "Dataset::batch: empty index list");
        let numel: usize = self.item_shape.iter().product();
        let mut features = Vec::with_capacity(indices.len() * numel);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            let s = &self.samples[i];
            features.extend_from_slice(&s.features);
            labels.push(match label_map {
                Some(f) => f(s.label),
                None => s.label,
            });
        }
        Batch { features, item_shape: self.item_shape.clone(), labels }
    }

    /// Order-sensitive FNV-1a digest over the dataset's exact contents —
    /// shape, class count, and every label and feature *bit*. Two datasets
    /// fingerprint equal iff they would behave identically in training, so
    /// this is the cheap identity used by resource-cache keys (partition
    /// sharing), resource-cache tests and sweep reports ("cache-hit cells
    /// saw the same bytes"). Computed once and memoized — the contents are
    /// immutable — so repeated calls (one per simulator construction in a
    /// grid) cost a load, not a pass over the data.
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
            const PRIME: u64 = 0x0000_0100_0000_01b3;
            let mut h = OFFSET;
            let mut eat = |word: u64| {
                h ^= word;
                h = h.wrapping_mul(PRIME);
            };
            eat(self.samples.len() as u64);
            eat(self.num_classes as u64);
            for &d in &self.item_shape {
                eat(d as u64);
            }
            for s in &self.samples {
                eat(s.label as u64);
                for &f in &s.features {
                    eat(u64::from(f.to_bits()));
                }
            }
            h
        })
    }

    /// Histogram of labels over the given indices (length = `num_classes`).
    pub fn label_histogram(&self, indices: &[usize]) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_classes];
        for &i in indices {
            hist[self.samples[i].label] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let samples = vec![
            Sample { features: vec![1.0, 2.0], label: 0 },
            Sample { features: vec![3.0, 4.0], label: 1 },
            Sample { features: vec![5.0, 6.0], label: 2 },
        ];
        Dataset::new(samples, vec![2], 3)
    }

    #[test]
    fn construction_and_accessors() {
        let d = toy();
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.item_shape(), &[2]);
        assert_eq!(d.num_classes(), 3);
        assert_eq!(d.label(1), 1);
    }

    #[test]
    #[should_panic(expected = "features")]
    fn wrong_feature_count_panics() {
        let _ = Dataset::new(vec![Sample { features: vec![1.0], label: 0 }], vec![2], 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        let _ = Dataset::new(vec![Sample { features: vec![1.0], label: 5 }], vec![1], 2);
    }

    #[test]
    fn batch_assembly() {
        let d = toy();
        let b = d.batch(&[2, 0], None);
        assert_eq!(b.features, vec![5.0, 6.0, 1.0, 2.0]);
        assert_eq!(b.labels, vec![2, 0]);
        assert_eq!(b.shape(), vec![2, 2]);
    }

    #[test]
    fn batch_with_label_map_flips() {
        let d = toy();
        let flip = |l: usize| 2 - l;
        let b = d.batch(&[0, 1, 2], Some(&flip));
        assert_eq!(b.labels, vec![2, 1, 0]);
    }

    #[test]
    fn fingerprint_separates_contents() {
        let d = toy();
        assert_eq!(d.fingerprint(), toy().fingerprint(), "same bytes, same fingerprint");
        let mut other = vec![
            Sample { features: vec![1.0, 2.0], label: 0 },
            Sample { features: vec![3.0, 4.0], label: 1 },
            Sample { features: vec![5.0, 6.5], label: 2 },
        ];
        let tweaked = Dataset::new(other.clone(), vec![2], 3);
        assert_ne!(d.fingerprint(), tweaked.fingerprint(), "feature change must show");
        other[2].features[1] = 6.0;
        other[2].label = 1;
        let relabeled = Dataset::new(other, vec![2], 3);
        assert_ne!(d.fingerprint(), relabeled.fingerprint(), "label change must show");
    }

    #[test]
    fn label_histogram_counts() {
        let d = toy();
        assert_eq!(d.label_histogram(&[0, 1, 2, 2]), vec![1, 1, 2]);
    }
}
