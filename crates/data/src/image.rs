//! Synthetic image-classification dataset generator.
//!
//! Each class gets a smooth random prototype image; samples are the
//! prototype plus per-pixel Gaussian noise and a random global intensity
//! jitter. This preserves the training dynamics the SignGuard analysis
//! relies on: per-coordinate gradient standard deviation across clients is
//! comparable to or larger than the mean (the precondition that makes the
//! LIE attack effective, Section III of the paper).

use rand::Rng;
use sg_math::{seeded_rng, NormalSampler};

use crate::dataset::{Dataset, Sample};

/// Configuration for the synthetic image task.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticImageSpec {
    /// Image channels (1 for MNIST-like, 3 for CIFAR-like).
    pub channels: usize,
    /// Image side length (square images).
    pub size: usize,
    /// Number of classes.
    pub classes: usize,
    /// Training-set size.
    pub train_samples: usize,
    /// Test-set size.
    pub test_samples: usize,
    /// Per-pixel Gaussian noise standard deviation.
    pub noise_std: f32,
    /// Prototype amplitude; larger separates classes more (easier task).
    pub prototype_scale: f32,
}

impl SyntheticImageSpec {
    /// MNIST-like stand-in: 1×12×12, 10 classes — small enough for fast
    /// federated simulation with the paper's CNN architecture.
    pub fn mnist_like() -> Self {
        Self {
            channels: 1,
            size: 12,
            classes: 10,
            train_samples: 2000,
            test_samples: 500,
            noise_std: 0.6,
            prototype_scale: 1.0,
        }
    }

    /// Fashion-MNIST-like stand-in: same geometry as
    /// [`SyntheticImageSpec::mnist_like`] but noisier (the harder of the two
    /// grayscale tasks, as in the paper where Fashion accuracy ≈ 89% vs
    /// MNIST ≈ 99%).
    pub fn fashion_like() -> Self {
        Self { noise_std: 1.1, ..Self::mnist_like() }
    }

    /// CIFAR-like stand-in: 3×8×8 RGB, 10 classes, driving the residual
    /// network.
    pub fn cifar_like() -> Self {
        Self {
            channels: 3,
            size: 8,
            classes: 10,
            train_samples: 2000,
            test_samples: 500,
            noise_std: 0.9,
            prototype_scale: 1.0,
        }
    }

    /// Tiny configuration for unit tests and doc examples.
    pub fn small() -> Self {
        Self {
            channels: 1,
            size: 4,
            classes: 3,
            train_samples: 90,
            test_samples: 30,
            noise_std: 0.3,
            prototype_scale: 1.0,
        }
    }

    /// Flat feature count per image.
    pub fn numel(&self) -> usize {
        self.channels * self.size * self.size
    }

    /// Generates `(train, test)` datasets deterministically from `seed`.
    ///
    /// Class frequencies are balanced (round-robin) in both splits.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero.
    pub fn generate(&self, seed: u64) -> (Dataset, Dataset) {
        assert!(
            self.channels > 0
                && self.size > 0
                && self.classes > 0
                && self.train_samples > 0
                && self.test_samples > 0,
            "SyntheticImageSpec: zero-sized configuration"
        );
        let mut rng = seeded_rng(seed);
        let prototypes = self.prototypes(&mut rng);
        let mut noise = NormalSampler::new(0.0, f64::from(self.noise_std));

        let mut make = |count: usize, rng: &mut rand::rngs::StdRng| -> Vec<Sample> {
            (0..count)
                .map(|i| {
                    let label = i % self.classes;
                    let jitter = 1.0 + 0.1 * (rng.gen::<f32>() - 0.5);
                    let features =
                        prototypes[label].iter().map(|&p| p * jitter + noise.sample(rng) as f32).collect();
                    Sample { features, label }
                })
                .collect()
        };

        let shape = vec![self.channels, self.size, self.size];
        let train = Dataset::new(make(self.train_samples, &mut rng), shape.clone(), self.classes);
        let test = Dataset::new(make(self.test_samples, &mut rng), shape, self.classes);
        (train, test)
    }

    /// Smooth per-class prototypes: white noise box-blurred twice, then
    /// normalized to `prototype_scale` RMS.
    fn prototypes<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Vec<f32>> {
        let n = self.numel();
        (0..self.classes)
            .map(|_| {
                let mut img: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
                for _ in 0..2 {
                    img = self.box_blur(&img);
                }
                let rms = (img.iter().map(|&x| x * x).sum::<f32>() / n as f32).sqrt().max(1e-6);
                let k = self.prototype_scale / rms;
                img.iter().map(|&x| x * k).collect()
            })
            .collect()
    }

    /// 3×3 box blur applied per channel (simple smoothing; keeps prototypes
    /// spatially coherent the way natural images are).
    fn box_blur(&self, img: &[f32]) -> Vec<f32> {
        let s = self.size as isize;
        let mut out = vec![0.0f32; img.len()];
        for c in 0..self.channels {
            let plane = c * (s * s) as usize;
            for y in 0..s {
                for x in 0..s {
                    let mut acc = 0.0;
                    let mut cnt = 0.0;
                    for dy in -1..=1 {
                        for dx in -1..=1 {
                            let (ny, nx) = (y + dy, x + dx);
                            if ny >= 0 && ny < s && nx >= 0 && nx < s {
                                acc += img[plane + (ny * s + nx) as usize];
                                cnt += 1.0;
                            }
                        }
                    }
                    out[plane + (y * s + x) as usize] = acc / cnt;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = SyntheticImageSpec::small();
        let (a, _) = spec.generate(7);
        let (b, _) = spec.generate(7);
        assert_eq!(a.samples()[0].features, b.samples()[0].features);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = SyntheticImageSpec::small();
        let (a, _) = spec.generate(1);
        let (b, _) = spec.generate(2);
        assert_ne!(a.samples()[0].features, b.samples()[0].features);
    }

    #[test]
    fn labels_balanced_round_robin() {
        let spec = SyntheticImageSpec::small();
        let (train, _) = spec.generate(3);
        let hist = train.label_histogram(&(0..train.len()).collect::<Vec<_>>());
        assert_eq!(hist, vec![30, 30, 30]);
    }

    #[test]
    fn shapes_match_spec() {
        let spec = SyntheticImageSpec::cifar_like();
        let (train, test) = spec.generate(5);
        assert_eq!(train.item_shape(), &[3, 8, 8]);
        assert_eq!(train.len(), 2000);
        assert_eq!(test.len(), 500);
        assert_eq!(train.samples()[0].features.len(), spec.numel());
    }

    #[test]
    fn same_class_samples_are_correlated() {
        // Two samples of class 0 should be closer to each other than to a
        // different class prototype on average (sanity of class structure).
        let spec = SyntheticImageSpec { noise_std: 0.2, ..SyntheticImageSpec::small() };
        let (train, _) = spec.generate(11);
        let class0: Vec<&Sample> = train.samples().iter().filter(|s| s.label == 0).take(10).collect();
        let class1: Vec<&Sample> = train.samples().iter().filter(|s| s.label == 1).take(10).collect();
        let d_within = sg_math::l2_distance(&class0[0].features, &class0[1].features);
        let d_between: f32 =
            class1.iter().map(|s| sg_math::l2_distance(&class0[0].features, &s.features)).sum::<f32>() / 10.0;
        assert!(d_within < d_between, "within {d_within} between {d_between}");
    }
}
