//! Synthetic classification datasets and federated partitioners.
//!
//! The SignGuard paper evaluates on MNIST, Fashion-MNIST, CIFAR-10 and
//! AG-News. Those corpora cannot ship with this reproduction, so this crate
//! generates synthetic stand-ins with the properties the defense actually
//! interacts with:
//!
//! * class structure (so label-flipping is a meaningful data poison);
//! * controllable difficulty (prototype/noise ratio);
//! * image-shaped and token-sequence-shaped inputs, driving the same model
//!   families (CNN / residual CNN / TextRNN) as the paper;
//! * the paper's exact partitioning schemes — IID, and the `s`-fraction
//!   sort-and-partition non-IID split with two shards per client.
//!
//! # Examples
//!
//! ```
//! use sg_data::{SyntheticImageSpec, partition_iid};
//!
//! let spec = SyntheticImageSpec::small();
//! let (train, _test) = spec.generate(42);
//! let parts = partition_iid(train.len(), 10, &mut sg_math::seeded_rng(1));
//! assert_eq!(parts.len(), 10);
//! ```

mod dataset;
mod image;
mod partition;
mod text;

pub use dataset::{Batch, Dataset, Sample};
pub use image::SyntheticImageSpec;
pub use partition::{flip_label, partition_iid, partition_noniid, PartitionStats};
pub use text::SyntheticTextSpec;
