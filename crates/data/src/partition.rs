//! Federated data partitioners: IID and the paper's sort-and-partition
//! non-IID scheme.

use rand::Rng;
use sg_math::rng::shuffle;

use crate::dataset::Dataset;

/// Splits `0..len` into `n_clients` near-equal IID shards after a shuffle.
///
/// # Panics
///
/// Panics if `n_clients == 0` or `len < n_clients`.
pub fn partition_iid<R: Rng + ?Sized>(len: usize, n_clients: usize, rng: &mut R) -> Vec<Vec<usize>> {
    assert!(n_clients > 0, "partition_iid: zero clients");
    assert!(len >= n_clients, "partition_iid: {len} samples for {n_clients} clients");
    let mut idx: Vec<usize> = (0..len).collect();
    shuffle(rng, &mut idx);
    chunk_round_robin(&idx, n_clients)
}

/// The paper's non-IID split (Section VI-B): an `s`-fraction of the data is
/// distributed IID; the remaining `(1-s)`-fraction is sorted by label,
/// divided into `2 * n_clients` shards, and every client receives two
/// random shards (data in the same shard shares labels).
///
/// Smaller `s` ⇒ more skewed client distributions. `s = 1.0` degenerates to
/// IID; `s = 0.0` is the fully pathological two-label-per-client split.
///
/// # Panics
///
/// Panics if `s` is outside `[0, 1]`, `n_clients == 0`, or the dataset is
/// too small to give each client at least one sample.
pub fn partition_noniid<R: Rng + ?Sized>(
    dataset: &Dataset,
    n_clients: usize,
    s: f32,
    rng: &mut R,
) -> Vec<Vec<usize>> {
    assert!((0.0..=1.0).contains(&s), "partition_noniid: s={s} out of [0,1]");
    assert!(n_clients > 0, "partition_noniid: zero clients");
    let len = dataset.len();
    assert!(len >= 2 * n_clients, "partition_noniid: {len} samples for {n_clients} clients");

    let mut idx: Vec<usize> = (0..len).collect();
    shuffle(rng, &mut idx);
    let iid_count = ((len as f64) * f64::from(s)).round() as usize;
    let (iid_part, skewed_part) = idx.split_at(iid_count);

    // IID part: round-robin.
    let mut parts = chunk_round_robin(iid_part, n_clients);

    // Skewed part: sort by label, slice into 2*n shards, deal 2 shards each.
    let mut sorted: Vec<usize> = skewed_part.to_vec();
    sorted.sort_by_key(|&i| dataset.label(i));
    let n_shards = 2 * n_clients;
    let shard_size = sorted.len() / n_shards; // remainder goes to the tail shard
    let mut shards: Vec<Vec<usize>> = Vec::with_capacity(n_shards);
    for k in 0..n_shards {
        let start = k * shard_size;
        let end = if k + 1 == n_shards { sorted.len() } else { (k + 1) * shard_size };
        shards.push(sorted[start..end].to_vec());
    }
    let mut order: Vec<usize> = (0..n_shards).collect();
    shuffle(rng, &mut order);
    for (c, pair) in order.chunks(2).enumerate() {
        for &sh in pair {
            parts[c].extend_from_slice(&shards[sh]);
        }
    }
    parts
}

/// The paper's label-flipping poison: `l -> C - 1 - l`.
pub fn flip_label(label: usize, num_classes: usize) -> usize {
    num_classes - 1 - label
}

/// Summary statistics of a partition, used to verify skewness in tests and
/// experiment logs.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionStats {
    /// Samples per client.
    pub sizes: Vec<usize>,
    /// Number of distinct labels per client.
    pub distinct_labels: Vec<usize>,
    /// Mean over clients of (max class share within the client).
    pub mean_max_share: f32,
}

impl PartitionStats {
    /// Computes statistics for `parts` over `dataset`.
    pub fn compute(dataset: &Dataset, parts: &[Vec<usize>]) -> Self {
        let mut sizes = Vec::with_capacity(parts.len());
        let mut distinct = Vec::with_capacity(parts.len());
        let mut share_sum = 0.0f32;
        for p in parts {
            sizes.push(p.len());
            let hist = dataset.label_histogram(p);
            distinct.push(hist.iter().filter(|&&c| c > 0).count());
            let total: usize = hist.iter().sum();
            let max = hist.iter().copied().max().unwrap_or(0);
            if total > 0 {
                share_sum += max as f32 / total as f32;
            }
        }
        let mean_max_share = if parts.is_empty() { 0.0 } else { share_sum / parts.len() as f32 };
        Self { sizes, distinct_labels: distinct, mean_max_share }
    }
}

fn chunk_round_robin(idx: &[usize], n: usize) -> Vec<Vec<usize>> {
    let mut parts = vec![Vec::with_capacity(idx.len() / n + 1); n];
    for (k, &i) in idx.iter().enumerate() {
        parts[k % n].push(i);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::SyntheticImageSpec;
    use sg_math::seeded_rng;

    fn conservation(parts: &[Vec<usize>], len: usize) {
        let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..len).collect::<Vec<_>>(), "partition must be a permutation");
    }

    #[test]
    fn iid_partition_conserves_and_balances() {
        let mut rng = seeded_rng(0);
        let parts = partition_iid(103, 10, &mut rng);
        conservation(&parts, 103);
        for p in &parts {
            assert!(p.len() == 10 || p.len() == 11);
        }
    }

    #[test]
    #[should_panic(expected = "zero clients")]
    fn iid_zero_clients_panics() {
        let mut rng = seeded_rng(0);
        let _ = partition_iid(10, 0, &mut rng);
    }

    #[test]
    fn noniid_conserves_samples() {
        let (train, _) = SyntheticImageSpec::small().generate(1);
        let mut rng = seeded_rng(1);
        let parts = partition_noniid(&train, 5, 0.5, &mut rng);
        conservation(&parts, train.len());
    }

    #[test]
    fn noniid_s_zero_is_skewed() {
        let spec =
            SyntheticImageSpec { train_samples: 600, classes: 10, size: 4, ..SyntheticImageSpec::small() };
        let (train, _) = spec.generate(2);
        let mut rng = seeded_rng(2);
        let parts = partition_noniid(&train, 10, 0.0, &mut rng);
        let stats = PartitionStats::compute(&train, &parts);
        // Two shards per client, shards are label-sorted: few distinct labels.
        assert!(stats.distinct_labels.iter().all(|&d| d <= 4), "{:?}", stats.distinct_labels);
        assert!(stats.mean_max_share > 0.4, "share {}", stats.mean_max_share);
    }

    #[test]
    fn noniid_s_one_is_balanced() {
        let spec =
            SyntheticImageSpec { train_samples: 600, classes: 10, size: 4, ..SyntheticImageSpec::small() };
        let (train, _) = spec.generate(3);
        let mut rng = seeded_rng(3);
        let parts = partition_noniid(&train, 10, 1.0, &mut rng);
        let stats = PartitionStats::compute(&train, &parts);
        assert!(stats.distinct_labels.iter().all(|&d| d == 10), "{:?}", stats.distinct_labels);
        assert!(stats.mean_max_share < 0.2, "share {}", stats.mean_max_share);
    }

    #[test]
    fn noniid_skew_monotone_in_s() {
        let spec =
            SyntheticImageSpec { train_samples: 1000, classes: 10, size: 4, ..SyntheticImageSpec::small() };
        let (train, _) = spec.generate(4);
        let shares: Vec<f32> = [0.0f32, 0.5, 1.0]
            .iter()
            .map(|&s| {
                let mut rng = seeded_rng(4);
                let parts = partition_noniid(&train, 10, s, &mut rng);
                PartitionStats::compute(&train, &parts).mean_max_share
            })
            .collect();
        assert!(shares[0] > shares[1] && shares[1] > shares[2], "{shares:?}");
    }

    #[test]
    fn flip_label_is_involution() {
        for c in 2..10 {
            for l in 0..c {
                assert_eq!(flip_label(flip_label(l, c), c), l);
            }
        }
        assert_eq!(flip_label(0, 10), 9);
    }
}
