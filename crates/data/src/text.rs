//! Synthetic text-classification dataset generator (AG-News stand-in).
//!
//! Each class owns a disjoint block of "topic" tokens. A document is a
//! fixed-length token sequence drawn from a mixture: with probability
//! `topic_prob` a topic token of its class, otherwise a background token
//! shared by all classes. This mirrors what makes AG-News learnable by a
//! TextRNN — class-discriminative unigrams — while producing the sparse
//! embedding gradients whose zero-heavy sign statistics exercise a distinct
//! SignGuard regime.

use rand::Rng;
use sg_math::seeded_rng;

use crate::dataset::{Dataset, Sample};

/// Configuration for the synthetic text task.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticTextSpec {
    /// Vocabulary size (topic blocks + shared background tokens).
    pub vocab: usize,
    /// Tokens per document.
    pub seq_len: usize,
    /// Number of classes.
    pub classes: usize,
    /// Topic tokens reserved per class.
    pub topic_tokens_per_class: usize,
    /// Probability a position is a class topic token.
    pub topic_prob: f32,
    /// Training-set size.
    pub train_samples: usize,
    /// Test-set size.
    pub test_samples: usize,
}

impl SyntheticTextSpec {
    /// AG-News-like stand-in: 4 classes, 200-token vocabulary, 16-token
    /// documents.
    pub fn agnews_like() -> Self {
        Self {
            vocab: 200,
            seq_len: 16,
            classes: 4,
            topic_tokens_per_class: 12,
            topic_prob: 0.35,
            train_samples: 2000,
            test_samples: 500,
        }
    }

    /// Tiny configuration for unit tests.
    pub fn small() -> Self {
        Self {
            vocab: 30,
            seq_len: 6,
            classes: 3,
            topic_tokens_per_class: 4,
            topic_prob: 0.5,
            train_samples: 60,
            test_samples: 30,
        }
    }

    /// Generates `(train, test)` datasets deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the topic blocks do not fit in the vocabulary or any field
    /// is zero.
    pub fn generate(&self, seed: u64) -> (Dataset, Dataset) {
        assert!(
            self.vocab > 0
                && self.seq_len > 0
                && self.classes > 0
                && self.train_samples > 0
                && self.test_samples > 0,
            "SyntheticTextSpec: zero-sized configuration"
        );
        let topic_total = self.classes * self.topic_tokens_per_class;
        assert!(
            topic_total < self.vocab,
            "SyntheticTextSpec: {topic_total} topic tokens do not fit in vocab {}",
            self.vocab
        );
        let background_start = topic_total;
        let mut rng = seeded_rng(seed);

        let make = |count: usize, rng: &mut rand::rngs::StdRng| -> Vec<Sample> {
            (0..count)
                .map(|i| {
                    let label = i % self.classes;
                    let topic_base = label * self.topic_tokens_per_class;
                    let features = (0..self.seq_len)
                        .map(|_| {
                            let id = if rng.gen::<f32>() < self.topic_prob {
                                topic_base + rng.gen_range(0..self.topic_tokens_per_class)
                            } else {
                                rng.gen_range(background_start..self.vocab)
                            };
                            id as f32
                        })
                        .collect();
                    Sample { features, label }
                })
                .collect()
        };

        let shape = vec![self.seq_len];
        let train = Dataset::new(make(self.train_samples, &mut rng), shape.clone(), self.classes);
        let test = Dataset::new(make(self.test_samples, &mut rng), shape, self.classes);
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_stay_in_vocab() {
        let spec = SyntheticTextSpec::small();
        let (train, test) = spec.generate(1);
        for s in train.samples().iter().chain(test.samples()) {
            for &t in &s.features {
                assert!(t >= 0.0 && (t as usize) < spec.vocab && t.fract() == 0.0);
            }
        }
    }

    #[test]
    fn topic_tokens_correlate_with_class() {
        let spec = SyntheticTextSpec::small();
        let (train, _) = spec.generate(2);
        // Count how often class-0 documents contain class-0 topic tokens vs
        // class-1 topic tokens.
        let mut own = 0usize;
        let mut other = 0usize;
        for s in train.samples().iter().filter(|s| s.label == 0) {
            for &t in &s.features {
                let t = t as usize;
                if t < spec.topic_tokens_per_class {
                    own += 1;
                } else if t < 2 * spec.topic_tokens_per_class {
                    other += 1;
                }
            }
        }
        assert!(own > 5 * (other + 1), "own={own} other={other}");
    }

    #[test]
    fn deterministic_generation() {
        let spec = SyntheticTextSpec::small();
        let (a, _) = spec.generate(9);
        let (b, _) = spec.generate(9);
        assert_eq!(a.samples()[5], b.samples()[5]);
    }

    #[test]
    #[should_panic(expected = "do not fit in vocab")]
    fn oversized_topics_panic() {
        let spec = SyntheticTextSpec {
            vocab: 10,
            topic_tokens_per_class: 4,
            classes: 3,
            ..SyntheticTextSpec::small()
        };
        let _ = spec.generate(0);
    }
}
