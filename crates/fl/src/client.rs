//! A federated client: local data shard, model replica, momentum state.

use rand::rngs::StdRng;
use rand::Rng;
use sg_data::{flip_label, Dataset};
use sg_nn::{loss::softmax_cross_entropy, MomentumSgd, Sequential};
use sg_tensor::Tensor;

/// One simulated client.
///
/// Clients keep a model replica (synchronized to the global parameters at
/// the start of every round) and a client-side momentum buffer, matching
/// the paper's training setup (momentum 0.9 applied at the worker).
pub struct Client {
    id: usize,
    model: Sequential,
    optimizer: MomentumSgd,
    indices: Vec<usize>,
    rng: StdRng,
    flip_labels: bool,
    last_loss: f32,
    raw_grad: Vec<f32>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("id", &self.id)
            .field("samples", &self.indices.len())
            .field("flip_labels", &self.flip_labels)
            .finish()
    }
}

impl Client {
    /// Creates a client.
    ///
    /// # Panics
    ///
    /// Panics if the shard is empty.
    pub fn new(
        id: usize,
        model: Sequential,
        indices: Vec<usize>,
        momentum: f32,
        weight_decay: f32,
        rng: StdRng,
    ) -> Self {
        assert!(!indices.is_empty(), "Client {id}: empty data shard");
        let dim = model.num_params();
        Self {
            id,
            model,
            optimizer: MomentumSgd::new(dim, momentum, weight_decay),
            indices,
            rng,
            flip_labels: false,
            last_loss: 0.0,
            raw_grad: Vec::new(),
        }
    }

    /// Client identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of local samples.
    pub fn num_samples(&self) -> usize {
        self.indices.len()
    }

    /// Enables the label-flipping data poison on this client.
    pub fn set_flip_labels(&mut self, flip: bool) {
        self.flip_labels = flip;
    }

    /// Whether this client poisons its labels.
    pub fn flips_labels(&self) -> bool {
        self.flip_labels
    }

    /// Training loss of the most recent local step.
    pub fn last_loss(&self) -> f32 {
        self.last_loss
    }

    /// Computes this round's (momentum-smoothed) local gradient from the
    /// global parameters.
    ///
    /// # Panics
    ///
    /// Panics if `global_params` does not match the model dimension.
    pub fn local_gradient(&mut self, global_params: &[f32], train: &Dataset, batch_size: usize) -> Vec<f32> {
        let mut out = Vec::new();
        self.local_gradient_into(global_params, train, batch_size, &mut out);
        out
    }

    /// [`Client::local_gradient`] writing into a caller-owned buffer
    /// (typically an arena slot), so steady-state rounds allocate nothing
    /// per client.
    ///
    /// # Panics
    ///
    /// Panics if `global_params` does not match the model dimension.
    pub fn local_gradient_into(
        &mut self,
        global_params: &[f32],
        train: &Dataset,
        batch_size: usize,
        out: &mut Vec<f32>,
    ) {
        self.model.set_param_vector(global_params);
        let bs = batch_size.min(self.indices.len());
        let batch_idx: Vec<usize> =
            (0..bs).map(|_| self.indices[self.rng.gen_range(0..self.indices.len())]).collect();
        let classes = train.num_classes();
        let flip = self.flip_labels;
        let map = move |l: usize| if flip { flip_label(l, classes) } else { l };
        let batch = train.batch(&batch_idx, Some(&map));
        let x = Tensor::from_vec(batch.features.clone(), &batch.shape());

        let logits = self.model.forward(&x, true);
        let (loss, grad) = softmax_cross_entropy(&logits, &batch.labels);
        self.last_loss = loss;
        self.model.zero_grad();
        self.model.backward(&grad);
        let mut raw = std::mem::take(&mut self.raw_grad);
        self.model.grad_vector_into(&mut raw);
        self.optimizer.transform_into(&raw, global_params, out);
        self.raw_grad = raw;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks;
    use sg_math::seeded_rng;

    fn make_client(flip: bool) -> (Client, std::sync::Arc<sg_data::Dataset>) {
        let task = tasks::mlp_task(1);
        let mut rng = seeded_rng(0);
        let model = task.build_model(&mut rng);
        let mut c = Client::new(0, model, (0..100).collect(), 0.9, 5e-4, seeded_rng(1));
        c.set_flip_labels(flip);
        (c, task.train)
    }

    #[test]
    fn gradient_has_model_dimension() {
        let (mut c, train) = make_client(false);
        let task = tasks::mlp_task(1);
        let mut rng = seeded_rng(0);
        let dim = task.build_model(&mut rng).num_params();
        let params = vec![0.01; dim];
        let g = c.local_gradient(&params, &train, 8);
        assert_eq!(g.len(), dim);
        assert!(g.iter().all(|x| x.is_finite()));
        assert!(c.last_loss() > 0.0);
    }

    #[test]
    fn momentum_accumulates_across_rounds() {
        let (mut c, train) = make_client(false);
        let dim = {
            let task = tasks::mlp_task(1);
            let mut rng = seeded_rng(0);
            task.build_model(&mut rng).num_params()
        };
        let params = vec![0.01; dim];
        let g1 = c.local_gradient(&params, &train, 8);
        let g2 = c.local_gradient(&params, &train, 8);
        // With momentum 0.9 and similar raw gradients, the second smoothed
        // gradient should be larger in norm than the first.
        assert!(sg_math::l2_norm(&g2) > sg_math::l2_norm(&g1) * 1.2);
    }

    #[test]
    fn label_flip_changes_gradient() {
        let (mut honest, train) = make_client(false);
        let (mut poisoned, _) = make_client(true);
        let dim = honest.model.num_params();
        let params = vec![0.01; dim];
        let gh = honest.local_gradient(&params, &train, 16);
        let gp = poisoned.local_gradient(&params, &train, 16);
        let cos = sg_math::cosine_similarity(&gh, &gp);
        assert!(cos < 0.9, "flipped labels should decorrelate gradients, cos={cos}");
    }

    #[test]
    #[should_panic(expected = "empty data shard")]
    fn empty_shard_rejected() {
        let task = tasks::mlp_task(1);
        let mut rng = seeded_rng(0);
        let model = task.build_model(&mut rng);
        let _ = Client::new(0, model, vec![], 0.9, 0.0, seeded_rng(1));
    }
}
