//! Federated-learning simulation configuration.

/// How the training data is split across clients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Partitioning {
    /// Independent and identically distributed (paper's main setting).
    Iid,
    /// The paper's sort-and-partition non-IID split; `s` is the fraction
    /// distributed IID (smaller = more skewed, Section VI-B).
    NonIid {
        /// IID fraction `s ∈ [0, 1]`.
        s: f32,
    },
}

/// When client updates reach the parameter server (the schedule axis of
/// the scenario grid).
///
/// Every mode runs on the simulator's seeded **virtual clock** — server
/// steps, not wall time — so any schedule is bit-for-bit reproducible at
/// any thread count (see `sg_fl::scheduler`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Schedule {
    /// The paper's synchronous setting: every sampled client's update
    /// arrives in the step it was computed (honors
    /// [`FlConfig::participation`]).
    Sync,
    /// Heterogeneous clients with a seeded per-client delay: a
    /// `slow_fraction` of clients redeliver every `2..=max_delay + 1`
    /// steps, their gradients computed against the stale global model they
    /// last fetched (staleness up to `max_delay` steps); the rest behave
    /// synchronously.
    Straggler {
        /// Fraction of clients drawn as stragglers (`0.0` degenerates to
        /// `Sync` with full participation).
        slow_fraction: f32,
        /// Largest staleness (in server steps) a straggler's update can
        /// carry.
        max_delay: usize,
    },
    /// FedBuf-style buffered asynchrony: every client's compute time is
    /// drawn per dispatch from `1..=max_delay + 1` steps, arrived updates
    /// are buffered, and the server aggregates as soon as `k` updates are
    /// waiting (draining the whole buffer).
    AsyncBuffered {
        /// Buffer threshold: aggregate once this many updates are pending.
        k: usize,
        /// Largest compute-time staleness (in server steps) per dispatch.
        max_delay: usize,
    },
}

impl Schedule {
    /// Largest staleness (server steps) this schedule can attach to an
    /// update at compute time — the depth of model history the round
    /// pipeline must retain.
    pub fn max_staleness(&self) -> usize {
        match *self {
            Schedule::Sync => 0,
            Schedule::Straggler { max_delay, .. } | Schedule::AsyncBuffered { max_delay, .. } => max_delay,
        }
    }

    /// Short stable label for reports and sweep rows.
    pub fn label(&self) -> &'static str {
        match self {
            Schedule::Sync => "sync",
            Schedule::Straggler { .. } => "straggler",
            Schedule::AsyncBuffered { .. } => "async-buffered",
        }
    }
}

/// Simulation hyper-parameters, defaulting to the paper's setup scaled to
/// the synthetic tasks: 50 clients, 20% Byzantine, momentum 0.9, weight
/// decay 5e-4.
#[derive(Debug, Clone, PartialEq)]
pub struct FlConfig {
    /// Total number of clients `n` (paper: 50).
    pub num_clients: usize,
    /// Fraction of Byzantine clients `β` (paper default: 0.2).
    pub byzantine_fraction: f32,
    /// Mini-batch size per client per round.
    pub batch_size: usize,
    /// Global learning rate `η`.
    pub learning_rate: f32,
    /// Client-side momentum (paper: 0.9).
    pub momentum: f32,
    /// Weight decay (paper: 5e-4).
    pub weight_decay: f32,
    /// Training epochs (full passes over the union of client data).
    pub epochs: usize,
    /// Data partitioning scheme.
    pub partitioning: Partitioning,
    /// Fraction of clients participating each round (1.0 = full, the
    /// paper's synchronous setting; lower values exercise the partial-
    /// participation variant of Section IV-A). Only meaningful under
    /// [`Schedule::Sync`]; the async schedules model availability through
    /// their own delay process.
    pub participation: f32,
    /// When client updates reach the server (default: [`Schedule::Sync`],
    /// the paper's setting).
    pub schedule: Schedule,
    /// Master seed for every random choice in the run.
    pub seed: u64,
}

impl Default for FlConfig {
    fn default() -> Self {
        Self {
            num_clients: 50,
            byzantine_fraction: 0.2,
            batch_size: 8,
            learning_rate: 0.01,
            momentum: 0.9,
            weight_decay: 5e-4,
            epochs: 10,
            partitioning: Partitioning::Iid,
            participation: 1.0,
            schedule: Schedule::Sync,
            seed: 42,
        }
    }
}

impl FlConfig {
    /// Number of Byzantine clients `m = ⌊β·n⌋`.
    pub fn byzantine_count(&self) -> usize {
        ((self.num_clients as f32) * self.byzantine_fraction).floor() as usize
    }

    /// Rounds per epoch so that one epoch touches roughly every training
    /// sample once: `⌈len / (n · batch)⌉`.
    pub fn rounds_per_epoch(&self, train_len: usize) -> usize {
        train_len.div_ceil(self.num_clients * self.batch_size).max(1)
    }

    /// Total training rounds.
    pub fn total_rounds(&self, train_len: usize) -> usize {
        self.epochs * self.rounds_per_epoch(train_len)
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any field is out of range (zero clients, β ≥ 0.5 violating
    /// the paper's `n ≥ 2m + 1` assumption, non-positive batch or epochs).
    pub fn validate(&self) {
        assert!(self.num_clients > 0, "FlConfig: zero clients");
        assert!(
            (0.0..0.5).contains(&self.byzantine_fraction),
            "FlConfig: byzantine_fraction {} violates beta < 0.5",
            self.byzantine_fraction
        );
        assert!(self.batch_size > 0, "FlConfig: zero batch size");
        assert!(self.epochs > 0, "FlConfig: zero epochs");
        assert!(self.learning_rate > 0.0, "FlConfig: non-positive learning rate");
        assert!(
            self.participation > 0.0 && self.participation <= 1.0,
            "FlConfig: participation {} out of (0,1]",
            self.participation
        );
        if let Partitioning::NonIid { s } = self.partitioning {
            assert!((0.0..=1.0).contains(&s), "FlConfig: non-IID s {s} out of [0,1]");
        }
        match self.schedule {
            Schedule::Sync => {}
            Schedule::Straggler { slow_fraction, max_delay } => {
                assert!(
                    (0.0..=1.0).contains(&slow_fraction),
                    "FlConfig: straggler slow_fraction {slow_fraction} out of [0,1]"
                );
                assert!(max_delay >= 1, "FlConfig: straggler max_delay must be >= 1");
                assert!(
                    self.participation >= 1.0,
                    "FlConfig: partial participation is a Sync-only knob (async schedules model \
                     availability through their delay process)"
                );
            }
            Schedule::AsyncBuffered { k, max_delay } => {
                assert!(
                    k >= 1 && k <= self.num_clients,
                    "FlConfig: async buffer threshold k={k} out of [1, {}]",
                    self.num_clients
                );
                assert!(max_delay >= 1, "FlConfig: async max_delay must be >= 1");
                assert!(
                    self.participation >= 1.0,
                    "FlConfig: partial participation is a Sync-only knob (async schedules model \
                     availability through their delay process)"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = FlConfig::default();
        assert_eq!(cfg.num_clients, 50);
        assert_eq!(cfg.byzantine_count(), 10);
        assert!((cfg.momentum - 0.9).abs() < 1e-9);
        assert!((cfg.weight_decay - 5e-4).abs() < 1e-9);
        cfg.validate();
    }

    #[test]
    fn byzantine_count_floors() {
        let cfg = FlConfig { num_clients: 7, byzantine_fraction: 0.3, ..FlConfig::default() };
        assert_eq!(cfg.byzantine_count(), 2);
    }

    #[test]
    fn rounds_per_epoch_ceil() {
        let cfg = FlConfig { num_clients: 10, batch_size: 4, ..FlConfig::default() };
        assert_eq!(cfg.rounds_per_epoch(100), 3); // ceil(100/40)
        assert_eq!(cfg.rounds_per_epoch(1), 1);
    }

    #[test]
    fn participation_validated() {
        let ok = FlConfig { participation: 0.5, ..FlConfig::default() };
        ok.validate();
        let bad = FlConfig { participation: 0.0, ..FlConfig::default() };
        assert!(std::panic::catch_unwind(|| bad.validate()).is_err());
    }

    #[test]
    #[should_panic(expected = "beta < 0.5")]
    fn majority_byzantine_rejected() {
        FlConfig { byzantine_fraction: 0.5, ..FlConfig::default() }.validate();
    }

    #[test]
    fn schedule_validation_accepts_sane_async_modes() {
        FlConfig {
            schedule: Schedule::Straggler { slow_fraction: 0.3, max_delay: 4 },
            ..FlConfig::default()
        }
        .validate();
        FlConfig { schedule: Schedule::AsyncBuffered { k: 10, max_delay: 3 }, ..FlConfig::default() }
            .validate();
    }

    #[test]
    #[should_panic(expected = "out of [1, 50]")]
    fn async_threshold_above_population_rejected() {
        FlConfig { schedule: Schedule::AsyncBuffered { k: 51, max_delay: 2 }, ..FlConfig::default() }
            .validate();
    }

    #[test]
    #[should_panic(expected = "Sync-only knob")]
    fn partial_participation_requires_sync() {
        FlConfig {
            participation: 0.5,
            schedule: Schedule::Straggler { slow_fraction: 0.2, max_delay: 2 },
            ..FlConfig::default()
        }
        .validate();
    }

    #[test]
    fn schedule_staleness_and_labels() {
        assert_eq!(Schedule::Sync.max_staleness(), 0);
        assert_eq!(Schedule::Straggler { slow_fraction: 0.5, max_delay: 7 }.max_staleness(), 7);
        assert_eq!(Schedule::AsyncBuffered { k: 4, max_delay: 3 }.max_staleness(), 3);
        assert_eq!(Schedule::Sync.label(), "sync");
        assert_eq!(Schedule::AsyncBuffered { k: 4, max_delay: 3 }.label(), "async-buffered");
    }
}
