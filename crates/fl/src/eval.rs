//! Server-side test evaluation.

use sg_data::Dataset;
use sg_nn::{loss::accuracy, Sequential};
use sg_tensor::Tensor;

/// Evaluates classification accuracy of `model` on `dataset` in batches.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn evaluate_accuracy(model: &mut Sequential, dataset: &Dataset, batch_size: usize) -> f32 {
    assert!(!dataset.is_empty(), "evaluate_accuracy: empty dataset");
    let n = dataset.len();
    let bs = batch_size.max(1);
    let mut correct_weighted = 0.0f64;
    let mut start = 0usize;
    while start < n {
        let end = (start + bs).min(n);
        let idx: Vec<usize> = (start..end).collect();
        let batch = dataset.batch(&idx, None);
        let x = Tensor::from_vec(batch.features.clone(), &batch.shape());
        let logits = model.forward(&x, false);
        correct_weighted += f64::from(accuracy(&logits, &batch.labels)) * (end - start) as f64;
        start = end;
    }
    (correct_weighted / n as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks;
    use sg_math::seeded_rng;

    #[test]
    fn random_model_near_chance() {
        let task = tasks::mlp_task(2);
        let mut rng = seeded_rng(0);
        let mut model = task.build_model(&mut rng);
        let acc = evaluate_accuracy(&mut model, &task.test, 64);
        // 5 classes: chance is 0.2; an untrained model should be within a
        // generous band around it.
        assert!(acc > 0.02 && acc < 0.6, "acc={acc}");
    }

    #[test]
    fn batch_size_does_not_change_result() {
        let task = tasks::mlp_task(3);
        let mut rng = seeded_rng(1);
        let mut model = task.build_model(&mut rng);
        let a = evaluate_accuracy(&mut model, &task.test, 7);
        let b = evaluate_accuracy(&mut model, &task.test, 128);
        assert!((a - b).abs() < 1e-6);
    }
}
