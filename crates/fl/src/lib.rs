//! Federated-learning simulator: clients, Byzantine adversaries, parameter
//! server and metrics — the experimental testbed of the SignGuard paper.
//!
//! The simulation follows the paper's Algorithm 1 with full participation
//! and one local iteration per round: every client computes a mini-batch
//! gradient from the shared global model, smooths it with client-side
//! momentum (0.9) and weight decay (5e-4), and ships it to the parameter
//! server, which applies a pluggable gradient aggregation rule and a global
//! SGD step. The adversary sees every honest gradient before substituting
//! the Byzantine clients' messages (strongest threat model of Section IV).
//!
//! # Examples
//!
//! ```no_run
//! use sg_fl::{FlConfig, Simulator, tasks};
//! use sg_core::SignGuard;
//! use sg_attacks::Lie;
//!
//! let task = tasks::mnist_like(1);
//! let cfg = FlConfig { epochs: 3, ..FlConfig::default() };
//! let mut sim = Simulator::new(task, cfg, Box::new(SignGuard::plain(0)), Some(Box::new(Lie::new())));
//! let result = sim.run();
//! println!("best accuracy {:.2}%", 100.0 * result.best_accuracy);
//! ```

mod client;
mod config;
mod eval;
mod metrics;
mod simulator;
pub mod tasks;
pub mod validation;

pub use client::Client;
pub use config::{FlConfig, Partitioning};
pub use eval::evaluate_accuracy;
pub use metrics::{RoundMetrics, RunResult, SelectionTracker};
pub use simulator::Simulator;
pub use tasks::{Task, TaskCache};
pub use validation::{ValidatingServer, ValidationRule};
