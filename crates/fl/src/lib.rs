//! Federated-learning simulator: clients, Byzantine adversaries, parameter
//! server and metrics — the experimental testbed of the SignGuard paper,
//! generalized over a pluggable **schedule axis**.
//!
//! # The round pipeline
//!
//! Every server step runs through a staged [`RoundPipeline`]
//! (see [`rounds`]):
//!
//! 1. **compute** — the installed [`ClientScheduler`] names the step's
//!    arrivals; each arriving client computes a mini-batch gradient from
//!    the model version it fetched, smooths it with client-side momentum
//!    (0.9) and weight decay (5e-4), concurrently on the engine's worker
//!    pool;
//! 2. **attack** — arrivals land in a pending-update buffer; once the
//!    scheduler declares the batch ready, the adversary replaces the
//!    Byzantine messages, seeing every honest message and (on async
//!    schedules) the per-message staleness (strongest threat model of
//!    Section IV, extended with the arrival view);
//! 3. **aggregate** — a pluggable gradient aggregation rule consumes the
//!    batch together with its optional staleness metadata
//!    (`sg_aggregators::GradientBatch`);
//! 4. **apply** — the global SGD step and selection accounting.
//!
//! # Schedules and the virtual-clock staleness model
//!
//! [`Schedule`] picks who delivers when, on a **seeded virtual clock**
//! counted in server steps (never wall time):
//!
//! * [`Schedule::Sync`] — the paper's Algorithm 1: every sampled client
//!   delivers a fresh update each step (including the Section IV-A
//!   partial-participation variant);
//! * [`Schedule::Straggler`] — a seeded fraction of clients redelivers on
//!   a fixed per-client period, each update computed against the global
//!   model the client last fetched and arriving `period − 1` steps stale;
//! * [`Schedule::AsyncBuffered`] — FedBuf-style buffered asynchrony: per-
//!   dispatch compute times, with the server aggregating as soon as `k`
//!   updates are buffered.
//!
//! A client *fetches* the model at the end of the step in which its
//! previous update was consumed, computes for a scheduler-drawn number of
//! steps, and *delivers*; staleness is `current step − fetched step`. The
//! pipeline keeps a bounded ring of recent parameter snapshots
//! ([`rounds::ModelHistory`]) to serve stale fetches. Because all delay
//! draws happen on the driver thread in deterministic order, every
//! schedule inherits the engine's bit-for-bit determinism contract: the
//! same seed reproduces the same run at any thread count.
//!
//! # Examples
//!
//! ```no_run
//! use sg_fl::{FlConfig, Schedule, Simulator, tasks};
//! use sg_core::SignGuard;
//! use sg_attacks::Lie;
//!
//! let task = tasks::mnist_like(1);
//! let cfg = FlConfig {
//!     epochs: 3,
//!     schedule: Schedule::Straggler { slow_fraction: 0.3, max_delay: 4 },
//!     ..FlConfig::default()
//! };
//! let mut sim = Simulator::new(task, cfg, Box::new(SignGuard::plain(0)), Some(Box::new(Lie::new())));
//! let result = sim.run();
//! println!("best accuracy {:.2}%, mean staleness {:.2}",
//!     100.0 * result.best_accuracy, result.mean_batch_staleness());
//! ```

mod client;
mod config;
mod eval;
mod metrics;
mod partition_cache;
pub mod rounds;
pub mod scheduler;
mod simulator;
pub mod tasks;
pub mod validation;
mod virtual_population;

pub use client::Client;
pub use config::{FlConfig, Partitioning, Schedule};
pub use eval::evaluate_accuracy;
pub use metrics::{RoundMetrics, RunResult, SelectionTracker};
pub use partition_cache::{PartitionCache, PartitionKey};
pub use rounds::{ApplyState, BatchOutcome, ModelHistory, RoundPipeline, RoundState};
pub use scheduler::{build_scheduler, Arrival, ClientScheduler};
pub use simulator::{build_participants, global_init, Participants, Simulator};
pub use tasks::{Task, TaskCache};
pub use validation::{ValidatingServer, ValidationRule};
pub use virtual_population::VirtualPopulation;
