//! Run metrics: accuracy curves, attack impact, selection-rate accounting.

/// Per-round diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundMetrics {
    /// Round index.
    pub round: usize,
    /// Mean training loss across the honest clients that delivered an
    /// update this round (`0.0` when none did).
    pub mean_loss: f32,
    /// Test accuracy, when this round was evaluated (end of epoch).
    pub test_accuracy: Option<f32>,
    /// Client updates that arrived at the server this round (equals the
    /// participant count under the synchronous schedule).
    pub arrivals: usize,
    /// Whether the server aggregated and applied an update this round
    /// (always `true` under the synchronous schedule; async schedules may
    /// idle while their buffer fills or every client is still computing).
    pub applied: bool,
    /// Mean staleness, in server steps, across the aggregated batch
    /// (`0.0` when the round did not apply, or under `Sync`).
    pub mean_staleness: f32,
    /// Largest staleness in the aggregated batch.
    pub max_staleness: usize,
}

impl RoundMetrics {
    /// Metrics for a fresh, fully synchronous round (`arrivals` updates,
    /// all staleness 0, aggregate applied).
    pub fn synchronous(round: usize, mean_loss: f32, arrivals: usize) -> Self {
        Self {
            round,
            mean_loss,
            test_accuracy: None,
            arrivals,
            applied: true,
            mean_staleness: 0.0,
            max_staleness: 0,
        }
    }
}

/// Selection-rate accounting for Table II: how often honest and malicious
/// gradients are accepted by a selecting aggregation rule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SelectionTracker {
    honest_selected: usize,
    honest_total: usize,
    malicious_selected: usize,
    malicious_total: usize,
}

impl SelectionTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one round's selection. `selected` contains client indices;
    /// indices below `byzantine_count` are the Byzantine clients.
    pub fn record(&mut self, selected: &[usize], byzantine_count: usize, total_clients: usize) {
        self.honest_total += total_clients - byzantine_count;
        self.malicious_total += byzantine_count;
        for &i in selected {
            if i < byzantine_count {
                self.malicious_selected += 1;
            } else {
                self.honest_selected += 1;
            }
        }
    }

    /// Average honest selection rate (`H` column of Table II).
    pub fn honest_rate(&self) -> f32 {
        if self.honest_total == 0 {
            0.0
        } else {
            self.honest_selected as f32 / self.honest_total as f32
        }
    }

    /// Average malicious selection rate (`M` column of Table II).
    pub fn malicious_rate(&self) -> f32 {
        if self.malicious_total == 0 {
            0.0
        } else {
            self.malicious_selected as f32 / self.malicious_total as f32
        }
    }

    /// Whether any selection was recorded.
    pub fn has_data(&self) -> bool {
        self.honest_total + self.malicious_total > 0
    }
}

/// Result of a full federated training run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Best test accuracy reached during training (the paper reports this).
    pub best_accuracy: f32,
    /// Test accuracy after the final round.
    pub final_accuracy: f32,
    /// `(round, accuracy)` curve at each evaluation point.
    pub accuracy_curve: Vec<(usize, f32)>,
    /// Per-round diagnostics.
    pub rounds: Vec<RoundMetrics>,
    /// Selection accounting (meaningful when the rule selects).
    pub selection: SelectionTracker,
}

impl RunResult {
    /// Attack impact per the paper's Definition 3: accuracy drop relative
    /// to a no-attack/no-defense baseline accuracy.
    pub fn attack_impact(&self, baseline_accuracy: f32) -> f32 {
        (baseline_accuracy - self.best_accuracy).max(0.0)
    }

    /// Rounds in which the server aggregated and applied an update.
    pub fn applied_rounds(&self) -> usize {
        self.rounds.iter().filter(|m| m.applied).count()
    }

    /// Mean of the per-round mean batch staleness over applied rounds
    /// (`0.0` for a synchronous run, or when nothing applied).
    pub fn mean_batch_staleness(&self) -> f32 {
        let applied = self.applied_rounds();
        if applied == 0 {
            return 0.0;
        }
        self.rounds.iter().filter(|m| m.applied).map(|m| m.mean_staleness).sum::<f32>() / applied as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_rates() {
        let mut t = SelectionTracker::new();
        // 10 clients, 2 byzantine; round 1 selects honest 2..8 and byz 0.
        t.record(&[0, 2, 3, 4, 5, 6, 7], 2, 10);
        assert!((t.honest_rate() - 6.0 / 8.0).abs() < 1e-6);
        assert!((t.malicious_rate() - 0.5).abs() < 1e-6);
        assert!(t.has_data());
    }

    #[test]
    fn empty_tracker_rates_zero() {
        let t = SelectionTracker::new();
        assert_eq!(t.honest_rate(), 0.0);
        assert_eq!(t.malicious_rate(), 0.0);
        assert!(!t.has_data());
    }

    #[test]
    fn attack_impact_definition() {
        let r = RunResult {
            best_accuracy: 0.70,
            final_accuracy: 0.69,
            accuracy_curve: vec![],
            rounds: vec![],
            selection: SelectionTracker::new(),
        };
        assert!((r.attack_impact(0.9) - 0.2).abs() < 1e-6);
        // Impact clamps at zero when the defense beats the baseline.
        assert_eq!(r.attack_impact(0.5), 0.0);
    }

    #[test]
    fn staleness_summaries_ignore_idle_rounds() {
        let mut r = RunResult {
            best_accuracy: 0.0,
            final_accuracy: 0.0,
            accuracy_curve: vec![],
            rounds: vec![RoundMetrics::synchronous(0, 1.0, 10)],
            selection: SelectionTracker::new(),
        };
        r.rounds.push(RoundMetrics { applied: false, arrivals: 0, ..RoundMetrics::synchronous(1, 0.0, 0) });
        r.rounds.push(RoundMetrics {
            mean_staleness: 2.0,
            max_staleness: 4,
            ..RoundMetrics::synchronous(2, 0.8, 5)
        });
        assert_eq!(r.applied_rounds(), 2);
        assert!((r.mean_batch_staleness() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_run_has_zero_staleness() {
        let r = RunResult {
            best_accuracy: 0.0,
            final_accuracy: 0.0,
            accuracy_curve: vec![],
            rounds: vec![],
            selection: SelectionTracker::new(),
        };
        assert_eq!(r.applied_rounds(), 0);
        assert_eq!(r.mean_batch_staleness(), 0.0);
    }
}
