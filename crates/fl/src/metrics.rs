//! Run metrics: accuracy curves, attack impact, selection-rate accounting.

/// Per-round diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundMetrics {
    /// Round index.
    pub round: usize,
    /// Mean training loss across honest clients this round.
    pub mean_loss: f32,
    /// Test accuracy, when this round was evaluated (end of epoch).
    pub test_accuracy: Option<f32>,
}

/// Selection-rate accounting for Table II: how often honest and malicious
/// gradients are accepted by a selecting aggregation rule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SelectionTracker {
    honest_selected: usize,
    honest_total: usize,
    malicious_selected: usize,
    malicious_total: usize,
}

impl SelectionTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one round's selection. `selected` contains client indices;
    /// indices below `byzantine_count` are the Byzantine clients.
    pub fn record(&mut self, selected: &[usize], byzantine_count: usize, total_clients: usize) {
        self.honest_total += total_clients - byzantine_count;
        self.malicious_total += byzantine_count;
        for &i in selected {
            if i < byzantine_count {
                self.malicious_selected += 1;
            } else {
                self.honest_selected += 1;
            }
        }
    }

    /// Average honest selection rate (`H` column of Table II).
    pub fn honest_rate(&self) -> f32 {
        if self.honest_total == 0 {
            0.0
        } else {
            self.honest_selected as f32 / self.honest_total as f32
        }
    }

    /// Average malicious selection rate (`M` column of Table II).
    pub fn malicious_rate(&self) -> f32 {
        if self.malicious_total == 0 {
            0.0
        } else {
            self.malicious_selected as f32 / self.malicious_total as f32
        }
    }

    /// Whether any selection was recorded.
    pub fn has_data(&self) -> bool {
        self.honest_total + self.malicious_total > 0
    }
}

/// Result of a full federated training run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Best test accuracy reached during training (the paper reports this).
    pub best_accuracy: f32,
    /// Test accuracy after the final round.
    pub final_accuracy: f32,
    /// `(round, accuracy)` curve at each evaluation point.
    pub accuracy_curve: Vec<(usize, f32)>,
    /// Per-round diagnostics.
    pub rounds: Vec<RoundMetrics>,
    /// Selection accounting (meaningful when the rule selects).
    pub selection: SelectionTracker,
}

impl RunResult {
    /// Attack impact per the paper's Definition 3: accuracy drop relative
    /// to a no-attack/no-defense baseline accuracy.
    pub fn attack_impact(&self, baseline_accuracy: f32) -> f32 {
        (baseline_accuracy - self.best_accuracy).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_rates() {
        let mut t = SelectionTracker::new();
        // 10 clients, 2 byzantine; round 1 selects honest 2..8 and byz 0.
        t.record(&[0, 2, 3, 4, 5, 6, 7], 2, 10);
        assert!((t.honest_rate() - 6.0 / 8.0).abs() < 1e-6);
        assert!((t.malicious_rate() - 0.5).abs() < 1e-6);
        assert!(t.has_data());
    }

    #[test]
    fn empty_tracker_rates_zero() {
        let t = SelectionTracker::new();
        assert_eq!(t.honest_rate(), 0.0);
        assert_eq!(t.malicious_rate(), 0.0);
        assert!(!t.has_data());
    }

    #[test]
    fn attack_impact_definition() {
        let r = RunResult {
            best_accuracy: 0.70,
            final_accuracy: 0.69,
            accuracy_curve: vec![],
            rounds: vec![],
            selection: SelectionTracker::new(),
        };
        assert!((r.attack_impact(0.9) - 0.2).abs() < 1e-6);
        // Impact clamps at zero when the defense beats the baseline.
        assert_eq!(r.attack_impact(0.5), 0.0);
    }
}
