//! Memoized client data partitions for scenario grids.
//!
//! Every grid cell of one `(task, partitioning, n, seed)` combination
//! derives exactly the same client shards — the partition RNG is seeded
//! from the cell's config seed — yet each cell used to recompute
//! `partition_iid` / `partition_noniid` from scratch. [`PartitionCache`]
//! memoizes the shard lists behind `Arc`s (the ROADMAP's partition-cache
//! item), the same way [`crate::TaskCache`] shares generated datasets:
//! the construction is a pure function of the key, so a cache hit is
//! bit-identical to an uncached build.

use std::sync::Arc;

use sg_data::{partition_iid, partition_noniid, Dataset};
use sg_math::seeded_rng;
use sg_runtime::ResourceCache;

use crate::config::Partitioning;

/// Cache key: everything the partition construction depends on.
///
/// The dataset enters through its content fingerprint (plus length for
/// extra safety), so two `Task` instances sharing the same generated data
/// — e.g. cache hits of a [`crate::TaskCache`] — share partitions too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartitionKey {
    /// Content fingerprint of the training split.
    pub dataset_fp: u64,
    /// Training split length.
    pub dataset_len: usize,
    /// Number of clients.
    pub num_clients: usize,
    /// Partitioning scheme (`None` = IID, `Some(s_bits)` = non-IID with
    /// the skew fraction's bit pattern — exact, no float in the key).
    pub noniid_s_bits: Option<u32>,
    /// Seed of the partition RNG.
    pub part_seed: u64,
}

impl PartitionKey {
    /// Builds the key for partitioning `train` across `num_clients`
    /// clients with `part_seed`.
    pub fn new(train: &Dataset, partitioning: Partitioning, num_clients: usize, part_seed: u64) -> Self {
        Self {
            dataset_fp: train.fingerprint(),
            dataset_len: train.len(),
            num_clients,
            noniid_s_bits: match partitioning {
                Partitioning::Iid => None,
                Partitioning::NonIid { s } => Some(s.to_bits()),
            },
            part_seed,
        }
    }
}

/// Memoized partition construction keyed by [`PartitionKey`].
///
/// Clones share the cache; move a clone into each grid cell (or hold one
/// in the sweep options next to the `TaskCache`).
///
/// # Examples
///
/// ```
/// use sg_fl::{tasks, Partitioning, PartitionCache};
///
/// let cache = PartitionCache::new();
/// let task = tasks::mlp_task(1);
/// let a = cache.get(&task.train, Partitioning::Iid, 10, 42);
/// let b = cache.get(&task.train, Partitioning::Iid, 10, 42);
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!((cache.misses(), cache.hits()), (1, 1));
/// ```
#[derive(Clone, Debug, Default)]
pub struct PartitionCache {
    cache: ResourceCache<PartitionKey, Vec<Vec<usize>>>,
}

impl PartitionCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the (possibly cached) client shards for partitioning
    /// `train` across `num_clients` clients, with the partition RNG seeded
    /// at `part_seed` — exactly the shards an uncached
    /// `partition_iid`/`partition_noniid` call with a fresh
    /// `seeded_rng(part_seed)` produces.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is too small for the client count (see the
    /// partitioners in `sg-data`).
    pub fn get(
        &self,
        train: &Dataset,
        partitioning: Partitioning,
        num_clients: usize,
        part_seed: u64,
    ) -> Arc<Vec<Vec<usize>>> {
        let key = PartitionKey::new(train, partitioning, num_clients, part_seed);
        self.cache.get_or_create(key, || {
            let mut rng = seeded_rng(part_seed);
            match partitioning {
                Partitioning::Iid => partition_iid(train.len(), num_clients, &mut rng),
                Partitioning::NonIid { s } => partition_noniid(train, num_clients, s, &mut rng),
            }
        })
    }

    /// Distinct partition keys generated so far.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether no partition has been requested yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Requests served from cache.
    pub fn hits(&self) -> usize {
        self.cache.hits()
    }

    /// Requests that computed a partition (one per distinct key).
    pub fn misses(&self) -> usize {
        self.cache.misses()
    }

    /// Publishes the tallies as `cache.<name>.*` counters in the `sg-obs`
    /// registry (see [`ResourceCache::publish`]).
    pub fn publish(&self, name: &str) {
        self.cache.publish(name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks;

    #[test]
    fn cached_partition_matches_direct_computation() {
        let task = tasks::mlp_task(4);
        let cache = PartitionCache::new();
        let cached = cache.get(&task.train, Partitioning::NonIid { s: 0.5 }, 8, 99);
        let mut rng = seeded_rng(99);
        let direct = partition_noniid(&task.train, 8, 0.5, &mut rng);
        assert_eq!(*cached, direct, "cache hit must be bit-identical to an uncached build");
    }

    #[test]
    fn keys_separate_every_axis() {
        let task = tasks::mlp_task(4);
        let other = tasks::mlp_task(5);
        let cache = PartitionCache::new();
        let base = cache.get(&task.train, Partitioning::Iid, 10, 1);
        let diff_seed = cache.get(&task.train, Partitioning::Iid, 10, 2);
        let diff_n = cache.get(&task.train, Partitioning::Iid, 5, 1);
        let diff_scheme = cache.get(&task.train, Partitioning::NonIid { s: 0.5 }, 10, 1);
        let diff_data = cache.get(&other.train, Partitioning::Iid, 10, 1);
        assert_eq!(cache.len(), 5, "five distinct keys");
        assert!(!Arc::ptr_eq(&base, &diff_seed));
        assert!(!Arc::ptr_eq(&base, &diff_n));
        assert!(!Arc::ptr_eq(&base, &diff_scheme));
        assert!(!Arc::ptr_eq(&base, &diff_data));
    }

    #[test]
    fn shared_dataset_shares_partitions() {
        // Two cheap Task clones of one generated dataset hit the same key.
        let task = tasks::mlp_task(6);
        let clone = task.clone();
        let cache = PartitionCache::new();
        let a = cache.get(&task.train, Partitioning::Iid, 10, 7);
        let b = cache.get(&clone.train, Partitioning::Iid, 10, 7);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.misses(), cache.hits()), (1, 1));
    }
}
