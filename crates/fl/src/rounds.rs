//! The staged round pipeline: compute → attack → aggregate → apply.
//!
//! One server step of the federated protocol, decomposed into four stages
//! that are identical across every [`crate::Schedule`]:
//!
//! 1. **compute** — the installed [`ClientScheduler`] names this step's
//!    arrivals; each arriving client computes its (momentum-smoothed)
//!    local gradient against the model version it fetched — looked up in
//!    the pipeline's [`ModelHistory`] when stale — concurrently across the
//!    engine's worker pool, each into its own arena buffer;
//! 2. **attack** — arrivals land in the pending-update buffer
//!    ([`sg_runtime::UpdateBuffer`]); once the scheduler declares the
//!    batch ready, it is drained Byzantine-first and the adversary
//!    replaces the Byzantine messages in place, seeing the arrival view
//!    (per-message staleness) on async schedules;
//! 3. **aggregate** — the aggregation rule consumes a
//!    [`sg_aggregators::GradientBatch`] carrying the same staleness
//!    metadata, so staleness-aware rules can down-weight old messages
//!    while the batch-only rules run unchanged;
//! 4. **apply** — the global SGD step, selection accounting, buffer
//!    return, and the scheduler's consumption notice (consumed clients
//!    refetch the model and restart their virtual-clock timers).
//!
//! On the synchronous schedule the pipeline is float-for-float the
//! monolithic pre-pipeline round loop: every client arrives fresh, the
//! buffer drains every step, and the history keeps no snapshots.
//!
//! Each stage runs under an `sg-obs` span of the same name, with batch
//! staleness recorded into the `pipeline.staleness` histogram at drain
//! time — pure observation, never an input to any stage.

use std::collections::VecDeque;

use sg_aggregators::{Aggregator, BatchElems, GradientBatch, GradientRepr, QuantizedVec, SignNormVec};
use sg_attacks::{Attack, AttackContext};
use sg_data::Dataset;
use sg_runtime::{Engine, GradientArena, PendingUpdate, UpdateBuffer};

use crate::client::Client;
use crate::metrics::{RoundMetrics, SelectionTracker};
use crate::scheduler::{ClientScheduler, SyncScheduler};

/// Ring of recent global-parameter snapshots, indexed by server step.
///
/// `record(step, params)` is called at the start of every step; `get`
/// serves the snapshot a stale arrival trained against. Depth 0 (the
/// synchronous schedule) records nothing — the current parameters are the
/// only version any arrival can reference — so sync rounds pay no copies.
#[derive(Debug)]
pub struct ModelHistory {
    depth: usize,
    ring: VecDeque<(usize, Vec<f32>)>,
}

impl ModelHistory {
    /// A history retaining `depth` past steps (plus the current one).
    pub fn new(depth: usize) -> Self {
        Self { depth, ring: VecDeque::with_capacity(depth + 1) }
    }

    /// Largest staleness this history can serve.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Snapshots the parameters current at the start of `step`. Evicted
    /// snapshots donate their allocation to the new one, so a steady-state
    /// round allocates nothing.
    pub fn record(&mut self, step: usize, params: &[f32]) {
        if self.depth == 0 {
            return;
        }
        let mut buf = if self.ring.len() > self.depth {
            self.ring.pop_front().expect("non-empty ring").1
        } else {
            Vec::with_capacity(params.len())
        };
        buf.clear();
        buf.extend_from_slice(params);
        self.ring.push_back((step, buf));
    }

    /// The parameters an arrival with `model_step` trains against at
    /// `current_step` (`current` being the live parameter vector).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot is older than the history depth — a
    /// scheduler bug, since schedulers declare their maximum staleness.
    pub fn get<'a>(&'a self, model_step: usize, current_step: usize, current: &'a [f32]) -> &'a [f32] {
        if model_step >= current_step {
            debug_assert_eq!(model_step, current_step, "arrival from the future");
            return current;
        }
        self.ring.iter().find(|(s, _)| *s == model_step).map(|(_, p)| p.as_slice()).unwrap_or_else(|| {
            panic!(
                "model history: step {model_step} evicted (current step {current_step}, depth {})",
                self.depth
            )
        })
    }
}

/// The server-side slice of [`RoundState`]: what the aggregate/apply
/// stages need once the compute stage has happened elsewhere — on a remote
/// client that shipped its gradient over a transport instead of through
/// the in-process scheduler.
pub struct ApplyState<'a> {
    /// The live global parameter vector (mutated by the apply stage).
    pub global_params: &'a mut Vec<f32>,
    /// Global SGD learning rate.
    pub learning_rate: f32,
}

/// What [`RoundPipeline::apply_batch`] did with the drained batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchOutcome {
    /// Number of messages in the aggregated batch.
    pub batch_size: usize,
    /// Mean staleness across the batch (server steps).
    pub mean_staleness: f32,
    /// Largest staleness in the batch (server steps).
    pub max_staleness: usize,
}

/// Everything a round needs from the simulation that owns it.
pub struct RoundState<'a> {
    /// All clients (the scheduler picks who computes).
    pub clients: &'a mut [Client],
    /// The live global parameter vector (mutated by the apply stage).
    pub global_params: &'a mut Vec<f32>,
    /// Shared training data.
    pub train: &'a Dataset,
    /// Mini-batch size per client step.
    pub batch_size: usize,
    /// Global SGD learning rate.
    pub learning_rate: f32,
    /// Execution engine (client compute fans out on its pool).
    pub engine: &'a Engine,
}

/// The staged round loop: owns the schedule-dependent state (scheduler,
/// history, pending buffer, arena) and the server-side actors (attack,
/// aggregation rule).
pub struct RoundPipeline {
    gar: Box<dyn Aggregator>,
    attack: Option<Box<dyn Attack>>,
    scheduler: Box<dyn ClientScheduler>,
    byz_count: usize,
    history: ModelHistory,
    buffer: UpdateBuffer<usize, GradientRepr>,
    arena: GradientArena,
    /// Whether batches carry the arrival view (any schedule that can
    /// produce staleness > 0).
    async_metadata: bool,
}

impl std::fmt::Debug for RoundPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoundPipeline")
            .field("gar", &self.gar.name())
            .field("attack", &self.attack.as_ref().map(|a| a.name()))
            .field("schedule", &self.scheduler.name())
            .field("history_depth", &self.history.depth())
            .finish()
    }
}

impl RoundPipeline {
    /// Assembles the pipeline. The pending-update buffer comes from the
    /// engine's buffer seam; the history depth from the scheduler's
    /// declared maximum staleness.
    pub fn new(
        gar: Box<dyn Aggregator>,
        attack: Option<Box<dyn Attack>>,
        scheduler: Box<dyn ClientScheduler>,
        byz_count: usize,
        num_clients: usize,
        engine: &Engine,
    ) -> Self {
        let depth = scheduler.max_staleness();
        Self {
            gar,
            attack,
            scheduler,
            byz_count,
            history: ModelHistory::new(depth),
            buffer: engine.update_buffer(),
            arena: GradientArena::new(num_clients),
            async_metadata: depth > 0,
        }
    }

    /// The aggregation rule's table name.
    pub fn gar_name(&self) -> &'static str {
        self.gar.name()
    }

    /// The attack's table name, if an adversary is present.
    pub fn attack_name(&self) -> Option<&'static str> {
        self.attack.as_ref().map(|a| a.name())
    }

    /// The schedule's name.
    pub fn schedule_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// Peak number of updates ever pending at once (async diagnostics).
    pub fn buffer_high_water(&self) -> usize {
        self.buffer.high_water()
    }

    /// A pipeline for a **networked service**: arrivals come from a
    /// transport (each client computes its own gradient and submits it),
    /// so no [`ClientScheduler`] drives the compute stage. The installed
    /// schedule is the synchronous one — full participation, staleness 0 —
    /// which keeps the drain → attack → aggregate → apply path
    /// float-for-float identical to the in-process `Sync` run: the seam
    /// the loopback-transport determinism contract stands on.
    pub fn for_service(
        gar: Box<dyn Aggregator>,
        attack: Option<Box<dyn Attack>>,
        byz_count: usize,
        num_clients: usize,
        engine: &Engine,
    ) -> Self {
        // Full participation draws nothing from the RNG, so the seed is
        // immaterial; the scheduler only contributes its (no-op)
        // `on_consumed` and `max_staleness() == 0`.
        let scheduler = Box::new(SyncScheduler::new(num_clients, byz_count, 1.0, sg_math::seeded_rng(0)));
        Self::new(gar, attack, scheduler, byz_count, num_clients, engine)
    }

    /// Server-mode ingest: a remotely computed update enters the pending
    /// buffer, tagged with the model step it was computed against. The
    /// caller owns arrival ordering — for the bit-for-bit contract against
    /// the in-process `Sync` schedule, ingest a completed round's batch in
    /// ascending client id (Byzantine ids first by construction).
    pub fn ingest(&mut self, client: usize, gradient: Vec<f32>, model_step: usize) {
        self.ingest_repr(client, GradientRepr::Dense(gradient), model_step);
    }

    /// [`Self::ingest`] for any gradient representation: compressed
    /// submissions enter the pending buffer as-is and are only
    /// materialized dense if the drained batch needs it (an active
    /// adversary, or mixed representations — see [`Self::apply_batch`]).
    pub fn ingest_repr(&mut self, client: usize, gradient: GradientRepr, model_step: usize) {
        self.buffer.push(PendingUpdate { client, gradient, meta: model_step });
    }

    /// Updates currently buffered and not yet aggregated.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// Executes one server step, returning its metrics.
    pub fn step(
        &mut self,
        round: usize,
        state: RoundState<'_>,
        selection: &mut SelectionTracker,
    ) -> RoundMetrics {
        self.history.record(round, state.global_params);
        sg_obs::counter_add("pipeline.steps", 1);

        // ---- compute stage -------------------------------------------
        // The scheduler names this step's arrivals; each computes its
        // gradient against the model version it fetched, concurrently on
        // the engine's pool, each into its own arena buffer. Clients own
        // their RNG streams, so scheduling can never perturb the result.
        let compute_span = sg_obs::span("compute");
        let arrivals = self.scheduler.arrivals(round);
        let arrived = arrivals.len();
        sg_obs::counter_add("pipeline.arrivals", arrived as u64);
        let mut loss_sum = 0.0f32;
        let mut honest_arrivals = 0usize;
        if arrived > 0 {
            let mut slots: Vec<Option<&mut Client>> = state.clients.iter_mut().map(Some).collect();
            let history = &self.history;
            let arena = &mut self.arena;
            let global: &[f32] = state.global_params;
            let jobs: Vec<(&mut Client, Vec<f32>, &[f32])> = arrivals
                .iter()
                .map(|a| {
                    let params = history.get(a.model_step, round, global);
                    (slots[a.client].take().expect("duplicate arrival"), arena.take(a.client), params)
                })
                .collect();
            let train = state.train;
            let batch_size = state.batch_size;
            let results: Vec<(Vec<f32>, f32)> =
                state.engine.pool().map(jobs, |_, (client, mut buf, params)| {
                    client.local_gradient_into(params, train, batch_size, &mut buf);
                    let loss = client.last_loss();
                    (buf, loss)
                });

            // Honest-loss accounting in arrival order (the same
            // floating-point order as a sequential loop would produce),
            // then into the pending buffer with the model step attached.
            for ((gradient, loss), a) in results.into_iter().zip(&arrivals) {
                if a.client >= self.byz_count {
                    loss_sum += loss;
                    honest_arrivals += 1;
                }
                self.buffer.push(PendingUpdate {
                    client: a.client,
                    gradient: GradientRepr::Dense(gradient),
                    meta: a.model_step,
                });
            }
        }
        let mean_loss = if honest_arrivals > 0 { loss_sum / honest_arrivals as f32 } else { 0.0 };
        drop(compute_span);

        if !self.scheduler.ready(round, self.buffer.len()) {
            sg_obs::counter_add("pipeline.idle_steps", 1);
            // Async idle step: the buffer keeps filling, nothing applies.
            return RoundMetrics {
                round,
                mean_loss,
                test_accuracy: None,
                arrivals: arrived,
                applied: false,
                mean_staleness: 0.0,
                max_staleness: 0,
            };
        }

        let st = ApplyState { global_params: state.global_params, learning_rate: state.learning_rate };
        let outcome = self.apply_batch(round, st, selection);

        RoundMetrics {
            round,
            mean_loss,
            test_accuracy: None,
            arrivals: arrived,
            applied: true,
            mean_staleness: outcome.mean_staleness,
            max_staleness: outcome.max_staleness,
        }
    }

    /// Drains the pending buffer and runs the server-side half of a step:
    /// attack → aggregate → apply. This is the whole round on a networked
    /// deployment (where [`Self::ingest`] replaces the compute stage) and
    /// the back half of [`Self::step`] in-process — one body of code, so
    /// the two paths are float-for-float identical by construction.
    pub fn apply_batch(
        &mut self,
        round: usize,
        st: ApplyState<'_>,
        selection: &mut SelectionTracker,
    ) -> BatchOutcome {
        // Drain Byzantine-first (stable within each group), so message
        // index < m means "malicious" for the attack and the selection
        // accounting, exactly as in the synchronous protocol.
        let mut batch = self.buffer.drain();
        batch.sort_by_key(|u| u.client >= self.byz_count);
        let n = batch.len();
        let m = batch.iter().filter(|u| u.client < self.byz_count).count();
        let staleness: Vec<usize> = batch.iter().map(|u| round - u.meta).collect();
        if sg_obs::enabled() {
            for &s in &staleness {
                sg_obs::histogram_record("pipeline.staleness", s as u64);
            }
        }
        let batch_clients: Vec<usize> = batch.iter().map(|u| u.client).collect();
        let payloads: Vec<GradientRepr> = batch.into_iter().map(|u| u.gradient).collect();

        // Representation partition. A batch aggregates in its native
        // representation only when it is *uniform* and no adversary will
        // rewrite it: the attack seam is dense (adversaries craft `f32`
        // coordinates from the honest messages), so an active attack — and
        // any mixed-representation batch — materializes dense gradients
        // first. Uniform compressed batches with no active attack flow
        // straight into the rule's native `aggregate_batch` path.
        let attack_active = m > 0 && self.attack.is_some();
        let uniform_kind =
            payloads.first().map(GradientRepr::kind).filter(|k| payloads.iter().all(|p| p.kind() == *k));
        let stale = if self.async_metadata { Some(staleness.as_slice()) } else { None };

        let out = if !attack_active && uniform_kind == Some("signnorm") {
            let packed: Vec<SignNormVec> = payloads
                .into_iter()
                .map(|p| match p {
                    GradientRepr::SignNorm(s) => s,
                    _ => unreachable!("uniform signnorm batch"),
                })
                .collect();
            sg_obs::span("attack");
            let aggregate_span = sg_obs::span("aggregate");
            self.gar.observe_global(st.global_params);
            let out = self
                .gar
                .aggregate_batch(&GradientBatch { elems: BatchElems::SignNorm(&packed), staleness: stale });
            drop(aggregate_span);
            // Park the packed buffers for reuse, like the dense ones.
            for (p, &id) in packed.into_iter().zip(&batch_clients) {
                let (bits, zeros) = p.into_buffers();
                self.arena.put_packed(id, bits, zeros);
            }
            out
        } else if !attack_active && uniform_kind == Some("quantized") {
            let quant: Vec<QuantizedVec> = payloads
                .into_iter()
                .map(|p| match p {
                    GradientRepr::QuantizedI8(q) => q,
                    _ => unreachable!("uniform quantized batch"),
                })
                .collect();
            sg_obs::span("attack");
            let aggregate_span = sg_obs::span("aggregate");
            self.gar.observe_global(st.global_params);
            let out = self
                .gar
                .aggregate_batch(&GradientBatch { elems: BatchElems::Quantized(&quant), staleness: stale });
            drop(aggregate_span);
            for (q, &id) in quant.into_iter().zip(&batch_clients) {
                self.arena.put_bytes(id, q.into_buffer());
            }
            out
        } else {
            // Dense funnel: materialize compressed payloads (recycling
            // their buffers into the arena on the way), then run the
            // attack → aggregate path exactly as the all-dense batch does.
            let mut grads: Vec<Vec<f32>> = Vec::with_capacity(n);
            for (p, &id) in payloads.into_iter().zip(&batch_clients) {
                match p {
                    GradientRepr::Dense(v) => grads.push(v),
                    GradientRepr::SignNorm(s) => {
                        grads.push(s.to_dense());
                        let (bits, zeros) = s.into_buffers();
                        self.arena.put_packed(id, bits, zeros);
                    }
                    GradientRepr::QuantizedI8(q) => {
                        grads.push(q.to_dense());
                        self.arena.put_bytes(id, q.into_buffer());
                    }
                }
            }

            // ---- attack stage ----------------------------------------
            // The adversary replaces the Byzantine messages in place,
            // seeing every honest message of the batch — and, on async
            // schedules, the arrival view (per-message staleness,
            // Byzantine first).
            let attack_span = sg_obs::span("attack");
            if m > 0 {
                if let Some(attack) = self.attack.as_mut() {
                    let (byz_honest, benign) = grads.split_at(m);
                    let ctx = if self.async_metadata {
                        AttackContext::with_staleness(benign, byz_honest, round, &staleness)
                    } else {
                        AttackContext::new(benign, byz_honest, round)
                    };
                    let malicious = attack.craft(&ctx);
                    assert_eq!(malicious.len(), m, "attack returned wrong gradient count");
                    for (slot, mal) in grads.iter_mut().zip(malicious) {
                        *slot = mal;
                    }
                }
            }

            drop(attack_span);

            // ---- aggregate stage -------------------------------------
            // Validation-based rules need the current model to score
            // gradients; staleness-aware rules get the arrival metadata.
            let aggregate_span = sg_obs::span("aggregate");
            self.gar.observe_global(st.global_params);
            let input = GradientBatch { elems: BatchElems::Dense(&grads), staleness: stale };
            let out = self.gar.aggregate_batch(&input);
            drop(aggregate_span);

            // Park the batch's dense buffers (including attack-crafted
            // replacements) for reuse.
            for (g, &id) in grads.into_iter().zip(&batch_clients) {
                self.arena.put(id, g);
            }
            out
        };

        if let Some(sel) = &out.selected {
            selection.record(sel, m, n);
        }

        // ---- apply stage ---------------------------------------------
        let apply_span = sg_obs::span("apply");
        for (p, g) in st.global_params.iter_mut().zip(&out.gradient) {
            *p -= st.learning_rate * g;
        }

        // Let the consumed clients refetch and restart.
        self.scheduler.on_consumed(round, &batch_clients);
        drop(apply_span);
        sg_obs::counter_add("pipeline.applied_steps", 1);

        let max_staleness = staleness.iter().copied().max().unwrap_or(0);
        let mean_staleness = if n > 0 { staleness.iter().sum::<usize>() as f32 / n as f32 } else { 0.0 };
        BatchOutcome { batch_size: n, mean_staleness, max_staleness }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_depth_zero_records_nothing() {
        let mut h = ModelHistory::new(0);
        h.record(0, &[1.0, 2.0]);
        let current = [9.0f32];
        assert_eq!(h.get(3, 3, &current), &current);
    }

    #[test]
    fn history_serves_recent_snapshots() {
        let mut h = ModelHistory::new(2);
        for step in 0..5usize {
            h.record(step, &[step as f32]);
        }
        let current = [99.0f32];
        assert_eq!(h.get(4, 4, &current), &current, "current step bypasses the ring");
        assert_eq!(h.get(3, 4, &current), &[3.0]);
        assert_eq!(h.get(2, 4, &current), &[2.0]);
    }

    #[test]
    #[should_panic(expected = "evicted")]
    fn history_panics_past_depth() {
        let mut h = ModelHistory::new(1);
        for step in 0..4usize {
            h.record(step, &[step as f32]);
        }
        let current = [0.0f32];
        let _ = h.get(0, 3, &current);
    }

    #[test]
    fn history_reuses_evicted_allocations() {
        let mut h = ModelHistory::new(1);
        let params = vec![1.0f32; 512];
        h.record(0, &params);
        h.record(1, &params);
        let evicted_ptr = h.ring.front().expect("front").1.as_ptr();
        h.record(2, &params);
        // Step 0's buffer was recycled into step 2's snapshot.
        assert_eq!(h.ring.back().expect("back").1.as_ptr(), evicted_ptr);
    }
}
