//! Client schedulers: who delivers an update at each server step, and how
//! stale it is.
//!
//! The round pipeline (see [`crate::rounds`]) is schedule-agnostic: every
//! server step it asks the installed [`ClientScheduler`] which client
//! updates *arrive*, computes those gradients against the (possibly stale)
//! model each client fetched, buffers them, and aggregates when the
//! scheduler says the batch is ready. The schedulers implement the three
//! schedule modes of [`Schedule`]:
//!
//! * [`SyncScheduler`] — the paper's synchronous setting, including the
//!   Section IV-A partial-participation variant (per-round client
//!   sampling);
//! * [`StragglerScheduler`] — a seeded fraction of clients is slow: each
//!   straggler redelivers on a fixed per-client period drawn at
//!   construction, its gradient computed against the model it fetched when
//!   it last restarted (arriving `period − 1` steps stale);
//! * [`AsyncBufferedScheduler`] — FedBuf-style: every dispatch draws a
//!   fresh compute time, and the server only aggregates once `k` updates
//!   are buffered.
//!
//! # The virtual clock
//!
//! Time is counted in **server steps**, never wall time. A client's life
//! cycle on this clock: it *fetches* the global model at the end of some
//! step `t₀` (so it trains against the parameters current at the start of
//! step `t₀ + 1`, its *model step*), computes for a scheduler-chosen
//! number of steps, *delivers* at step `t₁`, and fetches again at the end
//! of whichever step its delivery is *consumed* (aggregated). Staleness of
//! an update is `current step − model step`. All delay draws come from one
//! seeded RNG advanced in deterministic (client-index / batch) order on
//! the driver thread, so the schedule — like everything else in the
//! engine's determinism contract — is bit-for-bit reproducible at any
//! thread count.

use rand::rngs::StdRng;
use rand::Rng;
use sg_math::rng::sample_indices;

use crate::config::Schedule;

/// One client update reaching the server this step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Delivering client id.
    pub client: usize,
    /// Server step whose start-of-step parameters the client trained
    /// against (staleness at step `t` is `t - model_step`).
    pub model_step: usize,
}

/// Decides, per server step, which client updates arrive and when the
/// server aggregates.
///
/// Implementations run on the driver thread only; they own whatever RNG
/// state the schedule needs, so worker-thread scheduling can never perturb
/// a delay draw.
pub trait ClientScheduler: Send {
    /// Client updates delivered at server step `step`, Byzantine clients
    /// first (ids below the Byzantine count), ascending id within each
    /// group — the message order the attack and selection accounting
    /// expect.
    fn arrivals(&mut self, step: usize) -> Vec<Arrival>;

    /// Whether the server aggregates this step given `buffered` pending
    /// updates (called after this step's arrivals were buffered).
    fn ready(&self, step: usize, buffered: usize) -> bool;

    /// Notifies the scheduler that the given clients' updates were
    /// aggregated at `step`; they refetch the model and restart.
    fn on_consumed(&mut self, step: usize, clients: &[usize]);

    /// Largest staleness an arrival can carry at compute time (the model
    /// history depth the pipeline must keep).
    fn max_staleness(&self) -> usize;

    /// Schedule name for reports.
    fn name(&self) -> &'static str;
}

/// Builds the scheduler for a config's [`Schedule`].
///
/// `rng` is the round-scheduling RNG from the simulator's seed stream —
/// for [`Schedule::Sync`] it drives participation sampling exactly as the
/// pre-pipeline round loop did; for the async schedules it drives the
/// delay draws.
pub fn build_scheduler(
    schedule: Schedule,
    num_clients: usize,
    byzantine_count: usize,
    participation: f32,
    rng: StdRng,
) -> Box<dyn ClientScheduler> {
    match schedule {
        Schedule::Sync => Box::new(SyncScheduler::new(num_clients, byzantine_count, participation, rng)),
        Schedule::Straggler { slow_fraction, max_delay } => {
            Box::new(StragglerScheduler::new(num_clients, byzantine_count, slow_fraction, max_delay, rng))
        }
        Schedule::AsyncBuffered { k, max_delay } => {
            Box::new(AsyncBufferedScheduler::new(num_clients, k, max_delay, rng))
        }
    }
}

// ---- Sync --------------------------------------------------------------

/// The paper's synchronous schedule: every sampled client delivers a fresh
/// (staleness-0) update each step.
pub struct SyncScheduler {
    num_clients: usize,
    byzantine_count: usize,
    participation: f32,
    rng: StdRng,
}

impl SyncScheduler {
    /// Creates the synchronous schedule; `participation < 1.0` samples
    /// that fraction of clients per step (at least one).
    pub fn new(num_clients: usize, byzantine_count: usize, participation: f32, rng: StdRng) -> Self {
        Self { num_clients, byzantine_count, participation, rng }
    }
}

impl ClientScheduler for SyncScheduler {
    fn arrivals(&mut self, step: usize) -> Vec<Arrival> {
        // Partial participation: sample this step's clients, keeping the
        // Byzantine ones (ids < byzantine_count) first so message index
        // < m means "malicious" for selection accounting. Full
        // participation draws nothing from the RNG.
        let ids: Vec<usize> = if self.participation >= 1.0 {
            (0..self.num_clients).collect()
        } else {
            let k =
                (((self.num_clients as f32) * self.participation).ceil() as usize).clamp(1, self.num_clients);
            let mut ids = sample_indices(&mut self.rng, self.num_clients, k);
            ids.sort_unstable_by_key(|&i| (i >= self.byzantine_count, i));
            ids
        };
        ids.into_iter().map(|client| Arrival { client, model_step: step }).collect()
    }

    fn ready(&self, _step: usize, buffered: usize) -> bool {
        buffered > 0
    }

    fn on_consumed(&mut self, _step: usize, _clients: &[usize]) {}

    fn max_staleness(&self) -> usize {
        0
    }

    fn name(&self) -> &'static str {
        "sync"
    }
}

// ---- Straggler ---------------------------------------------------------

/// Seeded straggler schedule: slow clients deliver on a fixed per-client
/// period, computing against the model they fetched at their last restart.
pub struct StragglerScheduler {
    byzantine_count: usize,
    max_delay: usize,
    /// Per-client delivery period in steps (1 = synchronous behavior).
    period: Vec<usize>,
    /// Step at which each client's in-flight update delivers.
    due: Vec<usize>,
    /// Model step each client's in-flight update trains against.
    model_step: Vec<usize>,
}

impl StragglerScheduler {
    /// Draws the slow set and per-client periods from `rng` (in client
    /// order, so the draw is independent of execution order).
    pub fn new(
        num_clients: usize,
        byzantine_count: usize,
        slow_fraction: f32,
        max_delay: usize,
        mut rng: StdRng,
    ) -> Self {
        let period: Vec<usize> = (0..num_clients)
            .map(|_| {
                let slow = rng.gen_bool(f64::from(slow_fraction.clamp(0.0, 1.0)));
                if slow && max_delay >= 1 {
                    rng.gen_range(2..=max_delay + 1)
                } else {
                    1
                }
            })
            .collect();
        // Everyone fetched the initial model (model step 0) and delivers
        // after one full period: period-1 clients at step 0, a period-p
        // straggler at step p − 1, already p − 1 steps stale.
        let due: Vec<usize> = period.iter().map(|&p| p - 1).collect();
        Self { byzantine_count, max_delay, period, due, model_step: vec![0; num_clients] }
    }

    /// Per-client delivery periods (tests and diagnostics).
    pub fn periods(&self) -> &[usize] {
        &self.period
    }
}

impl ClientScheduler for StragglerScheduler {
    fn arrivals(&mut self, step: usize) -> Vec<Arrival> {
        // Ascending client id is Byzantine-first: Byzantine clients hold
        // ids 0..byzantine_count by construction.
        (0..self.due.len())
            .filter(|&c| self.due[c] == step)
            .map(|client| Arrival { client, model_step: self.model_step[client] })
            .collect()
    }

    fn ready(&self, _step: usize, buffered: usize) -> bool {
        buffered > 0
    }

    fn on_consumed(&mut self, step: usize, clients: &[usize]) {
        for &c in clients {
            // Refetch at the end of `step` ⇒ train against the parameters
            // current at the start of step + 1; redeliver one period later.
            self.model_step[c] = step + 1;
            self.due[c] = step + self.period[c];
        }
    }

    fn max_staleness(&self) -> usize {
        self.max_delay
    }

    fn name(&self) -> &'static str {
        "straggler"
    }
}

impl std::fmt::Debug for StragglerScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let slow = self.period.iter().filter(|&&p| p > 1).count();
        f.debug_struct("StragglerScheduler")
            .field("clients", &self.period.len())
            .field("stragglers", &slow)
            .field("byzantine", &self.byzantine_count)
            .finish()
    }
}

// ---- AsyncBuffered -----------------------------------------------------

/// FedBuf-style buffered asynchrony: per-dispatch compute times, server
/// aggregates once `k` updates are pending.
pub struct AsyncBufferedScheduler {
    k: usize,
    max_delay: usize,
    rng: StdRng,
    /// Step at which each client's in-flight update delivers (`usize::MAX`
    /// while the client waits for its previous update to be consumed).
    due: Vec<usize>,
    model_step: Vec<usize>,
}

/// Sentinel for "delivered, waiting to be consumed".
const PARKED: usize = usize::MAX;

impl AsyncBufferedScheduler {
    /// Creates the buffered schedule; initial compute times are drawn in
    /// client order.
    pub fn new(num_clients: usize, k: usize, max_delay: usize, mut rng: StdRng) -> Self {
        let due: Vec<usize> = (0..num_clients).map(|_| rng.gen_range(1..=max_delay + 1) - 1).collect();
        Self { k, max_delay, rng, due, model_step: vec![0; num_clients] }
    }
}

impl ClientScheduler for AsyncBufferedScheduler {
    fn arrivals(&mut self, step: usize) -> Vec<Arrival> {
        let mut out = Vec::new();
        for c in 0..self.due.len() {
            if self.due[c] == step {
                out.push(Arrival { client: c, model_step: self.model_step[c] });
                // Parked until the buffered update is consumed.
                self.due[c] = PARKED;
            }
        }
        out
    }

    fn ready(&self, _step: usize, buffered: usize) -> bool {
        buffered >= self.k
    }

    fn on_consumed(&mut self, step: usize, clients: &[usize]) {
        for &c in clients {
            debug_assert_eq!(self.due[c], PARKED, "consumed a client that was not parked");
            self.model_step[c] = step + 1;
            self.due[c] = step + self.rng.gen_range(1..=self.max_delay + 1);
        }
    }

    fn max_staleness(&self) -> usize {
        self.max_delay
    }

    fn name(&self) -> &'static str {
        "async-buffered"
    }
}

impl std::fmt::Debug for AsyncBufferedScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncBufferedScheduler")
            .field("clients", &self.due.len())
            .field("k", &self.k)
            .field("max_delay", &self.max_delay)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_math::seeded_rng;

    fn drain_step(s: &mut dyn ClientScheduler, step: usize) -> Vec<Arrival> {
        let arrivals = s.arrivals(step);
        let ids: Vec<usize> = arrivals.iter().map(|a| a.client).collect();
        if s.ready(step, ids.len()) {
            s.on_consumed(step, &ids);
        }
        arrivals
    }

    #[test]
    fn sync_full_participation_delivers_everyone_fresh() {
        let mut s = SyncScheduler::new(6, 2, 1.0, seeded_rng(0));
        for step in 0..3 {
            let a = s.arrivals(step);
            assert_eq!(a.len(), 6);
            assert!(a.iter().all(|x| x.model_step == step), "staleness 0");
            assert_eq!(a[0].client, 0);
        }
        assert_eq!(s.max_staleness(), 0);
    }

    #[test]
    fn sync_partial_participation_sorts_byzantine_first() {
        let mut s = SyncScheduler::new(10, 3, 0.5, seeded_rng(7));
        for step in 0..20 {
            let a = s.arrivals(step);
            assert_eq!(a.len(), 5);
            let ids: Vec<usize> = a.iter().map(|x| x.client).collect();
            let byz_end = ids.iter().take_while(|&&i| i < 3).count();
            assert!(ids[byz_end..].iter().all(|&i| i >= 3), "byz-first order: {ids:?}");
        }
    }

    #[test]
    fn straggler_zero_fraction_degenerates_to_sync() {
        let mut s = StragglerScheduler::new(5, 1, 0.0, 4, seeded_rng(3));
        assert!(s.periods().iter().all(|&p| p == 1));
        for step in 0..4 {
            let a = drain_step(&mut s, step);
            assert_eq!(a.len(), 5);
            assert!(a.iter().all(|x| x.model_step == step));
        }
    }

    #[test]
    fn straggler_slow_clients_deliver_stale_on_their_period() {
        let mut s = StragglerScheduler::new(8, 2, 0.5, 4, seeded_rng(5));
        let periods = s.periods().to_vec();
        assert!(periods.iter().any(|&p| p > 1), "seeded draw includes stragglers: {periods:?}");
        assert!(periods.iter().all(|&p| p <= 5));
        let mut deliveries = [0usize; 8];
        for step in 0..40 {
            for a in drain_step(&mut s, step) {
                deliveries[a.client] += 1;
                let staleness = step - a.model_step;
                assert_eq!(staleness, periods[a.client] - 1, "client {} at step {step}", a.client);
                assert!(staleness <= s.max_staleness());
            }
        }
        for (c, &p) in periods.iter().enumerate() {
            // A period-p client delivers every p steps over 40 steps.
            assert_eq!(deliveries[c], 40 / p, "client {c} period {p}");
        }
    }

    #[test]
    fn async_buffered_waits_for_k_and_drains() {
        let mut s = AsyncBufferedScheduler::new(6, 4, 3, seeded_rng(9));
        let mut buffered: Vec<usize> = Vec::new();
        let mut applies = 0;
        for step in 0..60 {
            for a in s.arrivals(step) {
                let staleness = step - a.model_step;
                assert!(staleness <= s.max_staleness(), "arrival staleness bounded");
                buffered.push(a.client);
            }
            if s.ready(step, buffered.len()) {
                assert!(buffered.len() >= 4, "never aggregates below k");
                s.on_consumed(step, &buffered);
                buffered.clear();
                applies += 1;
            }
        }
        assert!(applies > 5, "buffered schedule keeps applying ({applies})");
    }

    #[test]
    fn async_client_never_has_two_updates_in_flight() {
        let mut s = AsyncBufferedScheduler::new(4, 3, 2, seeded_rng(11));
        let mut pending: Vec<usize> = Vec::new();
        for step in 0..40 {
            for a in s.arrivals(step) {
                assert!(!pending.contains(&a.client), "client {} delivered twice", a.client);
                pending.push(a.client);
            }
            if s.ready(step, pending.len()) {
                s.on_consumed(step, &pending);
                pending.clear();
            }
        }
    }

    #[test]
    fn schedulers_are_deterministic_for_a_seed() {
        let run = |seed: u64| -> Vec<Vec<Arrival>> {
            let mut s = StragglerScheduler::new(7, 2, 0.4, 3, seeded_rng(seed));
            (0..15).map(|t| drain_step(&mut s, t)).collect()
        };
        assert_eq!(run(13), run(13));
        assert_ne!(run(13), run(14), "different seeds draw different schedules");
    }

    #[test]
    fn build_scheduler_dispatches_by_schedule() {
        let mk = |sched| build_scheduler(sched, 10, 2, 1.0, seeded_rng(0));
        assert_eq!(mk(Schedule::Sync).name(), "sync");
        assert_eq!(mk(Schedule::Straggler { slow_fraction: 0.5, max_delay: 2 }).name(), "straggler");
        assert_eq!(mk(Schedule::AsyncBuffered { k: 3, max_delay: 2 }).name(), "async-buffered");
        assert_eq!(mk(Schedule::AsyncBuffered { k: 3, max_delay: 2 }).max_staleness(), 2);
    }
}
