//! The simulation driver tying clients, adversary and parameter server
//! together through the staged round pipeline.

use sg_aggregators::Aggregator;
use sg_attacks::Attack;
use sg_math::SeedStream;
use sg_nn::Sequential;
use sg_runtime::Engine;

use crate::client::Client;
use crate::config::FlConfig;
use crate::eval::evaluate_accuracy;
use crate::metrics::{RoundMetrics, RunResult, SelectionTracker};
use crate::partition_cache::PartitionCache;
use crate::rounds::{RoundPipeline, RoundState};
use crate::scheduler::build_scheduler;
use crate::tasks::Task;

/// The seeded actors of a federated run: the global model with its
/// flattened parameters, the client fleet, and the round RNG — everything
/// [`Simulator::with_resources`] derives from the experiment seed before
/// the first step.
///
/// Extracted so a networked deployment can build *exactly* the population
/// an in-process run would: the server calls [`build_participants`] (or
/// just [`global_init`]) and a load generator builds the same fleet from
/// the same seed, and the two runs stay bit-for-bit comparable.
pub struct Participants {
    /// The freshly initialized global model (also the evaluation replica).
    pub global_model: Sequential,
    /// Its flattened parameter vector (the live server state).
    pub global_params: Vec<f32>,
    /// All clients, Byzantine ids first (`0..byzantine_count`).
    pub clients: Vec<Client>,
    /// The round-level RNG the schedule draws from.
    pub round_rng: rand::rngs::StdRng,
}

/// Initializes only the global model from the experiment seed — the first
/// draw of the seed schedule, bit-identical to the model a full
/// [`build_participants`] would produce. A server that never trains
/// clients locally (they arrive over the wire) needs nothing more.
pub fn global_init(task: &Task, seed: u64) -> Sequential {
    let mut seeds = SeedStream::new(seed);
    let mut model_rng = seeds.next_rng();
    task.build_model(&mut model_rng)
}

/// Derives the full run population from the experiment seed, in the
/// canonical seed-schedule order (model → partition → per-client replica
/// and data RNGs → round RNG). This *is* the seeding used by
/// [`Simulator::with_resources`]; any driver that builds participants
/// through here reproduces the in-process run's clients exactly.
///
/// # Panics
///
/// Panics if the dataset is too small for the client count.
pub fn build_participants(
    task: &Task,
    cfg: &FlConfig,
    attack: Option<&dyn Attack>,
    partitions: &PartitionCache,
) -> Participants {
    let mut seeds = SeedStream::new(cfg.seed);

    // Global model.
    let mut model_rng = seeds.next_rng();
    let global_model = task.build_model(&mut model_rng);
    let global_params = global_model.param_vector();

    // Partition data (seeded exactly as an inline `seeds.next_rng()`
    // partitioning would be; the cache key carries this seed).
    let part_seed = seeds.next_seed();
    let parts = partitions.get(&task.train, cfg.partitioning, cfg.num_clients, part_seed);

    let byz_count = cfg.byzantine_count();
    let is_data_poison = attack.is_some_and(|a| a.is_data_poisoning());

    let clients: Vec<Client> = parts
        .iter()
        .enumerate()
        .map(|(id, indices)| {
            let mut replica_rng = seeds.next_rng();
            let replica = task.build_model(&mut replica_rng);
            let mut c =
                Client::new(id, replica, indices.clone(), cfg.momentum, cfg.weight_decay, seeds.next_rng());
            if is_data_poison && id < byz_count {
                c.set_flip_labels(true);
            }
            c
        })
        .collect();

    let round_rng = seeds.next_rng();
    Participants { global_model, global_params, clients, round_rng }
}

/// A federated training simulation (paper Algorithm 1, generalized over
/// the schedule axis).
///
/// Clients `0..m` are Byzantine (their messages are replaced by the
/// attack); clients `m..n` are benign. The aggregation rules never see
/// indices, so the arrangement is immaterial to the defense — it only
/// anchors the ground truth for selection accounting.
///
/// Each server step runs through a [`RoundPipeline`] (compute → attack →
/// aggregate → apply) driven by the config's
/// [`Schedule`](crate::Schedule): the paper's synchronous setting, the
/// straggler schedule, or FedBuf-style buffered asynchrony — all on a
/// seeded virtual clock (see [`crate::scheduler`]).
///
/// The simulation runs on an [`Engine`]: client training is distributed
/// over the engine's worker pool and the aggregation rule's
/// coordinate-sharded kernels run on its executor. [`Simulator::new`] uses
/// the sequential engine; [`Simulator::with_engine`] takes any thread
/// budget and — per the engine's determinism contract — produces
/// bit-identical metrics for the same seed at any parallelism, under every
/// schedule.
pub struct Simulator {
    task: Task,
    cfg: FlConfig,
    clients: Vec<Client>,
    global_params: Vec<f32>,
    eval_model: Sequential,
    byz_count: usize,
    engine: Engine,
    pipeline: RoundPipeline,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("task", &self.task.name)
            .field("gar", &self.pipeline.gar_name())
            .field("attack", &self.pipeline.attack_name())
            .field("schedule", &self.pipeline.schedule_name())
            .field("clients", &self.clients.len())
            .field("byzantine", &self.byz_count)
            .finish()
    }
}

impl Simulator {
    /// Builds a simulation on the sequential engine. Pass `attack = None`
    /// for the no-attack setting.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`FlConfig::validate`])
    /// or the dataset is too small for the client count.
    pub fn new(task: Task, cfg: FlConfig, gar: Box<dyn Aggregator>, attack: Option<Box<dyn Attack>>) -> Self {
        Self::with_engine(task, cfg, gar, attack, Engine::sequential())
    }

    /// Builds a simulation on the given execution engine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`FlConfig::validate`])
    /// or the dataset is too small for the client count.
    pub fn with_engine(
        task: Task,
        cfg: FlConfig,
        gar: Box<dyn Aggregator>,
        attack: Option<Box<dyn Attack>>,
        engine: Engine,
    ) -> Self {
        Self::with_resources(task, cfg, gar, attack, engine, &PartitionCache::new())
    }

    /// [`Simulator::with_engine`] drawing the client data partition from a
    /// shared [`PartitionCache`] — grid cells of one `(task, partitioning,
    /// n, seed)` then compute the shards once instead of once per cell.
    /// The cached build is bit-identical to the uncached one (the
    /// partition is a pure function of the cache key).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`FlConfig::validate`])
    /// or the dataset is too small for the client count.
    pub fn with_resources(
        task: Task,
        cfg: FlConfig,
        mut gar: Box<dyn Aggregator>,
        attack: Option<Box<dyn Attack>>,
        engine: Engine,
        partitions: &PartitionCache,
    ) -> Self {
        cfg.validate();
        gar.set_executor(engine.executor());

        let byz_count = cfg.byzantine_count();
        let Participants { global_model, global_params, clients, round_rng } =
            build_participants(&task, &cfg, attack.as_deref(), partitions);
        let scheduler =
            build_scheduler(cfg.schedule, cfg.num_clients, byz_count, cfg.participation, round_rng);
        let pipeline = RoundPipeline::new(gar, attack, scheduler, byz_count, clients.len(), &engine);
        Self { eval_model: global_model, task, cfg, clients, global_params, byz_count, engine, pipeline }
    }

    /// The task being trained.
    pub fn task(&self) -> &Task {
        &self.task
    }

    /// The engine this simulation runs on.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The round pipeline (schedule, buffer diagnostics).
    pub fn pipeline(&self) -> &RoundPipeline {
        &self.pipeline
    }

    /// Rounds per epoch for this task/config pair.
    pub fn rounds_per_epoch(&self) -> usize {
        self.cfg.rounds_per_epoch(self.task.train.len())
    }

    /// Runs the full training and returns the result.
    pub fn run(&mut self) -> RunResult {
        let rpe = self.rounds_per_epoch();
        let total = self.cfg.epochs * rpe;
        let mut rounds = Vec::with_capacity(total);
        let mut curve = Vec::with_capacity(self.cfg.epochs);
        let mut selection = SelectionTracker::new();
        let mut best = 0.0f32;
        let mut last = 0.0f32;

        for round in 0..total {
            let metrics = self.step(round, &mut selection);
            if (round + 1) % rpe == 0 {
                let acc = self.evaluate();
                best = best.max(acc);
                last = acc;
                curve.push((round, acc));
                rounds.push(RoundMetrics { test_accuracy: Some(acc), ..metrics });
            } else {
                rounds.push(metrics);
            }
        }
        RunResult { best_accuracy: best, final_accuracy: last, accuracy_curve: curve, rounds, selection }
    }

    /// Executes one server step through the pipeline, returning its
    /// metrics.
    pub fn step(&mut self, round: usize, selection: &mut SelectionTracker) -> RoundMetrics {
        self.pipeline.step(
            round,
            RoundState {
                clients: &mut self.clients,
                global_params: &mut self.global_params,
                train: &self.task.train,
                batch_size: self.cfg.batch_size,
                learning_rate: self.cfg.learning_rate,
                engine: &self.engine,
            },
            selection,
        )
    }

    /// Evaluates the global model on the held-out test set.
    pub fn evaluate(&mut self) -> f32 {
        self.eval_model.set_param_vector(&self.global_params);
        evaluate_accuracy(&mut self.eval_model, &self.task.test, 100)
    }

    /// Current flattened global parameters.
    pub fn global_params(&self) -> &[f32] {
        &self.global_params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Schedule;
    use crate::tasks;
    use sg_aggregators::Mean;
    use sg_attacks::SignFlip;
    use sg_core::SignGuard;

    fn quick_cfg() -> FlConfig {
        FlConfig { num_clients: 10, byzantine_fraction: 0.2, batch_size: 8, epochs: 3, ..FlConfig::default() }
    }

    #[test]
    fn mean_no_attack_learns() {
        let mut sim = Simulator::new(tasks::mlp_task(5), quick_cfg(), Box::new(Mean::new()), None);
        let r = sim.run();
        // 5 classes, chance = 0.2; after 3 epochs the MLP must beat chance.
        assert!(r.best_accuracy > 0.4, "best {:.3}", r.best_accuracy);
        assert_eq!(r.accuracy_curve.len(), 3);
        // Synchronous schedule: everyone arrives, every round applies.
        assert!(r.rounds.iter().all(|m| m.applied && m.arrivals == 10 && m.max_staleness == 0));
    }

    #[test]
    fn signflip_hurts_mean_less_signguard() {
        let mut sim_mean = Simulator::new(
            tasks::mlp_task(5),
            quick_cfg(),
            Box::new(Mean::new()),
            Some(Box::new(SignFlip::new())),
        );
        let r_mean = sim_mean.run();
        let mut sim_sg = Simulator::new(
            tasks::mlp_task(5),
            quick_cfg(),
            Box::new(SignGuard::plain(0)),
            Some(Box::new(SignFlip::new())),
        );
        let r_sg = sim_sg.run();
        assert!(
            r_sg.best_accuracy >= r_mean.best_accuracy,
            "SignGuard {:.3} should not lose to Mean {:.3} under sign-flip",
            r_sg.best_accuracy,
            r_mean.best_accuracy
        );
    }

    #[test]
    fn selection_tracker_filled_by_selecting_gar() {
        let mut sim = Simulator::new(
            tasks::mlp_task(6),
            FlConfig { epochs: 1, ..quick_cfg() },
            Box::new(SignGuard::plain(1)),
            Some(Box::new(SignFlip::new())),
        );
        let r = sim.run();
        assert!(r.selection.has_data());
        // Sign-flipped gradients should rarely be selected.
        assert!(r.selection.malicious_rate() < 0.5, "M rate {}", r.selection.malicious_rate());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sim = Simulator::new(
                tasks::mlp_task(7),
                FlConfig { epochs: 1, ..quick_cfg() },
                Box::new(Mean::new()),
                None,
            );
            sim.run().final_accuracy
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn partial_participation_runs_and_learns() {
        let cfg = FlConfig { participation: 0.4, epochs: 3, ..quick_cfg() };
        let mut sim = Simulator::new(tasks::mlp_task(9), cfg, Box::new(Mean::new()), None);
        let r = sim.run();
        assert!(r.best_accuracy > 0.3, "best {:.3}", r.best_accuracy);
        assert!(r.rounds.iter().all(|m| m.arrivals == 4), "40% of 10 clients per round");
    }

    #[test]
    fn partial_participation_selection_accounting_consistent() {
        let cfg = FlConfig { participation: 0.5, epochs: 2, ..quick_cfg() };
        let mut sim = Simulator::new(
            tasks::mlp_task(10),
            cfg,
            Box::new(SignGuard::plain(2)),
            Some(Box::new(SignFlip::new())),
        );
        let r = sim.run();
        assert!(r.selection.has_data());
        assert!(r.selection.honest_rate() <= 1.0 && r.selection.malicious_rate() <= 1.0);
    }

    #[test]
    fn zero_byzantine_fraction_runs_clean() {
        let cfg = FlConfig { byzantine_fraction: 0.0, epochs: 1, ..quick_cfg() };
        let mut sim =
            Simulator::new(tasks::mlp_task(8), cfg, Box::new(Mean::new()), Some(Box::new(SignFlip::new())));
        let r = sim.run();
        assert!(r.final_accuracy > 0.0);
    }

    #[test]
    fn straggler_schedule_runs_and_reports_staleness() {
        let cfg = FlConfig {
            schedule: Schedule::Straggler { slow_fraction: 0.5, max_delay: 3 },
            epochs: 2,
            ..quick_cfg()
        };
        let mut sim = Simulator::new(tasks::mlp_task(21), cfg, Box::new(Mean::new()), None);
        let r = sim.run();
        assert!(r.best_accuracy > 0.3, "stragglers still learn: {:.3}", r.best_accuracy);
        assert!(
            r.rounds.iter().any(|m| m.applied && m.max_staleness > 0),
            "some aggregated batch carries stale messages"
        );
        assert!(r.rounds.iter().all(|m| m.max_staleness <= 3), "staleness bounded by max_delay");
    }

    #[test]
    fn straggler_all_fast_matches_sync_exactly() {
        // slow_fraction = 0 draws no stragglers: every client redelivers
        // every step with staleness 0 — float-for-float the Sync run.
        let run = |schedule: Schedule| {
            let cfg = FlConfig { schedule, epochs: 2, ..quick_cfg() };
            let mut sim = Simulator::new(tasks::mlp_task(22), cfg, Box::new(Mean::new()), None);
            sim.run()
        };
        let sync = run(Schedule::Sync);
        let fast = run(Schedule::Straggler { slow_fraction: 0.0, max_delay: 2 });
        assert_eq!(sync.accuracy_curve, fast.accuracy_curve);
        assert_eq!(sync.final_accuracy.to_bits(), fast.final_accuracy.to_bits());
        for (a, b) in sync.rounds.iter().zip(&fast.rounds) {
            assert_eq!(a.mean_loss.to_bits(), b.mean_loss.to_bits(), "round {}", a.round);
        }
    }

    #[test]
    fn async_buffered_schedule_applies_on_threshold() {
        let cfg =
            FlConfig { schedule: Schedule::AsyncBuffered { k: 5, max_delay: 3 }, epochs: 2, ..quick_cfg() };
        let mut sim = Simulator::new(tasks::mlp_task(23), cfg, Box::new(Mean::new()), None);
        let r = sim.run();
        let applied = r.applied_rounds();
        assert!(applied > 0 && applied < r.rounds.len(), "buffered server skips some steps: {applied}");
        assert!(r.best_accuracy > 0.25, "async run still learns: {:.3}", r.best_accuracy);
        assert!(r.mean_batch_staleness() > 0.0, "buffered batches carry staleness");
        assert!(sim.pipeline().buffer_high_water() >= 5, "buffer reached the threshold");
    }

    #[test]
    fn async_buffered_defense_still_filters() {
        let cfg =
            FlConfig { schedule: Schedule::AsyncBuffered { k: 6, max_delay: 2 }, epochs: 2, ..quick_cfg() };
        let mut sim = Simulator::new(
            tasks::mlp_task(24),
            cfg,
            Box::new(SignGuard::plain(4)),
            Some(Box::new(SignFlip::new())),
        );
        let r = sim.run();
        assert!(r.selection.has_data());
        assert!(r.selection.malicious_rate() < 0.5, "M rate {}", r.selection.malicious_rate());
    }
}
