//! The round loop tying clients, adversary and parameter server together.

use sg_aggregators::Aggregator;
use sg_attacks::{Attack, AttackContext};
use sg_data::{partition_iid, partition_noniid};
use sg_math::SeedStream;
use sg_nn::Sequential;
use sg_runtime::{Engine, GradientArena};

use crate::client::Client;
use crate::config::{FlConfig, Partitioning};
use crate::eval::evaluate_accuracy;
use crate::metrics::{RoundMetrics, RunResult, SelectionTracker};
use crate::tasks::Task;

/// A federated training simulation (paper Algorithm 1).
///
/// Clients `0..m` are Byzantine (their messages are replaced by the
/// attack); clients `m..n` are benign. The aggregation rules never see
/// indices, so the arrangement is immaterial to the defense — it only
/// anchors the ground truth for selection accounting.
///
/// The simulation runs on an [`Engine`]: client training is distributed
/// over the engine's worker pool and the aggregation rule's
/// coordinate-sharded kernels run on its executor. [`Simulator::new`] uses
/// the sequential engine; [`Simulator::with_engine`] takes any thread
/// budget and — per the engine's determinism contract — produces
/// bit-identical metrics for the same seed at any parallelism.
pub struct Simulator {
    task: Task,
    cfg: FlConfig,
    gar: Box<dyn Aggregator>,
    attack: Option<Box<dyn Attack>>,
    clients: Vec<Client>,
    global_params: Vec<f32>,
    eval_model: Sequential,
    byz_count: usize,
    round_rng: rand::rngs::StdRng,
    engine: Engine,
    arena: GradientArena,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("task", &self.task.name)
            .field("gar", &self.gar.name())
            .field("attack", &self.attack.as_ref().map(|a| a.name()))
            .field("clients", &self.clients.len())
            .field("byzantine", &self.byz_count)
            .finish()
    }
}

impl Simulator {
    /// Builds a simulation on the sequential engine. Pass `attack = None`
    /// for the no-attack setting.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`FlConfig::validate`])
    /// or the dataset is too small for the client count.
    pub fn new(task: Task, cfg: FlConfig, gar: Box<dyn Aggregator>, attack: Option<Box<dyn Attack>>) -> Self {
        Self::with_engine(task, cfg, gar, attack, Engine::sequential())
    }

    /// Builds a simulation on the given execution engine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`FlConfig::validate`])
    /// or the dataset is too small for the client count.
    pub fn with_engine(
        task: Task,
        cfg: FlConfig,
        mut gar: Box<dyn Aggregator>,
        attack: Option<Box<dyn Attack>>,
        engine: Engine,
    ) -> Self {
        cfg.validate();
        gar.set_executor(engine.executor());
        let mut seeds = SeedStream::new(cfg.seed);

        // Global model.
        let mut model_rng = seeds.next_rng();
        let global_model = task.build_model(&mut model_rng);
        let global_params = global_model.param_vector();

        // Partition data.
        let mut part_rng = seeds.next_rng();
        let parts = match cfg.partitioning {
            Partitioning::Iid => partition_iid(task.train.len(), cfg.num_clients, &mut part_rng),
            Partitioning::NonIid { s } => partition_noniid(&task.train, cfg.num_clients, s, &mut part_rng),
        };

        let byz_count = cfg.byzantine_count();
        let is_data_poison = attack.as_ref().is_some_and(|a| a.is_data_poisoning());

        let clients: Vec<Client> = parts
            .into_iter()
            .enumerate()
            .map(|(id, indices)| {
                let mut replica_rng = seeds.next_rng();
                let replica = task.build_model(&mut replica_rng);
                let mut c =
                    Client::new(id, replica, indices, cfg.momentum, cfg.weight_decay, seeds.next_rng());
                if is_data_poison && id < byz_count {
                    c.set_flip_labels(true);
                }
                c
            })
            .collect();

        let round_rng = seeds.next_rng();
        let arena = GradientArena::new(clients.len());
        Self {
            eval_model: global_model,
            task,
            cfg,
            gar,
            attack,
            clients,
            global_params,
            byz_count,
            round_rng,
            engine,
            arena,
        }
    }

    /// The task being trained.
    pub fn task(&self) -> &Task {
        &self.task
    }

    /// The engine this simulation runs on.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Rounds per epoch for this task/config pair.
    pub fn rounds_per_epoch(&self) -> usize {
        self.cfg.rounds_per_epoch(self.task.train.len())
    }

    /// Runs the full training and returns the result.
    pub fn run(&mut self) -> RunResult {
        let rpe = self.rounds_per_epoch();
        let total = self.cfg.epochs * rpe;
        let mut rounds = Vec::with_capacity(total);
        let mut curve = Vec::with_capacity(self.cfg.epochs);
        let mut selection = SelectionTracker::new();
        let mut best = 0.0f32;
        let mut last = 0.0f32;

        for round in 0..total {
            let metrics = self.step(round, &mut selection);
            if (round + 1) % rpe == 0 {
                let acc = self.evaluate();
                best = best.max(acc);
                last = acc;
                curve.push((round, acc));
                rounds.push(RoundMetrics { test_accuracy: Some(acc), ..metrics });
            } else {
                rounds.push(metrics);
            }
        }
        RunResult { best_accuracy: best, final_accuracy: last, accuracy_curve: curve, rounds, selection }
    }

    /// Executes one communication round, returning its metrics.
    pub fn step(&mut self, round: usize, selection: &mut SelectionTracker) -> RoundMetrics {
        // Partial participation: sample this round's clients, keeping the
        // Byzantine ones (ids < byz_count) first so message index < m means
        // "malicious" for selection accounting.
        let participants: Vec<usize> = if self.cfg.participation >= 1.0 {
            (0..self.clients.len()).collect()
        } else {
            let k = (((self.clients.len() as f32) * self.cfg.participation).ceil() as usize)
                .clamp(1, self.clients.len());
            let mut ids = sg_math::rng::sample_indices(&mut self.round_rng, self.clients.len(), k);
            ids.sort_unstable_by_key(|&i| (i >= self.byz_count, i));
            ids
        };
        let n = participants.len();
        let m = participants.iter().filter(|&&i| i < self.byz_count).count();

        // Every participating client computes an honest local gradient —
        // concurrently across the engine's worker pool, each into its own
        // arena buffer. Clients own their RNG streams, so scheduling can
        // never perturb the result; with a sequential engine this is an
        // inline loop in participant order.
        let mut slots: Vec<Option<&mut Client>> = self.clients.iter_mut().map(Some).collect();
        let jobs: Vec<(&mut Client, Vec<f32>)> = participants
            .iter()
            .map(|&id| (slots[id].take().expect("duplicate participant"), self.arena.take(id)))
            .collect();
        let global_params = &self.global_params;
        let train = &self.task.train;
        let batch_size = self.cfg.batch_size;
        let results: Vec<(Vec<f32>, f32)> = self.engine.pool().map(jobs, |_, (client, mut buf)| {
            client.local_gradient_into(global_params, train, batch_size, &mut buf);
            let loss = client.last_loss();
            (buf, loss)
        });

        // Honest-loss accounting in participant order (the same
        // floating-point order as a sequential loop would produce).
        let mut grads: Vec<Vec<f32>> = Vec::with_capacity(n);
        let mut loss_sum = 0.0f32;
        for ((g, loss), &id) in results.into_iter().zip(&participants) {
            if id >= self.byz_count {
                loss_sum += loss;
            }
            grads.push(g);
        }
        let mean_loss = if n > m { loss_sum / (n - m) as f32 } else { 0.0 };

        // The adversary replaces the Byzantine messages in place — same
        // values the old malicious-then-benign concatenation produced,
        // without cloning any benign gradient.
        if m > 0 {
            if let Some(attack) = self.attack.as_mut() {
                let (byz_honest, benign) = grads.split_at(m);
                let ctx = AttackContext { benign, byzantine_honest: byz_honest, round };
                let malicious = attack.craft(&ctx);
                assert_eq!(malicious.len(), m, "attack returned wrong gradient count");
                for (slot, mal) in grads.iter_mut().zip(malicious) {
                    *slot = mal;
                }
            }
        }

        // Robust aggregation and the global SGD step. Validation-based
        // rules need the current model to score gradients.
        self.gar.observe_global(&self.global_params);
        let out = self.gar.aggregate(&grads);
        if let Some(sel) = &out.selected {
            selection.record(sel, m, n);
        }
        for (p, g) in self.global_params.iter_mut().zip(&out.gradient) {
            *p -= self.cfg.learning_rate * g;
        }

        // Park the round's buffers (including attack-crafted replacements)
        // for reuse next round.
        for (g, &id) in grads.into_iter().zip(&participants) {
            self.arena.put(id, g);
        }

        RoundMetrics { round, mean_loss, test_accuracy: None }
    }

    /// Evaluates the global model on the held-out test set.
    pub fn evaluate(&mut self) -> f32 {
        self.eval_model.set_param_vector(&self.global_params);
        evaluate_accuracy(&mut self.eval_model, &self.task.test, 100)
    }

    /// Current flattened global parameters.
    pub fn global_params(&self) -> &[f32] {
        &self.global_params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks;
    use sg_aggregators::Mean;
    use sg_attacks::SignFlip;
    use sg_core::SignGuard;

    fn quick_cfg() -> FlConfig {
        FlConfig { num_clients: 10, byzantine_fraction: 0.2, batch_size: 8, epochs: 3, ..FlConfig::default() }
    }

    #[test]
    fn mean_no_attack_learns() {
        let mut sim = Simulator::new(tasks::mlp_task(5), quick_cfg(), Box::new(Mean::new()), None);
        let r = sim.run();
        // 5 classes, chance = 0.2; after 3 epochs the MLP must beat chance.
        assert!(r.best_accuracy > 0.4, "best {:.3}", r.best_accuracy);
        assert_eq!(r.accuracy_curve.len(), 3);
    }

    #[test]
    fn signflip_hurts_mean_less_signguard() {
        let mut sim_mean = Simulator::new(
            tasks::mlp_task(5),
            quick_cfg(),
            Box::new(Mean::new()),
            Some(Box::new(SignFlip::new())),
        );
        let r_mean = sim_mean.run();
        let mut sim_sg = Simulator::new(
            tasks::mlp_task(5),
            quick_cfg(),
            Box::new(SignGuard::plain(0)),
            Some(Box::new(SignFlip::new())),
        );
        let r_sg = sim_sg.run();
        assert!(
            r_sg.best_accuracy >= r_mean.best_accuracy,
            "SignGuard {:.3} should not lose to Mean {:.3} under sign-flip",
            r_sg.best_accuracy,
            r_mean.best_accuracy
        );
    }

    #[test]
    fn selection_tracker_filled_by_selecting_gar() {
        let mut sim = Simulator::new(
            tasks::mlp_task(6),
            FlConfig { epochs: 1, ..quick_cfg() },
            Box::new(SignGuard::plain(1)),
            Some(Box::new(SignFlip::new())),
        );
        let r = sim.run();
        assert!(r.selection.has_data());
        // Sign-flipped gradients should rarely be selected.
        assert!(r.selection.malicious_rate() < 0.5, "M rate {}", r.selection.malicious_rate());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sim = Simulator::new(
                tasks::mlp_task(7),
                FlConfig { epochs: 1, ..quick_cfg() },
                Box::new(Mean::new()),
                None,
            );
            sim.run().final_accuracy
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn partial_participation_runs_and_learns() {
        let cfg = FlConfig { participation: 0.4, epochs: 3, ..quick_cfg() };
        let mut sim = Simulator::new(tasks::mlp_task(9), cfg, Box::new(Mean::new()), None);
        let r = sim.run();
        assert!(r.best_accuracy > 0.3, "best {:.3}", r.best_accuracy);
    }

    #[test]
    fn partial_participation_selection_accounting_consistent() {
        let cfg = FlConfig { participation: 0.5, epochs: 2, ..quick_cfg() };
        let mut sim = Simulator::new(
            tasks::mlp_task(10),
            cfg,
            Box::new(SignGuard::plain(2)),
            Some(Box::new(SignFlip::new())),
        );
        let r = sim.run();
        assert!(r.selection.has_data());
        assert!(r.selection.honest_rate() <= 1.0 && r.selection.malicious_rate() <= 1.0);
    }

    #[test]
    fn zero_byzantine_fraction_runs_clean() {
        let cfg = FlConfig { byzantine_fraction: 0.0, epochs: 1, ..quick_cfg() };
        let mut sim =
            Simulator::new(tasks::mlp_task(8), cfg, Box::new(Mean::new()), Some(Box::new(SignFlip::new())));
        let r = sim.run();
        assert!(r.final_accuracy > 0.0);
    }
}
