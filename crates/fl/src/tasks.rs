//! The paper's four evaluation tasks instantiated on synthetic data.

use std::sync::Arc;

use rand::rngs::StdRng;
use sg_data::{Dataset, SyntheticImageSpec, SyntheticTextSpec};
use sg_nn::{models, Sequential};
use sg_runtime::ResourceCache;

/// A federated learning task: train/test data plus a model architecture.
///
/// The datasets sit behind `Arc`, so cloning a `Task` is cheap and shares
/// the generated data — this is what lets scenario-grid cells of the same
/// task reuse one dataset (see [`TaskCache`]) instead of regenerating it
/// per cell.
#[derive(Clone)]
pub struct Task {
    /// Task name as used in the paper's tables.
    pub name: &'static str,
    /// Training split (distributed across clients).
    pub train: Arc<Dataset>,
    /// Held-out test split (evaluated at the server).
    pub test: Arc<Dataset>,
    model_builder: fn(&mut StdRng) -> Sequential,
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task")
            .field("name", &self.name)
            .field("train", &self.train.len())
            .field("test", &self.test.len())
            .finish()
    }
}

impl Task {
    /// Builds a fresh model replica for this task.
    pub fn build_model(&self, rng: &mut StdRng) -> Sequential {
        (self.model_builder)(rng)
    }
}

/// MNIST stand-in: 1×8×8 synthetic digits + the paper's CNN (3 conv, 2 fc).
pub fn mnist_like(seed: u64) -> Task {
    let spec = SyntheticImageSpec {
        channels: 1,
        size: 8,
        classes: 10,
        train_samples: 2000,
        test_samples: 500,
        noise_std: 0.8,
        prototype_scale: 1.0,
    };
    let (train, test) = spec.generate(seed);
    Task {
        name: "MNIST-like (CNN)",
        train: Arc::new(train),
        test: Arc::new(test),
        model_builder: |rng| models::image_cnn(rng, 1, 8, 10),
    }
}

/// Fashion-MNIST stand-in: same geometry, noisier distribution.
pub fn fashion_like(seed: u64) -> Task {
    let spec = SyntheticImageSpec {
        channels: 1,
        size: 8,
        classes: 10,
        train_samples: 2000,
        test_samples: 500,
        noise_std: 1.1,
        prototype_scale: 1.0,
    };
    let (train, test) = spec.generate(seed ^ 0xfa51);
    Task {
        name: "Fashion-like (CNN)",
        train: Arc::new(train),
        test: Arc::new(test),
        model_builder: |rng| models::image_cnn(rng, 1, 8, 10),
    }
}

/// CIFAR-10 stand-in: 3×8×8 synthetic RGB + the residual network.
pub fn cifar_like(seed: u64) -> Task {
    let spec = SyntheticImageSpec {
        channels: 3,
        size: 8,
        classes: 10,
        train_samples: 2000,
        test_samples: 500,
        noise_std: 1.2,
        prototype_scale: 1.0,
    };
    let (train, test) = spec.generate(seed ^ 0xc1fa);
    Task {
        name: "CIFAR-like (ResNet)",
        train: Arc::new(train),
        test: Arc::new(test),
        model_builder: |rng| models::resnet_lite(rng, 3, 8, 10),
    }
}

/// AG-News stand-in: synthetic 4-topic token sequences + TextRNN (LSTM).
pub fn agnews_like(seed: u64) -> Task {
    let spec = SyntheticTextSpec {
        vocab: 200,
        seq_len: 12,
        classes: 4,
        topic_tokens_per_class: 12,
        topic_prob: 0.35,
        train_samples: 2000,
        test_samples: 500,
    };
    let (train, test) = spec.generate(seed ^ 0xa6);
    Task {
        name: "AGNews-like (TextRNN)",
        train: Arc::new(train),
        test: Arc::new(test),
        model_builder: |rng| models::text_rnn(rng, 200, 8, 16, 4),
    }
}

/// Cheap MLP task for unit tests and quickstart examples.
pub fn mlp_task(seed: u64) -> Task {
    let spec = SyntheticImageSpec {
        channels: 1,
        size: 8,
        classes: 5,
        train_samples: 1000,
        test_samples: 300,
        noise_std: 0.5,
        prototype_scale: 1.0,
    };
    let (train, test) = spec.generate(seed ^ 0x317);
    Task {
        name: "MLP (synthetic)",
        train: Arc::new(train),
        test: Arc::new(test),
        model_builder: |rng| models::mlp(rng, 64, &[32], 5),
    }
}

/// All four paper tasks in Table I order.
pub fn paper_tasks(seed: u64) -> Vec<Task> {
    vec![mnist_like(seed), fashion_like(seed), cifar_like(seed), agnews_like(seed)]
}

/// Short names accepted by [`by_name`], in Table I order (+ the test MLP).
pub const TASK_NAMES: &[&str] = &["mnist", "fashion", "cifar", "agnews", "mlp"];

/// Builds a task by its short name (see [`TASK_NAMES`]).
///
/// # Panics
///
/// Panics on an unknown name.
pub fn by_name(name: &str, seed: u64) -> Task {
    match name {
        "mnist" => mnist_like(seed),
        "fashion" => fashion_like(seed),
        "cifar" => cifar_like(seed),
        "agnews" => agnews_like(seed),
        "mlp" => mlp_task(seed),
        other => panic!("unknown task {other:?} (mnist|fashion|cifar|agnews|mlp)"),
    }
}

/// Memoized task construction for scenario grids, keyed by
/// `(task name, data seed)`.
///
/// The first request for a key generates the task's datasets; every later
/// request — concurrent grid cells included — receives a cheap [`Task`]
/// clone sharing the same `Arc`'d data. Because generation is a pure
/// function of the key, a cache hit is bit-identical to an uncached build
/// (asserted by `tests/resource_cache.rs`).
#[derive(Clone, Debug, Default)]
pub struct TaskCache {
    cache: ResourceCache<(String, u64), Task>,
}

impl TaskCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the (possibly cached) task for `(name, seed)`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown task name.
    pub fn get(&self, name: &str, seed: u64) -> Task {
        (*self.cache.get_or_create((name.to_string(), seed), || by_name(name, seed))).clone()
    }

    /// Distinct `(name, seed)` keys generated so far.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether no task has been requested yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Requests served from cache.
    pub fn hits(&self) -> usize {
        self.cache.hits()
    }

    /// Requests that generated a task (one per distinct key).
    pub fn misses(&self) -> usize {
        self.cache.misses()
    }

    /// Publishes the tallies as `cache.<name>.*` counters in the `sg-obs`
    /// registry (see [`ResourceCache::publish`]).
    pub fn publish(&self, name: &str) {
        self.cache.publish(name);
    }

    /// `(name, seed, train fingerprint, test fingerprint)` for every
    /// generated task, sorted by key — a stable identity block for
    /// reproducible sweep reports.
    pub fn snapshot(&self) -> Vec<(String, u64, u64, u64)> {
        let mut rows: Vec<(String, u64, u64, u64)> = self
            .cache
            .entries()
            .into_iter()
            .map(|((name, seed), task)| (name, seed, task.train.fingerprint(), task.test.fingerprint()))
            .collect();
        rows.sort();
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_math::seeded_rng;

    #[test]
    fn tasks_build_and_models_match_data() {
        for task in paper_tasks(1) {
            let mut rng = seeded_rng(0);
            let mut model = task.build_model(&mut rng);
            let batch = task.train.batch(&[0, 1], None);
            let x = sg_tensor::Tensor::from_vec(batch.features.clone(), &batch.shape());
            let logits = model.forward(&x, false);
            assert_eq!(logits.shape()[0], 2, "{}", task.name);
            assert_eq!(logits.shape()[1], task.train.num_classes(), "{}", task.name);
        }
    }

    #[test]
    fn task_datasets_are_seeded() {
        let a = mnist_like(3);
        let b = mnist_like(3);
        assert_eq!(a.train.samples()[0], b.train.samples()[0]);
    }

    #[test]
    fn by_name_covers_every_task() {
        for name in TASK_NAMES {
            let t = by_name(name, 3);
            assert!(!t.train.is_empty(), "{name}");
        }
    }

    #[test]
    fn task_clone_shares_datasets() {
        let a = mlp_task(2);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.train, &b.train) && Arc::ptr_eq(&a.test, &b.test));
    }

    #[test]
    fn task_cache_hits_share_and_miss_once() {
        let cache = TaskCache::new();
        let a = cache.get("mlp", 7);
        let b = cache.get("mlp", 7);
        let c = cache.get("mlp", 8);
        assert!(Arc::ptr_eq(&a.train, &b.train), "same key shares the dataset");
        assert!(!Arc::ptr_eq(&a.train, &c.train), "different seed is a different dataset");
        assert_eq!((cache.len(), cache.misses(), cache.hits()), (2, 2, 1));
        let snap = cache.snapshot();
        assert_eq!(snap.len(), 2);
        assert_ne!(snap[0].2, snap[1].2, "fingerprints separate data seeds");
    }

    #[test]
    fn mlp_task_is_small() {
        let t = mlp_task(0);
        let mut rng = seeded_rng(0);
        let m = t.build_model(&mut rng);
        assert!(m.num_params() < 5000);
    }
}
