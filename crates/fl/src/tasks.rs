//! The paper's four evaluation tasks instantiated on synthetic data.

use rand::rngs::StdRng;
use sg_data::{Dataset, SyntheticImageSpec, SyntheticTextSpec};
use sg_nn::{models, Sequential};

/// A federated learning task: train/test data plus a model architecture.
pub struct Task {
    /// Task name as used in the paper's tables.
    pub name: &'static str,
    /// Training split (distributed across clients).
    pub train: Dataset,
    /// Held-out test split (evaluated at the server).
    pub test: Dataset,
    model_builder: fn(&mut StdRng) -> Sequential,
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task")
            .field("name", &self.name)
            .field("train", &self.train.len())
            .field("test", &self.test.len())
            .finish()
    }
}

impl Task {
    /// Builds a fresh model replica for this task.
    pub fn build_model(&self, rng: &mut StdRng) -> Sequential {
        (self.model_builder)(rng)
    }
}

/// MNIST stand-in: 1×8×8 synthetic digits + the paper's CNN (3 conv, 2 fc).
pub fn mnist_like(seed: u64) -> Task {
    let spec = SyntheticImageSpec {
        channels: 1,
        size: 8,
        classes: 10,
        train_samples: 2000,
        test_samples: 500,
        noise_std: 0.8,
        prototype_scale: 1.0,
    };
    let (train, test) = spec.generate(seed);
    Task { name: "MNIST-like (CNN)", train, test, model_builder: |rng| models::image_cnn(rng, 1, 8, 10) }
}

/// Fashion-MNIST stand-in: same geometry, noisier distribution.
pub fn fashion_like(seed: u64) -> Task {
    let spec = SyntheticImageSpec {
        channels: 1,
        size: 8,
        classes: 10,
        train_samples: 2000,
        test_samples: 500,
        noise_std: 1.1,
        prototype_scale: 1.0,
    };
    let (train, test) = spec.generate(seed ^ 0xfa51);
    Task { name: "Fashion-like (CNN)", train, test, model_builder: |rng| models::image_cnn(rng, 1, 8, 10) }
}

/// CIFAR-10 stand-in: 3×8×8 synthetic RGB + the residual network.
pub fn cifar_like(seed: u64) -> Task {
    let spec = SyntheticImageSpec {
        channels: 3,
        size: 8,
        classes: 10,
        train_samples: 2000,
        test_samples: 500,
        noise_std: 1.2,
        prototype_scale: 1.0,
    };
    let (train, test) = spec.generate(seed ^ 0xc1fa);
    Task { name: "CIFAR-like (ResNet)", train, test, model_builder: |rng| models::resnet_lite(rng, 3, 8, 10) }
}

/// AG-News stand-in: synthetic 4-topic token sequences + TextRNN (LSTM).
pub fn agnews_like(seed: u64) -> Task {
    let spec = SyntheticTextSpec {
        vocab: 200,
        seq_len: 12,
        classes: 4,
        topic_tokens_per_class: 12,
        topic_prob: 0.35,
        train_samples: 2000,
        test_samples: 500,
    };
    let (train, test) = spec.generate(seed ^ 0xa6);
    Task {
        name: "AGNews-like (TextRNN)",
        train,
        test,
        model_builder: |rng| models::text_rnn(rng, 200, 8, 16, 4),
    }
}

/// Cheap MLP task for unit tests and quickstart examples.
pub fn mlp_task(seed: u64) -> Task {
    let spec = SyntheticImageSpec {
        channels: 1,
        size: 8,
        classes: 5,
        train_samples: 1000,
        test_samples: 300,
        noise_std: 0.5,
        prototype_scale: 1.0,
    };
    let (train, test) = spec.generate(seed ^ 0x317);
    Task { name: "MLP (synthetic)", train, test, model_builder: |rng| models::mlp(rng, 64, &[32], 5) }
}

/// All four paper tasks in Table I order.
pub fn paper_tasks(seed: u64) -> Vec<Task> {
    vec![mnist_like(seed), fashion_like(seed), cifar_like(seed), agnews_like(seed)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_math::seeded_rng;

    #[test]
    fn tasks_build_and_models_match_data() {
        for task in paper_tasks(1) {
            let mut rng = seeded_rng(0);
            let mut model = task.build_model(&mut rng);
            let batch = task.train.batch(&[0, 1], None);
            let x = sg_tensor::Tensor::from_vec(batch.features.clone(), &batch.shape());
            let logits = model.forward(&x, false);
            assert_eq!(logits.shape()[0], 2, "{}", task.name);
            assert_eq!(logits.shape()[1], task.train.num_classes(), "{}", task.name);
        }
    }

    #[test]
    fn task_datasets_are_seeded() {
        let a = mnist_like(3);
        let b = mnist_like(3);
        assert_eq!(a.train.samples()[0], b.train.samples()[0]);
    }

    #[test]
    fn mlp_task_is_small() {
        let t = mlp_task(0);
        let mut rng = seeded_rng(0);
        let m = t.build_model(&mut rng);
        assert!(m.num_params() < 5000);
    }
}
