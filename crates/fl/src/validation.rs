//! Validation-based defenses: FLTrust and Zeno.
//!
//! The SignGuard paper contrasts two defense families (Section II-B):
//! statistic-based rules (everything in `sg-aggregators` + SignGuard) and
//! *validation-based* rules that assume the server holds a small auxiliary
//! ("root") dataset capturing the global distribution. The paper argues
//! such data "may not always be available in practice" — these two
//! implementations make the comparison concrete.
//!
//! * **FLTrust** (Cao et al., NDSS'21 — the paper's \[27\]): the server
//!   computes its own gradient on the root data, weights each client
//!   gradient by the ReLU-clipped cosine similarity to it, rescales every
//!   accepted gradient to the server gradient's norm, and averages.
//! * **Zeno** (Xie et al., ICML'19 — the paper's \[17\]): scores each
//!   gradient by the estimated loss decrease on the root data minus a
//!   magnitude penalty, `loss(x) − loss(x − γg) − ρ‖g‖²`, and averages the
//!   `n − b` best-scoring gradients.
//!
//! Both live in `sg-fl` rather than `sg-aggregators` because they are not
//! pure functions of the gradients: they need a model and data at the
//! server. [`ValidatingServer`] adapts them to the [`Aggregator`] trait so
//! the simulator and harness treat them uniformly.

use rand::rngs::StdRng;
use rand::Rng;
use sg_aggregators::{validate_gradients, AggregationOutput, Aggregator};
use sg_data::Dataset;
use sg_math::vecops;
use sg_nn::{loss::softmax_cross_entropy, Sequential};
use sg_tensor::Tensor;

/// Which validation rule a [`ValidatingServer`] runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValidationRule {
    /// FLTrust: ReLU-cosine trust scores against the server gradient.
    FlTrust,
    /// Zeno: stochastic descendant score; `b` is the number of gradients
    /// dropped (set to the assumed Byzantine count), `rho` the magnitude
    /// penalty weight, `gamma` the probe learning rate.
    Zeno {
        /// Gradients dropped (lowest scores).
        b: usize,
        /// Magnitude-penalty coefficient ρ.
        rho: f32,
        /// Probe step size γ.
        gamma: f32,
    },
}

/// A server-side validating aggregator holding a root dataset and a model
/// replica (see module docs).
pub struct ValidatingServer {
    rule: ValidationRule,
    model: Sequential,
    root: Dataset,
    batch: usize,
    rng: StdRng,
    params: Vec<f32>,
}

impl std::fmt::Debug for ValidatingServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ValidatingServer")
            .field("rule", &self.rule)
            .field("root_samples", &self.root.len())
            .finish()
    }
}

impl ValidatingServer {
    /// Creates a validating server.
    ///
    /// `model` must match the federated global model architecture; `root`
    /// is the server's auxiliary dataset (the paper-cited works use ~100
    /// samples).
    ///
    /// # Panics
    ///
    /// Panics if `root` is empty or `batch == 0`.
    pub fn new(rule: ValidationRule, model: Sequential, root: Dataset, batch: usize, seed: u64) -> Self {
        assert!(!root.is_empty(), "ValidatingServer: empty root dataset");
        assert!(batch > 0, "ValidatingServer: zero batch");
        let params = model.param_vector();
        Self { rule, model, root, batch, rng: sg_math::seeded_rng(seed), params }
    }

    /// Synchronizes the server replica with the global model; the
    /// simulator calls this before each aggregation.
    pub fn sync_params(&mut self, global: &[f32]) {
        assert_eq!(global.len(), self.params.len(), "ValidatingServer: parameter length mismatch");
        self.params.copy_from_slice(global);
    }

    fn sample_batch(&mut self) -> (Tensor, Vec<usize>) {
        let bs = self.batch.min(self.root.len());
        let idx: Vec<usize> = (0..bs).map(|_| self.rng.gen_range(0..self.root.len())).collect();
        let batch = self.root.batch(&idx, None);
        (Tensor::from_vec(batch.features.clone(), &batch.shape()), batch.labels)
    }

    /// Server gradient on a root mini-batch at the current parameters.
    fn server_gradient(&mut self) -> Vec<f32> {
        let (x, labels) = self.sample_batch();
        self.model.set_param_vector(&self.params);
        let logits = self.model.forward(&x, true);
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        self.model.zero_grad();
        self.model.backward(&grad);
        self.model.grad_vector()
    }

    /// Root-batch loss at given parameters.
    fn loss_at(&mut self, params: &[f32], x: &Tensor, labels: &[usize]) -> f32 {
        self.model.set_param_vector(params);
        let logits = self.model.forward(x, false);
        let (loss, _) = softmax_cross_entropy(&logits, labels);
        loss
    }

    fn aggregate_fltrust(&mut self, gradients: &[Vec<f32>]) -> AggregationOutput {
        let dim = gradients[0].len();
        let g0 = self.server_gradient();
        let g0_norm = sg_math::l2_norm(&g0).max(1e-12);

        let mut out = vec![0.0f32; dim];
        let mut total_trust = 0.0f32;
        let mut selected = Vec::new();
        for (i, g) in gradients.iter().enumerate() {
            let trust = vecops::cosine_similarity(g, &g0).max(0.0); // ReLU clip
            if trust > 0.0 {
                let gn = sg_math::l2_norm(g).max(1e-12);
                // Normalize each accepted gradient to the server norm.
                vecops::axpy(trust * g0_norm / gn, g, &mut out);
                total_trust += trust;
                selected.push(i);
            }
        }
        if total_trust > 0.0 {
            vecops::scale_in_place(&mut out, 1.0 / total_trust);
        } else {
            // No client trusted: fall back to the server's own gradient.
            out = g0;
        }
        AggregationOutput::selected(out, selected)
    }

    fn aggregate_zeno(
        &mut self,
        gradients: &[Vec<f32>],
        b: usize,
        rho: f32,
        gamma: f32,
    ) -> AggregationOutput {
        let n = gradients.len();
        let (x, labels) = self.sample_batch();
        let base_loss = self.loss_at(&self.params.clone(), &x, &labels);
        let scores: Vec<f32> = gradients
            .iter()
            .map(|g| {
                let probe: Vec<f32> = self.params.iter().zip(g).map(|(&p, &gi)| p - gamma * gi).collect();
                let probe_loss = self.loss_at(&probe, &x, &labels);
                base_loss - probe_loss - rho * vecops::l2_norm_sq(g)
            })
            .collect();
        let keep = n.saturating_sub(b).max(1);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| scores[j].total_cmp(&scores[i]));
        let mut selected: Vec<usize> = order[..keep].to_vec();
        selected.sort_unstable();
        let gradient = sg_aggregators::mean_of(gradients, &selected);
        AggregationOutput::selected(gradient, selected)
    }
}

impl Aggregator for ValidatingServer {
    fn aggregate(&mut self, gradients: &[Vec<f32>]) -> AggregationOutput {
        validate_gradients(gradients);
        match self.rule {
            ValidationRule::FlTrust => self.aggregate_fltrust(gradients),
            ValidationRule::Zeno { b, rho, gamma } => self.aggregate_zeno(gradients, b, rho, gamma),
        }
    }

    fn name(&self) -> &'static str {
        match self.rule {
            ValidationRule::FlTrust => "FLTrust",
            ValidationRule::Zeno { .. } => "Zeno",
        }
    }

    fn observe_global(&mut self, params: &[f32]) {
        self.sync_params(params);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks;
    use sg_math::seeded_rng;

    fn make_server(rule: ValidationRule) -> (ValidatingServer, Vec<f32>, Vec<Vec<f32>>) {
        let task = tasks::mlp_task(3);
        let mut rng = seeded_rng(0);
        let model = task.build_model(&mut rng);
        let params = model.param_vector();
        // Root data: first 50 test samples re-wrapped as a dataset.
        let root = sg_data::Dataset::new(
            task.test.samples()[..50].to_vec(),
            task.test.item_shape().to_vec(),
            task.test.num_classes(),
        );
        let server = ValidatingServer::new(rule, model, root, 32, 7);

        // Honest gradients: actual model gradients on train batches.
        let mut honest = Vec::new();
        let mut m2 = task.build_model(&mut seeded_rng(0));
        for c in 0..6 {
            let idx: Vec<usize> = (0..16).map(|k| (c * 16 + k) % task.train.len()).collect();
            let b = task.train.batch(&idx, None);
            let x = Tensor::from_vec(b.features.clone(), &b.shape());
            m2.set_param_vector(&params);
            let logits = m2.forward(&x, true);
            let (_, g) = sg_nn::loss::softmax_cross_entropy(&logits, &b.labels);
            m2.zero_grad();
            m2.backward(&g);
            honest.push(m2.grad_vector());
        }
        (server, params, honest)
    }

    #[test]
    fn fltrust_rejects_reversed_gradients() {
        let (mut server, params, honest) = make_server(ValidationRule::FlTrust);
        server.sync_params(&params);
        let mut grads = honest.clone();
        grads.push(honest[0].iter().map(|x| -x * 5.0).collect());
        let out = server.aggregate(&grads);
        let sel = out.selected.expect("fltrust selects");
        assert!(!sel.contains(&6), "reversed gradient trusted: {sel:?}");
        // Aggregate points the honest way.
        let mean = vecops::mean_vector(&honest, honest[0].len());
        assert!(vecops::cosine_similarity(&out.gradient, &mean) > 0.5);
    }

    #[test]
    fn fltrust_norm_bounded_by_server_gradient() {
        let (mut server, params, honest) = make_server(ValidationRule::FlTrust);
        server.sync_params(&params);
        // A huge-norm but well-aligned gradient must be rescaled, not dominant.
        let mut grads = honest.clone();
        grads.push(honest[0].iter().map(|x| x * 1000.0).collect());
        let out = server.aggregate(&grads);
        let server_norm = {
            server.sync_params(&params);
            sg_math::l2_norm(&server.server_gradient())
        };
        assert!(
            sg_math::l2_norm(&out.gradient) <= server_norm * 1.5,
            "aggregate norm {} vs server {server_norm}",
            sg_math::l2_norm(&out.gradient)
        );
    }

    #[test]
    fn zeno_drops_harmful_gradients() {
        let (mut server, params, honest) = make_server(ValidationRule::Zeno { b: 2, rho: 1e-4, gamma: 0.05 });
        server.sync_params(&params);
        let mut grads = honest.clone();
        // Two loss-increasing gradients (reversed).
        grads.push(honest[0].iter().map(|x| -x * 3.0).collect());
        grads.push(honest[1].iter().map(|x| -x * 3.0).collect());
        let out = server.aggregate(&grads);
        let sel = out.selected.expect("zeno selects");
        assert_eq!(sel.len(), 6);
        assert!(!sel.contains(&6) && !sel.contains(&7), "reversed kept: {sel:?}");
    }

    #[test]
    fn zeno_keeps_at_least_one() {
        let (mut server, params, honest) =
            make_server(ValidationRule::Zeno { b: 100, rho: 1e-4, gamma: 0.05 });
        server.sync_params(&params);
        let out = server.aggregate(&honest);
        assert_eq!(out.selected.expect("sel").len(), 1);
    }

    #[test]
    #[should_panic(expected = "empty root dataset")]
    fn empty_root_rejected() {
        let task = tasks::mlp_task(3);
        let mut rng = seeded_rng(0);
        let model = task.build_model(&mut rng);
        let root = sg_data::Dataset::new(vec![], task.test.item_shape().to_vec(), task.test.num_classes());
        let _ = ValidatingServer::new(ValidationRule::FlTrust, model, root, 8, 0);
    }
}
