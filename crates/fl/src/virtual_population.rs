//! Virtual client population for hierarchical (million-client) rounds.
//!
//! [`build_participants`](crate::build_participants) materializes every
//! client up front — a resident fleet whose memory grows with the
//! population. That is the right model for the paper's 50-client tables,
//! and the wrong one for a hierarchical round over 10⁵–10⁶ cross-device
//! clients, where a leaf only ever touches the handful of participants it
//! samples this round.
//!
//! [`VirtualPopulation`] replaces the resident fleet with a **pure
//! function** from `(client id, round)` to a fully-seeded [`Client`]:
//!
//! * data shards come lazily from the shared [`PartitionCache`] (exactly
//!   the shards the resident scheme derives — same `part_seed` position in
//!   the seed schedule), or, when the population outnumbers the training
//!   samples, from deterministic overlapping modular windows (the
//!   cross-device regime, where disjoint per-client partitions cannot
//!   exist);
//! * the per-round mini-batch RNG is derived by SplitMix64 from
//!   `(client id, round)`, so materialization is **order-independent**:
//!   any leaf can rebuild any client at any time and obtain bit-identical
//!   gradients — the property the flat-vs-tree comparison of `exp_tree`
//!   stands on;
//! * a materialized client starts every round with an **empty momentum
//!   buffer** (stateless cross-device workers). This is the one semantic
//!   difference from the resident scheme, where momentum accumulates
//!   across rounds; both arms of a flat-vs-tree comparison use the same
//!   virtual scheme, so the comparison itself is exact.
//!
//! Byzantine ids remain the global prefix `0..byzantine_count`, so with
//! the contiguous shard ranges of a tree topology each leaf sees its
//! Byzantine clients as a local prefix too.

use std::ops::Range;
use std::sync::Arc;

use sg_attacks::Attack;
use sg_math::{sample_indices, seeded_rng, splitmix64, SeedStream};

use crate::client::Client;
use crate::config::FlConfig;
use crate::partition_cache::PartitionCache;
use crate::tasks::Task;

/// Overlapping-window length multiplier for oversubscribed populations:
/// each virtual client's modular window holds `OVERSUBSCRIBED_WINDOW ×
/// batch_size` samples (capped at the dataset length).
const OVERSUBSCRIBED_WINDOW: usize = 4;

/// Derives a decorrelated seed from a base seed and two coordinates
/// (client id and round, or shard start and round) via two chained
/// SplitMix64 steps.
fn derive_seed(base: u64, a: u64, b: u64) -> u64 {
    let mut state = base.wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let first = splitmix64(&mut state);
    let mut state = first.wrapping_add(b.wrapping_mul(0xD1B5_4A32_D192_ED03));
    splitmix64(&mut state)
}

/// How the population maps client ids to training samples.
enum Sharding {
    /// Disjoint shards from the [`PartitionCache`] (population ≤ dataset):
    /// bit-identical to the resident scheme's partition.
    Partitioned(Arc<Vec<Vec<usize>>>),
    /// Overlapping modular windows (population > dataset): client `i`
    /// reads `window` samples starting at a SplitMix64-scattered offset.
    Modular {
        /// Training-set length.
        len: usize,
        /// Samples per virtual client.
        window: usize,
    },
}

/// A lazily-materialized client population: a pure function from
/// `(client id, round)` to a seeded [`Client`], plus deterministic
/// per-shard participant sampling.
///
/// Construction draws the seed schedule head exactly like
/// [`build_participants`](crate::build_participants) — model seed, then
/// partition seed — so the partition (and the root's
/// [`global_init`](crate::global_init) model) match the resident scheme;
/// the per-client draws are replaced by the lazy `(id, round)` derivation.
pub struct VirtualPopulation {
    task: Task,
    sharding: Sharding,
    num_clients: usize,
    byz_count: usize,
    momentum: f32,
    weight_decay: f32,
    data_poison: bool,
    client_base: u64,
    sample_base: u64,
    replica_seed: u64,
}

impl std::fmt::Debug for VirtualPopulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualPopulation")
            .field("task", &self.task.name)
            .field("num_clients", &self.num_clients)
            .field("byzantine", &self.byz_count)
            .field("oversubscribed", &matches!(self.sharding, Sharding::Modular { .. }))
            .finish()
    }
}

impl VirtualPopulation {
    /// Builds the population scheme for `cfg` over `task`'s training
    /// split. `attack` only contributes its data-poisoning flag (label
    /// flips on the Byzantine prefix, as in the resident scheme).
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid (see
    /// [`FlConfig::validate`]).
    pub fn build(
        task: &Task,
        cfg: &FlConfig,
        attack: Option<&dyn Attack>,
        partitions: &PartitionCache,
    ) -> Self {
        cfg.validate();
        let mut seeds = SeedStream::new(cfg.seed);
        // Seed-schedule head parity with `build_participants`: the first
        // draw is the global model (consumed by the server's
        // `global_init`), the second is the partition seed.
        let _model_seed = seeds.next_seed();
        let part_seed = seeds.next_seed();
        let client_base = seeds.next_seed();
        let sample_base = seeds.next_seed();
        let replica_seed = seeds.next_seed();

        let train_len = task.train.len();
        let sharding = if cfg.num_clients <= train_len {
            Sharding::Partitioned(partitions.get(&task.train, cfg.partitioning, cfg.num_clients, part_seed))
        } else {
            let window = (cfg.batch_size * OVERSUBSCRIBED_WINDOW).clamp(1, train_len);
            Sharding::Modular { len: train_len, window }
        };

        Self {
            task: task.clone(),
            sharding,
            num_clients: cfg.num_clients,
            byz_count: cfg.byzantine_count(),
            momentum: cfg.momentum,
            weight_decay: cfg.weight_decay,
            data_poison: attack.is_some_and(|a| a.is_data_poisoning()),
            client_base,
            sample_base,
            replica_seed,
        }
    }

    /// Total population size.
    pub fn num_clients(&self) -> usize {
        self.num_clients
    }

    /// Size of the global Byzantine prefix (`0..byzantine_count`).
    pub fn byzantine_count(&self) -> usize {
        self.byz_count
    }

    /// Whether clients outnumber training samples (overlapping modular
    /// windows instead of disjoint partition shards).
    pub fn is_oversubscribed(&self) -> bool {
        matches!(self.sharding, Sharding::Modular { .. })
    }

    /// The task this population trains.
    pub fn task(&self) -> &Task {
        &self.task
    }

    /// The training-sample indices of client `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn shard_indices(&self, id: usize) -> Vec<usize> {
        assert!(id < self.num_clients, "virtual client {id} out of range (n = {})", self.num_clients);
        match &self.sharding {
            Sharding::Partitioned(parts) => parts[id].clone(),
            Sharding::Modular { len, window } => {
                // Scatter the window start so neighboring ids don't read
                // neighboring (correlated) sample runs.
                let mut state = self.client_base ^ (id as u64);
                let start = (splitmix64(&mut state) % *len as u64) as usize;
                (0..*window).map(|j| (start + j) % len).collect()
            }
        }
    }

    /// Materializes client `id` for `round`: data shard, label-flip flag,
    /// and a round-specific mini-batch RNG, with an empty momentum buffer.
    /// A pure function of `(id, round)` — any caller, in any order, on any
    /// thread, obtains a client producing bit-identical gradients.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn materialize(&self, id: usize, round: usize) -> Client {
        let indices = self.shard_indices(id);
        // The replica's init weights are immaterial (overwritten from the
        // global parameters each step); a fixed seed keeps the build
        // deterministic without per-client bookkeeping.
        let replica = self.task.build_model(&mut seeded_rng(self.replica_seed));
        let rng = seeded_rng(derive_seed(self.client_base, id as u64, round as u64));
        let mut client = Client::new(id, replica, indices, self.momentum, self.weight_decay, rng);
        if self.data_poison && id < self.byz_count {
            client.set_flip_labels(true);
        }
        sg_obs::counter_add("virtual.materialized", 1);
        client
    }

    /// Samples `k` distinct participants from the contiguous shard
    /// `range` for `round`, returned in **ascending id order** (the
    /// canonical ingest order). Deterministic in `(range.start, round)`;
    /// returns the whole shard when `k >= range.len()`.
    ///
    /// With contiguous shard ranges, concatenating the per-shard samples
    /// in shard order yields a globally ascending participant list — the
    /// flat arm of a flat-vs-tree comparison aggregates exactly that
    /// list.
    pub fn sample_shard(&self, range: Range<usize>, k: usize, round: usize) -> Vec<usize> {
        assert!(range.end <= self.num_clients, "shard {range:?} exceeds population {}", self.num_clients);
        let mut rng = seeded_rng(derive_seed(self.sample_base, range.start as u64, round as u64));
        let mut ids = sample_indices(&mut rng, range.len(), k);
        for id in &mut ids {
            *id += range.start;
        }
        ids.sort_unstable();
        ids
    }

    /// Computes the round-`round` gradients of `ids` against
    /// `global_params`, one materialized client per participant, fanned
    /// out on the engine's worker pool. Returns `(gradient, loss)` per id,
    /// in input order — bit-identical at any thread count, since each
    /// client's computation is independent and fully seeded.
    ///
    /// Peak resident client state is `ids.len()` — the shard sample size,
    /// never the population.
    pub fn compute_round(
        &self,
        ids: &[usize],
        round: usize,
        global_params: &[f32],
        batch_size: usize,
        engine: &sg_runtime::Engine,
    ) -> Vec<(Vec<f32>, f32)> {
        let jobs: Vec<usize> = ids.to_vec();
        let train = &self.task.train;
        engine.pool().map(jobs, |_, id| {
            let mut client = self.materialize(id, round);
            let grad = client.local_gradient(global_params, train, batch_size);
            (grad, client.last_loss())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks;
    use sg_runtime::Engine;

    fn small_cfg(n: usize) -> FlConfig {
        FlConfig { num_clients: n, byzantine_fraction: 0.2, batch_size: 8, ..FlConfig::default() }
    }

    #[test]
    fn partition_matches_resident_scheme() {
        let task = tasks::mlp_task(3);
        let cfg = small_cfg(10);
        let cache = PartitionCache::new();
        let vp = VirtualPopulation::build(&task, &cfg, None, &cache);
        // The resident scheme's partition seed is the second draw.
        let mut seeds = SeedStream::new(cfg.seed);
        let _model = seeds.next_seed();
        let part_seed = seeds.next_seed();
        let resident = cache.get(&task.train, cfg.partitioning, cfg.num_clients, part_seed);
        for id in 0..cfg.num_clients {
            assert_eq!(vp.shard_indices(id), resident[id], "client {id}");
        }
        assert!(!vp.is_oversubscribed());
    }

    #[test]
    fn materialization_is_order_independent() {
        let task = tasks::mlp_task(4);
        let cfg = small_cfg(10);
        let vp = VirtualPopulation::build(&task, &cfg, None, &PartitionCache::new());
        let dim = crate::global_init(&task, cfg.seed).num_params();
        let global = vec![0.01f32; dim];

        // Same (id, round) from two independent materializations, after
        // touching other clients in a different order.
        let g_a = vp.materialize(3, 5).local_gradient(&global, &task.train, 8);
        let _noise = vp.materialize(7, 5).local_gradient(&global, &task.train, 8);
        let g_b = vp.materialize(3, 5).local_gradient(&global, &task.train, 8);
        assert_eq!(g_a.len(), dim);
        for (a, b) in g_a.iter().zip(&g_b) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        // Different rounds draw different mini-batches.
        let g_r6 = vp.materialize(3, 6).local_gradient(&global, &task.train, 8);
        assert_ne!(g_a, g_r6, "round enters the batch RNG");
    }

    #[test]
    fn oversubscribed_population_stays_lazy() {
        let task = tasks::mlp_task(5);
        // 100k clients over a 400-sample training split: disjoint
        // partitioning is impossible; modular windows take over.
        let cfg = small_cfg(100_000);
        let vp = VirtualPopulation::build(&task, &cfg, None, &PartitionCache::new());
        assert!(vp.is_oversubscribed());
        let len = task.train.len();
        for id in [0usize, 1, 99_999] {
            let shard = vp.shard_indices(id);
            assert!(!shard.is_empty() && shard.len() <= len);
            assert!(shard.iter().all(|&i| i < len));
            assert_eq!(shard, vp.shard_indices(id), "lazy shards are deterministic");
        }
        let dim = crate::global_init(&task, cfg.seed).num_params();
        let global = vec![0.01f32; dim];
        let g = vp.materialize(99_999, 0).local_gradient(&global, &task.train, 8);
        assert!(g.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn shard_sampling_is_sorted_distinct_deterministic() {
        let task = tasks::mlp_task(6);
        let vp = VirtualPopulation::build(&task, &small_cfg(64), None, &PartitionCache::new());
        let a = vp.sample_shard(16..32, 4, 7);
        let b = vp.sample_shard(16..32, 4, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "ascending, distinct: {a:?}");
        assert!(a.iter().all(|&id| (16..32).contains(&id)));
        assert_ne!(a, vp.sample_shard(16..32, 4, 8), "round enters the sample RNG");
        // Full participation returns the whole shard.
        assert_eq!(vp.sample_shard(16..32, 16, 7), (16..32).collect::<Vec<_>>());
        assert_eq!(vp.sample_shard(16..32, 99, 7), (16..32).collect::<Vec<_>>());
    }

    #[test]
    fn data_poison_flips_byzantine_prefix_only() {
        let task = tasks::mlp_task(7);
        let cfg = small_cfg(10); // byz_count = 2
        let attack = sg_attacks::LabelFlip::new();
        let vp = VirtualPopulation::build(&task, &cfg, Some(&attack), &PartitionCache::new());
        assert!(vp.materialize(0, 0).flips_labels());
        assert!(vp.materialize(1, 0).flips_labels());
        assert!(!vp.materialize(2, 0).flips_labels());
    }

    #[test]
    fn compute_round_matches_sequential_materialization() {
        let task = tasks::mlp_task(8);
        let cfg = small_cfg(12);
        let vp = VirtualPopulation::build(&task, &cfg, None, &PartitionCache::new());
        let dim = crate::global_init(&task, cfg.seed).num_params();
        let global = vec![0.02f32; dim];
        let ids = vp.sample_shard(0..12, 8, 3);

        let pooled = vp.compute_round(&ids, 3, &global, 8, &Engine::parallel(4));
        let seq = vp.compute_round(&ids, 3, &global, 8, &Engine::sequential());
        assert_eq!(pooled.len(), ids.len());
        for (i, ((pg, pl), (sg, sl))) in pooled.iter().zip(&seq).enumerate() {
            assert_eq!(pl.to_bits(), sl.to_bits(), "loss of participant {i}");
            for (a, b) in pg.iter().zip(sg) {
                assert_eq!(a.to_bits(), b.to_bits(), "participant {i}");
            }
        }
    }
}
