//! CRC-32 (IEEE 802.3): the payload checksum shared by every framed byte
//! format in the workspace — the sweep journal (`sg_bench::journal`) and
//! the wire protocol (`sg-net`) both close their frames with it.

use std::sync::OnceLock;

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    })
}

/// CRC-32 (IEEE) over `bytes` — the per-frame payload checksum.
///
/// # Examples
///
/// ```
/// // The classic check value for CRC-32/IEEE.
/// assert_eq!(sg_math::crc32(b"123456789"), 0xCBF4_3926);
/// assert_eq!(sg_math::crc32(b""), 0);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_any_single_bit_flip() {
        let data = b"the quick brown fox";
        let base = crc32(data);
        for i in 0..data.len() {
            for bit in 0..8u8 {
                let mut flipped = data.to_vec();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
