//! Pluggable chunk executor: the seam between numeric kernels and the
//! thread pool.
//!
//! `sg-math` stays dependency-free and single-threaded; `sg-runtime`'s
//! worker pool implements [`ParallelExecutor`] and is injected into
//! aggregation rules ([`Aggregator::set_executor`]) so their hot loops run
//! sharded across cores without the math/aggregator crates knowing about
//! threads.
//!
//! # Determinism contract
//!
//! `run_chunks` splits `out` into consecutive `chunk_len`-sized chunks
//! (the last may be ragged) and calls `f(chunk_index, chunk)` exactly once
//! per chunk. Implementations may run chunks in any order and on any
//! thread, but each chunk is processed whole by one call. Kernels written
//! against this API are bit-identical under any executor as long as each
//! output element depends only on its own chunk's computation — which is
//! how every kernel in [`crate::vecops`] is written (per-coordinate
//! accumulation order never crosses a chunk boundary).
//!
//! The chunked `out` buffer does not have to be a coordinate window of a
//! gradient: any index space that flattens to one `f32` per element shards
//! the same way. [`crate::pairwise`] runs the upper-triangular `(i, j)`
//! pair space of the Krum/Bulyan distance matrix through this seam, and
//! per-item passes (one l2 norm or Weiszfeld distance per client) use
//! `chunk_len == 1` so chunk index ≡ item index.
//!
//! [`Aggregator::set_executor`]: https://docs.rs/sg-aggregators

/// Runs chunked data-parallel work. See the [module docs](self) for the
/// determinism contract.
pub trait ParallelExecutor: Send + Sync {
    /// Calls `f(chunk_index, chunk)` for every consecutive `chunk_len`
    /// chunk of `out` (last chunk may be shorter), each exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len == 0`.
    fn run_chunks(&self, out: &mut [f32], chunk_len: usize, f: &(dyn Fn(usize, &mut [f32]) + Sync));

    /// Number of OS threads this executor may use (1 = sequential).
    fn parallelism(&self) -> usize {
        1
    }
}

/// The trivial executor: runs chunks inline, in index order.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqExecutor;

impl ParallelExecutor for SeqExecutor {
    fn run_chunks(&self, out: &mut [f32], chunk_len: usize, f: &(dyn Fn(usize, &mut [f32]) + Sync)) {
        assert!(chunk_len > 0, "run_chunks: zero chunk_len");
        for (i, chunk) in out.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
    }
}

/// Adversarial-order executor for determinism tests: runs chunks on the
/// calling thread but in a striped, out-of-index-order schedule (all chunk
/// indices `≡ 0 (mod stride)` first, then `≡ 1`, …).
///
/// A kernel that is bit-identical under `StripedExec(s)` for several `s`
/// honors the "chunks may run in any order" half of the executor contract
/// without needing threads — which lets crates below `sg-runtime` assert
/// their sharded kernels' determinism in plain unit tests.
#[derive(Debug, Clone, Copy)]
pub struct StripedExec(
    /// Stride of the schedule (also reported as [`ParallelExecutor::parallelism`]).
    pub usize,
);

impl ParallelExecutor for StripedExec {
    fn run_chunks(&self, out: &mut [f32], chunk_len: usize, f: &(dyn Fn(usize, &mut [f32]) + Sync)) {
        assert!(chunk_len > 0, "run_chunks: zero chunk_len");
        let stride = self.0.max(1);
        let mut chunks: Vec<(usize, &mut [f32])> = out.chunks_mut(chunk_len).enumerate().collect();
        for residue in 0..stride {
            for (i, chunk) in chunks.iter_mut().filter(|(i, _)| i % stride == residue) {
                f(*i, chunk);
            }
        }
    }

    fn parallelism(&self) -> usize {
        self.0.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_executor_visits_every_chunk_in_order() {
        let mut out = vec![0.0f32; 10];
        SeqExecutor.run_chunks(&mut out, 4, &|i, chunk| {
            for x in chunk.iter_mut() {
                *x = i as f32;
            }
        });
        assert_eq!(out, vec![0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn seq_executor_empty_out_is_noop() {
        let mut out: Vec<f32> = vec![];
        SeqExecutor.run_chunks(&mut out, 8, &|_, _| panic!("no chunks expected"));
    }

    #[test]
    #[should_panic(expected = "zero chunk_len")]
    fn zero_chunk_len_rejected() {
        let mut out = vec![0.0f32; 4];
        SeqExecutor.run_chunks(&mut out, 0, &|_, _| {});
    }

    #[test]
    fn striped_executor_visits_every_chunk_once() {
        let kernel = |i: usize, chunk: &mut [f32]| {
            for x in chunk.iter_mut() {
                *x += (i + 1) as f32;
            }
        };
        for len in [0usize, 1, 10, 37] {
            let mut seq = vec![0.0f32; len];
            SeqExecutor.run_chunks(&mut seq, 4, &kernel);
            for stride in [1usize, 2, 3, 8] {
                let mut striped = vec![0.0f32; len];
                StripedExec(stride).run_chunks(&mut striped, 4, &kernel);
                assert_eq!(seq, striped, "len {len} stride {stride}");
            }
        }
        assert_eq!(StripedExec(3).parallelism(), 3);
        assert_eq!(StripedExec(0).parallelism(), 1);
    }
}
