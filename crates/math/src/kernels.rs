//! SIMD-width kernel layer: lane-chunked reductions with runtime width
//! dispatch, plus the bit-packed sign kernels behind the compressed
//! gradient representations.
//!
//! # The lane tree
//!
//! Every scalar reduction in this crate accumulates in `f64` over fixed
//! [`REDUCE_BLOCK`]-sized blocks (see [`crate::vecops`]). Within one block
//! this module refines the accumulation order into a **fixed lane tree**:
//! [`LANES`] (= 8) independent `f64` accumulators, where block element `i`
//! feeds lane `i % LANES` in increasing-`i` order, and the lane partials
//! are combined left-to-right at the end of the block. Block partials are
//! then summed in block order exactly as before.
//!
//! Both kernel widths implement *the same tree*:
//!
//! - **wide** walks the block in [`LANES`]-sized groups with an accumulator
//!   array — the classic shape LLVM's loop vectorizer turns into packed
//!   `f64` adds (verified by the codegen test in
//!   `crates/math/tests/codegen.rs` against the `probe_*` entry points);
//! - **scalar** walks each lane as a strided dependent chain
//!   (`j, j+8, j+16, …`), which cannot be vectorized without reassociating
//!   across the very boundaries the tree fixes.
//!
//! Each lane therefore sums the *same elements in the same order* under
//! either width, and the lane/block combine orders are shared — so scalar
//! and wide are **bit-for-bit identical**, and both remain bit-identical
//! to any [`crate::exec::ParallelExecutor`]-sharded evaluation at any
//! `SG_THREADS`, because executor chunks sit on block boundaries the tree
//! already owns.
//!
//! # Width dispatch
//!
//! The width is selected **once per process** ([`dispatch_width`], a
//! `OnceLock`): `wide` by default, overridable with `SG_SIMD=scalar` for
//! determinism A/B runs (CI's `simd-smoke` job `cmp`s consolidated
//! experiment reports across the two settings). The `*_with` variants take
//! an explicit [`Width`] so tests and benches can compare both paths in
//! one process.
//!
//! # Packed sign kernels
//!
//! The `packed_*` family operates on the bit-packed sign representation
//! consumed by SignGuard's filters (`sg-aggregators`' `SignNormVec`): one
//! bit per coordinate (1 = strictly positive) plus a sorted sparse list of
//! zero-sign coordinates (exact zeros and NaNs — an undefined coordinate
//! carries no directional information). Sign counts become popcounts and
//! the clipped-mean accumulation reads bits directly, so a packed batch is
//! aggregated without ever rematerializing dense vectors.

use std::sync::OnceLock;

use crate::vecops::REDUCE_BLOCK;

/// Lane count of the fixed lane tree (8 × `f64` = one 64-byte cache line;
/// wide enough for AVX-512, divides [`REDUCE_BLOCK`] exactly so only a
/// vector's final ragged block has a lane remainder).
pub const LANES: usize = 8;

/// Kernel width: which implementation of the (identical) lane tree runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Width {
    /// Strided per-lane chains — the autovectorization-proof fallback.
    Scalar,
    /// Lane-grouped accumulator arrays — the autovectorizable layout.
    Wide,
}

/// The process-wide kernel width, selected once at first use: `wide`
/// unless `SG_SIMD=scalar` is set.
///
/// # Panics
///
/// Panics if `SG_SIMD` is set to anything other than `scalar` or `wide`.
pub fn dispatch_width() -> Width {
    static WIDTH: OnceLock<Width> = OnceLock::new();
    *WIDTH.get_or_init(|| match std::env::var("SG_SIMD") {
        Ok(v) if v == "scalar" => Width::Scalar,
        Ok(v) if v == "wide" => Width::Wide,
        Ok(v) => panic!("SG_SIMD must be `scalar` or `wide`, got `{v}`"),
        Err(_) => Width::Wide,
    })
}

/// Left-to-right combine of the lane partials (the within-block root of
/// the tree; shared by both widths).
#[inline]
fn combine_lanes(acc: [f64; LANES]) -> f64 {
    let mut total = 0.0f64;
    for a in acc {
        total += a;
    }
    total
}

macro_rules! lane_reduce1 {
    ($wide:ident, $scalar:ident, |$x:ident| $map:expr) => {
        #[inline]
        fn $wide(block: &[f32]) -> [f64; LANES] {
            let mut acc = [0.0f64; LANES];
            let mut groups = block.chunks_exact(LANES);
            for g in groups.by_ref() {
                for j in 0..LANES {
                    let $x = f64::from(g[j]);
                    acc[j] += $map;
                }
            }
            // Ragged tail: element `m*LANES + j` still feeds lane `j`, as
            // the last element of that lane's sequence.
            for (j, &v) in groups.remainder().iter().enumerate() {
                let $x = f64::from(v);
                acc[j] += $map;
            }
            acc
        }

        #[inline]
        fn $scalar(block: &[f32]) -> [f64; LANES] {
            let mut acc = [0.0f64; LANES];
            for (j, slot) in acc.iter_mut().enumerate() {
                let mut s = 0.0f64;
                let mut k = j;
                while k < block.len() {
                    let $x = f64::from(block[k]);
                    s += $map;
                    k += LANES;
                }
                *slot = s;
            }
            acc
        }
    };
}

macro_rules! lane_reduce2 {
    ($wide:ident, $scalar:ident, |$x:ident, $y:ident| $map:expr) => {
        #[inline]
        fn $wide(a: &[f32], b: &[f32]) -> [f64; LANES] {
            debug_assert_eq!(a.len(), b.len());
            let mut acc = [0.0f64; LANES];
            let mut ga = a.chunks_exact(LANES);
            let mut gb = b.chunks_exact(LANES);
            while let (Some(p), Some(q)) = (ga.next(), gb.next()) {
                for j in 0..LANES {
                    let $x = f64::from(p[j]);
                    let $y = f64::from(q[j]);
                    acc[j] += $map;
                }
            }
            for (j, (&p, &q)) in ga.remainder().iter().zip(gb.remainder()).enumerate() {
                let $x = f64::from(p);
                let $y = f64::from(q);
                acc[j] += $map;
            }
            acc
        }

        #[inline]
        fn $scalar(a: &[f32], b: &[f32]) -> [f64; LANES] {
            debug_assert_eq!(a.len(), b.len());
            let mut acc = [0.0f64; LANES];
            for (j, slot) in acc.iter_mut().enumerate() {
                let mut s = 0.0f64;
                let mut k = j;
                while k < a.len() {
                    let $x = f64::from(a[k]);
                    let $y = f64::from(b[k]);
                    s += $map;
                    k += LANES;
                }
                *slot = s;
            }
            acc
        }
    };
}

lane_reduce1!(sumsq_lanes_wide, sumsq_lanes_scalar, |x| x * x);
lane_reduce2!(dot_lanes_wide, dot_lanes_scalar, |x, y| x * y);
lane_reduce2!(distsq_lanes_wide, distsq_lanes_scalar, |x, y| {
    let d = x - y;
    d * d
});

/// One block's partial sum of squares under the lane tree.
///
/// `block` must be at most [`REDUCE_BLOCK`] long (a chunk of a
/// `chunks(REDUCE_BLOCK)` walk).
#[inline]
pub fn sumsq_block(width: Width, block: &[f32]) -> f64 {
    debug_assert!(block.len() <= REDUCE_BLOCK);
    match width {
        Width::Wide => combine_lanes(sumsq_lanes_wide(block)),
        Width::Scalar => combine_lanes(sumsq_lanes_scalar(block)),
    }
}

/// Squared l2 norm of `v` in `f64`, over the full fixed tree (lane tree
/// within blocks, block partials combined in block order).
pub fn l2_norm_sq_f64_with(width: Width, v: &[f32]) -> f64 {
    let mut total = 0.0f64;
    for block in v.chunks(REDUCE_BLOCK) {
        total += sumsq_block(width, block);
    }
    total
}

/// [`l2_norm_sq_f64_with`] at the process-wide [`dispatch_width`].
pub fn l2_norm_sq_f64(v: &[f32]) -> f64 {
    l2_norm_sq_f64_with(dispatch_width(), v)
}

/// Dot product of `a` and `b` in `f64`, over the full fixed tree.
///
/// Callers validate lengths; mismatched tails are debug-asserted only.
pub fn dot_f64_with(width: Width, a: &[f32], b: &[f32]) -> f64 {
    let mut total = 0.0f64;
    for (ca, cb) in a.chunks(REDUCE_BLOCK).zip(b.chunks(REDUCE_BLOCK)) {
        total += match width {
            Width::Wide => combine_lanes(dot_lanes_wide(ca, cb)),
            Width::Scalar => combine_lanes(dot_lanes_scalar(ca, cb)),
        };
    }
    total
}

/// [`dot_f64_with`] at the process-wide [`dispatch_width`].
pub fn dot_f64(a: &[f32], b: &[f32]) -> f64 {
    dot_f64_with(dispatch_width(), a, b)
}

/// Squared Euclidean distance of `a` and `b` in `f64`, over the full
/// fixed tree.
pub fn l2_distance_sq_f64_with(width: Width, a: &[f32], b: &[f32]) -> f64 {
    let mut total = 0.0f64;
    for (ca, cb) in a.chunks(REDUCE_BLOCK).zip(b.chunks(REDUCE_BLOCK)) {
        total += match width {
            Width::Wide => combine_lanes(distsq_lanes_wide(ca, cb)),
            Width::Scalar => combine_lanes(distsq_lanes_scalar(ca, cb)),
        };
    }
    total
}

/// [`l2_distance_sq_f64_with`] at the process-wide [`dispatch_width`].
pub fn l2_distance_sq_f64(a: &[f32], b: &[f32]) -> f64 {
    l2_distance_sq_f64_with(dispatch_width(), a, b)
}

/// Counts of (positive, zero, negative) entries in `v`; NaN counts as
/// zero-sign. Integer counts are order-free, so the two widths agree
/// trivially — the wide layout exists because per-lane boolean counters
/// vectorize into packed compares while the branchy scalar loop does not.
pub fn sign_counts_with(width: Width, v: &[f32]) -> (usize, usize, usize) {
    match width {
        Width::Wide => {
            let mut pos = [0u64; LANES];
            let mut neg = [0u64; LANES];
            let mut groups = v.chunks_exact(LANES);
            for g in groups.by_ref() {
                for j in 0..LANES {
                    pos[j] += u64::from(g[j] > 0.0);
                    neg[j] += u64::from(g[j] < 0.0);
                }
            }
            for (j, &x) in groups.remainder().iter().enumerate() {
                pos[j] += u64::from(x > 0.0);
                neg[j] += u64::from(x < 0.0);
            }
            let p: u64 = pos.iter().sum();
            let n: u64 = neg.iter().sum();
            (p as usize, v.len() - p as usize - n as usize, n as usize)
        }
        Width::Scalar => {
            let (mut pos, mut zero, mut neg) = (0usize, 0usize, 0usize);
            for &x in v {
                if x > 0.0 {
                    pos += 1;
                } else if x < 0.0 {
                    neg += 1;
                } else {
                    zero += 1;
                }
            }
            (pos, zero, neg)
        }
    }
}

/// [`sign_counts_with`] at the process-wide [`dispatch_width`].
pub fn sign_counts(v: &[f32]) -> (usize, usize, usize) {
    sign_counts_with(dispatch_width(), v)
}

/// Counts of (positive, zero, negative) among the gathered coordinates
/// `v[c]` for `c` in `coords` — the sampled-subset sign statistics of
/// SignGuard's feature extractor. A gather cannot vectorize usefully, so
/// there is one implementation at any width.
pub fn sign_counts_at(v: &[f32], coords: &[usize]) -> (usize, usize, usize) {
    let (mut pos, mut zero, mut neg) = (0usize, 0usize, 0usize);
    for &c in coords {
        let x = v[c];
        if x > 0.0 {
            pos += 1;
        } else if x < 0.0 {
            neg += 1;
        } else {
            zero += 1;
        }
    }
    (pos, zero, neg)
}

/// In-place `out[k] += src[offset + k]` — the accumulation step of the
/// coordinate-wise mean. Per output coordinate this is a single add, so
/// any width (and any chunking) is bit-identical; the wide layout walks
/// aligned [`LANES`]-groups to hand LLVM a clean packed-add loop.
#[inline]
fn add_assign_with(width: Width, out: &mut [f32], src: &[f32]) {
    debug_assert_eq!(out.len(), src.len());
    match width {
        Width::Wide => {
            let mut go = out.chunks_exact_mut(LANES);
            let mut gs = src.chunks_exact(LANES);
            while let (Some(o), Some(s)) = (go.next(), gs.next()) {
                for j in 0..LANES {
                    o[j] += s[j];
                }
            }
            for (o, &s) in go.into_remainder().iter_mut().zip(gs.remainder()) {
                *o += s;
            }
        }
        Width::Scalar => {
            for j in 0..LANES {
                let mut k = j;
                while k < out.len() {
                    out[k] += src[k];
                    k += LANES;
                }
            }
        }
    }
}

/// Coordinate-wise **canonical tree sum** of `vectors` over the window
/// `[offset, offset + out.len())`, written into `out`.
///
/// The accumulation order across vectors is a fixed balanced binary tree:
/// `sum[l, r)` splits at `l + next_power_of_two(r - l) / 2`, recursively
/// sums both halves, and adds left + right. The tree shape depends only on
/// the vector count, so chunked, sharded, scalar and wide evaluations are
/// all bit-identical — and, crucially, the tree **composes across
/// power-of-two shards**: for any shard size `S = 2^k`, every contiguous
/// block `[a·S, min((a+1)·S, n))` is a node of this tree, so per-shard
/// tree sums recombined by another canonical tree sum (in shard order)
/// reproduce the flat sum bit for bit. This is the identity the
/// hierarchical mean-of-means aggregation path relies on.
///
/// Implemented as a binary-counter pairwise reduction: a stack of partial
/// sums where the entry at level `k` covers an aligned `2^k` block, equal
/// levels combine as left + right, and the ragged tail folds right-to-left
/// — exactly the recursive tree above, with `O(log n)` scratch buffers.
///
/// # Panics
///
/// Panics if `vectors` is empty or the window exceeds any vector.
pub fn tree_sum_chunk_with(width: Width, vectors: &[Vec<f32>], offset: usize, out: &mut [f32]) {
    assert!(!vectors.is_empty(), "tree_sum_chunk: empty batch");
    let end = offset + out.len();
    let mut stack: Vec<(u32, Vec<f32>)> = Vec::new();
    let mut pool: Vec<Vec<f32>> = Vec::new();
    for v in vectors {
        assert!(v.len() >= end, "tree_sum_chunk: window {offset}..{end} exceeds dim {}", v.len());
        let mut buf = pool.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(&v[offset..end]);
        let mut level = 0u32;
        while stack.last().is_some_and(|(l, _)| *l == level) {
            let (_, mut left) = stack.pop().expect("just peeked");
            add_assign_with(width, &mut left, &buf);
            pool.push(std::mem::replace(&mut buf, left));
            level += 1;
        }
        stack.push((level, buf));
    }
    let (_, mut acc) = stack.pop().expect("non-empty batch leaves a partial");
    while let Some((_, mut left)) = stack.pop() {
        add_assign_with(width, &mut left, &acc);
        acc = left;
    }
    out.copy_from_slice(&acc);
}

/// Coordinate-wise mean of `vectors` over the window `[offset, offset +
/// out.len())`, written into `out`: the canonical tree sum of
/// [`tree_sum_chunk_with`] scaled by `1 / n` once at the end. Chunked,
/// sharded, scalar and wide evaluations are all bit-identical, and a
/// hierarchical mean over power-of-two shards (per-shard tree sums,
/// recombined by the root, scaled once) reproduces the flat mean exactly.
///
/// # Panics
///
/// Panics if `vectors` is empty or the window exceeds any vector.
pub fn mean_chunk_with(width: Width, vectors: &[Vec<f32>], offset: usize, out: &mut [f32]) {
    assert!(!vectors.is_empty(), "mean_chunk: empty batch");
    tree_sum_chunk_with(width, vectors, offset, out);
    let inv = 1.0 / vectors.len() as f32;
    for o in out.iter_mut() {
        *o *= inv;
    }
}

// ---- Packed sign kernels ------------------------------------------------

/// Number of `u64` words covering `dim` sign bits.
pub const fn packed_words(dim: usize) -> usize {
    dim.div_ceil(64)
}

/// Packs the signs of `v`: bit `i` of `bits` is set iff `v[i] > 0.0`;
/// coordinates whose sign is zero (exact zero or NaN) are appended to
/// `zeros` in ascending order and their bit stays clear. Both buffers are
/// cleared first and keep their capacity, so recycled buffers (see
/// `sg-runtime`'s arena) make steady-state packing allocation-free.
// The clippy rewrites are not NaN-equivalent: `x != 0.0` is true for NaN
// and `x >= 0.0` is false for NaN, but NaN must classify as zero-sign
// here (matching `f32::signum`-free sign_counts semantics downstream).
#[allow(clippy::double_comparisons, clippy::neg_cmp_op_on_partial_ord)]
pub fn pack_signs_into_with(width: Width, v: &[f32], bits: &mut Vec<u64>, zeros: &mut Vec<u32>) {
    bits.clear();
    zeros.clear();
    bits.resize(packed_words(v.len()), 0u64);
    match width {
        Width::Wide => {
            // Two vectorizable compare passes build the positive and
            // nonzero masks per 64-coordinate word; zero-sign coordinates
            // are then recovered from the (rare) clear bits of the nonzero
            // mask, so the hot loop stays branch-free.
            for (w, (word, group)) in bits.iter_mut().zip(v.chunks(64)).enumerate() {
                let mut posm = 0u64;
                let mut nzm = 0u64;
                for (j, &x) in group.iter().enumerate() {
                    posm |= u64::from(x > 0.0) << j;
                    nzm |= u64::from(x > 0.0 || x < 0.0) << j;
                }
                *word = posm;
                let mut zm = !nzm;
                if group.len() < 64 {
                    zm &= (1u64 << group.len()) - 1;
                }
                while zm != 0 {
                    let j = zm.trailing_zeros();
                    zeros.push((w * 64) as u32 + j);
                    zm &= zm - 1;
                }
            }
        }
        Width::Scalar => {
            for (i, &x) in v.iter().enumerate() {
                if x > 0.0 {
                    bits[i >> 6] |= 1u64 << (i & 63);
                } else if !(x < 0.0) {
                    zeros.push(i as u32);
                }
            }
        }
    }
}

/// [`pack_signs_into_with`] at the process-wide [`dispatch_width`].
pub fn pack_signs_into(v: &[f32], bits: &mut Vec<u64>, zeros: &mut Vec<u32>) {
    pack_signs_into_with(dispatch_width(), v, bits, zeros);
}

/// Sign of packed coordinate `i`: `+1`, `0` or `-1`.
#[inline]
pub fn packed_sign_at(bits: &[u64], zeros: &[u32], i: usize) -> i8 {
    if (bits[i >> 6] >> (i & 63)) & 1 == 1 {
        1
    } else if zeros.binary_search(&(i as u32)).is_ok() {
        0
    } else {
        -1
    }
}

/// Counts of (positive, zero, negative) signs of a packed vector — a
/// popcount over the bit words, never a coordinate loop.
pub fn packed_sign_counts(dim: usize, bits: &[u64], zeros: &[u32]) -> (usize, usize, usize) {
    debug_assert_eq!(bits.len(), packed_words(dim));
    let pos: usize = bits.iter().map(|w| w.count_ones() as usize).sum();
    (pos, zeros.len(), dim - pos - zeros.len())
}

/// Counts of (positive, zero, negative) among the packed coordinates in
/// `coords` (the sampled-subset statistics of the sign-cluster filter).
pub fn packed_sign_counts_at(bits: &[u64], zeros: &[u32], coords: &[usize]) -> (usize, usize, usize) {
    let (mut pos, mut zero, mut neg) = (0usize, 0usize, 0usize);
    for &c in coords {
        match packed_sign_at(bits, zeros, c) {
            1 => pos += 1,
            0 => zero += 1,
            _ => neg += 1,
        }
    }
    (pos, zero, neg)
}

/// In-place `out[k] += w * sign(offset + k)` over a packed sign vector —
/// the accumulation step of SignGuard's clipped mean on a packed batch.
/// Zero-sign coordinates contribute nothing; the sorted `zeros` list is
/// merge-walked alongside the window, so the cost is `O(out.len() + z)`.
pub fn packed_signs_axpy(bits: &[u64], zeros: &[u32], w: f32, offset: usize, out: &mut [f32]) {
    let mut zi = zeros.partition_point(|&z| (z as usize) < offset);
    for (k, o) in out.iter_mut().enumerate() {
        let i = offset + k;
        if zi < zeros.len() && zeros[zi] as usize == i {
            zi += 1;
            continue;
        }
        let bit = (bits[i >> 6] >> (i & 63)) & 1;
        *o += if bit == 1 { w } else { -w };
    }
}

/// `Σ_i sign(i) · r[i]` in `f64` over the fixed block tree (left-to-right
/// within [`REDUCE_BLOCK`] blocks, block partials in block order) — the
/// packed half of the cosine/distance similarity identities:
/// `cos(c·s, r) = (Σ s_i r_i) / (√nnz · ‖r‖)` and
/// `‖c·s − r‖² = ‖c·s‖² − 2c·Σ s_i r_i + ‖r‖²`.
pub fn packed_signs_dot_f64(bits: &[u64], zeros: &[u32], r: &[f32]) -> f64 {
    let mut total = 0.0f64;
    let mut zi = 0usize;
    for (bi, block) in r.chunks(REDUCE_BLOCK).enumerate() {
        let base = bi * REDUCE_BLOCK;
        let mut acc = 0.0f64;
        for (k, &x) in block.iter().enumerate() {
            let i = base + k;
            if zi < zeros.len() && zeros[zi] as usize == i {
                zi += 1;
                continue;
            }
            let bit = (bits[i >> 6] >> (i & 63)) & 1;
            acc += if bit == 1 { f64::from(x) } else { -f64::from(x) };
        }
        total += acc;
    }
    total
}

// ---- Codegen probes -----------------------------------------------------

/// Non-inlined entry point for the wide sum-of-squares lane kernel. Exists
/// only so the codegen test (`crates/math/tests/codegen.rs`) can find its
/// disassembly and assert the lane loop compiled to packed `f64`
/// instructions; never called on a hot path.
#[inline(never)]
pub fn probe_sumsq_wide(block: &[f32]) -> f64 {
    combine_lanes(sumsq_lanes_wide(block))
}

/// Non-inlined entry point for the scalar fallback (see
/// [`probe_sumsq_wide`]).
#[inline(never)]
pub fn probe_sumsq_scalar(block: &[f32]) -> f64 {
    combine_lanes(sumsq_lanes_scalar(block))
}

/// Non-inlined entry point for the wide dot lane kernel (see
/// [`probe_sumsq_wide`]).
#[inline(never)]
pub fn probe_dot_wide(a: &[f32], b: &[f32]) -> f64 {
    combine_lanes(dot_lanes_wide(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Mixed-magnitude values whose sum is sensitive to reassociation, so
    /// any ordering difference between the widths shows up in the bits.
    fn messy(len: usize, salt: u32) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = ((i as u32).wrapping_mul(2654435761).wrapping_add(salt)) as f32;
                (x * 1e-9).sin() * (1.0 + (i % 23) as f32 * 731.17)
            })
            .collect()
    }

    /// Lengths that exercise empty, sub-lane, ragged-lane, exact-block and
    /// multi-block shapes.
    fn shapes() -> Vec<usize> {
        vec![
            0,
            1,
            7,
            8,
            9,
            63,
            64,
            65,
            REDUCE_BLOCK - 1,
            REDUCE_BLOCK,
            REDUCE_BLOCK + 5,
            3 * REDUCE_BLOCK + 17,
        ]
    }

    #[test]
    fn widths_bit_identical_for_every_reduction() {
        for len in shapes() {
            let a = messy(len, 1);
            let b = messy(len, 2);
            assert_eq!(
                l2_norm_sq_f64_with(Width::Scalar, &a).to_bits(),
                l2_norm_sq_f64_with(Width::Wide, &a).to_bits(),
                "sumsq len {len}"
            );
            assert_eq!(
                dot_f64_with(Width::Scalar, &a, &b).to_bits(),
                dot_f64_with(Width::Wide, &a, &b).to_bits(),
                "dot len {len}"
            );
            assert_eq!(
                l2_distance_sq_f64_with(Width::Scalar, &a, &b).to_bits(),
                l2_distance_sq_f64_with(Width::Wide, &a, &b).to_bits(),
                "distsq len {len}"
            );
            assert_eq!(
                sign_counts_with(Width::Scalar, &a),
                sign_counts_with(Width::Wide, &a),
                "sign_counts len {len}"
            );
        }
    }

    #[test]
    fn mean_chunk_widths_and_windows_agree() {
        let vectors: Vec<Vec<f32>> = (0..5).map(|i| messy(2 * REDUCE_BLOCK + 331, i)).collect();
        let dim = vectors[0].len();
        let mut wide = vec![0.0f32; dim];
        mean_chunk_with(Width::Wide, &vectors, 0, &mut wide);
        let mut scalar = vec![0.0f32; dim];
        mean_chunk_with(Width::Scalar, &vectors, 0, &mut scalar);
        for (a, b) in wide.iter().zip(&scalar) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Unaligned windows reproduce the whole-vector result exactly.
        let mut windowed = vec![0.0f32; dim];
        let mut offset = 0;
        for len in [1usize, 613, REDUCE_BLOCK, dim] {
            if offset >= dim {
                break;
            }
            let len = len.min(dim - offset);
            mean_chunk_with(Width::Wide, &vectors, offset, &mut windowed[offset..offset + len]);
            offset += len;
        }
        mean_chunk_with(Width::Wide, &vectors, offset, &mut windowed[offset..]);
        for (a, b) in wide.iter().zip(&windowed) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn sign_counts_treats_nan_as_zero() {
        let v = [1.0f32, -2.0, 0.0, f32::NAN, 3.0, -0.0];
        for w in [Width::Scalar, Width::Wide] {
            assert_eq!(sign_counts_with(w, &v), (2, 3, 1), "{w:?}");
        }
    }

    #[test]
    fn sign_counts_at_matches_gather() {
        let v = messy(500, 9);
        let coords: Vec<usize> = (0..v.len()).step_by(3).collect();
        let gathered: Vec<f32> = coords.iter().map(|&c| v[c]).collect();
        assert_eq!(sign_counts_at(&v, &coords), sign_counts_with(Width::Scalar, &gathered));
    }

    #[test]
    fn pack_widths_agree_and_round_trip() {
        for len in shapes() {
            let mut v = messy(len, 3);
            // Sprinkle zeros and NaNs to exercise the sparse list.
            for i in (0..len).step_by(11) {
                v[i] = 0.0;
            }
            for i in (0..len).step_by(17) {
                v[i] = f32::NAN;
            }
            let (mut bw, mut zw) = (Vec::new(), Vec::new());
            let (mut bs, mut zs) = (Vec::new(), Vec::new());
            pack_signs_into_with(Width::Wide, &v, &mut bw, &mut zw);
            pack_signs_into_with(Width::Scalar, &v, &mut bs, &mut zs);
            assert_eq!(bw, bs, "bits len {len}");
            assert_eq!(zw, zs, "zeros len {len}");
            for (i, &x) in v.iter().enumerate() {
                let expect = if x > 0.0 {
                    1i8
                } else if x < 0.0 {
                    -1
                } else {
                    0
                };
                assert_eq!(packed_sign_at(&bw, &zw, i), expect, "coord {i} of {len}");
            }
            let (p, z, n) = packed_sign_counts(len, &bw, &zw);
            assert_eq!((p, z, n), sign_counts_with(Width::Scalar, &v), "counts len {len}");
        }
    }

    #[test]
    fn packed_axpy_matches_dense_sign_accumulation() {
        let v = {
            let mut v = messy(1000, 4);
            v[3] = 0.0;
            v[999] = f32::NAN;
            v
        };
        let (mut bits, mut zeros) = (Vec::new(), Vec::new());
        pack_signs_into(&v, &mut bits, &mut zeros);
        let w = 0.37f32;
        for (offset, len) in [(0usize, 1000usize), (13, 700), (990, 10)] {
            let mut packed = vec![0.5f32; len];
            packed_signs_axpy(&bits, &zeros, w, offset, &mut packed);
            let mut dense = vec![0.5f32; len];
            for (k, o) in dense.iter_mut().enumerate() {
                let x = v[offset + k];
                if x > 0.0 {
                    *o += w;
                } else if x < 0.0 {
                    *o -= w;
                }
            }
            for (a, b) in packed.iter().zip(&dense) {
                assert_eq!(a.to_bits(), b.to_bits(), "window {offset}+{len}");
            }
        }
    }

    #[test]
    fn packed_dot_matches_dense_sign_dot() {
        let mut v = messy(2 * REDUCE_BLOCK + 77, 5);
        v[0] = 0.0;
        v[REDUCE_BLOCK] = f32::NAN;
        let r = messy(v.len(), 6);
        let (mut bits, mut zeros) = (Vec::new(), Vec::new());
        pack_signs_into(&v, &mut bits, &mut zeros);
        let signs: Vec<f32> = v
            .iter()
            .map(|&x| {
                if x > 0.0 {
                    1.0
                } else if x < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            })
            .collect();
        // Same fixed block tree on both sides, with the zero-sign
        // coordinates skipped rather than multiplied by 0.0 — the skip and
        // the +0.0 contribution are bit-identical for finite r… except for
        // sign of zero; compare against a skip-based dense reference.
        let mut expect = 0.0f64;
        for (bi, block) in r.chunks(REDUCE_BLOCK).enumerate() {
            let mut acc = 0.0f64;
            for (k, &x) in block.iter().enumerate() {
                let s = signs[bi * REDUCE_BLOCK + k];
                if s > 0.0 {
                    acc += f64::from(x);
                } else if s < 0.0 {
                    acc -= f64::from(x);
                }
            }
            expect += acc;
        }
        assert_eq!(packed_signs_dot_f64(&bits, &zeros, &r).to_bits(), expect.to_bits());
    }

    #[test]
    fn probes_match_dispatch_kernels() {
        let v = messy(REDUCE_BLOCK, 8);
        assert_eq!(probe_sumsq_wide(&v).to_bits(), sumsq_block(Width::Wide, &v).to_bits());
        assert_eq!(probe_sumsq_scalar(&v).to_bits(), sumsq_block(Width::Scalar, &v).to_bits());
        let b = messy(REDUCE_BLOCK, 9);
        assert_eq!(probe_dot_wide(&v, &b).to_bits(), combine_lanes(dot_lanes_wide(&v, &b)).to_bits());
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn mean_chunk_rejects_empty() {
        let mut out = vec![0.0f32; 4];
        mean_chunk_with(Width::Wide, &[], 0, &mut out);
    }

    /// Reference implementation of the canonical tree: recursive split at
    /// `next_power_of_two(len) / 2`, left + right.
    fn tree_sum_reference(vectors: &[Vec<f32>], lo: usize, hi: usize) -> Vec<f32> {
        if hi - lo == 1 {
            return vectors[lo].clone();
        }
        let m = lo + (hi - lo).next_power_of_two() / 2;
        let left = tree_sum_reference(vectors, lo, m);
        let right = tree_sum_reference(vectors, m, hi);
        left.iter().zip(&right).map(|(&a, &b)| a + b).collect()
    }

    #[test]
    fn tree_sum_matches_recursive_reference() {
        // The binary-counter implementation must realize exactly the
        // recursive split-at-next-power-of-two tree, for every count shape
        // (powers of two, ragged tails, singletons) and both widths.
        for n in [1usize, 2, 3, 4, 5, 6, 7, 8, 9, 12, 13, 16, 21, 32, 33] {
            let vectors: Vec<Vec<f32>> = (0..n).map(|i| messy(97, i as u32)).collect();
            let expect = tree_sum_reference(&vectors, 0, n);
            for width in [Width::Scalar, Width::Wide] {
                let mut out = vec![0.0f32; 97];
                tree_sum_chunk_with(width, &vectors, 0, &mut out);
                for (j, (a, b)) in out.iter().zip(&expect).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "n {n} {width:?} coord {j}");
                }
            }
        }
    }

    #[test]
    fn tree_sum_composes_bit_exact_over_power_of_two_shards() {
        // The hierarchical-mean identity: chop the batch into contiguous
        // power-of-two shards (ragged last shard allowed), tree-sum each
        // shard, tree-sum the shard sums — bit-identical to the flat tree
        // sum. This is what lets leaf aggregators forward shard sums that
        // the root recombines without changing a single bit.
        for n in [1usize, 3, 4, 6, 8, 10, 12, 13, 16, 21, 37] {
            let vectors: Vec<Vec<f32>> = (0..n).map(|i| messy(64, 100 + i as u32)).collect();
            let mut flat = vec![0.0f32; 64];
            tree_sum_chunk_with(Width::Wide, &vectors, 0, &mut flat);
            for shard in [1usize, 2, 4, 8, 16] {
                let shard_sums: Vec<Vec<f32>> = vectors
                    .chunks(shard)
                    .map(|c| {
                        let mut s = vec![0.0f32; 64];
                        tree_sum_chunk_with(Width::Wide, c, 0, &mut s);
                        s
                    })
                    .collect();
                let mut composed = vec![0.0f32; 64];
                tree_sum_chunk_with(Width::Wide, &shard_sums, 0, &mut composed);
                for (j, (a, b)) in composed.iter().zip(&flat).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "n {n} shard {shard} coord {j}");
                }
            }
        }
    }

    #[test]
    fn tree_sum_widths_agree() {
        let vectors: Vec<Vec<f32>> = (0..11).map(|i| messy(REDUCE_BLOCK + 39, 40 + i)).collect();
        let dim = vectors[0].len();
        let mut wide = vec![0.0f32; dim];
        let mut scalar = vec![0.0f32; dim];
        tree_sum_chunk_with(Width::Wide, &vectors, 0, &mut wide);
        tree_sum_chunk_with(Width::Scalar, &vectors, 0, &mut scalar);
        for (a, b) in wide.iter().zip(&scalar) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
