//! Vector math, statistics and random-sampling primitives shared by the
//! SignGuard reproduction crates.
//!
//! Everything operates on plain `f32` slices so the federated-learning
//! gradient pipeline (which flattens model gradients into `Vec<f32>`) can use
//! these functions without conversions.
//!
//! # Examples
//!
//! ```
//! use sg_math::vecops;
//!
//! let g = [3.0_f32, 4.0];
//! assert_eq!(vecops::l2_norm(&g), 5.0);
//! ```

pub mod crc;
pub mod exec;
pub mod normal;
pub mod pairwise;
pub mod rng;
pub mod stats;
pub mod vecops;

pub use crc::crc32;
pub use exec::{ParallelExecutor, SeqExecutor, StripedExec};
pub use normal::{normal_cdf, normal_quantile, NormalSampler};
pub use pairwise::PairwiseDistances;
pub use rng::{seeded_rng, SeedStream};
pub use stats::{mean, median, quantile, std_dev, variance};
pub use vecops::{cosine_similarity, dot, l2_distance, l2_norm};
