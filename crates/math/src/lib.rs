//! Vector math, statistics and random-sampling primitives shared by the
//! SignGuard reproduction crates.
//!
//! Everything operates on plain `f32` slices so the federated-learning
//! gradient pipeline (which flattens model gradients into `Vec<f32>`) can use
//! these functions without conversions.
//!
//! # Kernel layer & determinism
//!
//! The hot reductions — `l2_norm_sq`, `dot`, `l2_distance`, `sign_counts`,
//! `mean_chunk`, and the flattened pairwise distance matrix — are served by
//! [`kernels`]: SIMD-friendly lane-chunked implementations with **runtime
//! width dispatch**. The width (`wide`, the autovectorizable layout, or
//! `scalar`, the strided fallback) is selected **once per process** from the
//! `SG_SIMD` environment variable (`SG_SIMD=scalar|wide`, default `wide`)
//! and never changes afterwards, so a run's numeric path is a function of
//! its environment, not of timing.
//!
//! SIMD stays **bit-exact** because both widths evaluate the *same fixed
//! reduction tree*: within every [`vecops::REDUCE_BLOCK`]-sized block,
//! element `i` feeds lane `i % 8` of eight independent `f64` accumulators
//! (in increasing `i`), the lanes combine left-to-right, and block partials
//! sum in block order. The wide path walks the block in 8-element groups
//! (LLVM vectorizes the accumulator array into packed `f64` adds — asserted
//! by a disassembly test); the scalar path walks each lane as a strided
//! dependent chain. Same per-lane sums, same combine order — so
//! `parallel ≡ sequential ≡ SIMD ≡ scalar`, bit for bit, at any
//! `SG_THREADS` and either `SG_SIMD` setting. CI's `simd-smoke` job holds
//! the whole experiment harness to this: consolidated reports under
//! `SG_SIMD=scalar` and the default must compare equal byte-for-byte.
//!
//! # Examples
//!
//! ```
//! use sg_math::vecops;
//!
//! let g = [3.0_f32, 4.0];
//! assert_eq!(vecops::l2_norm(&g), 5.0);
//! ```

pub mod crc;
pub mod exec;
pub mod kernels;
pub mod normal;
pub mod pairwise;
pub mod rng;
pub mod stats;
pub mod vecops;

pub use crc::crc32;
pub use exec::{ParallelExecutor, SeqExecutor, StripedExec};
pub use kernels::{dispatch_width, Width};
pub use normal::{normal_cdf, normal_quantile, NormalSampler};
pub use pairwise::PairwiseDistances;
pub use rng::{sample_indices, seeded_rng, shuffle, splitmix64, SeedStream};
pub use stats::{mean, median, quantile, std_dev, variance};
pub use vecops::{cosine_similarity, dot, l2_distance, l2_norm};
