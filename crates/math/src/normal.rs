//! Gaussian sampling and the standard-normal CDF / quantile.
//!
//! The Little-is-Enough attack (paper Eq. (2)) picks its attack factor
//! `z_max = max_z { φ(z) < (n - ⌊n/2 + 1⌋) / (n - m) }` from the standard
//! normal CDF `φ`, so an accurate CDF and inverse CDF are part of the
//! reproduction's substrate. Sampling uses the Box–Muller transform to avoid
//! pulling in `rand_distr`.

use rand::Rng;

/// Standard-normal cumulative distribution function `φ(z) = P(Z ≤ z)`.
///
/// Uses the Abramowitz–Stegun 7.1.26 erf approximation (max absolute error
/// about 1.5e-7, far below what the attack calibration needs).
///
/// # Examples
///
/// ```
/// let half = sg_math::normal_cdf(0.0);
/// assert!((half - 0.5).abs() < 1e-7);
/// ```
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz & Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard-normal quantile function (inverse CDF).
///
/// Implements the Acklam rational approximation refined by one Halley step,
/// accurate to ~1e-9 over `(0, 1)`.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_quantile: p={p} must be in (0,1)");

    // Coefficients for the Acklam approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] =
        [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against the high-accuracy CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Box–Muller standard-normal sampler.
///
/// Generates pairs internally and caches the spare value, so consecutive
/// calls cost one uniform draw on average.
///
/// # Examples
///
/// ```
/// use sg_math::{seeded_rng, NormalSampler};
///
/// let mut rng = seeded_rng(7);
/// let mut normal = NormalSampler::new(0.0, 1.0);
/// let x = normal.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct NormalSampler {
    mean: f64,
    std: f64,
    spare: Option<f64>,
}

impl NormalSampler {
    /// Creates a sampler for `N(mean, std^2)`.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or non-finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(std >= 0.0 && std.is_finite(), "NormalSampler: invalid std {std}");
        Self { mean, std, spare: None }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        let z = if let Some(s) = self.spare.take() {
            s
        } else {
            // Box–Muller: u1 in (0,1] to avoid ln(0).
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            self.spare = Some(r * theta.sin());
            r * theta.cos()
        };
        self.mean + self.std * z
    }

    /// Draws `n` samples as `f32`, the precision used throughout the
    /// gradient pipeline.
    pub fn sample_vec<R: Rng + ?Sized>(&mut self, rng: &mut R, n: usize) -> Vec<f32> {
        (0..n).map(|_| self.sample(rng) as f32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn cdf_symmetry_and_known_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.0) - 0.841_344_746).abs() < 1e-6);
        assert!((normal_cdf(-1.0) - (1.0 - normal_cdf(1.0))).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 2e-4);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999] {
            let z = normal_quantile(p);
            assert!((normal_cdf(z) - p).abs() < 1e-6, "p={p} z={z}");
        }
    }

    #[test]
    fn quantile_median_is_zero() {
        assert!(normal_quantile(0.5).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "must be in (0,1)")]
    fn quantile_out_of_range_panics() {
        let _ = normal_quantile(1.0);
    }

    #[test]
    fn sampler_moments() {
        let mut rng = seeded_rng(42);
        let mut s = NormalSampler::new(2.0, 3.0);
        let xs: Vec<f64> = (0..200_000).map(|_| s.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean={mean}");
        assert!((var - 9.0).abs() < 0.2, "var={var}");
    }

    #[test]
    fn sampler_zero_std_is_constant() {
        let mut rng = seeded_rng(1);
        let mut s = NormalSampler::new(5.0, 0.0);
        for _ in 0..10 {
            assert_eq!(s.sample(&mut rng), 5.0);
        }
    }

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-5);
    }
}
