//! Sharded upper-triangular pairwise-distance kernels.
//!
//! The pairwise-distance family of robust aggregators (Krum/Multi-Krum and
//! Bulyan) spends essentially all of its time computing the `n(n-1)/2`
//! squared distances between client gradients — an `O(n²·d)` pass that the
//! SignGuard paper's cost comparison (Table IV) measures against. This
//! module flattens the strict upper triangle `(i, j), i < j` into the
//! single index space `0..num_pairs(n)` so that pass shards through
//! [`ParallelExecutor::run_chunks`] exactly like the coordinate kernels in
//! [`crate::vecops`]: the flat distance buffer is split into contiguous
//! [`PAIR_CHUNK`]-sized windows and each window is filled by one executor
//! chunk call.
//!
//! # Determinism
//!
//! Every flat element is one whole distance, computed by
//! [`vecops::l2_distance_sq`]'s fixed [`vecops::REDUCE_BLOCK`] reduction
//! tree without ever crossing a chunk boundary, so the matrix is
//! **bit-identical** at any thread count and any chunk size — the executor
//! only decides *which thread* computes a pair, never the order of
//! floating-point operations inside one distance.

use crate::exec::ParallelExecutor;
use crate::vecops;

/// Pairs per executor chunk. Each pair costs `O(d)` (one full-gradient
/// distance), so chunks are coarse work units even at this small length,
/// while `n = 128` clients still yields 254 chunks to balance across cores.
pub const PAIR_CHUNK: usize = 32;

/// Number of unordered pairs `(i, j), i < j` over `n` items.
pub const fn num_pairs(n: usize) -> usize {
    n * n.saturating_sub(1) / 2
}

/// Flat index where row `i`'s pairs start (row `i` holds `(i, j)` for all
/// `j > i`, so it contributes `n - 1 - i` pairs).
pub const fn row_start(i: usize, n: usize) -> usize {
    // sum_{r < i} (n - 1 - r) = i * (2n - i - 1) / 2, overflow-safe for i = 0.
    i * (2 * n - i - 1) / 2
}

/// Flat index of pair `(i, j)`.
///
/// Requires `i < j < n`; callers pass ordered pairs (see
/// [`PairwiseDistances::get`] for the symmetric view).
pub const fn flat_index(i: usize, j: usize, n: usize) -> usize {
    row_start(i, n) + (j - i - 1)
}

/// The pair `(i, j)` at flat index `p`.
///
/// # Panics
///
/// Panics if `p >= num_pairs(n)`.
pub fn pair_at(p: usize, n: usize) -> (usize, usize) {
    assert!(p < num_pairs(n), "pair_at: index {p} out of {} pairs", num_pairs(n));
    let mut i = 0;
    while row_start(i + 1, n) <= p {
        i += 1;
    }
    (i, i + 1 + (p - row_start(i, n)))
}

/// Writes the squared distances of the flat-pair window
/// `[offset, offset + out.len())` into `out` — the kernel an executor
/// shards (window `k` of a [`PAIR_CHUNK`]-chunked buffer starts at
/// `offset = k * PAIR_CHUNK`).
///
/// # Panics
///
/// Panics if the window exceeds `num_pairs(gradients.len())`.
pub fn pairwise_sq_distances_chunk(gradients: &[Vec<f32>], offset: usize, out: &mut [f32]) {
    if out.is_empty() {
        return;
    }
    let n = gradients.len();
    let total = num_pairs(n);
    assert!(
        offset + out.len() <= total,
        "pairwise chunk {offset}..{} exceeds {total} pairs",
        offset + out.len()
    );
    let (mut i, mut j) = pair_at(offset, n);
    for slot in out.iter_mut() {
        *slot = vecops::l2_distance_sq(&gradients[i], &gradients[j]);
        j += 1;
        if j == n {
            i += 1;
            j = i + 1;
        }
    }
}

/// The full pairwise squared-distance matrix of a gradient batch, stored as
/// the flattened strict upper triangle.
///
/// Computed once per round and shared between Krum scoring and Bulyan's
/// iterative selection — the dominant cost of both rules is this `O(n²·d)`
/// pass, which [`PairwiseDistances::compute`] shards across the given
/// executor.
#[derive(Debug, Clone, PartialEq)]
pub struct PairwiseDistances {
    n: usize,
    flat: Vec<f32>,
}

impl PairwiseDistances {
    /// Computes all pairwise squared distances, sharding the flat pair
    /// space over `exec` in [`PAIR_CHUNK`]-sized windows.
    pub fn compute(exec: &dyn ParallelExecutor, gradients: &[Vec<f32>]) -> Self {
        let n = gradients.len();
        let mut flat = vec![0.0f32; num_pairs(n)];
        exec.run_chunks(&mut flat, PAIR_CHUNK, &|ci, chunk| {
            pairwise_sq_distances_chunk(gradients, ci * PAIR_CHUNK, chunk);
        });
        Self { n, flat }
    }

    /// Number of items the matrix covers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix covers no items.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Squared distance between items `i` and `j` (symmetric; `0.0` on the
    /// diagonal).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f32 {
        assert!(i < self.n && j < self.n, "PairwiseDistances::get({i}, {j}) out of {} items", self.n);
        if i == j {
            return 0.0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.flat[flat_index(a, b, self.n)]
    }

    /// The flattened strict upper triangle, in [`flat_index`] order.
    pub fn flat(&self) -> &[f32] {
        &self.flat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::SeqExecutor;

    #[test]
    fn index_round_trips() {
        for n in [2usize, 3, 7, 20] {
            let mut p = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    assert_eq!(flat_index(i, j, n), p, "({i},{j}) of {n}");
                    assert_eq!(pair_at(p, n), (i, j), "p {p} of {n}");
                    p += 1;
                }
            }
            assert_eq!(p, num_pairs(n));
        }
    }

    #[test]
    fn num_pairs_small_cases() {
        assert_eq!(num_pairs(0), 0);
        assert_eq!(num_pairs(1), 0);
        assert_eq!(num_pairs(2), 1);
        assert_eq!(num_pairs(5), 10);
    }

    fn cloud(n: usize, d: usize) -> Vec<Vec<f32>> {
        (0..n).map(|i| (0..d).map(|j| ((i * d + j) as f32 * 0.37).sin() * 2.0).collect()).collect()
    }

    #[test]
    fn chunked_matches_naive_double_loop() {
        let g = cloud(9, 33);
        let d2 = PairwiseDistances::compute(&SeqExecutor, &g);
        for i in 0..g.len() {
            for j in 0..g.len() {
                let naive = vecops::l2_distance_sq(&g[i], &g[j]);
                assert_eq!(d2.get(i, j).to_bits(), naive.to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn chunk_windows_cover_every_pair_once() {
        let g = cloud(13, 8);
        let total = num_pairs(g.len());
        let whole = PairwiseDistances::compute(&SeqExecutor, &g);
        // Fill via explicit ragged windows instead of the executor.
        let mut flat = vec![f32::NAN; total];
        let mut offset = 0;
        for len in [1usize, 7, 31, 64, total] {
            if offset >= total {
                break;
            }
            let len = len.min(total - offset);
            pairwise_sq_distances_chunk(&g, offset, &mut flat[offset..offset + len]);
            offset += len;
        }
        pairwise_sq_distances_chunk(&g, offset, &mut flat[offset..]);
        for (a, b) in whole.flat().iter().zip(&flat) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn diagonal_is_zero_and_symmetric() {
        let g = cloud(4, 5);
        let d2 = PairwiseDistances::compute(&SeqExecutor, &g);
        for i in 0..4 {
            assert_eq!(d2.get(i, i), 0.0);
            for j in 0..4 {
                assert_eq!(d2.get(i, j).to_bits(), d2.get(j, i).to_bits());
            }
        }
    }

    #[test]
    fn empty_and_single_batches() {
        let d2 = PairwiseDistances::compute(&SeqExecutor, &[]);
        assert!(d2.is_empty());
        let d2 = PairwiseDistances::compute(&SeqExecutor, &[vec![1.0, 2.0]]);
        assert_eq!(d2.len(), 1);
        assert_eq!(d2.get(0, 0), 0.0);
    }
}
