//! Deterministic RNG helpers.
//!
//! Every experiment in the reproduction is seeded so that tables and figures
//! regenerate byte-identically. `SeedStream` derives independent per-client /
//! per-round seeds from a single experiment seed using SplitMix64, the
//! standard seed-expansion construction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a [`StdRng`] from a 64-bit seed.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// SplitMix64 step; used to derive decorrelated seeds from one master seed.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A stream of decorrelated child seeds derived from a master seed.
///
/// # Examples
///
/// ```
/// use sg_math::SeedStream;
///
/// let mut stream = SeedStream::new(1234);
/// let client_rng_0 = stream.next_rng();
/// let client_rng_1 = stream.next_rng();
/// # let _ = (client_rng_0, client_rng_1);
/// ```
#[derive(Debug, Clone)]
pub struct SeedStream {
    state: u64,
}

impl SeedStream {
    /// Creates a stream rooted at `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        Self { state: master_seed }
    }

    /// Returns the next derived 64-bit seed.
    pub fn next_seed(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Returns an [`StdRng`] seeded with the next derived seed.
    pub fn next_rng(&mut self) -> StdRng {
        seeded_rng(self.next_seed())
    }
}

/// Samples `k` distinct indices from `0..n` without replacement (partial
/// Fisher–Yates), in `O(k)` extra memory.
///
/// Used by SignGuard's randomized coordinate selection (10% of gradient
/// coordinates by default). Returns all of `0..n` when `k >= n`.
pub fn sample_indices<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    if k >= n {
        return (0..n).collect();
    }
    // Floyd's algorithm: O(k) expected time, no O(n) buffer.
    let mut chosen = std::collections::HashSet::with_capacity(k);
    let mut out = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j);
        if chosen.insert(t) {
            out.push(t);
        } else {
            chosen.insert(j);
            out.push(j);
        }
    }
    out
}

/// Shuffles `xs` in place (Fisher–Yates).
pub fn shuffle<T, R: Rng + ?Sized>(rng: &mut R, xs: &mut [T]) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(99);
        let mut b = seeded_rng(99);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seed_stream_children_differ() {
        let mut s = SeedStream::new(7);
        let a = s.next_seed();
        let b = s.next_seed();
        assert_ne!(a, b);
    }

    #[test]
    fn seed_stream_reproducible() {
        let mut s1 = SeedStream::new(42);
        let mut s2 = SeedStream::new(42);
        for _ in 0..16 {
            assert_eq!(s1.next_seed(), s2.next_seed());
        }
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = seeded_rng(3);
        for _ in 0..50 {
            let idx = sample_indices(&mut rng, 100, 10);
            assert_eq!(idx.len(), 10);
            let set: std::collections::HashSet<_> = idx.iter().collect();
            assert_eq!(set.len(), 10);
            assert!(idx.iter().all(|&i| i < 100));
        }
    }

    #[test]
    fn sample_indices_k_geq_n_returns_all() {
        let mut rng = seeded_rng(3);
        let idx = sample_indices(&mut rng, 5, 10);
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sample_indices_covers_uniformly() {
        // Chi-square-lite check: over many draws every index appears.
        let mut rng = seeded_rng(11);
        let mut counts = [0usize; 20];
        for _ in 0..2000 {
            for i in sample_indices(&mut rng, 20, 5) {
                counts[i] += 1;
            }
        }
        // Expected 500 each; all within generous bounds.
        assert!(counts.iter().all(|&c| c > 350 && c < 650), "{counts:?}");
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut rng = seeded_rng(5);
        let mut xs: Vec<u32> = (0..50).collect();
        shuffle(&mut rng, &mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
