//! Scalar statistics: means, variances, medians and quantiles.
//!
//! The robust aggregation rules lean heavily on order statistics (median
//! norms, trimmed coordinate means), so the selection routines here use
//! `select_nth_unstable` for `O(n)` behaviour rather than a full sort.

/// Arithmetic mean of `xs`; `0.0` for an empty slice.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|&x| f64::from(x)).sum::<f64>() / xs.len() as f64) as f32
}

/// Population (biased) variance of `xs`; `0.0` for fewer than two elements.
pub fn variance(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = f64::from(mean(xs));
    (xs.iter()
        .map(|&x| {
            let d = f64::from(x) - m;
            d * d
        })
        .sum::<f64>()
        / xs.len() as f64) as f32
}

/// Population standard deviation of `xs`.
pub fn std_dev(xs: &[f32]) -> f32 {
    variance(xs).sqrt()
}

/// Median of `xs` (average of the two central elements for even lengths).
///
/// NaN elements are ordered last, so a slice with a minority of NaNs still
/// yields a finite median — important because Byzantine clients may send NaN
/// gradients on purpose.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn median(xs: &[f32]) -> f32 {
    assert!(!xs.is_empty(), "median of empty slice");
    let mut buf = xs.to_vec();
    let n = buf.len();
    let mid = n / 2;
    let (_, hi, _) = buf.select_nth_unstable_by(mid, |a, b| a.total_cmp(b));
    let hi = *hi;
    if n % 2 == 1 {
        hi
    } else {
        let (_, lo, _) = buf.select_nth_unstable_by(mid - 1, |a, b| a.total_cmp(b));
        (*lo + hi) / 2.0
    }
}

/// `q`-quantile of `xs` using linear interpolation between order statistics.
///
/// `q` is clamped to `[0, 1]`.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn quantile(xs: &[f32], q: f32) -> f32 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    let q = q.clamp(0.0, 1.0);
    let mut buf = xs.to_vec();
    buf.sort_unstable_by(|a, b| a.total_cmp(b));
    let pos = q as f64 * (buf.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        buf[lo]
    } else {
        let w = (pos - lo as f64) as f32;
        buf[lo] * (1.0 - w) + buf[hi] * w
    }
}

/// Mean of `xs` after removing the `k` smallest and `k` largest entries.
///
/// This is the scalar kernel of the coordinate-wise trimmed-mean GAR.
///
/// # Panics
///
/// Panics if `2 * k >= xs.len()`.
pub fn trimmed_mean(xs: &[f32], k: usize) -> f32 {
    assert!(2 * k < xs.len(), "trimmed_mean: trimming {k} from each side empties {} items", xs.len());
    if k == 0 {
        return mean(xs);
    }
    let mut buf = xs.to_vec();
    buf.sort_unstable_by(|a, b| a.total_cmp(b));
    mean(&buf[k..buf.len() - k])
}

/// Index of the minimum value (ties resolved to the first).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn argmin(xs: &[f32]) -> usize {
    assert!(!xs.is_empty(), "argmin of empty slice");
    xs.iter().enumerate().min_by(|(_, a), (_, b)| a.total_cmp(b)).map(|(i, _)| i).expect("non-empty")
}

/// Index of the maximum value (ties resolved to the first).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn argmax(xs: &[f32]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty slice");
    xs.iter().enumerate().max_by(|(_, a), (_, b)| a.total_cmp(b)).map(|(i, _)| i).expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[5.0; 10]), 0.0);
    }

    #[test]
    fn variance_known_value() {
        // Population variance of [1,2,3,4] = 1.25.
        assert!((variance(&[1.0, 2.0, 3.0, 4.0]) - 1.25).abs() < 1e-6);
        assert!((std_dev(&[1.0, 2.0, 3.0, 4.0]) - 1.25f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn median_with_minority_nan_is_finite() {
        let m = median(&[1.0, f32::NAN, 2.0, 3.0, 4.0]);
        assert!(m.is_finite());
        assert_eq!(m, 3.0); // NaN sorts last; median of 5 items is index 2.
    }

    #[test]
    #[should_panic(expected = "median of empty")]
    fn median_empty_panics() {
        let _ = median(&[]);
    }

    #[test]
    fn quantile_endpoints_and_middle() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert!((quantile(&xs, 0.25) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn trimmed_mean_removes_outliers() {
        let xs = [1.0, 2.0, 3.0, 100.0, -100.0];
        assert_eq!(trimmed_mean(&xs, 1), 2.0);
        assert_eq!(trimmed_mean(&xs, 0), mean(&xs));
    }

    #[test]
    #[should_panic(expected = "trimmed_mean")]
    fn trimmed_mean_overtrim_panics() {
        let _ = trimmed_mean(&[1.0, 2.0], 1);
    }

    #[test]
    fn argmin_argmax() {
        let xs = [3.0, -1.0, 7.0, -1.0];
        assert_eq!(argmin(&xs), 1);
        assert_eq!(argmax(&xs), 2);
    }
}
