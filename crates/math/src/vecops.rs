//! Dense vector operations on `f32` slices.
//!
//! These are the hot-path primitives of the reproduction: every aggregation
//! rule, attack and filter reduces to norms, dot products and element-wise
//! arithmetic over flattened gradients.

/// Returns the l2 (Euclidean) norm of `v`.
///
/// Accumulates in `f64` to stay accurate for the million-element gradients
/// produced by the CNN/ResNet models.
///
/// # Examples
///
/// ```
/// assert_eq!(sg_math::vecops::l2_norm(&[3.0, 4.0]), 5.0);
/// ```
pub fn l2_norm(v: &[f32]) -> f32 {
    v.iter().map(|&x| f64::from(x) * f64::from(x)).sum::<f64>().sqrt() as f32
}

/// Returns the squared l2 norm of `v`.
pub fn l2_norm_sq(v: &[f32]) -> f32 {
    v.iter().map(|&x| f64::from(x) * f64::from(x)).sum::<f64>() as f32
}

/// Returns the dot product of `a` and `b`.
///
/// # Panics
///
/// Panics if `a` and `b` have different lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| f64::from(x) * f64::from(y)).sum::<f64>() as f32
}

/// Returns the Euclidean distance between `a` and `b`.
///
/// # Panics
///
/// Panics if `a` and `b` have different lengths.
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "l2_distance: length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum::<f64>()
        .sqrt() as f32
}

/// Returns the squared Euclidean distance between `a` and `b`.
///
/// # Panics
///
/// Panics if `a` and `b` have different lengths.
pub fn l2_distance_sq(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "l2_distance_sq: length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum::<f64>() as f32
}

/// Returns the cosine similarity `a·b / (‖a‖‖b‖)`.
///
/// Returns `0.0` when either vector has zero norm, which is the conservative
/// choice for gradient-similarity features (an all-zero gradient carries no
/// directional information).
///
/// # Panics
///
/// Panics if `a` and `b` have different lengths.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Computes `out[i] = a[i] + b[i]`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn add(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x + y).collect()
}

/// Computes `out[i] = a[i] - b[i]`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn sub(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// Returns `v` scaled by `s`.
pub fn scale(v: &[f32], s: f32) -> Vec<f32> {
    v.iter().map(|&x| x * s).collect()
}

/// In-place `y += alpha * x` (the BLAS `axpy` kernel).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place `v *= s`.
pub fn scale_in_place(v: &mut [f32], s: f32) {
    for x in v.iter_mut() {
        *x *= s;
    }
}

/// Returns the coordinate-wise mean of `vectors` (each of dimension `dim`).
///
/// Returns an all-zero vector when `vectors` is empty.
pub fn mean_vector(vectors: &[Vec<f32>], dim: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; dim];
    if vectors.is_empty() {
        return out;
    }
    for v in vectors {
        assert_eq!(v.len(), dim, "mean_vector: dimension mismatch");
        axpy(1.0, v, &mut out);
    }
    let inv = 1.0 / vectors.len() as f32;
    scale_in_place(&mut out, inv);
    out
}

/// Returns the coordinate-wise (biased) standard deviation of `vectors`.
///
/// This matches `std(g_{i∈[n]})` in the LIE / Min-Max attack definitions:
/// for each coordinate `j`, `σ_j = sqrt(mean_i (g_i[j] - μ_j)^2)`.
pub fn std_vector(vectors: &[Vec<f32>], dim: usize) -> Vec<f32> {
    let mu = mean_vector(vectors, dim);
    let mut out = vec![0.0f32; dim];
    if vectors.len() < 2 {
        return out;
    }
    for v in vectors {
        for (o, (&x, &m)) in out.iter_mut().zip(v.iter().zip(&mu)) {
            let d = x - m;
            *o += d * d;
        }
    }
    let inv = 1.0 / vectors.len() as f32;
    for o in out.iter_mut() {
        *o = (*o * inv).sqrt();
    }
    out
}

/// Sign of each element: `+1.0`, `0.0` or `-1.0`.
pub fn sign_vector(v: &[f32]) -> Vec<f32> {
    v.iter()
        .map(|&x| {
            if x > 0.0 {
                1.0
            } else if x < 0.0 {
                -1.0
            } else {
                0.0
            }
        })
        .collect()
}

/// Counts of (positive, zero, negative) entries in `v`.
///
/// NaN entries count as zero-sign: an undefined coordinate carries no
/// directional information, and the SignGuard filter treats it as neutral.
pub fn sign_counts(v: &[f32]) -> (usize, usize, usize) {
    let mut pos = 0;
    let mut zero = 0;
    let mut neg = 0;
    for &x in v {
        if x > 0.0 {
            pos += 1;
        } else if x < 0.0 {
            neg += 1;
        } else {
            zero += 1;
        }
    }
    (pos, zero, neg)
}

/// Clips `v` in l2 norm to at most `max_norm`, returning the scaled copy.
///
/// Gradients with `‖v‖ ≤ max_norm` are returned unchanged; larger gradients
/// are rescaled onto the ball boundary (`min(1, max_norm/‖v‖)` in the paper's
/// Algorithm 2, line 14).
pub fn clip_norm(v: &[f32], max_norm: f32) -> Vec<f32> {
    let n = l2_norm(v);
    if n <= max_norm || n == 0.0 {
        v.to_vec()
    } else {
        scale(v, max_norm / n)
    }
}

/// Returns `true` if every element of `v` is finite.
pub fn all_finite(v: &[f32]) -> bool {
    v.iter().all(|x| x.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_of_unit_axes() {
        assert_eq!(l2_norm(&[1.0, 0.0, 0.0]), 1.0);
        assert_eq!(l2_norm(&[0.0; 8]), 0.0);
    }

    #[test]
    fn norm_345() {
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert!((l2_norm_sq(&[3.0, 4.0]) - 25.0).abs() < 1e-4);
    }

    #[test]
    fn dot_orthogonal_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn dot_matches_manual() {
        assert!((dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]) - 32.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn distance_symmetry() {
        let a = [1.0, 2.0, -3.0];
        let b = [-2.0, 0.5, 4.0];
        assert!((l2_distance(&a, &b) - l2_distance(&b, &a)).abs() < 1e-7);
        assert!((l2_distance_sq(&a, &b) - l2_distance(&a, &b).powi(2)).abs() < 1e-3);
    }

    #[test]
    fn cosine_parallel_and_antiparallel() {
        let a = [1.0, 2.0, 3.0];
        let b = scale(&a, 2.5);
        let c = scale(&a, -1.0);
        assert!((cosine_similarity(&a, &b) - 1.0).abs() < 1e-6);
        assert!((cosine_similarity(&a, &c) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn mean_vector_of_two() {
        let vs = vec![vec![1.0, 2.0], vec![3.0, 6.0]];
        assert_eq!(mean_vector(&vs, 2), vec![2.0, 4.0]);
    }

    #[test]
    fn mean_vector_empty_is_zero() {
        assert_eq!(mean_vector(&[], 3), vec![0.0; 3]);
    }

    #[test]
    fn std_vector_of_symmetric_pair() {
        let vs = vec![vec![-1.0, 2.0], vec![1.0, 2.0]];
        let s = std_vector(&vs, 2);
        assert!((s[0] - 1.0).abs() < 1e-6);
        assert!(s[1].abs() < 1e-6);
    }

    #[test]
    fn sign_counts_basic() {
        assert_eq!(sign_counts(&[1.0, -2.0, 0.0, 3.0, f32::NAN]), (2, 2, 1));
    }

    #[test]
    fn sign_vector_matches_counts() {
        let v = [0.5, -0.25, 0.0];
        assert_eq!(sign_vector(&v), vec![1.0, -1.0, 0.0]);
    }

    #[test]
    fn clip_norm_leaves_small_vectors() {
        let v = [0.3, 0.4];
        assert_eq!(clip_norm(&v, 1.0), v.to_vec());
    }

    #[test]
    fn clip_norm_scales_large_vectors() {
        let v = [3.0, 4.0];
        let c = clip_norm(&v, 1.0);
        assert!((l2_norm(&c) - 1.0).abs() < 1e-6);
        // Direction preserved.
        assert!((cosine_similarity(&v, &c) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        assert!(all_finite(&[1.0, -2.0]));
        assert!(!all_finite(&[1.0, f32::NAN]));
        assert!(!all_finite(&[f32::INFINITY]));
    }
}
