//! Dense vector operations on `f32` slices.
//!
//! These are the hot-path primitives of the reproduction: every aggregation
//! rule, attack and filter reduces to norms, dot products and element-wise
//! arithmetic over flattened gradients.
//!
//! # Fixed-tree reductions
//!
//! All scalar reductions (`l2_norm`, `dot`, `l2_distance`, …) accumulate in
//! `f64` over fixed [`REDUCE_BLOCK`]-sized blocks: within each block the
//! elements feed the fixed lane tree of [`crate::kernels`] (8 independent
//! lane accumulators, combined left-to-right), then the block partials are
//! summed in block order. Every implementation — sequential, sharded across
//! threads (see `sg-runtime`), SIMD-wide or the scalar fallback — follows
//! exactly this tree, so all of them produce **bit-identical** results at
//! any thread count and any `SG_SIMD` width — floating-point addition is
//! only ever reassociated along boundaries all paths share.

/// Block length of the fixed reduction tree (16 KiB of `f32`s — sized so a
/// block's partial sum stays in cache while still amortizing the f64
/// combine step).
pub const REDUCE_BLOCK: usize = 4096;

/// Number of [`REDUCE_BLOCK`] blocks covering a `len`-element vector.
pub const fn num_blocks(len: usize) -> usize {
    len.div_ceil(REDUCE_BLOCK)
}

/// Writes the per-block partial sums of squares of `v` into `partials`
/// (block `k` covers `v[k*REDUCE_BLOCK..]`, accumulated in `f64` under the
/// fixed lane tree of [`crate::kernels`]).
///
/// `combine_block_partials(partials).sqrt()` equals [`l2_norm`] bit-for-bit;
/// this is the kernel a sharded executor parallelizes.
///
/// # Panics
///
/// Panics if `partials.len() != num_blocks(v.len())`.
pub fn sumsq_block_partials(v: &[f32], partials: &mut [f64]) {
    assert_eq!(partials.len(), num_blocks(v.len()), "sumsq_block_partials: partial count mismatch");
    let width = crate::kernels::dispatch_width();
    for (p, block) in partials.iter_mut().zip(v.chunks(REDUCE_BLOCK)) {
        *p = crate::kernels::sumsq_block(width, block);
    }
}

/// Sums block partials in block order (the root of the fixed reduction
/// tree).
pub fn combine_block_partials(partials: &[f64]) -> f64 {
    let mut total = 0.0f64;
    for &p in partials {
        total += p;
    }
    total
}

/// Returns the l2 (Euclidean) norm of `v`.
///
/// Accumulates in `f64` over the fixed block tree (see the [module
/// docs](self)) to stay accurate for the million-element gradients produced
/// by the CNN/ResNet models while remaining shard-parallelizable without
/// changing a single bit.
///
/// # Examples
///
/// ```
/// assert_eq!(sg_math::vecops::l2_norm(&[3.0, 4.0]), 5.0);
/// ```
pub fn l2_norm(v: &[f32]) -> f32 {
    l2_norm_sq_f64(v).sqrt() as f32
}

/// Returns the squared l2 norm of `v`.
pub fn l2_norm_sq(v: &[f32]) -> f32 {
    l2_norm_sq_f64(v) as f32
}

fn l2_norm_sq_f64(v: &[f32]) -> f64 {
    crate::kernels::l2_norm_sq_f64(v)
}

/// Returns the dot product of `a` and `b`.
///
/// # Panics
///
/// Panics if `a` and `b` have different lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch {} vs {}", a.len(), b.len());
    crate::kernels::dot_f64(a, b) as f32
}

/// Returns the Euclidean distance between `a` and `b`.
///
/// # Panics
///
/// Panics if `a` and `b` have different lengths.
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "l2_distance: length mismatch");
    crate::kernels::l2_distance_sq_f64(a, b).sqrt() as f32
}

/// Returns the squared Euclidean distance between `a` and `b`.
///
/// # Panics
///
/// Panics if `a` and `b` have different lengths.
pub fn l2_distance_sq(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "l2_distance_sq: length mismatch");
    crate::kernels::l2_distance_sq_f64(a, b) as f32
}

/// Returns the cosine similarity `a·b / (‖a‖‖b‖)`.
///
/// Returns `0.0` when either vector has zero norm, which is the conservative
/// choice for gradient-similarity features (an all-zero gradient carries no
/// directional information).
///
/// # Panics
///
/// Panics if `a` and `b` have different lengths.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Computes `out[i] = a[i] + b[i]`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn add(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x + y).collect()
}

/// Computes `out[i] = a[i] - b[i]`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn sub(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// Returns `v` scaled by `s`.
pub fn scale(v: &[f32], s: f32) -> Vec<f32> {
    v.iter().map(|&x| x * s).collect()
}

/// In-place `y += alpha * x` (the BLAS `axpy` kernel).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place `v *= s`.
pub fn scale_in_place(v: &mut [f32], s: f32) {
    for x in v.iter_mut() {
        *x *= s;
    }
}

/// Returns the coordinate-wise mean of `vectors` (each of dimension `dim`).
///
/// Returns an all-zero vector when `vectors` is empty.
pub fn mean_vector(vectors: &[Vec<f32>], dim: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; dim];
    if vectors.is_empty() {
        return out;
    }
    for (i, v) in vectors.iter().enumerate() {
        assert_eq!(v.len(), dim, "mean_vector: vector {i} dimension mismatch");
    }
    mean_chunk(vectors, 0, &mut out);
    out
}

/// Coordinate-wise mean of `vectors` restricted to the coordinate window
/// `[offset, offset + out.len())`, written into `out`.
///
/// Each output coordinate accumulates across vectors under the **canonical
/// pairwise tree** of [`tree_sum_chunk`] (scaled by `1/n` once at the end)
/// — exactly the tree [`mean_vector`] uses — so computing a vector's mean
/// in chunks (sequentially or sharded across threads) is bit-identical to
/// computing it whole, and a hierarchical mean over contiguous
/// power-of-two shards reproduces the flat mean exactly.
///
/// # Panics
///
/// Panics if `vectors` is empty or the window exceeds any vector.
pub fn mean_chunk(vectors: &[Vec<f32>], offset: usize, out: &mut [f32]) {
    crate::kernels::mean_chunk_with(crate::kernels::dispatch_width(), vectors, offset, out);
}

/// Coordinate-wise canonical tree sum of `vectors` over the window
/// `[offset, offset + out.len())`: the fixed balanced binary reduction
/// (split at `next_power_of_two(len) / 2`) whose shape depends only on the
/// vector count. Contiguous power-of-two blocks of the batch are nodes of
/// this tree, so per-shard tree sums recombined by another tree sum (in
/// shard order) equal the flat sum bit for bit — the identity behind the
/// hierarchical mean-of-means composition (see
/// [`crate::kernels::tree_sum_chunk_with`]).
///
/// # Panics
///
/// Panics if `vectors` is empty or the window exceeds any vector.
pub fn tree_sum_chunk(vectors: &[Vec<f32>], offset: usize, out: &mut [f32]) {
    crate::kernels::tree_sum_chunk_with(crate::kernels::dispatch_width(), vectors, offset, out);
}

/// Whole-vector [`tree_sum_chunk`]: the canonical tree sum of `vectors`,
/// each of dimension `dim`. Returns an all-zero vector when `vectors` is
/// empty.
pub fn tree_sum_vector(vectors: &[Vec<f32>], dim: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; dim];
    if vectors.is_empty() {
        return out;
    }
    for (i, v) in vectors.iter().enumerate() {
        assert_eq!(v.len(), dim, "tree_sum_vector: vector {i} dimension mismatch");
    }
    tree_sum_chunk(vectors, 0, &mut out);
    out
}

/// Coordinate-wise trimmed mean over the window `[offset, offset +
/// out.len())`: per coordinate, drop the `trim` smallest and largest
/// values, average the rest. Chunk-order independent by construction
/// (each coordinate is processed independently).
///
/// # Panics
///
/// Panics if `vectors` is empty, the window exceeds any vector, or
/// `2 * trim >= vectors.len()`.
pub fn trimmed_mean_chunk(vectors: &[Vec<f32>], trim: usize, offset: usize, out: &mut [f32]) {
    assert!(!vectors.is_empty(), "trimmed_mean_chunk: empty batch");
    assert!(2 * trim < vectors.len(), "trimmed_mean_chunk: trim {trim} leaves no values");
    let end = offset + out.len();
    for v in vectors {
        assert!(v.len() >= end, "trimmed_mean_chunk: window {offset}..{end} exceeds dim {}", v.len());
    }
    let mut col = vec![0.0f32; vectors.len()];
    for (k, o) in out.iter_mut().enumerate() {
        let j = offset + k;
        for (c, v) in col.iter_mut().zip(vectors) {
            *c = v[j];
        }
        *o = crate::stats::trimmed_mean(&col, trim);
    }
}

/// Coordinate-wise median over the window `[offset, offset + out.len())`.
/// Chunk-order independent by construction.
///
/// # Panics
///
/// Panics if `vectors` is empty or the window exceeds any vector.
pub fn median_chunk(vectors: &[Vec<f32>], offset: usize, out: &mut [f32]) {
    assert!(!vectors.is_empty(), "median_chunk: empty batch");
    let end = offset + out.len();
    for v in vectors {
        assert!(v.len() >= end, "median_chunk: window {offset}..{end} exceeds dim {}", v.len());
    }
    let mut col = vec![0.0f32; vectors.len()];
    for (k, o) in out.iter_mut().enumerate() {
        let j = offset + k;
        for (c, v) in col.iter_mut().zip(vectors) {
            *c = v[j];
        }
        *o = crate::stats::median(&col);
    }
}

/// Returns the coordinate-wise (biased) standard deviation of `vectors`.
///
/// This matches `std(g_{i∈[n]})` in the LIE / Min-Max attack definitions:
/// for each coordinate `j`, `σ_j = sqrt(mean_i (g_i[j] - μ_j)^2)`.
pub fn std_vector(vectors: &[Vec<f32>], dim: usize) -> Vec<f32> {
    let mu = mean_vector(vectors, dim);
    let mut out = vec![0.0f32; dim];
    if vectors.len() < 2 {
        return out;
    }
    for v in vectors {
        for (o, (&x, &m)) in out.iter_mut().zip(v.iter().zip(&mu)) {
            let d = x - m;
            *o += d * d;
        }
    }
    let inv = 1.0 / vectors.len() as f32;
    for o in out.iter_mut() {
        *o = (*o * inv).sqrt();
    }
    out
}

/// Sign of each element: `+1.0`, `0.0` or `-1.0`.
pub fn sign_vector(v: &[f32]) -> Vec<f32> {
    v.iter()
        .map(|&x| {
            if x > 0.0 {
                1.0
            } else if x < 0.0 {
                -1.0
            } else {
                0.0
            }
        })
        .collect()
}

/// Counts of (positive, zero, negative) entries in `v`.
///
/// NaN entries count as zero-sign: an undefined coordinate carries no
/// directional information, and the SignGuard filter treats it as neutral.
pub fn sign_counts(v: &[f32]) -> (usize, usize, usize) {
    crate::kernels::sign_counts(v)
}

/// Clips `v` in l2 norm to at most `max_norm`, returning the scaled copy.
///
/// Gradients with `‖v‖ ≤ max_norm` are returned unchanged; larger gradients
/// are rescaled onto the ball boundary (`min(1, max_norm/‖v‖)` in the paper's
/// Algorithm 2, line 14).
pub fn clip_norm(v: &[f32], max_norm: f32) -> Vec<f32> {
    let n = l2_norm(v);
    if n <= max_norm || n == 0.0 {
        v.to_vec()
    } else {
        scale(v, max_norm / n)
    }
}

/// Returns `true` if every element of `v` is finite.
pub fn all_finite(v: &[f32]) -> bool {
    v.iter().all(|x| x.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_of_unit_axes() {
        assert_eq!(l2_norm(&[1.0, 0.0, 0.0]), 1.0);
        assert_eq!(l2_norm(&[0.0; 8]), 0.0);
    }

    #[test]
    fn norm_345() {
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert!((l2_norm_sq(&[3.0, 4.0]) - 25.0).abs() < 1e-4);
    }

    #[test]
    fn dot_orthogonal_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn dot_matches_manual() {
        assert!((dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]) - 32.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn distance_symmetry() {
        let a = [1.0, 2.0, -3.0];
        let b = [-2.0, 0.5, 4.0];
        assert!((l2_distance(&a, &b) - l2_distance(&b, &a)).abs() < 1e-7);
        assert!((l2_distance_sq(&a, &b) - l2_distance(&a, &b).powi(2)).abs() < 1e-3);
    }

    #[test]
    fn cosine_parallel_and_antiparallel() {
        let a = [1.0, 2.0, 3.0];
        let b = scale(&a, 2.5);
        let c = scale(&a, -1.0);
        assert!((cosine_similarity(&a, &b) - 1.0).abs() < 1e-6);
        assert!((cosine_similarity(&a, &c) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn mean_vector_of_two() {
        let vs = vec![vec![1.0, 2.0], vec![3.0, 6.0]];
        assert_eq!(mean_vector(&vs, 2), vec![2.0, 4.0]);
    }

    #[test]
    fn mean_vector_empty_is_zero() {
        assert_eq!(mean_vector(&[], 3), vec![0.0; 3]);
    }

    #[test]
    fn std_vector_of_symmetric_pair() {
        let vs = vec![vec![-1.0, 2.0], vec![1.0, 2.0]];
        let s = std_vector(&vs, 2);
        assert!((s[0] - 1.0).abs() < 1e-6);
        assert!(s[1].abs() < 1e-6);
    }

    #[test]
    fn sign_counts_basic() {
        assert_eq!(sign_counts(&[1.0, -2.0, 0.0, 3.0, f32::NAN]), (2, 2, 1));
    }

    #[test]
    fn sign_vector_matches_counts() {
        let v = [0.5, -0.25, 0.0];
        assert_eq!(sign_vector(&v), vec![1.0, -1.0, 0.0]);
    }

    #[test]
    fn clip_norm_leaves_small_vectors() {
        let v = [0.3, 0.4];
        assert_eq!(clip_norm(&v, 1.0), v.to_vec());
    }

    #[test]
    fn clip_norm_scales_large_vectors() {
        let v = [3.0, 4.0];
        let c = clip_norm(&v, 1.0);
        assert!((l2_norm(&c) - 1.0).abs() < 1e-6);
        // Direction preserved.
        assert!((cosine_similarity(&v, &c) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        assert!(all_finite(&[1.0, -2.0]));
        assert!(!all_finite(&[1.0, f32::NAN]));
        assert!(!all_finite(&[f32::INFINITY]));
    }

    /// A vector long enough to span several reduction blocks, with values
    /// chosen so reassociating the sum across block boundaries would change
    /// low-order bits (mixed magnitudes, irrational increments).
    fn long_vector(len: usize) -> Vec<f32> {
        (0..len).map(|i| ((i as f32) * 0.618_034).sin() * (1.0 + (i % 17) as f32 * 123.456)).collect()
    }

    #[test]
    fn block_partials_match_scalar_norm_exactly() {
        // 0 ULP: the scalar norm follows the same fixed reduction tree as
        // the block-partial path, including across split boundaries.
        for len in [1, REDUCE_BLOCK - 1, REDUCE_BLOCK, REDUCE_BLOCK + 1, 3 * REDUCE_BLOCK + 17] {
            let v = long_vector(len);
            let mut partials = vec![0.0f64; num_blocks(len)];
            sumsq_block_partials(&v, &mut partials);
            let via_partials = combine_block_partials(&partials).sqrt() as f32;
            assert_eq!(via_partials.to_bits(), l2_norm(&v).to_bits(), "len {len}");
        }
    }

    #[test]
    fn mean_chunks_match_whole_mean_exactly() {
        // 0 ULP across arbitrary (even unaligned) split boundaries: per
        // coordinate the accumulation order never changes.
        let n = 7;
        let dim = 2 * REDUCE_BLOCK + 331;
        let vectors: Vec<Vec<f32>> =
            (0..n).map(|i| (0..dim).map(|j| ((i * dim + j) as f32 * 0.377).cos() * 3.0).collect()).collect();
        let whole = mean_vector(&vectors, dim);
        for chunk_len in [1usize, 613, REDUCE_BLOCK, dim] {
            let mut chunked = vec![0.0f32; dim];
            let mut offset = 0;
            while offset < dim {
                let len = chunk_len.min(dim - offset);
                let (head, tail) = chunked.split_at_mut(offset + len);
                let _ = tail;
                mean_chunk(&vectors, offset, &mut head[offset..]);
                offset += len;
            }
            for (a, b) in whole.iter().zip(&chunked) {
                assert_eq!(a.to_bits(), b.to_bits(), "chunk_len {chunk_len}");
            }
        }
    }

    #[test]
    fn trimmed_and_median_chunks_match_whole() {
        let n = 9;
        let dim = 301;
        let vectors: Vec<Vec<f32>> =
            (0..n).map(|i| (0..dim).map(|j| ((i * 31 + j * 7) % 97) as f32 - 48.0).collect()).collect();
        let mut whole_t = vec![0.0f32; dim];
        trimmed_mean_chunk(&vectors, 2, 0, &mut whole_t);
        let mut whole_m = vec![0.0f32; dim];
        median_chunk(&vectors, 0, &mut whole_m);
        let mut part_t = vec![0.0f32; dim];
        let mut part_m = vec![0.0f32; dim];
        for (start, len) in [(0usize, 100usize), (100, 150), (250, 51)] {
            trimmed_mean_chunk(&vectors, 2, start, &mut part_t[start..start + len]);
            median_chunk(&vectors, start, &mut part_m[start..start + len]);
        }
        assert_eq!(whole_t, part_t);
        assert_eq!(whole_m, part_m);
    }

    #[test]
    fn dot_and_distance_still_correct_after_blocking() {
        let a = long_vector(2 * REDUCE_BLOCK + 5);
        // Self-distance zero, self-dot equals squared norm.
        assert_eq!(l2_distance(&a, &a), 0.0);
        let d = dot(&a, &a);
        let n2 = l2_norm_sq(&a);
        assert_eq!(d.to_bits(), n2.to_bits());
    }
}
