//! Autovectorization codegen test: disassembles this test binary and
//! asserts the wide lane kernels compiled to packed `f64` instructions.
//!
//! The kernel layer's performance claim rests on LLVM turning the wide
//! lane loops into SIMD; this test keeps that from silently regressing
//! (e.g. a refactor that reintroduces a dependent chain). It inspects the
//! `probe_*` entry points (`sg_math::kernels`), which are `#[inline(never)]`
//! so their symbols and bodies survive into the binary.
//!
//! The test is honest about where it can run: it skips (passing) on
//! non-x86_64 hosts, when `objdump` is unavailable, and in debug builds
//! (the dev profile does not vectorize). CI runs it in release via the
//! `simd-smoke` job.

use std::process::Command;

use sg_math::kernels::{probe_dot_wide, probe_sumsq_scalar, probe_sumsq_wide};

/// Packed-double mnemonics any of which prove the loop vectorized
/// (SSE2 baseline, AVX, and FMA forms).
const PACKED_F64: &[&str] =
    &["addpd", "mulpd", "subpd", "vaddpd", "vmulpd", "vsubpd", "vfmadd132pd", "vfmadd213pd", "vfmadd231pd"];

/// Extracts the disassembled body of the function whose symbol name
/// contains `needle` from `objdump -d` output.
fn function_body<'a>(disasm: &'a str, needle: &str) -> Option<&'a str> {
    // objdump section headers look like `0000000000012345 <symbol>:`.
    let start = disasm.lines().position(|l| l.ends_with(">:") && l.contains(needle))?;
    let mut body_end = disasm.lines().count();
    for (i, line) in disasm.lines().enumerate().skip(start + 1) {
        if line.ends_with(">:") {
            body_end = i;
            break;
        }
    }
    let lines: Vec<&str> = disasm.lines().collect();
    let from = disasm.as_ptr() as usize;
    let s = lines[start].as_ptr() as usize - from;
    let e = lines[body_end - 1].as_ptr() as usize - from + lines[body_end - 1].len();
    Some(&disasm[s..e])
}

#[test]
fn wide_kernels_compile_to_packed_f64() {
    if cfg!(debug_assertions) {
        eprintln!("skipping codegen test: debug build does not vectorize (run with --release)");
        return;
    }
    if !cfg!(target_arch = "x86_64") {
        eprintln!("skipping codegen test: packed-double mnemonics are x86_64-specific");
        return;
    }
    // Force the probes (and their kernels) to be linked.
    let v: Vec<f32> = (0..4096).map(|i| (i as f32).sin()).collect();
    let w: Vec<f32> = (0..4096).map(|i| (i as f32).cos()).collect();
    let sink = probe_sumsq_wide(std::hint::black_box(&v))
        + probe_sumsq_scalar(std::hint::black_box(&v))
        + probe_dot_wide(std::hint::black_box(&v), std::hint::black_box(&w));
    assert!(sink.is_finite());

    let exe = std::env::current_exe().expect("current_exe");
    let out = match Command::new("objdump").arg("-d").arg(&exe).output() {
        Ok(out) if out.status.success() => out,
        Ok(out) => {
            eprintln!("skipping codegen test: objdump failed: {}", String::from_utf8_lossy(&out.stderr));
            return;
        }
        Err(e) => {
            eprintln!("skipping codegen test: objdump unavailable: {e}");
            return;
        }
    };
    let disasm = String::from_utf8_lossy(&out.stdout);

    // The lane kernel may stay a standalone symbol (preferred: inspect it
    // directly) or be inlined into its probe — accept packed instructions
    // in either body.
    for (lane_fn, probe) in [("sumsq_lanes_wide", "probe_sumsq_wide"), ("dot_lanes_wide", "probe_dot_wide")] {
        let body = function_body(&disasm, lane_fn)
            .or_else(|| function_body(&disasm, probe))
            .unwrap_or_else(|| panic!("neither {lane_fn} nor {probe} found in disassembly"));
        let vectorized = PACKED_F64.iter().any(|m| body.contains(m));
        assert!(
            vectorized,
            "{lane_fn} did not compile to packed f64 instructions (looked for {PACKED_F64:?});\n\
             the wide lane kernel layout stopped autovectorizing.\nBody:\n{body}"
        );
    }
}
