//! The client-side protocol state machine, shared by the deterministic
//! loopback transport and the real-socket load generator.
//!
//! A [`ClientDriver`] wraps one [`sg_fl::Client`] (its model replica,
//! momentum state and RNG stream) and answers protocol messages with
//! protocol messages; the caller owns the I/O. Both transports therefore
//! run *exactly* the same client logic — the gradient a client submits
//! depends only on the model bytes it received and its own RNG stream,
//! never on when or how the bytes arrived.
//!
//! The one subtlety is the gradient cache: computing a gradient advances
//! the client's RNG and momentum state, so it must happen **exactly once
//! per round**. A re-delivered `Model` or a backpressure retry re-sends
//! the cached update instead of recomputing — recomputation would
//! silently fork the RNG stream and break the determinism contract.

use std::sync::Arc;

use sg_aggregators::{GradientRepr, QuantizedVec, SignNormVec};
use sg_data::Dataset;
use sg_fl::Client;

use crate::wire::{Message, RejectReason};

/// A client-side protocol peer: anything that can sit on the far end of
/// a server connection and answer protocol messages with protocol
/// messages, with the caller owning all I/O.
///
/// Two implementations exist: [`ClientDriver`] (a leaf-level federated
/// client wrapping one [`sg_fl::Client`]) and
/// [`LeafNode`](crate::LeafNode) (a hierarchical-aggregation leaf that
/// aggregates a whole client shard and submits the shard update upward).
/// The loopback transport ([`crate::LoopbackNet`]) and the socket drive
/// loops are written against this trait, so a *tree of services* runs on
/// exactly the machinery a flat fleet does.
pub trait NetPeer {
    /// The messages to send immediately after the connection opens.
    fn on_connect(&mut self) -> Vec<Message>;

    /// Feeds one server message through the peer's state machine,
    /// returning the replies to send.
    fn on_message(&mut self, msg: &Message) -> Vec<Message>;

    /// Whether the peer has seen the final `RoundAdvance` (or a fatal
    /// error) and will produce no further messages.
    fn is_done(&self) -> bool;
}

/// How a [`ClientDriver`] encodes its gradient for the wire.
///
/// `None` (the default) submits dense `f32`s — the bit-exact form the
/// loopback determinism contract compares against the in-process run.
/// The compressed modes trade fidelity for bytes: `SignNorm` ships
/// bit-packed signs plus the L2 norm (~1/32nd the dense frame),
/// `QuantizedI8` ships one byte per coordinate plus a scale (~1/4th).
/// The server aggregates them under the representation contracts
/// documented on [`sg_aggregators::GradientRepr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Compression {
    /// Dense `f32` coordinates (bit-exact; the default).
    #[default]
    None,
    /// Bit-packed signs + L2 norm.
    SignNorm,
    /// Per-vector-scaled 8-bit quantization.
    QuantizedI8,
}

/// Client-side protocol state machine: joins, fetches the model,
/// computes exactly one gradient per round (re-deliveries reuse the
/// cache, so RNG streams never fork), and submits until the final
/// `RoundAdvance`.
pub struct ClientDriver {
    client: Client,
    train: Arc<Dataset>,
    batch_size: usize,
    compression: Compression,
    /// The one update computed for the current round: `(round, loss,
    /// gradient)`, already in wire representation. Resubmissions reuse
    /// it; a new round replaces it.
    cached: Option<(u64, f32, GradientRepr)>,
    done: bool,
    submits: u64,
    retries: u64,
}

impl std::fmt::Debug for ClientDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientDriver")
            .field("id", &self.client.id())
            .field("done", &self.done)
            .field("submits", &self.submits)
            .finish()
    }
}

impl ClientDriver {
    /// Wraps a seeded client (from [`sg_fl::build_participants`], so the
    /// fleet matches the in-process run exactly).
    pub fn new(client: Client, train: Arc<Dataset>, batch_size: usize) -> Self {
        Self {
            client,
            train,
            batch_size,
            compression: Compression::None,
            cached: None,
            done: false,
            submits: 0,
            retries: 0,
        }
    }

    /// Selects the wire representation for this client's submissions.
    #[must_use]
    pub fn with_compression(mut self, compression: Compression) -> Self {
        self.compression = compression;
        self
    }

    /// The wrapped client's id.
    pub fn id(&self) -> u64 {
        self.client.id() as u64
    }

    /// Whether the driver has seen the final `RoundAdvance` (or a fatal
    /// error) and will produce no further messages.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Updates submitted (first attempts, not retries).
    pub fn submits(&self) -> u64 {
        self.submits
    }

    /// Resubmissions after backpressure rejects.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// The messages to send immediately after the connection opens.
    pub fn on_connect(&mut self) -> Vec<Message> {
        vec![Message::Join { client_id: self.id() }]
    }

    /// Feeds one server message through the state machine, returning the
    /// replies to send.
    pub fn on_message(&mut self, msg: &Message) -> Vec<Message> {
        match msg {
            Message::Welcome { .. } => vec![Message::FetchModel],
            Message::Model { round, params } => vec![self.submit_for(*round, params)],
            Message::SubmitAck { .. } => Vec::new(),
            Message::SubmitReject { reason: RejectReason::Backpressure, .. } => {
                // Queue full: resend the cached update. The transport layer
                // owns pacing (the TCP load generator sleeps before the
                // retry); the gradient itself must not be recomputed.
                self.retries += 1;
                let (round, loss, gradient) =
                    self.cached.clone().expect("backpressure reject without a cached submit");
                vec![Message::SubmitUpdate { round, loss, gradient }]
            }
            Message::SubmitReject { reason: RejectReason::Duplicate, .. } => {
                // A retry raced its original: the first copy landed. Wait
                // for the ack / round advance.
                Vec::new()
            }
            Message::SubmitReject { .. } => {
                // Wrong round or unknown client: resync from the server.
                vec![Message::FetchModel]
            }
            Message::RoundAdvance { done: false, .. } => vec![Message::FetchModel],
            Message::RoundAdvance { done: true, .. } => {
                self.done = true;
                vec![Message::Bye]
            }
            Message::Error { .. } => {
                self.done = true;
                Vec::new()
            }
            // Client-direction messages arriving at a client: ignore.
            _ => Vec::new(),
        }
    }

    /// The submission for `round`, computing (and encoding) the gradient
    /// exactly once.
    fn submit_for(&mut self, round: u64, params: &[f32]) -> Message {
        if self.cached.as_ref().is_none_or(|(r, _, _)| *r != round) {
            let gradient = self.client.local_gradient(params, &self.train, self.batch_size);
            let loss = self.client.last_loss();
            let repr = match self.compression {
                Compression::None => GradientRepr::Dense(gradient),
                Compression::SignNorm => GradientRepr::SignNorm(SignNormVec::pack(&gradient)),
                Compression::QuantizedI8 => GradientRepr::QuantizedI8(QuantizedVec::quantize(&gradient)),
            };
            self.cached = Some((round, loss, repr));
            self.submits += 1;
        }
        let (round, loss, gradient) = self.cached.clone().expect("just cached");
        Message::SubmitUpdate { round, loss, gradient }
    }
}

impl NetPeer for ClientDriver {
    fn on_connect(&mut self) -> Vec<Message> {
        ClientDriver::on_connect(self)
    }

    fn on_message(&mut self, msg: &Message) -> Vec<Message> {
        ClientDriver::on_message(self, msg)
    }

    fn is_done(&self) -> bool {
        ClientDriver::is_done(self)
    }
}
