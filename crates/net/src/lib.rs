//! Networked FL service: the SignGuard round pipeline behind a framed
//! wire protocol, over a pluggable [`Transport`].
//!
//! The paper's protocol is client/server — clients submit gradients, the
//! server filters and aggregates — and this crate takes the in-process
//! reproduction over the wire without giving up its determinism
//! contract. One server loop ([`FlService`]) speaks the protocol over
//! either backend:
//!
//! * [`LoopbackNet`] — in-process, seeded virtual clock, bit-for-bit
//!   reproducible; the CI determinism surface.
//! * [`TcpServerTransport`] — real sockets, one handler per connection on
//!   a [`sg_runtime::WorkerPool`], bounded submit queue with
//!   backpressure; the deployment/throughput surface.
//!
//! # Wire format
//!
//! Every message is one frame (all integers little-endian):
//!
//! | bytes | field | meaning |
//! |---|---|---|
//! | 4 | `len: u32` | payload length |
//! | 4 | `len_chk: u32` | `!len` — distinguishes corruption from truncation |
//! | `len` | payload | kind byte + message fields |
//! | 4 | `crc: u32` | CRC-32 (IEEE) of the payload |
//!
//! The payload is a kind byte followed by the fields of one [`Message`]:
//!
//! | kind | message | direction | fields |
//! |---|---|---|---|
//! | 1 | `Join` | c→s | `client_id: u64` |
//! | 2 | `Welcome` | s→c | `client_id, num_clients, round, total_rounds: u64` |
//! | 3 | `FetchModel` | c→s | — |
//! | 4 | `Model` | s→c | `round: u64`, `params: [f32]` |
//! | 5 | `SubmitUpdate` | c→s | `round: u64`, `loss: f32`, `repr: u8`, gradient (see below) |
//! | 6 | `SubmitAck` | s→c | `round, pending: u64` |
//! | 7 | `SubmitReject` | s→c | `round: u64`, `reason: u8` |
//! | 8 | `RoundAdvance` | s→c | `round: u64`, `done: u8` |
//! | 9 | `Bye` | c→s | — |
//! | 10 | `Error` | s→c | `detail: str` (u32 length prefix) |
//!
//! `f32` values travel as raw IEEE-754 bit patterns (`[f32]` is a `u32`
//! count followed by the bits), so parameter vectors and gradients
//! round-trip **bit-for-bit** — the foundation of every determinism claim
//! below. `str` is a `u32` byte length followed by UTF-8 bytes.
//!
//! A `SubmitUpdate` gradient is discriminated by the `repr` tag byte
//! (see [`sg_aggregators::GradientRepr`] for the aggregation contracts):
//!
//! | repr | representation | fields after the tag | bytes per coord |
//! |---|---|---|---|
//! | 0 | dense `f32` | `gradient: [f32]` | 4 |
//! | 1 | bit-packed signs + norm | `dim: u32`, `norm: f32`, `zeros: u32` count + indices, `⌈dim/64⌉ × u64` sign words | ~1/8 |
//! | 2 | 8-bit quantized | `scale: f32`, `len: u32`, `len × i8` levels | 1 |
//!
//! The sign-word count is implied by `dim`, so a repr-1 submission
//! with no zero coordinates costs `dim/8 + 12` payload bytes —
//! 1/32nd of the dense frame. The decoder validates every structural
//! invariant (zeros strictly ascending and in range, no sign bit
//! beyond `dim`, no coordinate both positive and zero) and rejects
//! violations as `Malformed`, so a hostile frame can never panic the
//! server.
//!
//! # The Transport contract
//!
//! A [`Transport`] multiplexes connections into one event stream:
//! `Opened` precedes any `Msg` for a connection, `Closed` is final,
//! `poll` returning `None` means "nothing can arrive right now". The
//! service is written against this trait alone — it never knows which
//! backend it runs on.
//!
//! # Determinism
//!
//! * **Loopback ≡ in-process**: a service run over [`LoopbackNet`]
//!   produces a final model bit-identical to [`sg_fl::Simulator`] on the
//!   synchronous schedule with the same seeds, at any `SG_THREADS`
//!   (`tests/net_determinism.rs`). The client fleet comes from the same
//!   seed schedule ([`sg_fl::build_participants`]), gradients cross the
//!   codec bit-exactly, the service ingests each completed round in
//!   ascending client id — the same float order as the in-process Sync
//!   drain — and the server-side stages are literally the same code
//!   ([`sg_fl::RoundPipeline::apply_batch`]).
//! * **Loopback ≡ loopback**: the virtual clock is seeded, so a loopback
//!   run is a pure function of `(config seed, latency seed)` — and the
//!   final model is additionally *latency-seed invariant*, because
//!   arrival order is canonicalized away.
//! * **TCP**: arrival order is nondeterministic, so traces and reject
//!   counts vary — but the final model still matches the loopback run
//!   bit-for-bit (the `net-smoke` CI job proves it on a real socket run).
//!   Backpressure rejects only ever delay a submission, never drop it:
//!   clients retry the *cached* gradient, so the floats entering the
//!   pipeline are unchanged.
//!
//! # Hierarchical aggregation: topology and the composition contract
//!
//! The [`tree`] module scales the service past resident-fleet rounds: a
//! [`TreeTopology`] splits the id space into contiguous power-of-two
//! shards, each shard is served by a [`LeafNode`] that samples and
//! streams its participants from a lazily-materialized
//! [`sg_fl::VirtualPopulation`] (peak resident gradients are the shard
//! sample, never the population), and the root is an ordinary
//! [`FlService`] whose "clients" are the leaves. Which rules survive the
//! funnel, and how faithfully, is declared per rule by
//! [`sg_aggregators::Aggregator::composition`]:
//!
//! | strategy | rules | fidelity | shard update on the wire |
//! |---|---|---|---|
//! | `ExactSum` | Mean | **bit-identical** to flat (shard blocks are canonical-tree nodes; root scales once) | dense unscaled sum |
//! | `Rerun` | coordinate median, trimmed mean, GeoMed | approximate (X-of-Xs; composed coordinates stay within the shard-aggregate envelope) | dense shard aggregate |
//! | `RerunSignNorm` | SignGuard, sign-majority | approximate; the root reruns the rule **natively on packed sign+norm** shard statistics — the funnel never densifies | `SignNorm`, ~1/32nd dense bytes |
//! | `Densify` | Krum, Bulyan, DnC, … | no shard form — the tree runners refuse; run flat | — |
//!
//! The loopback tree run is bit-identical at any `SG_THREADS` and a TCP
//! tree run reproduces the loopback root model bit-for-bit (CI's
//! `tree-smoke` job drives both through `exp_tree`); the tree/flat
//! comparison itself is swept by the `tree` section of `sg-bench`. One
//! semantic caveat: adversaries act **shard-locally** — each leaf's
//! attack sees only its own shard (see the [`tree`] module docs).

mod driver;
mod loopback;
mod service;
mod tcp;
mod transport;
pub mod tree;
pub mod wire;

pub use driver::{ClientDriver, Compression, NetPeer};
pub use loopback::LoopbackNet;
pub use service::{FlService, ServiceReport};
pub use tcp::{TcpClient, TcpServerTransport};
pub use transport::{ConnId, Event, Transport, TransportError};
pub use tree::{
    build_leaves, drive_peer_tcp, root_aggregator, run_flat_virtual, run_tree_loopback, run_tree_tcp,
    FlatReport, LeafNode, TreeTopology,
};
pub use wire::{DecodeLimits, FrameBuffer, Message, RejectReason, WireError};
