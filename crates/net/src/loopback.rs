//! The deterministic in-process transport: a seeded virtual clock
//! delivering real encoded frames.
//!
//! [`LoopbackNet`] owns the client fleet (as [`ClientDriver`]s) and plays
//! both ends of every connection. Each `send` draws a latency from a
//! seeded RNG and schedules the frame on a binary heap keyed by
//! `(virtual time, sequence)`; `poll` pops the earliest delivery,
//! advances the clock, and either hands the event to the server or feeds
//! the frame through the destination driver — whose replies are
//! scheduled the same way. Time is counted in abstract ticks, never wall
//! time, so a run is a pure function of its seeds: bit-for-bit
//! reproducible at any thread count, exactly like the in-process
//! simulator's virtual-clock schedules.
//!
//! Every message crosses the real codec (`wire::encode` → [`FrameBuffer`]
//! → decode), so the loopback determinism tests exercise the same frame
//! bytes the TCP backend puts on a socket — the codec is *inside* the
//! contract, not mocked out of it.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use rand::rngs::StdRng;
use rand::Rng;
use sg_math::seeded_rng;

use crate::driver::{ClientDriver, NetPeer};
use crate::transport::{ConnId, Event, Transport, TransportError};
use crate::wire::{encode, FrameBuffer, Message};

enum Delivery {
    /// The connection comes up (the driver then sends its `Join`).
    Open,
    /// One encoded frame travelling client → server.
    ToServer(Vec<u8>),
    /// One encoded frame travelling server → client.
    ToClient(Vec<u8>),
}

struct Scheduled {
    at: u64,
    seq: u64,
    conn: usize,
    delivery: Delivery,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    /// Reversed: the heap is a max-heap, we want the *earliest* delivery
    /// first. `seq` breaks ties, so ordering is total and deterministic.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct Slot {
    driver: Box<dyn NetPeer>,
    open: bool,
    /// Reassembly for frames headed to the server on this connection.
    server_rx: FrameBuffer,
    /// Reassembly for frames headed to this client.
    client_rx: FrameBuffer,
}

/// Deterministic in-process transport: every frame crosses the real
/// codec on a seeded virtual clock, so a run is a pure function of the
/// configuration and latency seeds.
pub struct LoopbackNet {
    slots: Vec<Slot>,
    heap: BinaryHeap<Scheduled>,
    /// Closes requested by the server, surfaced before timed deliveries.
    pending_closed: VecDeque<ConnId>,
    now: u64,
    seq: u64,
    rng: StdRng,
    max_latency: u64,
}

impl LoopbackNet {
    /// A loopback fleet. `seed` drives the latency draws; `max_latency`
    /// is the largest per-frame delay in virtual ticks (0 means every
    /// frame takes exactly one tick — handy for minimal traces).
    pub fn new(drivers: Vec<ClientDriver>, seed: u64, max_latency: u64) -> Self {
        Self::from_peers(
            drivers.into_iter().map(|d| Box::new(d) as Box<dyn NetPeer>).collect(),
            seed,
            max_latency,
        )
    }

    /// A loopback net over arbitrary protocol peers — the seam a
    /// hierarchical tree stands on: the peers of a root service's
    /// loopback are [`LeafNode`](crate::LeafNode)s instead of leaf-level
    /// [`ClientDriver`]s, and everything else (codec, virtual clock,
    /// determinism contract) is unchanged.
    pub fn from_peers(peers: Vec<Box<dyn NetPeer>>, seed: u64, max_latency: u64) -> Self {
        let mut net = Self {
            slots: peers
                .into_iter()
                .map(|driver| Slot {
                    driver,
                    open: true,
                    server_rx: FrameBuffer::new(),
                    client_rx: FrameBuffer::new(),
                })
                .collect(),
            heap: BinaryHeap::new(),
            pending_closed: VecDeque::new(),
            now: 0,
            seq: 0,
            rng: seeded_rng(seed),
            max_latency,
        };
        for conn in 0..net.slots.len() {
            let at = net.now + net.latency();
            net.schedule(at, conn, Delivery::Open);
        }
        net
    }

    /// Current virtual time in ticks.
    pub fn now(&self) -> u64 {
        self.now
    }

    fn latency(&mut self) -> u64 {
        if self.max_latency <= 1 {
            1
        } else {
            self.rng.gen_range(1..=self.max_latency)
        }
    }

    fn schedule(&mut self, at: u64, conn: usize, delivery: Delivery) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, conn, delivery });
    }

    /// Encodes and schedules every driver reply as a client → server
    /// frame.
    fn schedule_replies(&mut self, conn: usize, replies: Vec<Message>) {
        for msg in replies {
            let frame = encode(&msg);
            let at = self.now + self.latency();
            self.schedule(at, conn, Delivery::ToServer(frame));
        }
    }
}

impl Transport for LoopbackNet {
    fn poll(&mut self) -> Option<Event> {
        if let Some(conn) = self.pending_closed.pop_front() {
            return Some(Event::Closed(conn));
        }
        while let Some(item) = self.heap.pop() {
            self.now = item.at;
            let conn = item.conn;
            if !self.slots[conn].open {
                continue;
            }
            match item.delivery {
                Delivery::Open => {
                    let replies = self.slots[conn].driver.on_connect();
                    self.schedule_replies(conn, replies);
                    return Some(Event::Opened(conn as ConnId));
                }
                Delivery::ToServer(frame) => {
                    let slot = &mut self.slots[conn];
                    slot.server_rx.extend(&frame);
                    let msg = slot
                        .server_rx
                        .next_message()
                        .expect("loopback frames are never corrupt")
                        .expect("each ToServer delivery is one whole frame");
                    sg_obs::counter_add("net.loopback.delivered", 1);
                    return Some(Event::Msg(conn as ConnId, msg));
                }
                Delivery::ToClient(frame) => {
                    let slot = &mut self.slots[conn];
                    slot.client_rx.extend(&frame);
                    let msg = slot
                        .client_rx
                        .next_message()
                        .expect("loopback frames are never corrupt")
                        .expect("each ToClient delivery is one whole frame");
                    let replies = slot.driver.on_message(&msg);
                    self.schedule_replies(conn, replies);
                    // Client-side deliveries never surface to the server
                    // loop; keep popping until a server event turns up.
                }
            }
        }
        None
    }

    fn send(&mut self, conn: ConnId, msg: &Message) -> Result<(), TransportError> {
        let slot = self.slots.get(conn as usize).filter(|s| s.open).ok_or(TransportError::ConnGone(conn))?;
        let _ = slot;
        let frame = encode(msg);
        let at = self.now + self.latency();
        self.schedule(at, conn as usize, Delivery::ToClient(frame));
        Ok(())
    }

    fn close(&mut self, conn: ConnId) {
        if let Some(slot) = self.slots.get_mut(conn as usize) {
            if slot.open {
                slot.open = false;
                self.pending_closed.push_back(conn);
            }
        }
    }

    fn name(&self) -> &'static str {
        "loopback"
    }
}
