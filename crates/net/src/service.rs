//! The server side: an [`FlService`] drives the federated
//! [`RoundPipeline`] behind the wire protocol, over any [`Transport`].
//!
//! # Round protocol
//!
//! Clients `Join` (with a provisioned id), `FetchModel`, compute locally,
//! and `SubmitUpdate`. The service collects exactly one submission per
//! client per round; when the last one lands it ingests the batch into
//! the pipeline **in ascending client id order** and runs the shared
//! attack → aggregate → apply stages ([`RoundPipeline::apply_batch`] —
//! the same code the in-process simulator runs), then broadcasts
//! `RoundAdvance`. Ascending-id ingestion makes the aggregate independent
//! of network arrival order: a TCP run and a loopback run of the same
//! seeds produce **bit-identical** final models, because the floats
//! entering the pipeline, and the order they enter in, are identical.
//!
//! Byzantine behavior stays server-simulated, exactly as in the paper
//! harness: clients `0..byzantine_count` submit honest computations (plus
//! any data poisoning baked into their shards) and the adversary rewrites
//! their messages at the drain point, seeing every honest message — the
//! strongest threat model, unchanged by the move over the wire.
//!
//! # Rejection taxonomy
//!
//! `WrongRound`, `Duplicate` and `UnknownClient` are protocol-level and
//! deterministic; `Backpressure` is emitted by the socket transport's
//! bounded inbound queue, never by the service itself (and never on the
//! loopback, which has no queue bound — so rejects never perturb the
//! determinism contract).

use std::collections::{BTreeMap, HashMap};

use sg_aggregators::{Aggregator, GradientRepr};
use sg_attacks::Attack;
use sg_fl::{global_init, ApplyState, FlConfig, RoundPipeline, SelectionTracker, Task};
use sg_runtime::Engine;

use crate::transport::{ConnId, Event, Transport};
use crate::wire::{Message, RejectReason};

/// What a completed service run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// Rounds applied (equals the configured total on a clean run).
    pub rounds: usize,
    /// The final global parameter vector.
    pub final_params: Vec<f32>,
    /// Mean honest training loss per applied round (ascending-id float
    /// order, comparable bit-for-bit with the in-process run).
    pub round_losses: Vec<f32>,
    /// Protocol-level rejects sent (wrong round, duplicate, unknown).
    pub rejects: u64,
    /// Messages received / sent, for the load report.
    pub messages_in: u64,
    pub messages_out: u64,
}

/// The parameter server behind the wire protocol: collects one
/// submission per client per round, ingests completed batches in
/// ascending client id, and runs the shared pipeline stages
/// ([`RoundPipeline::apply_batch`]).
pub struct FlService {
    pipeline: RoundPipeline,
    global_params: Vec<f32>,
    learning_rate: f32,
    num_clients: usize,
    byz_count: usize,
    round: usize,
    total_rounds: usize,
    /// Live connections that completed a `Join`, both directions.
    conn_client: HashMap<ConnId, usize>,
    client_conn: BTreeMap<usize, ConnId>,
    /// This round's submissions: client id → (loss, gradient in its wire
    /// representation). A `BTreeMap` so the completed batch drains in
    /// ascending client id — the canonical order the determinism
    /// contract requires.
    submissions: BTreeMap<usize, (f32, GradientRepr)>,
    selection: SelectionTracker,
    round_losses: Vec<f32>,
    rejects: u64,
    messages_in: u64,
    messages_out: u64,
    done: bool,
}

impl FlService {
    /// Builds the service for one run. The global model comes from the
    /// first draw of the experiment seed schedule ([`global_init`]), so
    /// it is bit-identical to the model an in-process [`sg_fl::Simulator`]
    /// with the same config would initialize.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`FlConfig::validate`]).
    pub fn new(
        task: &Task,
        cfg: &FlConfig,
        mut gar: Box<dyn Aggregator>,
        attack: Option<Box<dyn Attack>>,
        engine: &Engine,
    ) -> Self {
        cfg.validate();
        gar.set_executor(engine.executor());
        let global_model = global_init(task, cfg.seed);
        let global_params = global_model.param_vector();
        let byz_count = cfg.byzantine_count();
        let pipeline = RoundPipeline::for_service(gar, attack, byz_count, cfg.num_clients, engine);
        Self {
            pipeline,
            global_params,
            learning_rate: cfg.learning_rate,
            num_clients: cfg.num_clients,
            byz_count,
            round: 0,
            total_rounds: cfg.total_rounds(task.train.len()),
            conn_client: HashMap::new(),
            client_conn: BTreeMap::new(),
            submissions: BTreeMap::new(),
            selection: SelectionTracker::new(),
            round_losses: Vec::new(),
            rejects: 0,
            messages_in: 0,
            messages_out: 0,
            done: false,
        }
    }

    /// Overrides the number of rounds this run will apply. The default
    /// comes from [`FlConfig::total_rounds`], which counts rounds from the
    /// population size — the right number for a flat fleet, and the wrong
    /// one for a tree root whose "clients" are leaf aggregators: there the
    /// round count is a property of the experiment, set explicitly so the
    /// flat and tree arms of a comparison run the same number of steps.
    #[must_use]
    pub fn with_total_rounds(mut self, rounds: usize) -> Self {
        assert!(rounds > 0, "FlService: zero rounds");
        self.total_rounds = rounds;
        self
    }

    /// Total rounds this run will apply.
    pub fn total_rounds(&self) -> usize {
        self.total_rounds
    }

    /// Whether every round has been applied and every client has left.
    pub fn finished(&self) -> bool {
        self.done && self.conn_client.is_empty()
    }

    /// Runs the service to completion over `transport`: polls events
    /// until every round is applied and all clients are gone, or the
    /// transport reports that nothing further can arrive.
    pub fn run(mut self, transport: &mut dyn Transport) -> ServiceReport {
        let _run = sg_obs::span("service.run");
        while !self.finished() {
            match transport.poll() {
                Some(event) => self.handle(transport, event),
                None => break,
            }
        }
        sg_obs::counter_add("net.service.rounds", self.round as u64);
        ServiceReport {
            rounds: self.round,
            final_params: self.global_params,
            round_losses: self.round_losses,
            rejects: self.rejects,
            messages_in: self.messages_in,
            messages_out: self.messages_out,
        }
    }

    /// Feeds one transport event through the protocol state machine.
    pub fn handle(&mut self, transport: &mut dyn Transport, event: Event) {
        match event {
            Event::Opened(_) => {
                sg_obs::counter_add("net.conns.opened", 1);
            }
            Event::Closed(conn) => {
                sg_obs::counter_add("net.conns.closed", 1);
                if let Some(client) = self.conn_client.remove(&conn) {
                    self.client_conn.remove(&client);
                }
            }
            Event::Msg(conn, msg) => {
                self.messages_in += 1;
                if sg_obs::enabled() {
                    sg_obs::counter_add("net.msgs_in", 1);
                }
                let _span = sg_obs::span(msg.name());
                self.on_message(transport, conn, msg);
            }
        }
    }

    fn on_message(&mut self, transport: &mut dyn Transport, conn: ConnId, msg: Message) {
        match msg {
            Message::Join { client_id } => {
                let id = client_id as usize;
                if id >= self.num_clients || self.client_conn.contains_key(&id) {
                    self.fail(transport, conn, format!("join refused for client {client_id}"));
                    return;
                }
                self.conn_client.insert(conn, id);
                self.client_conn.insert(id, conn);
                self.reply(
                    transport,
                    conn,
                    &Message::Welcome {
                        client_id,
                        num_clients: self.num_clients as u64,
                        round: self.round as u64,
                        total_rounds: self.total_rounds as u64,
                    },
                );
            }
            Message::FetchModel => {
                if !self.conn_client.contains_key(&conn) {
                    self.reject(transport, conn, RejectReason::UnknownClient);
                    return;
                }
                let model = Message::Model { round: self.round as u64, params: self.global_params.clone() };
                self.reply(transport, conn, &model);
            }
            Message::SubmitUpdate { round, loss, gradient } => {
                self.on_submit(transport, conn, round, loss, gradient);
            }
            Message::Bye => transport.close(conn),
            other => {
                self.fail(transport, conn, format!("unexpected {} from a client", other.name()));
            }
        }
    }

    fn on_submit(
        &mut self,
        transport: &mut dyn Transport,
        conn: ConnId,
        round: u64,
        loss: f32,
        gradient: GradientRepr,
    ) {
        let Some(&client) = self.conn_client.get(&conn) else {
            self.reject(transport, conn, RejectReason::UnknownClient);
            return;
        };
        if round != self.round as u64 || self.done {
            self.reject(transport, conn, RejectReason::WrongRound);
            return;
        }
        if self.submissions.contains_key(&client) {
            self.reject(transport, conn, RejectReason::Duplicate);
            return;
        }
        if gradient.dim() != self.global_params.len() {
            self.fail(
                transport,
                conn,
                format!("gradient dim {} != model dim {}", gradient.dim(), self.global_params.len()),
            );
            return;
        }
        self.submissions.insert(client, (loss, gradient));
        let pending = (self.num_clients - self.submissions.len()) as u64;
        self.reply(transport, conn, &Message::SubmitAck { round, pending });
        if pending == 0 {
            self.complete_round(transport);
        }
    }

    /// All submissions are in: ingest ascending by client id, run the
    /// shared attack → aggregate → apply stages, broadcast the advance.
    fn complete_round(&mut self, transport: &mut dyn Transport) {
        let _span = sg_obs::span("service.round");
        let round = self.round;
        let mut loss_sum = 0.0f32;
        let mut honest = 0usize;
        for (client, (loss, gradient)) in std::mem::take(&mut self.submissions) {
            if client >= self.byz_count {
                loss_sum += loss;
                honest += 1;
            }
            self.pipeline.ingest_repr(client, gradient, round);
        }
        let st = ApplyState { global_params: &mut self.global_params, learning_rate: self.learning_rate };
        self.pipeline.apply_batch(round, st, &mut self.selection);
        self.round_losses.push(if honest > 0 { loss_sum / honest as f32 } else { 0.0 });

        self.round += 1;
        self.done = self.round >= self.total_rounds;
        let advance = Message::RoundAdvance { round: self.round as u64, done: self.done };
        // Ascending client id: on the loopback this fixes the latency-draw
        // order, keeping the virtual-clock schedule seed-reproducible.
        let conns: Vec<ConnId> = self.client_conn.values().copied().collect();
        for conn in conns {
            self.reply(transport, conn, &advance);
        }
    }

    fn reply(&mut self, transport: &mut dyn Transport, conn: ConnId, msg: &Message) {
        self.messages_out += 1;
        if sg_obs::enabled() {
            sg_obs::counter_add("net.msgs_out", 1);
        }
        if transport.send(conn, msg).is_err() {
            // A dead connection is cleaned up by its Closed event; the
            // round simply waits for the client to rejoin or the run to be
            // aborted by the operator.
            sg_obs::counter_add("net.send_failures", 1);
            transport.close(conn);
        }
    }

    fn reject(&mut self, transport: &mut dyn Transport, conn: ConnId, reason: RejectReason) {
        self.rejects += 1;
        sg_obs::counter_add("net.rejects", 1);
        let msg = Message::SubmitReject { round: self.round as u64, reason };
        self.reply(transport, conn, &msg);
    }

    fn fail(&mut self, transport: &mut dyn Transport, conn: ConnId, detail: String) {
        sg_obs::counter_add("net.protocol_errors", 1);
        let msg = Message::Error { detail };
        self.reply(transport, conn, &msg);
        transport.close(conn);
    }
}
