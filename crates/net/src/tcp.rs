//! The real-socket backend: a `TcpListener` acceptor plus one
//! connection handler per client, all running as detached tasks on a
//! dedicated [`WorkerPool`].
//!
//! # Architecture
//!
//! * The **acceptor** loops on `accept`, registers each connection's
//!   writer half (an `Arc<Mutex<TcpStream>>` from `try_clone`) and spawns
//!   a **handler** task that owns the reader half.
//! * Handlers run the incremental frame decoder ([`FrameBuffer`]) over
//!   raw reads and forward decoded messages into one shared event queue,
//!   which [`TcpServerTransport::poll`] drains on the service thread —
//!   the service itself stays single-threaded and transport-agnostic.
//! * **Backpressure**: the queue counts in-flight `SubmitUpdate`s; when
//!   `max_pending` are already queued, the handler answers
//!   `SubmitReject(Backpressure)` directly on the socket (the service
//!   never sees the message) and the client retries after a pause. Control
//!   messages are never rejected — they are small and bounded per client.
//! * **Shutdown**: the shutdown flag is set, a self-connection unblocks
//!   the acceptor, and every live socket is `shutdown(Both)` so blocked
//!   handler reads fail fast. Only then may the pool be dropped (dropping
//!   a [`WorkerPool`] joins its workers; a handler still blocked on a
//!   socket read would deadlock the join). [`Drop`] does all of this.
//!
//! # Determinism caveat
//!
//! This backend is **not** deterministic: arrival order depends on the
//! kernel scheduler. The service canonicalizes round batches by client
//! id, so the *final model* still matches a loopback run bit-for-bit —
//! but traces, per-connection interleavings and reject counts will vary
//! run to run. Determinism claims are tested on the loopback; the socket
//! backend is held to the weaker (and still exact) final-model contract.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use sg_runtime::WorkerPool;

use crate::transport::{ConnId, Event, Transport, TransportError};
use crate::wire::{encode, DecodeLimits, FrameBuffer, Message, RejectReason};

/// State shared between the acceptor, the handlers and the transport.
struct Shared {
    writers: Mutex<HashMap<ConnId, Arc<Mutex<TcpStream>>>>,
    /// `SubmitUpdate`s queued but not yet polled by the service.
    pending_submits: AtomicUsize,
    max_pending: usize,
    /// Per-connection decode caps, applied to every handler's decoder.
    limits: DecodeLimits,
    shutdown: AtomicBool,
}

/// TCP server transport: an acceptor plus one connection handler per
/// client on a dedicated [`WorkerPool`], with a bounded inbound submit
/// queue (backpressure past `max_pending`).
pub struct TcpServerTransport {
    local_addr: SocketAddr,
    events: Receiver<Event>,
    shared: Arc<Shared>,
    /// Dedicated pool for the acceptor + handlers. Dropped last, after
    /// shutdown has unblocked every worker.
    pool: Option<WorkerPool>,
    poll_timeout: Duration,
    idle_timeout: Duration,
}

impl TcpServerTransport {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting. `max_conns` bounds concurrent connections (it sizes the
    /// handler pool); `max_pending` bounds the inbound submit queue —
    /// submits past it are rejected with `Backpressure`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, max_conns: usize, max_pending: usize) -> std::io::Result<Self> {
        Self::bind_with_limits(addr, max_conns, max_pending, DecodeLimits::default())
    }

    /// [`bind`](Self::bind) with explicit per-connection [`DecodeLimits`]:
    /// every handler refuses frames whose *declared* lengths or dims
    /// exceed the caps, before reserving memory for them. A server that
    /// knows its model dimension should pass
    /// [`DecodeLimits::for_dim`], shrinking the worst-case per-connection
    /// buffer from [`crate::wire::MAX_FRAME`] to the model's own frame
    /// size.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_with_limits(
        addr: &str,
        max_conns: usize,
        max_pending: usize,
        limits: DecodeLimits,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            writers: Mutex::new(HashMap::new()),
            pending_submits: AtomicUsize::new(0),
            max_pending: max_pending.max(1),
            limits,
            shutdown: AtomicBool::new(false),
        });
        let (tx, rx) = channel();
        // Workers: the acceptor plus one handler per allowed connection.
        let pool = WorkerPool::new(max_conns + 2);
        let accept_pool = pool.clone();
        let accept_shared = Arc::clone(&shared);
        pool.submit_detached(move || {
            accept_loop(listener, accept_shared, tx, accept_pool);
        });
        Ok(Self {
            local_addr,
            events: rx,
            shared,
            pool: Some(pool),
            poll_timeout: Duration::from_millis(200),
            idle_timeout: Duration::from_secs(30),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The granularity at which a blocked `poll` re-checks the shutdown
    /// flag (not the give-up point — that is [`set_idle_timeout`]).
    ///
    /// [`set_idle_timeout`]: Self::set_idle_timeout
    pub fn set_poll_timeout(&mut self, timeout: Duration) {
        self.poll_timeout = timeout;
    }

    /// How long `poll` tolerates *no* traffic at all before concluding
    /// nothing further can arrive and returning `None` (which ends
    /// [`crate::FlService::run`]). Unlike the loopback — where an empty
    /// event queue really is final — a quiet socket usually just means
    /// clients are busy computing, so this defaults to a generous 30s;
    /// server binaries expose it as `--idle-timeout`.
    pub fn set_idle_timeout(&mut self, timeout: Duration) {
        self.idle_timeout = timeout;
    }

    /// Stops the acceptor, tears down every connection, and joins the
    /// handler pool. Idempotent; also run by [`Drop`].
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor: it is parked in accept(), and the flag
        // alone cannot wake it — a throwaway self-connection can.
        let _ = TcpStream::connect(self.local_addr);
        // Unblock every handler: a shutdown socket fails its blocked read.
        let writers = std::mem::take(&mut *self.shared.writers.lock().expect("writers lock"));
        for (_, writer) in writers {
            let _ = writer.lock().expect("writer lock").shutdown(Shutdown::Both);
        }
        // Now every detached task can finish; joining the pool is safe.
        self.pool = None;
    }
}

impl Drop for TcpServerTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Transport for TcpServerTransport {
    fn poll(&mut self) -> Option<Event> {
        // A quiet stretch is not the end of the run: clients spend most of
        // their time computing gradients (or rate-throttling), so keep
        // waiting in shutdown-checkable slices until the idle budget is
        // spent. Only shutdown, a hung-up queue, or true idleness end it.
        let mut idle = Duration::ZERO;
        loop {
            match self.events.recv_timeout(self.poll_timeout) {
                Ok(event) => {
                    if matches!(event, Event::Msg(_, Message::SubmitUpdate { .. })) {
                        self.shared.pending_submits.fetch_sub(1, Ordering::SeqCst);
                    }
                    return Some(event);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        return None;
                    }
                    idle += self.poll_timeout;
                    if idle >= self.idle_timeout {
                        sg_obs::counter_add("net.tcp.idle_giveups", 1);
                        return None;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return None,
            }
        }
    }

    fn send(&mut self, conn: ConnId, msg: &Message) -> Result<(), TransportError> {
        let writer = self
            .shared
            .writers
            .lock()
            .expect("writers lock")
            .get(&conn)
            .cloned()
            .ok_or(TransportError::ConnGone(conn))?;
        let frame = encode(msg);
        let mut stream = writer.lock().expect("writer lock");
        stream.write_all(&frame).and_then(|()| stream.flush()).map_err(TransportError::Io)
    }

    fn close(&mut self, conn: ConnId) {
        // Shut the socket down; the handler's read fails, and it emits the
        // Closed event on its way out.
        if let Some(writer) = self.shared.writers.lock().expect("writers lock").remove(&conn) {
            let _ = writer.lock().expect("writer lock").shutdown(Shutdown::Both);
        }
    }

    fn name(&self) -> &'static str {
        "tcp"
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, tx: Sender<Event>, pool: WorkerPool) {
    let next_id = AtomicU64::new(0);
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_nodelay(true);
        let conn = next_id.fetch_add(1, Ordering::SeqCst);
        let writer = match stream.try_clone() {
            Ok(w) => Arc::new(Mutex::new(w)),
            Err(_) => continue,
        };
        shared.writers.lock().expect("writers lock").insert(conn, Arc::clone(&writer));
        sg_obs::counter_add("net.tcp.accepted", 1);
        if tx.send(Event::Opened(conn)).is_err() {
            return;
        }
        let handler_shared = Arc::clone(&shared);
        let handler_tx = tx.clone();
        pool.submit_detached(move || {
            handle_conn(conn, stream, writer, handler_shared, handler_tx);
        });
    }
}

/// One connection's read loop: reassemble frames, forward messages,
/// reject submits past the queue bound, emit `Closed` on the way out.
fn handle_conn(
    conn: ConnId,
    mut stream: TcpStream,
    writer: Arc<Mutex<TcpStream>>,
    shared: Arc<Shared>,
    tx: Sender<Event>,
) {
    let mut fb = FrameBuffer::with_limits(shared.limits);
    let mut buf = vec![0u8; 64 * 1024];
    'read: loop {
        let n = match stream.read(&mut buf) {
            Ok(0) | Err(_) => break 'read,
            Ok(n) => n,
        };
        fb.extend(&buf[..n]);
        loop {
            match fb.next_message() {
                Ok(None) => break,
                Ok(Some(msg)) => {
                    if matches!(msg, Message::SubmitUpdate { .. }) {
                        let pending = shared.pending_submits.load(Ordering::SeqCst);
                        if pending >= shared.max_pending {
                            // Queue full: answer directly, drop the message.
                            sg_obs::counter_add("net.tcp.backpressure_rejects", 1);
                            let reject = encode(&Message::SubmitReject {
                                round: match msg {
                                    Message::SubmitUpdate { round, .. } => round,
                                    _ => unreachable!(),
                                },
                                reason: RejectReason::Backpressure,
                            });
                            let mut w = writer.lock().expect("writer lock");
                            if w.write_all(&reject).and_then(|()| w.flush()).is_err() {
                                break 'read;
                            }
                            continue;
                        }
                        shared.pending_submits.fetch_add(1, Ordering::SeqCst);
                    }
                    if tx.send(Event::Msg(conn, msg)).is_err() {
                        break 'read;
                    }
                }
                Err(err) => {
                    // Corrupt stream: poison the connection.
                    sg_obs::counter_add("net.tcp.corrupt_frames", 1);
                    let error = encode(&Message::Error { detail: err.to_string() });
                    let mut w = writer.lock().expect("writer lock");
                    let _ = w.write_all(&error).and_then(|()| w.flush());
                    break 'read;
                }
            }
        }
    }
    shared.writers.lock().expect("writers lock").remove(&conn);
    let _ = stream.shutdown(Shutdown::Both);
    let _ = tx.send(Event::Closed(conn));
}

/// A blocking client-side connection for load generators and tests.
pub struct TcpClient {
    stream: TcpStream,
    fb: FrameBuffer,
    buf: Vec<u8>,
}

impl TcpClient {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: &SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, fb: FrameBuffer::new(), buf: vec![0u8; 64 * 1024] })
    }

    /// Sends one message.
    ///
    /// # Errors
    ///
    /// Propagates the stream write failure.
    pub fn send(&mut self, msg: &Message) -> std::io::Result<()> {
        let frame = encode(msg);
        self.stream.write_all(&frame)?;
        self.stream.flush()
    }

    /// Blocks until the next complete message arrives.
    ///
    /// # Errors
    ///
    /// Fails on peer hangup, read errors, or a corrupt frame.
    pub fn recv(&mut self) -> std::io::Result<Message> {
        loop {
            match self.fb.next_message() {
                Ok(Some(msg)) => return Ok(msg),
                Ok(None) => {}
                Err(err) => {
                    return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, err.to_string()))
                }
            }
            let n = self.stream.read(&mut self.buf)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            self.fb.extend(&self.buf[..n]);
        }
    }
}
