//! The transport seam: how the FL service reaches its clients.
//!
//! A [`Transport`] multiplexes any number of client connections into a
//! single stream of [`Event`]s consumed by one server loop. The contract:
//!
//! * `poll` returns the next inbound event, or `None` when no further
//!   event can arrive right now — the loopback backend is exhausted, or a
//!   socket backend's wait timed out (the caller decides whether to poll
//!   again or wind down).
//! * Every connection id is announced by `Event::Opened` before any
//!   `Event::Msg` carries it, and `Event::Closed` is final — the id is
//!   never reused afterwards.
//! * `send` ships one message to one connection; on a dead connection it
//!   fails without disturbing the others.
//! * `close` tears a connection down; the matching `Event::Closed`
//!   surfaces through `poll`.
//!
//! The determinism split: [`crate::LoopbackNet`] delivers events on a
//! seeded virtual clock, so a service run over it is a pure function of
//! its seeds. [`crate::TcpServerTransport`] delivers events in real
//! arrival order — nondeterministic — and the service is responsible for
//! canonicalizing whatever ordering it needs (see `FlService`, which
//! aggregates in ascending client-id order precisely so the two backends
//! converge to bit-identical models).

use crate::wire::Message;

/// Identifies one client connection for the lifetime of a transport.
pub type ConnId = u64;

/// One inbound transport event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A new connection is live (no message decoded yet).
    Opened(ConnId),
    /// A complete, CRC-verified message arrived on a connection.
    Msg(ConnId, Message),
    /// The connection is gone (peer hangup, codec corruption, or a
    /// server-side [`Transport::close`]).
    Closed(ConnId),
}

/// Errors surfaced by [`Transport::send`].
#[derive(Debug)]
pub enum TransportError {
    /// The connection id is unknown or already closed.
    ConnGone(ConnId),
    /// The underlying stream failed mid-write.
    Io(std::io::Error),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::ConnGone(id) => write!(f, "connection {id} is gone"),
            TransportError::Io(e) => write!(f, "transport i/o: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A server-side connection multiplexer: `Opened` precedes any `Msg`
/// for a connection, `Closed` is final, and `poll` returning `None`
/// means nothing further can arrive right now.
pub trait Transport {
    /// The next inbound event, or `None` when nothing further can arrive
    /// right now.
    fn poll(&mut self) -> Option<Event>;

    /// Sends one message on one connection.
    ///
    /// # Errors
    ///
    /// Fails if the connection is gone or the stream write fails; either
    /// way the other connections are unaffected.
    fn send(&mut self, conn: ConnId, msg: &Message) -> Result<(), TransportError>;

    /// Closes one connection; its `Event::Closed` arrives via `poll`.
    fn close(&mut self, conn: ConnId);

    /// Backend name for traces and reports.
    fn name(&self) -> &'static str;
}
