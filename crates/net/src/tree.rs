//! Hierarchical (tree) aggregation: leaf services aggregate client
//! shards and submit one update upward, the root composes the shard
//! updates — million-client rounds over the same protocol, transports
//! and pipeline as the flat service.
//!
//! # Topology
//!
//! A [`TreeTopology`] splits the id space `0..num_clients` into
//! contiguous shards of a **power-of-two** size (the last shard may be
//! ragged) and assigns each shard to one leaf by a seeded permutation.
//! Each leaf ([`LeafNode`]) samples a power-of-two number of participants
//! from its shard per round ([`sg_fl::VirtualPopulation::sample_shard`]),
//! streams their gradients (clients are materialized per round, never
//! resident — peak resident state is the shard sample, not the
//! population), applies the shard-local adversary, runs its shard
//! aggregator, and submits the shard update upward as an ordinary
//! `SubmitUpdate`. The root is a plain [`FlService`] whose "clients" are
//! the leaves (join id = shard index, so the root's ascending-id ingest
//! *is* shard order) with a composition-aware root aggregator.
//!
//! Deeper funnels are the same construction stacked: a mid-tier root's
//! `ServiceReport` feeds the next level as a leaf. This module ships the
//! two-level funnel, which already turns an `O(population)` fan-in into
//! `O(shard)` at every node.
//!
//! # Composition contract
//!
//! How the root composes is declared per rule by
//! [`Aggregator::composition`] (full table on
//! [`sg_aggregators::Composition`]):
//!
//! * **`ExactSum`** (Mean): leaves run [`ShardSum`] — the canonical
//!   pairwise tree **sum**, unscaled — and the root runs
//!   [`ShardMeanRoot`], which tree-sums the shard sums in shard order and
//!   scales once by `1/total participants`. Because power-of-two shard
//!   blocks are nodes of the canonical reduction tree
//!   ([`sg_math::vecops::tree_sum_chunk`]), the composed mean is
//!   **bit-identical** to the flat mean over the same participants.
//! * **`Rerun`** (coordinate median, trimmed mean, geometric median): each
//!   leaf runs the rule on its shard; the root reruns it on the dense
//!   shard aggregates — the classical median-of-medians approximation,
//!   with each composed coordinate bounded by the range of the shard
//!   aggregates.
//! * **`RerunSignNorm`** (SignGuard, sign-majority): the leaf runs the
//!   full rule on its shard and forwards only the aggregate's **packed
//!   sign bits + norm** (`SignNormVec`, ~1/32nd of a dense frame); the
//!   root reruns the rule natively on the packed shard statistics
//!   (`aggregate_packed` via the pipeline's uniform-SignNorm fast path) —
//!   the funnel never densifies on the wire.
//! * **`Densify`** (Krum, Bulyan, …): the rule has no shard form;
//!   [`run_tree_loopback`] refuses it and the caller falls back to a flat
//!   run.
//!
//! # Determinism
//!
//! Every leaf computation is a pure function of `(client id, round,
//! model bytes)` (see [`sg_fl::VirtualPopulation`]), shard aggregation
//! runs the fixed coordinate-sharded kernels, and the root ingests in
//! shard order — so a loopback tree run is bit-identical at any
//! `SG_THREADS`, and a TCP tree run reproduces the loopback root model
//! bit-for-bit (same floats, same canonical order).
//!
//! The one *semantic* difference from a flat run: the adversary acts
//! **shard-locally** — each leaf's attack sees only its own shard's
//! honest gradients, the natural threat model when no single vantage
//! point observes the whole round.

use std::net::SocketAddr;
use std::ops::Range;
use std::sync::Arc;
use std::time::Duration;

use sg_aggregators::{Aggregator, Composition, GradientRepr, ShardMeanRoot, ShardSum, SignNormVec};
use sg_attacks::{Attack, AttackContext};
use sg_fl::{global_init, FlConfig, Task, VirtualPopulation};
use sg_math::{seeded_rng, shuffle, splitmix64};
use sg_runtime::Engine;

use crate::driver::NetPeer;
use crate::loopback::LoopbackNet;
use crate::service::{FlService, ServiceReport};
use crate::tcp::TcpClient;
use crate::wire::{Message, RejectReason};

/// Domain-separation constant for the topology's leaf→shard permutation
/// draw, decorrelating it from the population's seed schedule.
const TOPOLOGY_DOMAIN: u64 = 0x7472_6565_746f_706f; // "treetopo"

/// Builds an aggregation rule; the tree runner calls it once per leaf
/// plus (for the rerun strategies) once for the root, so every node owns
/// an independent instance.
pub type GarFactory<'a> = &'a dyn Fn() -> Box<dyn Aggregator>;

/// Builds a per-leaf adversary (`None` = no attack at that leaf).
pub type AttackFactory<'a> = &'a dyn Fn() -> Option<Box<dyn Attack>>;

/// The shape of a two-level aggregation funnel over the id space
/// `0..num_clients`: contiguous power-of-two shards, a seeded leaf→shard
/// permutation, and a power-of-two per-shard participation sample.
#[derive(Debug, Clone)]
pub struct TreeTopology {
    num_clients: usize,
    shard_size: usize,
    participation: usize,
    /// `assignment[leaf] = shard` — which shard each physical leaf
    /// serves. A seeded permutation; on the wire the leaf always joins
    /// with its **shard** index, so composition order is unaffected.
    assignment: Vec<usize>,
}

impl TreeTopology {
    /// A topology over `num_clients` ids in shards of `shard_size`, with
    /// `participation` clients sampled per shard per round, and the
    /// leaf→shard assignment drawn from `seed`.
    ///
    /// `shard_size` and `participation` must be powers of two —
    /// the alignment that makes `ExactSum` composition bit-identical to
    /// the flat run (shard blocks are then nodes of the canonical
    /// reduction tree). `participation > shard_size` means full
    /// participation; the last shard may be ragged (it is the final,
    /// unaligned block of the reduction, which the canonical tree also
    /// permits).
    ///
    /// # Panics
    ///
    /// Panics on zero clients, or a non-power-of-two shard size or
    /// participation.
    pub fn new(num_clients: usize, shard_size: usize, participation: usize, seed: u64) -> Self {
        assert!(num_clients > 0, "TreeTopology: zero clients");
        assert!(shard_size.is_power_of_two(), "TreeTopology: shard_size {shard_size} not a power of two");
        assert!(
            participation.is_power_of_two(),
            "TreeTopology: participation {participation} not a power of two"
        );
        let num_leaves = num_clients.div_ceil(shard_size);
        let mut assignment: Vec<usize> = (0..num_leaves).collect();
        let mut state = seed ^ TOPOLOGY_DOMAIN;
        shuffle(&mut seeded_rng(splitmix64(&mut state)), &mut assignment);
        Self { num_clients, shard_size, participation, assignment }
    }

    /// Total population size.
    pub fn num_clients(&self) -> usize {
        self.num_clients
    }

    /// Number of leaves (= number of shards; the root's fan-in).
    pub fn num_leaves(&self) -> usize {
        self.assignment.len()
    }

    /// Ids per shard (power of two; the last shard may hold fewer).
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Participants sampled per shard per round (power of two, clamped
    /// to the shard length).
    pub fn participation(&self) -> usize {
        self.participation
    }

    /// The contiguous id range of `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_range(&self, shard: usize) -> Range<usize> {
        assert!(shard < self.num_leaves(), "shard {shard} out of range");
        let start = shard * self.shard_size;
        start..((start + self.shard_size).min(self.num_clients))
    }

    /// The shard served by physical leaf `leaf` (the seeded assignment).
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    pub fn shard_of_leaf(&self, leaf: usize) -> usize {
        self.assignment[leaf]
    }

    /// Participants actually sampled from `shard` per round.
    pub fn sample_count(&self, shard: usize) -> usize {
        self.participation.min(self.shard_range(shard).len())
    }

    /// Participants per round across all shards — the `ExactSum` root's
    /// one divisor.
    pub fn total_participants(&self) -> usize {
        (0..self.num_leaves()).map(|s| self.sample_count(s)).sum()
    }
}

/// A hierarchical-aggregation leaf: samples its shard's participants each
/// round, streams their gradients from the [`VirtualPopulation`], applies
/// the shard-local adversary, aggregates, and submits the shard update
/// upward — speaking the ordinary client protocol, so it runs over any
/// transport a [`crate::ClientDriver`] does.
pub struct LeafNode {
    shard: usize,
    range: Range<usize>,
    participation: usize,
    pop: Arc<VirtualPopulation>,
    gar: Box<dyn Aggregator>,
    composition: Composition,
    attack: Option<Box<dyn Attack>>,
    engine: Engine,
    batch_size: usize,
    /// The one shard update computed for the current round; backpressure
    /// retries and re-deliveries reuse it, like a client's gradient cache.
    cached: Option<(u64, f32, GradientRepr)>,
    done: bool,
}

impl std::fmt::Debug for LeafNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeafNode")
            .field("shard", &self.shard)
            .field("range", &self.range)
            .field("gar", &self.gar.name())
            .field("composition", &self.composition)
            .finish()
    }
}

impl LeafNode {
    /// Builds the leaf serving `shard` of `topo`. The rule's declared
    /// [`Composition`] picks the shard aggregator: `ExactSum` rules run
    /// [`ShardSum`] (the root owns the single scale), the rerun
    /// strategies run the rule itself.
    ///
    /// # Panics
    ///
    /// Panics if the rule declares [`Composition::Densify`] (no shard
    /// form — the caller must fall back to a flat run).
    pub fn new(
        shard: usize,
        topo: &TreeTopology,
        pop: Arc<VirtualPopulation>,
        gar: Box<dyn Aggregator>,
        attack: Option<Box<dyn Attack>>,
        engine: Engine,
        batch_size: usize,
    ) -> Self {
        let composition = gar.composition();
        assert!(
            composition != Composition::Densify,
            "LeafNode: {} declares Densify — no shard form; run flat instead",
            gar.name()
        );
        let mut gar: Box<dyn Aggregator> =
            if composition == Composition::ExactSum { Box::new(ShardSum::new()) } else { gar };
        gar.set_executor(engine.executor());
        Self {
            shard,
            range: topo.shard_range(shard),
            participation: topo.participation(),
            pop,
            gar,
            composition,
            attack,
            engine,
            batch_size,
            cached: None,
            done: false,
        }
    }

    /// The shard (and wire join id) this leaf serves.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// One shard round: sample → stream gradients → shard-local attack →
    /// aggregate → encode. Returns `(mean honest loss, shard update)`.
    fn compute_shard(&mut self, round: usize, params: &[f32]) -> (f32, GradientRepr) {
        let _span = sg_obs::span("tree.leaf_round");
        let ids = self.pop.sample_shard(self.range.clone(), self.participation, round);
        let results = self.pop.compute_round(&ids, round, params, self.batch_size, &self.engine);
        let byz_count = self.pop.byzantine_count();
        // Sorted ids + global Byzantine prefix → local Byzantine prefix.
        let m = ids.iter().take_while(|&&id| id < byz_count).count();

        let mut grads: Vec<Vec<f32>> = Vec::with_capacity(results.len());
        let mut loss_sum = 0.0f32;
        let mut honest = 0usize;
        for ((grad, loss), &id) in results.into_iter().zip(&ids) {
            if id >= byz_count {
                loss_sum += loss;
                honest += 1;
            }
            grads.push(grad);
        }

        if m > 0 {
            if let Some(attack) = self.attack.as_mut() {
                let (byz_honest, benign) = grads.split_at(m);
                let ctx = AttackContext::new(benign, byz_honest, round);
                let malicious = attack.craft(&ctx);
                assert_eq!(malicious.len(), m, "attack returned wrong gradient count");
                for (slot, mal) in grads.iter_mut().zip(malicious) {
                    *slot = mal;
                }
            }
        }

        let out = self.gar.aggregate(&grads);
        sg_obs::counter_add("tree.leaf_rounds", 1);
        let loss = if honest > 0 { loss_sum / honest as f32 } else { 0.0 };
        let update = match self.composition {
            Composition::RerunSignNorm => GradientRepr::SignNorm(SignNormVec::pack(&out.gradient)),
            _ => GradientRepr::Dense(out.gradient),
        };
        (loss, update)
    }

    /// The submission for `round`, computing the shard update exactly
    /// once (re-deliveries and retries reuse the cache).
    fn submit_for(&mut self, round: u64, params: &[f32]) -> Message {
        if self.cached.as_ref().is_none_or(|(r, _, _)| *r != round) {
            let (loss, update) = self.compute_shard(round as usize, params);
            self.cached = Some((round, loss, update));
        }
        let (round, loss, gradient) = self.cached.clone().expect("just cached");
        Message::SubmitUpdate { round, loss, gradient }
    }
}

impl NetPeer for LeafNode {
    fn on_connect(&mut self) -> Vec<Message> {
        vec![Message::Join { client_id: self.shard as u64 }]
    }

    fn on_message(&mut self, msg: &Message) -> Vec<Message> {
        match msg {
            Message::Welcome { .. } => vec![Message::FetchModel],
            Message::Model { round, params } => vec![self.submit_for(*round, params)],
            Message::SubmitAck { .. } => Vec::new(),
            Message::SubmitReject { reason: RejectReason::Backpressure, .. } => {
                let (round, loss, gradient) =
                    self.cached.clone().expect("backpressure reject without a cached submit");
                vec![Message::SubmitUpdate { round, loss, gradient }]
            }
            Message::SubmitReject { reason: RejectReason::Duplicate, .. } => Vec::new(),
            Message::SubmitReject { .. } => vec![Message::FetchModel],
            Message::RoundAdvance { done: false, .. } => vec![Message::FetchModel],
            Message::RoundAdvance { done: true, .. } => {
                self.done = true;
                vec![Message::Bye]
            }
            Message::Error { .. } => {
                self.done = true;
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

/// The root aggregator for a rule with the given composition: the
/// `ExactSum` root recombines unscaled shard sums ([`ShardMeanRoot`]),
/// the rerun strategies run a fresh instance of the rule itself.
///
/// # Panics
///
/// Panics if the rule declares [`Composition::Densify`].
pub fn root_aggregator(topo: &TreeTopology, gar_factory: GarFactory<'_>) -> Box<dyn Aggregator> {
    let probe = gar_factory();
    match probe.composition() {
        Composition::ExactSum => Box::new(ShardMeanRoot::new(topo.total_participants())),
        Composition::Rerun | Composition::RerunSignNorm => probe,
        Composition::Densify => {
            panic!("root_aggregator: {} declares Densify — no shard form; run flat instead", probe.name())
        }
    }
}

/// Builds the leaf fleet for `topo` (one [`LeafNode`] per leaf, serving
/// its assigned shard), as loopback peers.
pub fn build_leaves(
    topo: &TreeTopology,
    pop: &Arc<VirtualPopulation>,
    gar_factory: GarFactory<'_>,
    attack_factory: AttackFactory<'_>,
    engine: &Engine,
    batch_size: usize,
) -> Vec<Box<dyn NetPeer>> {
    (0..topo.num_leaves())
        .map(|leaf| {
            let shard = topo.shard_of_leaf(leaf);
            Box::new(LeafNode::new(
                shard,
                topo,
                Arc::clone(pop),
                gar_factory(),
                attack_factory(),
                engine.clone(),
                batch_size,
            )) as Box<dyn NetPeer>
        })
        .collect()
}

/// Runs a two-level tree round loop over the deterministic loopback:
/// leaves stream their shards from the [`VirtualPopulation`], the root
/// [`FlService`] composes shard updates per the rule's declared strategy.
/// A pure function of `(cfg.seed, latency_seed)` — bit-identical at any
/// `SG_THREADS`.
///
/// # Panics
///
/// Panics if the rule declares [`Composition::Densify`] (fall back to a
/// flat run), or if `topo` and `cfg` disagree on the population size.
#[allow(clippy::too_many_arguments)]
pub fn run_tree_loopback(
    task: &Task,
    cfg: &FlConfig,
    topo: &TreeTopology,
    rounds: usize,
    pop: &Arc<VirtualPopulation>,
    gar_factory: GarFactory<'_>,
    attack_factory: AttackFactory<'_>,
    engine: &Engine,
    latency_seed: u64,
    max_latency: u64,
) -> ServiceReport {
    assert_eq!(topo.num_clients(), cfg.num_clients, "topology/config population mismatch");
    let _span = sg_obs::span("tree.run");
    let peers = build_leaves(topo, pop, gar_factory, attack_factory, engine, cfg.batch_size);
    let mut net = LoopbackNet::from_peers(peers, latency_seed, max_latency);
    let root_cfg = FlConfig { num_clients: topo.num_leaves(), byzantine_fraction: 0.0, ..cfg.clone() };
    let service = FlService::new(task, &root_cfg, root_aggregator(topo, gar_factory), None, engine)
        .with_total_rounds(rounds);
    service.run(&mut net)
}

/// What a flat reference run over the same virtual population produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatReport {
    /// Rounds applied.
    pub rounds: usize,
    /// The final global parameter vector.
    pub final_params: Vec<f32>,
    /// Mean honest training loss per round (global honest mean — the
    /// tree's root losses average shard means instead).
    pub round_losses: Vec<f32>,
}

/// The flat arm of a flat-vs-tree comparison: the same participants
/// (the union of every shard's per-round sample, in ascending id order),
/// the same virtual materialization, one global adversary, one flat
/// aggregation — no network. For `ExactSum` rules the tree run's final
/// model equals this one bit for bit; for the rerun strategies it is the
/// documented approximation.
#[allow(clippy::too_many_arguments)]
pub fn run_flat_virtual(
    task: &Task,
    cfg: &FlConfig,
    topo: &TreeTopology,
    rounds: usize,
    pop: &Arc<VirtualPopulation>,
    gar_factory: GarFactory<'_>,
    attack_factory: AttackFactory<'_>,
    engine: &Engine,
) -> FlatReport {
    assert_eq!(topo.num_clients(), cfg.num_clients, "topology/config population mismatch");
    let _span = sg_obs::span("tree.flat_reference");
    let mut gar = gar_factory();
    gar.set_executor(engine.executor());
    let mut attack = attack_factory();
    let mut params = global_init(task, cfg.seed).param_vector();
    let byz_count = pop.byzantine_count();
    let mut round_losses = Vec::with_capacity(rounds);

    for round in 0..rounds {
        // Union of the per-shard samples: shards are contiguous and each
        // sample is ascending, so the concatenation is globally ascending
        // — the canonical order, with the Byzantine ids a prefix.
        let mut ids = Vec::with_capacity(topo.total_participants());
        for shard in 0..topo.num_leaves() {
            ids.extend(pop.sample_shard(topo.shard_range(shard), topo.participation(), round));
        }
        let results = pop.compute_round(&ids, round, &params, cfg.batch_size, engine);
        let m = ids.iter().take_while(|&&id| id < byz_count).count();

        let mut grads: Vec<Vec<f32>> = Vec::with_capacity(results.len());
        let mut loss_sum = 0.0f32;
        let mut honest = 0usize;
        for ((grad, loss), &id) in results.into_iter().zip(&ids) {
            if id >= byz_count {
                loss_sum += loss;
                honest += 1;
            }
            grads.push(grad);
        }

        if m > 0 {
            if let Some(attack) = attack.as_mut() {
                let (byz_honest, benign) = grads.split_at(m);
                let ctx = AttackContext::new(benign, byz_honest, round);
                let malicious = attack.craft(&ctx);
                assert_eq!(malicious.len(), m, "attack returned wrong gradient count");
                for (slot, mal) in grads.iter_mut().zip(malicious) {
                    *slot = mal;
                }
            }
        }

        let out = gar.aggregate(&grads);
        for (p, g) in params.iter_mut().zip(&out.gradient) {
            *p -= cfg.learning_rate * g;
        }
        round_losses.push(if honest > 0 { loss_sum / honest as f32 } else { 0.0 });
    }

    FlatReport { rounds, final_params: params, round_losses }
}

/// Runs the two-level tree over real sockets: the root [`FlService`]
/// listens on an ephemeral TCP port, one thread per leaf connects,
/// streams its shard and submits upward until the final `RoundAdvance`.
/// Arrival order is kernel-scheduled, but the root canonicalizes every
/// round batch by shard id before the shared pipeline stages run — so
/// the final model matches [`run_tree_loopback`] of the same seeds
/// **bit for bit** (traces and reject counts may differ).
///
/// The factories are invoked *inside* each leaf's thread (`Aggregator`
/// and `Attack` objects are not `Send`), so they must be `Sync` —
/// capture-free closures are.
///
/// # Panics
///
/// Panics on socket failures, a `Densify` rule, or a topology/config
/// population mismatch.
#[allow(clippy::too_many_arguments)]
pub fn run_tree_tcp<G, A>(
    task: &Task,
    cfg: &FlConfig,
    topo: &TreeTopology,
    rounds: usize,
    pop: &Arc<VirtualPopulation>,
    gar_factory: G,
    attack_factory: A,
    engine: &Engine,
    max_pending: usize,
) -> ServiceReport
where
    G: Fn() -> Box<dyn Aggregator> + Sync,
    A: Fn() -> Option<Box<dyn Attack>> + Sync,
{
    assert_eq!(topo.num_clients(), cfg.num_clients, "topology/config population mismatch");
    let _span = sg_obs::span("tree.run_tcp");
    let mut transport =
        crate::tcp::TcpServerTransport::bind("127.0.0.1:0", topo.num_leaves() + 2, max_pending)
            .expect("tree root: bind");
    let addr = transport.local_addr();
    let root_cfg = FlConfig { num_clients: topo.num_leaves(), byzantine_fraction: 0.0, ..cfg.clone() };
    let root_gar = root_aggregator(topo, &gar_factory);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..topo.num_leaves())
            .map(|leaf| {
                let pop = Arc::clone(pop);
                let engine = engine.clone();
                let gar_factory = &gar_factory;
                let attack_factory = &attack_factory;
                let topo = &*topo;
                scope.spawn(move || {
                    let mut node = LeafNode::new(
                        topo.shard_of_leaf(leaf),
                        topo,
                        pop,
                        gar_factory(),
                        attack_factory(),
                        engine,
                        cfg.batch_size,
                    );
                    drive_peer_tcp(&addr, &mut node).expect("tree leaf: socket failure");
                })
            })
            .collect();
        let service = FlService::new(task, &root_cfg, root_gar, None, engine).with_total_rounds(rounds);
        let report = service.run(&mut transport);
        transport.shutdown();
        for handle in handles {
            handle.join().expect("tree leaf thread panicked");
        }
        report
    })
}

/// Drives one protocol peer over a real socket until it finishes — the
/// blocking fan-in loop a leaf (or plain client) runs against a TCP root.
/// Backpressure rejects pause briefly before the peer's cached
/// resubmission goes out.
///
/// # Errors
///
/// Propagates connect/read/write failures.
pub fn drive_peer_tcp(addr: &SocketAddr, peer: &mut dyn NetPeer) -> std::io::Result<()> {
    let mut conn = TcpClient::connect(addr)?;
    for msg in peer.on_connect() {
        conn.send(&msg)?;
    }
    while !peer.is_done() {
        let incoming = conn.recv()?;
        if matches!(incoming, Message::SubmitReject { reason: RejectReason::Backpressure, .. }) {
            std::thread::sleep(Duration::from_millis(20));
        }
        for reply in peer.on_message(&incoming) {
            conn.send(&reply)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_shards_cover_population() {
        let topo = TreeTopology::new(37, 8, 8, 1);
        assert_eq!(topo.num_leaves(), 5);
        let mut covered = [false; 37];
        for s in 0..topo.num_leaves() {
            for id in topo.shard_range(s) {
                assert!(!covered[id], "id {id} double-covered");
                covered[id] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "every id in exactly one shard");
        assert_eq!(topo.shard_range(4), 32..37, "ragged last shard");
        assert_eq!(topo.sample_count(4), 5);
        assert_eq!(topo.total_participants(), 4 * 8 + 5);
    }

    #[test]
    fn topology_assignment_is_seeded_permutation() {
        let topo_a = TreeTopology::new(64, 8, 4, 7);
        let topo_b = TreeTopology::new(64, 8, 4, 7);
        let shards_a: Vec<usize> = (0..topo_a.num_leaves()).map(|l| topo_a.shard_of_leaf(l)).collect();
        let shards_b: Vec<usize> = (0..topo_b.num_leaves()).map(|l| topo_b.shard_of_leaf(l)).collect();
        assert_eq!(shards_a, shards_b, "same seed, same assignment");
        let mut sorted = shards_a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>(), "a permutation of the shards");
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn topology_rejects_unaligned_shards() {
        let _ = TreeTopology::new(100, 10, 4, 0);
    }
}
