//! The framed wire codec: every message travels as
//!
//! ```text
//! len: u32 LE | len_chk: u32 LE (= !len) | payload[len] | crc32(payload): u32 LE
//! ```
//!
//! — the same frame shape as the sweep journal (`sg_bench::journal`),
//! with the same failure taxonomy: a bad length complement or CRC is
//! *corruption* (the connection is poisoned and must be dropped), a short
//! read is merely *incomplete* (wait for more bytes). The payload is a
//! kind byte followed by the message fields; all integers are
//! little-endian, and `f32`s travel as their raw IEEE-754 bit patterns,
//! so a parameter vector round-trips **bit-for-bit** — the property the
//! loopback determinism contract rests on.
//!
//! [`FrameBuffer`] is the stream side of the codec: feed it arbitrary
//! byte chunks (TCP reads tear frames wherever they like) and pull
//! complete messages out as they become available.

use sg_aggregators::{GradientRepr, QuantizedVec, SignNormVec};
use sg_math::crc32;

/// Frame overhead: `len` + `len_chk` before the payload, CRC after it.
const FRAME_PREFIX: usize = 8;
const FRAME_SUFFIX: usize = 4;

/// Refuse to buffer frames beyond this size (a corrupt length that
/// happens to satisfy the complement check must not allocate gigabytes).
pub const MAX_FRAME: usize = 64 << 20;

/// Default cap on any declared element count (dense coordinates, packed
/// dims, quantized levels) — the largest dense vector a [`MAX_FRAME`]
/// payload could actually carry.
pub const MAX_DIM: usize = MAX_FRAME / 4;

/// Per-connection decode limits: every length or dimension a frame
/// *declares* is validated against these **before any memory is
/// reserved**, so a hostile peer can announce a 4 GiB frame or a
/// billion-coordinate gradient and cost the server nothing but a
/// [`WireError::Malformed`].
///
/// The defaults admit anything the protocol can legitimately carry; a
/// server that knows its model dimension should tighten `max_dim` (see
/// [`DecodeLimits::for_dim`]) so hostile dimensions are refused at the
/// codec, long before the service's own dim check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeLimits {
    /// Largest admissible declared frame payload length, in bytes.
    pub max_frame: usize,
    /// Largest admissible declared element count (vector lengths, packed
    /// dims, quantized levels).
    pub max_dim: usize,
}

impl Default for DecodeLimits {
    fn default() -> Self {
        Self { max_frame: MAX_FRAME, max_dim: MAX_DIM }
    }
}

impl DecodeLimits {
    /// Limits sized for a model of `dim` parameters: vectors may not
    /// declare more than `dim` elements, and a frame may not declare more
    /// bytes than a dense `Model` of that dimension needs (plus slack for
    /// headers and the error channel).
    pub fn for_dim(dim: usize) -> Self {
        let max_frame = (dim.saturating_mul(4).saturating_add(1024)).min(MAX_FRAME);
        Self { max_frame, max_dim: dim }
    }
}

// Payload kind bytes.
const KIND_JOIN: u8 = 1;
const KIND_WELCOME: u8 = 2;
const KIND_FETCH_MODEL: u8 = 3;
const KIND_MODEL: u8 = 4;
const KIND_SUBMIT_UPDATE: u8 = 5;
const KIND_SUBMIT_ACK: u8 = 6;
const KIND_SUBMIT_REJECT: u8 = 7;
const KIND_ROUND_ADVANCE: u8 = 8;
const KIND_BYE: u8 = 9;
const KIND_ERROR: u8 = 10;

// `SubmitUpdate` representation tag bytes (after `loss`).
const REPR_DENSE: u8 = 0;
const REPR_SIGNNORM: u8 = 1;
const REPR_QUANTIZED: u8 = 2;

/// Why a [`Message::SubmitReject`] was sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The server's inbound submit queue is full; retry after a pause.
    Backpressure,
    /// The submission's round is not the server's current round.
    WrongRound,
    /// This client already submitted for the current round.
    Duplicate,
    /// The connection never completed a `Join`, or the id is out of range.
    UnknownClient,
}

impl RejectReason {
    fn code(self) -> u8 {
        match self {
            RejectReason::Backpressure => 0,
            RejectReason::WrongRound => 1,
            RejectReason::Duplicate => 2,
            RejectReason::UnknownClient => 3,
        }
    }

    fn from_code(code: u8) -> Result<Self, WireError> {
        Ok(match code {
            0 => RejectReason::Backpressure,
            1 => RejectReason::WrongRound,
            2 => RejectReason::Duplicate,
            3 => RejectReason::UnknownClient,
            other => return Err(WireError::Malformed(format!("unknown reject reason {other}"))),
        })
    }
}

/// One protocol message. The client → server direction is `Join`,
/// `FetchModel`, `SubmitUpdate` and `Bye`; everything else flows
/// server → client.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client's hello: the client id it was provisioned with.
    Join { client_id: u64 },
    /// Server's acceptance: run shape + the current round.
    Welcome { client_id: u64, num_clients: u64, round: u64, total_rounds: u64 },
    /// Client asks for the current global model.
    FetchModel,
    /// The global parameters at `round` (raw f32 bits; bit-exact).
    Model { round: u64, params: Vec<f32> },
    /// Client's gradient for `round`, with its local training loss. The
    /// gradient travels in whichever representation the client chose —
    /// dense `f32`s, bit-packed signs + norm (~1/32nd the bytes), or
    /// 8-bit quantized — discriminated by a repr tag byte on the wire.
    SubmitUpdate { round: u64, loss: f32, gradient: GradientRepr },
    /// Submission accepted; `pending` clients still outstanding.
    SubmitAck { round: u64, pending: u64 },
    /// Submission refused; see [`RejectReason`].
    SubmitReject { round: u64, reason: RejectReason },
    /// The round completed and the server advanced to `round`; when
    /// `done`, the run is over and the client should say `Bye`.
    RoundAdvance { round: u64, done: bool },
    /// Client is leaving; the server closes the connection.
    Bye,
    /// Fatal protocol error; the connection is about to be closed.
    Error { detail: String },
}

impl Message {
    /// Short name for counters and traces.
    pub fn name(&self) -> &'static str {
        match self {
            Message::Join { .. } => "join",
            Message::Welcome { .. } => "welcome",
            Message::FetchModel => "fetch_model",
            Message::Model { .. } => "model",
            Message::SubmitUpdate { .. } => "submit_update",
            Message::SubmitAck { .. } => "submit_ack",
            Message::SubmitReject { .. } => "submit_reject",
            Message::RoundAdvance { .. } => "round_advance",
            Message::Bye => "bye",
            Message::Error { .. } => "error",
        }
    }
}

/// Why a byte stream could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Frame-level damage: bad length complement or payload CRC. The
    /// stream has no recoverable resync point; drop the connection.
    Corrupt(String),
    /// The frame declared a length, dimension or element count beyond
    /// the connection's [`DecodeLimits`] (or beyond its own payload), or
    /// its payload did not parse as a message. Always raised *before*
    /// the declared size is allocated.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Corrupt(why) => write!(f, "corrupt frame: {why}"),
            WireError::Malformed(why) => write!(f, "malformed payload: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---- Payload codec -----------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        // Raw bit pattern: NaNs, signed zeros and denormals all survive.
        self.u32(v.to_bits());
    }
    fn f32s(&mut self, vs: &[f32]) {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.f32(v);
        }
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
}

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
    max_dim: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| WireError::Malformed(format!("payload underrun at {}", self.pos)))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.u32()?))
    }
    fn f32s(&mut self) -> Result<Vec<f32>, WireError> {
        let n = self.u32()? as usize;
        // The count must fit the connection limit AND be covered by the
        // remaining payload before any allocation happens (a hostile
        // count must not reserve 4 GiB).
        if n > self.max_dim {
            return Err(WireError::Malformed(format!(
                "vector count {n} exceeds connection limit {}",
                self.max_dim
            )));
        }
        if n.checked_mul(4).is_none_or(|bytes| self.pos + bytes > self.bytes.len()) {
            return Err(WireError::Malformed(format!("vector count {n} exceeds payload")));
        }
        (0..n).map(|_| self.f32()).collect()
    }
    fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| WireError::Malformed(format!("invalid utf8 at {}", self.pos)))
    }
    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::Malformed(format!("{} trailing payload bytes", self.bytes.len() - self.pos)))
        }
    }
}

/// Decodes the tagged gradient representation of a `SubmitUpdate`.
///
/// Every invariant [`SignNormVec::from_parts`] asserts is checked here
/// first and surfaced as [`WireError::Malformed`]: a hostile or corrupt
/// frame must fail decoding, never panic the server.
fn decode_repr(d: &mut Dec<'_>) -> Result<GradientRepr, WireError> {
    Ok(match d.u8()? {
        REPR_DENSE => GradientRepr::Dense(d.f32s()?),
        REPR_SIGNNORM => {
            let dim = d.u32()? as usize;
            if dim > d.max_dim {
                return Err(WireError::Malformed(format!(
                    "signnorm dim {dim} exceeds connection limit {}",
                    d.max_dim
                )));
            }
            let norm = d.f32()?;
            let n_zeros = d.u32()? as usize;
            let words = dim.div_ceil(64);
            // Zeros + sign words must both be covered by the remaining
            // payload before anything allocates.
            let need = n_zeros.checked_mul(4).and_then(|z| words.checked_mul(8).map(|w| z + w));
            if n_zeros > dim || need.is_none_or(|b| d.pos + b > d.bytes.len()) {
                return Err(WireError::Malformed(format!(
                    "signnorm shape (dim {dim}, {n_zeros} zeros) exceeds payload"
                )));
            }
            let mut zeros = Vec::with_capacity(n_zeros);
            for i in 0..n_zeros {
                let z = d.u32()?;
                if z as usize >= dim || (i > 0 && zeros[i - 1] >= z) {
                    return Err(WireError::Malformed(format!("signnorm zero index {z} invalid")));
                }
                zeros.push(z);
            }
            let mut bits = Vec::with_capacity(words);
            for _ in 0..words {
                bits.push(d.u64()?);
            }
            if let Some(&tail) = bits.last() {
                let used = dim - (words - 1) * 64;
                if used < 64 && tail >> used != 0 {
                    return Err(WireError::Malformed("signnorm sign bits beyond dim".into()));
                }
            }
            if zeros.iter().any(|&z| (bits[(z as usize) >> 6] >> (z & 63)) & 1 != 0) {
                return Err(WireError::Malformed("signnorm coordinate both positive and zero".into()));
            }
            GradientRepr::SignNorm(SignNormVec::from_parts(dim, norm, bits, zeros))
        }
        REPR_QUANTIZED => {
            let scale = d.f32()?;
            let len = d.u32()? as usize;
            if len > d.max_dim {
                return Err(WireError::Malformed(format!(
                    "quantized length {len} exceeds connection limit {}",
                    d.max_dim
                )));
            }
            let raw = d.take(len)?;
            GradientRepr::QuantizedI8(QuantizedVec::from_parts(scale, raw.iter().map(|&b| b as i8).collect()))
        }
        other => return Err(WireError::Malformed(format!("unknown gradient repr tag {other}"))),
    })
}

fn encode_payload(msg: &Message) -> Vec<u8> {
    let mut e = Enc(Vec::new());
    match msg {
        Message::Join { client_id } => {
            e.u8(KIND_JOIN);
            e.u64(*client_id);
        }
        Message::Welcome { client_id, num_clients, round, total_rounds } => {
            e.u8(KIND_WELCOME);
            e.u64(*client_id);
            e.u64(*num_clients);
            e.u64(*round);
            e.u64(*total_rounds);
        }
        Message::FetchModel => e.u8(KIND_FETCH_MODEL),
        Message::Model { round, params } => {
            e.u8(KIND_MODEL);
            e.u64(*round);
            e.f32s(params);
        }
        Message::SubmitUpdate { round, loss, gradient } => {
            e.u8(KIND_SUBMIT_UPDATE);
            e.u64(*round);
            e.f32(*loss);
            match gradient {
                GradientRepr::Dense(v) => {
                    e.u8(REPR_DENSE);
                    e.f32s(v);
                }
                GradientRepr::SignNorm(s) => {
                    e.u8(REPR_SIGNNORM);
                    e.u32(s.dim() as u32);
                    e.f32(s.norm());
                    e.u32(s.zeros().len() as u32);
                    for &z in s.zeros() {
                        e.u32(z);
                    }
                    // Word count is implied by dim, so only the words travel.
                    for &w in s.bits() {
                        e.u64(w);
                    }
                }
                GradientRepr::QuantizedI8(q) => {
                    e.u8(REPR_QUANTIZED);
                    e.f32(q.scale());
                    e.u32(q.dim() as u32);
                    e.0.extend(q.levels().iter().map(|&b| b as u8));
                }
            }
        }
        Message::SubmitAck { round, pending } => {
            e.u8(KIND_SUBMIT_ACK);
            e.u64(*round);
            e.u64(*pending);
        }
        Message::SubmitReject { round, reason } => {
            e.u8(KIND_SUBMIT_REJECT);
            e.u64(*round);
            e.u8(reason.code());
        }
        Message::RoundAdvance { round, done } => {
            e.u8(KIND_ROUND_ADVANCE);
            e.u64(*round);
            e.u8(u8::from(*done));
        }
        Message::Bye => e.u8(KIND_BYE),
        Message::Error { detail } => {
            e.u8(KIND_ERROR);
            e.str(detail);
        }
    }
    e.0
}

/// Decodes one frame *payload* (the bytes between the length prefix and
/// the CRC) into a message, under the default [`DecodeLimits`].
pub fn decode_payload(payload: &[u8]) -> Result<Message, WireError> {
    decode_payload_limited(payload, &DecodeLimits::default())
}

/// Decodes one frame *payload* under explicit per-connection limits:
/// every declared length/dim is checked against `limits.max_dim` (and
/// the remaining payload) before anything is allocated.
pub fn decode_payload_limited(payload: &[u8], limits: &DecodeLimits) -> Result<Message, WireError> {
    let mut d = Dec { bytes: payload, pos: 0, max_dim: limits.max_dim };
    let msg = match d.u8()? {
        KIND_JOIN => Message::Join { client_id: d.u64()? },
        KIND_WELCOME => Message::Welcome {
            client_id: d.u64()?,
            num_clients: d.u64()?,
            round: d.u64()?,
            total_rounds: d.u64()?,
        },
        KIND_FETCH_MODEL => Message::FetchModel,
        KIND_MODEL => Message::Model { round: d.u64()?, params: d.f32s()? },
        KIND_SUBMIT_UPDATE => {
            Message::SubmitUpdate { round: d.u64()?, loss: d.f32()?, gradient: decode_repr(&mut d)? }
        }
        KIND_SUBMIT_ACK => Message::SubmitAck { round: d.u64()?, pending: d.u64()? },
        KIND_SUBMIT_REJECT => {
            Message::SubmitReject { round: d.u64()?, reason: RejectReason::from_code(d.u8()?)? }
        }
        KIND_ROUND_ADVANCE => Message::RoundAdvance { round: d.u64()?, done: d.u8()? != 0 },
        KIND_BYE => Message::Bye,
        KIND_ERROR => Message::Error { detail: d.str()? },
        other => return Err(WireError::Malformed(format!("unknown message kind {other}"))),
    };
    d.finish()?;
    Ok(msg)
}

/// Encodes a message as one complete frame, ready for the stream.
pub fn encode(msg: &Message) -> Vec<u8> {
    let payload = encode_payload(msg);
    let len = payload.len() as u32;
    let mut out = Vec::with_capacity(FRAME_PREFIX + payload.len() + FRAME_SUFFIX);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&(!len).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out
}

// ---- Stream reassembly -------------------------------------------------

/// Incremental frame reassembly for one byte stream.
///
/// TCP delivers frame fragments at arbitrary boundaries; `extend` appends
/// whatever arrived, `next` yields the next complete message (or `None`
/// until one is whole). Consumed bytes are compacted away lazily, so a
/// long-lived connection's buffer stays bounded by the largest in-flight
/// frame.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by returned messages.
    consumed: usize,
    /// Per-connection caps on declared frame/vector sizes.
    limits: DecodeLimits,
}

impl FrameBuffer {
    /// An empty buffer with the default [`DecodeLimits`].
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with explicit per-connection decode limits.
    pub fn with_limits(limits: DecodeLimits) -> Self {
        Self { limits, ..Self::default() }
    }

    /// The decode limits this buffer enforces.
    pub fn limits(&self) -> DecodeLimits {
        self.limits
    }

    /// Appends raw stream bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered and not yet consumed.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// The next complete message, `Ok(None)` if the buffered bytes end
    /// mid-frame, or an error on corruption (after which the stream is
    /// unusable and should be closed).
    pub fn next_message(&mut self) -> Result<Option<Message>, WireError> {
        let rest = &self.buf[self.consumed..];
        if rest.len() < FRAME_PREFIX {
            self.compact();
            return Ok(None);
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
        let len_chk = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len_chk != !len {
            return Err(WireError::Corrupt(format!(
                "length complement mismatch (len {len:#x}, chk {len_chk:#x})"
            )));
        }
        let len = len as usize;
        // Refuse the *declared* length before a single payload byte is
        // buffered toward it: a hostile 4 GiB prefix costs nothing.
        if len > self.limits.max_frame {
            return Err(WireError::Malformed(format!(
                "declared frame length {len} exceeds connection limit {}",
                self.limits.max_frame
            )));
        }
        let total = FRAME_PREFIX + len + FRAME_SUFFIX;
        if rest.len() < total {
            self.compact();
            return Ok(None);
        }
        let payload = &rest[FRAME_PREFIX..FRAME_PREFIX + len];
        let stored = u32::from_le_bytes(rest[FRAME_PREFIX + len..total].try_into().expect("4 bytes"));
        let actual = crc32(payload);
        if stored != actual {
            return Err(WireError::Corrupt(format!(
                "payload CRC mismatch (stored {stored:08x}, computed {actual:08x})"
            )));
        }
        let msg = decode_payload_limited(payload, &self.limits)?;
        self.consumed += total;
        self.compact();
        Ok(Some(msg))
    }

    /// Drops consumed bytes once they dominate the buffer, keeping the
    /// amortized cost of a long stream linear.
    fn compact(&mut self) {
        if self.consumed > 4096 && self.consumed * 2 >= self.buf.len() {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Join { client_id: 3 },
            Message::Welcome { client_id: 3, num_clients: 10, round: 0, total_rounds: 24 },
            Message::FetchModel,
            Message::Model { round: 0, params: vec![0.5, -1.25, f32::MIN_POSITIVE, -0.0] },
            Message::SubmitUpdate {
                round: 0,
                loss: 1.5,
                gradient: GradientRepr::Dense(vec![1.0, -2.0, 3.5]),
            },
            Message::SubmitUpdate {
                round: 1,
                loss: 0.75,
                gradient: GradientRepr::SignNorm(SignNormVec::pack(&[1.0, -2.0, 0.0, 4.0, -0.5])),
            },
            Message::SubmitUpdate {
                round: 2,
                loss: 0.25,
                gradient: GradientRepr::QuantizedI8(QuantizedVec::quantize(&[0.1, -0.9, 1.27, 0.0])),
            },
            Message::SubmitAck { round: 0, pending: 7 },
            Message::SubmitReject { round: 0, reason: RejectReason::Backpressure },
            Message::RoundAdvance { round: 1, done: false },
            Message::RoundAdvance { round: 24, done: true },
            Message::Bye,
            Message::Error { detail: "protocol violation: Join after Welcome".into() },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in sample_messages() {
            let frame = encode(&msg);
            let mut fb = FrameBuffer::new();
            fb.extend(&frame);
            assert_eq!(fb.next_message().expect("decode"), Some(msg.clone()), "{}", msg.name());
            assert_eq!(fb.next_message().expect("decode"), None);
        }
    }

    #[test]
    fn f32_bits_survive_exactly() {
        let params = vec![f32::NAN, -0.0, f32::INFINITY, 1.0e-40, 3.5];
        let frame = encode(&Message::Model { round: 9, params: params.clone() });
        let mut fb = FrameBuffer::new();
        fb.extend(&frame);
        let Some(Message::Model { params: got, .. }) = fb.next_message().expect("decode") else {
            panic!("wrong message");
        };
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&params), bits(&got));
    }

    #[test]
    fn byte_at_a_time_reassembly() {
        let msgs = sample_messages();
        let stream: Vec<u8> = msgs.iter().flat_map(encode).collect();
        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        for &b in &stream {
            fb.extend(&[b]);
            while let Some(m) = fb.next_message().expect("decode") {
                got.push(m);
            }
        }
        assert_eq!(got, msgs);
        assert_eq!(fb.pending_bytes(), 0);
    }

    #[test]
    fn torn_frame_waits_for_more_bytes() {
        let frame = encode(&Message::SubmitAck { round: 2, pending: 3 });
        for cut in 0..frame.len() {
            let mut fb = FrameBuffer::new();
            fb.extend(&frame[..cut]);
            assert_eq!(fb.next_message().expect("torn prefix is not an error"), None, "cut at {cut}");
        }
    }

    #[test]
    fn flipped_byte_is_rejected() {
        let frame = encode(&Message::SubmitUpdate {
            round: 1,
            loss: 0.5,
            gradient: GradientRepr::Dense(vec![1.0, 2.0]),
        });
        for pos in 0..frame.len() {
            let mut bad = frame.clone();
            bad[pos] ^= 0x01;
            let mut fb = FrameBuffer::new();
            fb.extend(&bad);
            // Either the frame is rejected outright, or the flip landed in
            // the length field making the frame longer — in which case the
            // decoder must keep waiting, never return a wrong message.
            match fb.next_message() {
                Err(_) | Ok(None) => {}
                Ok(Some(m)) => panic!("flip at {pos} decoded as {m:?}"),
            }
        }
    }

    #[test]
    fn signnorm_frame_is_a_fraction_of_dense() {
        let v: Vec<f32> = (0..4096).map(|i| ((i as f32) * 0.7).sin() + 0.01).collect();
        let dense =
            encode(&Message::SubmitUpdate { round: 0, loss: 0.0, gradient: GradientRepr::Dense(v.clone()) });
        let packed = encode(&Message::SubmitUpdate {
            round: 0,
            loss: 0.0,
            gradient: GradientRepr::SignNorm(SignNormVec::pack(&v)),
        });
        let quant = encode(&Message::SubmitUpdate {
            round: 0,
            loss: 0.0,
            gradient: GradientRepr::QuantizedI8(QuantizedVec::quantize(&v)),
        });
        assert!(packed.len() * 25 < dense.len(), "signnorm {} vs dense {}", packed.len(), dense.len());
        assert!(quant.len() * 3 < dense.len(), "quantized {} vs dense {}", quant.len(), dense.len());
    }

    #[test]
    fn malformed_signnorm_payloads_error_instead_of_panicking() {
        // Each case: (description, payload after `kind|round|loss|tag=1`).
        let mut base = Enc(Vec::new());
        base.u8(KIND_SUBMIT_UPDATE);
        base.u64(0);
        base.f32(0.5);
        base.u8(REPR_SIGNNORM);
        let cases: Vec<(&str, Vec<u8>)> = vec![
            ("zero count beyond dim", {
                let mut e = Enc(base.0.clone());
                e.u32(3); // dim
                e.f32(1.0); // norm
                e.u32(5); // n_zeros > dim
                e.0
            }),
            ("zero index out of range", {
                let mut e = Enc(base.0.clone());
                e.u32(3);
                e.f32(1.0);
                e.u32(1);
                e.u32(7); // >= dim
                e.u64(0);
                e.0
            }),
            ("zeros not ascending", {
                let mut e = Enc(base.0.clone());
                e.u32(4);
                e.f32(1.0);
                e.u32(2);
                e.u32(2);
                e.u32(1); // descends
                e.u64(0);
                e.0
            }),
            ("sign bits beyond dim", {
                let mut e = Enc(base.0.clone());
                e.u32(3);
                e.f32(1.0);
                e.u32(0);
                e.u64(1 << 10); // bit past coordinate 2
                e.0
            }),
            ("coordinate both positive and zero", {
                let mut e = Enc(base.0.clone());
                e.u32(3);
                e.f32(1.0);
                e.u32(1);
                e.u32(0); // zero at 0 ...
                e.u64(1); // ... but sign bit 0 set
                e.0
            }),
        ];
        for (what, payload) in cases {
            assert!(
                matches!(decode_payload(&payload), Err(WireError::Malformed(_))),
                "{what} must be Malformed"
            );
        }
    }

    #[test]
    fn oversized_length_is_refused_before_allocation() {
        // A hostile ~4 GiB declared length with a valid complement: the
        // decoder must answer Malformed from the 8 prefix bytes alone,
        // never reserving the declared size.
        for declared in [(MAX_FRAME + 1) as u32, u32::MAX] {
            let mut frame = Vec::new();
            frame.extend_from_slice(&declared.to_le_bytes());
            frame.extend_from_slice(&(!declared).to_le_bytes());
            let mut fb = FrameBuffer::new();
            fb.extend(&frame);
            assert!(
                matches!(fb.next_message(), Err(WireError::Malformed(_))),
                "declared {declared} must be Malformed"
            );
            assert!(fb.buf.capacity() < 4096, "decoder reserved memory for a hostile length");
        }
    }

    #[test]
    fn per_connection_frame_limit_tightens_the_default() {
        // A frame that is fine under the defaults is refused by a
        // connection provisioned for a small model.
        let msg = Message::Model { round: 0, params: vec![1.0; 1024] };
        let frame = encode(&msg);
        let mut fb = FrameBuffer::with_limits(DecodeLimits { max_frame: 512, max_dim: MAX_DIM });
        fb.extend(&frame);
        assert!(matches!(fb.next_message(), Err(WireError::Malformed(_))));
        // The same frame decodes under limits sized for the model.
        let mut fb = FrameBuffer::with_limits(DecodeLimits::for_dim(1024));
        fb.extend(&frame);
        assert_eq!(fb.next_message().expect("decode"), Some(msg));
    }

    #[test]
    fn declared_dims_beyond_connection_limit_are_malformed() {
        // Each representation's declared element count is checked against
        // the connection's max_dim before anything allocates — even when
        // the payload itself would cover it.
        let tight = DecodeLimits { max_frame: MAX_FRAME, max_dim: 8 };
        let dense =
            Message::SubmitUpdate { round: 0, loss: 0.0, gradient: GradientRepr::Dense(vec![1.0; 16]) };
        let model = Message::Model { round: 0, params: vec![1.0; 16] };
        let packed = Message::SubmitUpdate {
            round: 0,
            loss: 0.0,
            gradient: GradientRepr::SignNorm(SignNormVec::pack(&[1.0; 16])),
        };
        let quant = Message::SubmitUpdate {
            round: 0,
            loss: 0.0,
            gradient: GradientRepr::QuantizedI8(QuantizedVec::quantize(&[1.0; 16])),
        };
        for msg in [dense, model, packed, quant] {
            let frame = encode(&msg);
            let mut fb = FrameBuffer::with_limits(tight);
            fb.extend(&frame);
            assert!(
                matches!(fb.next_message(), Err(WireError::Malformed(_))),
                "{}: dim 16 must be refused at max_dim 8",
                msg.name()
            );
        }
    }

    #[test]
    fn hostile_billion_coordinate_declarations_are_malformed() {
        // Payload-level declared counts far beyond the payload (the
        // "billion-coordinate gradient in a 30-byte frame" shape): every
        // representation must refuse before reserving.
        let hostile_counts = [u32::MAX, 1 << 30];
        for count in hostile_counts {
            // Dense submit with a hostile vector count.
            let mut e = Enc(Vec::new());
            e.u8(KIND_SUBMIT_UPDATE);
            e.u64(0);
            e.f32(0.0);
            e.u8(REPR_DENSE);
            e.u32(count);
            assert!(matches!(decode_payload(&e.0), Err(WireError::Malformed(_))), "dense {count}");

            // SignNorm submit with a hostile dim.
            let mut e = Enc(Vec::new());
            e.u8(KIND_SUBMIT_UPDATE);
            e.u64(0);
            e.f32(0.0);
            e.u8(REPR_SIGNNORM);
            e.u32(count);
            e.f32(1.0);
            e.u32(0);
            assert!(matches!(decode_payload(&e.0), Err(WireError::Malformed(_))), "signnorm {count}");

            // Quantized submit with a hostile level count.
            let mut e = Enc(Vec::new());
            e.u8(KIND_SUBMIT_UPDATE);
            e.u64(0);
            e.f32(0.0);
            e.u8(REPR_QUANTIZED);
            e.f32(1.0);
            e.u32(count);
            assert!(matches!(decode_payload(&e.0), Err(WireError::Malformed(_))), "quantized {count}");

            // Model broadcast with a hostile parameter count.
            let mut e = Enc(Vec::new());
            e.u8(KIND_MODEL);
            e.u64(0);
            e.u32(count);
            assert!(matches!(decode_payload(&e.0), Err(WireError::Malformed(_))), "model {count}");
        }
    }

    #[test]
    fn buffer_compacts_consumed_bytes() {
        let frame = encode(&Message::FetchModel);
        let mut fb = FrameBuffer::new();
        for _ in 0..2000 {
            fb.extend(&frame);
            assert!(fb.next_message().expect("decode").is_some());
        }
        assert_eq!(fb.pending_bytes(), 0);
        // 2000 frames passed through, but the buffer never grows past the
        // compaction threshold plus one frame.
        assert!(fb.buf.len() <= 4096 + 2 * frame.len(), "compaction bounded the buffer: {}", fb.buf.len());
    }
}
