//! Element-wise activation layers: ReLU and (inverted) dropout.

use rand::Rng;
use sg_math::seeded_rng;
use sg_tensor::Tensor;

use crate::layer::Layer;

/// Rectified linear unit, `y = max(0, x)`.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Vec<bool>,
    shape: Vec<usize>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.mask = input.data().iter().map(|&x| x > 0.0).collect();
        self.shape = input.shape().to_vec();
        input.map(|x| if x > 0.0 { x } else { 0.0 })
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert_eq!(grad_output.numel(), self.mask.len(), "Relu::backward before forward");
        let data =
            grad_output.data().iter().zip(&self.mask).map(|(&g, &m)| if m { g } else { 0.0 }).collect();
        Tensor::from_vec(data, &self.shape)
    }

    fn num_params(&self) -> usize {
        0
    }

    fn write_params(&self, _out: &mut [f32]) -> usize {
        0
    }

    fn read_params(&mut self, _src: &[f32]) -> usize {
        0
    }

    fn write_grads(&self, _out: &mut [f32]) -> usize {
        0
    }

    fn zero_grad(&mut self) {}

    fn name(&self) -> &'static str {
        "Relu"
    }
}

/// Inverted dropout: at train time, zeroes activations with probability `p`
/// and scales survivors by `1/(1-p)`; identity at eval time.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng_seed: u64,
    counter: u64,
    mask: Vec<f32>,
    shape: Vec<usize>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and a seed for the
    /// internal mask stream (kept per-layer so experiments reproduce).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "Dropout: p={p} out of [0,1)");
        Self { p, rng_seed: seed, counter: 0, mask: Vec::new(), shape: Vec::new() }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        self.shape = input.shape().to_vec();
        if !train || self.p == 0.0 {
            self.mask = vec![1.0; input.numel()];
            return input.clone();
        }
        self.counter += 1;
        let mut rng = seeded_rng(self.rng_seed.wrapping_add(self.counter));
        let keep = 1.0 - self.p;
        let inv = 1.0 / keep;
        self.mask = (0..input.numel()).map(|_| if rng.gen::<f32>() < keep { inv } else { 0.0 }).collect();
        let data = input.data().iter().zip(&self.mask).map(|(&x, &m)| x * m).collect();
        Tensor::from_vec(data, input.shape())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert_eq!(grad_output.numel(), self.mask.len(), "Dropout::backward before forward");
        let data = grad_output.data().iter().zip(&self.mask).map(|(&g, &m)| g * m).collect();
        Tensor::from_vec(data, &self.shape)
    }

    fn num_params(&self) -> usize {
        0
    }

    fn write_params(&self, _out: &mut [f32]) -> usize {
        0
    }

    fn read_params(&mut self, _src: &[f32]) -> usize {
        0
    }

    fn write_grads(&self, _out: &mut [f32]) -> usize {
        0
    }

    fn zero_grad(&mut self) {}

    fn name(&self) -> &'static str {
        "Dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        assert_eq!(r.forward(&x, true).data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 3.0], &[2]);
        r.forward(&x, true);
        let g = r.backward(&Tensor::from_vec(vec![5.0, 7.0], &[2]));
        assert_eq!(g.data(), &[0.0, 7.0]);
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut d = Dropout::new(0.5, 9);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        assert_eq!(d.forward(&x, false).data(), x.data());
    }

    #[test]
    fn dropout_train_preserves_expectation() {
        let mut d = Dropout::new(0.3, 10);
        let x = Tensor::ones(&[10_000]);
        let mut total = 0.0f64;
        for _ in 0..10 {
            total += f64::from(d.forward(&x, true).sum());
        }
        let mean = total / (10.0 * 10_000.0);
        assert!((mean - 1.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 11);
        let x = Tensor::ones(&[100]);
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::ones(&[100]));
        // Gradient is zero exactly where the output was zero.
        for (o, gi) in y.data().iter().zip(g.data()) {
            assert_eq!(*o == 0.0, *gi == 0.0);
        }
    }
}
