//! 2-D convolution layer via im2col lowering.

use rand::Rng;
use sg_tensor::{col2im, im2col, kaiming_uniform, Conv2dSpec, Tensor};

use crate::layer::{read_slice, write_slice, Layer};

/// 2-D convolution over `[batch, in_channels, H, W]` inputs.
///
/// Weights are stored `[out_channels, in_channels * k_h * k_w]`; forward is
/// one GEMM per batch item over the im2col-unfolded input, as in CPU
/// PyTorch.
#[derive(Debug, Clone)]
pub struct Conv2d {
    spec: Conv2dSpec,
    out_channels: usize,
    weight: Vec<f32>,
    bias: Vec<f32>,
    grad_weight: Vec<f32>,
    grad_bias: Vec<f32>,
    cached_cols: Vec<Vec<f32>>,
    cached_batch: usize,
}

impl Conv2d {
    /// Creates a convolution layer.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        in_h: usize,
        in_w: usize,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0, "Conv2d: zero-sized config");
        let spec = Conv2dSpec { in_channels, in_h, in_w, k_h: kernel, k_w: kernel, stride, padding };
        let fan_in = in_channels * kernel * kernel;
        Self {
            spec,
            out_channels,
            weight: kaiming_uniform(rng, out_channels * fan_in, fan_in),
            bias: vec![0.0; out_channels],
            grad_weight: vec![0.0; out_channels * fan_in],
            grad_bias: vec![0.0; out_channels],
            cached_cols: Vec::new(),
            cached_batch: 0,
        }
    }

    /// Output shape `[out_channels, out_h, out_w]` for one item.
    pub fn output_shape(&self) -> [usize; 3] {
        [self.out_channels, self.spec.out_h(), self.spec.out_w()]
    }

    /// The convolution geometry.
    pub fn spec(&self) -> &Conv2dSpec {
        &self.spec
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let s = &self.spec;
        assert_eq!(input.ndim(), 4, "Conv2d: expected [B, C, H, W]");
        let (b, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        assert_eq!((c, h, w), (s.in_channels, s.in_h, s.in_w), "Conv2d: input geometry mismatch");

        let (oh, ow) = (s.out_h(), s.out_w());
        let col_rows = s.col_rows();
        let col_cols = s.col_cols();
        let item = c * h * w;
        let w_mat = Tensor::from_vec(self.weight.clone(), &[self.out_channels, col_rows]);

        let mut out = vec![0.0f32; b * self.out_channels * oh * ow];
        self.cached_cols.clear();
        self.cached_batch = b;
        for i in 0..b {
            let mut cols = vec![0.0f32; col_rows * col_cols];
            im2col(&input.data()[i * item..(i + 1) * item], s, &mut cols);
            let cols_t = Tensor::from_vec(cols.clone(), &[col_rows, col_cols]);
            let y = w_mat.matmul(&cols_t); // [OC, oh*ow]
            let base = i * self.out_channels * oh * ow;
            for oc in 0..self.out_channels {
                let bias = self.bias[oc];
                let dst = &mut out[base + oc * oh * ow..base + (oc + 1) * oh * ow];
                let src = &y.data()[oc * col_cols..(oc + 1) * col_cols];
                for (d, &v) in dst.iter_mut().zip(src) {
                    *d = v + bias;
                }
            }
            self.cached_cols.push(cols);
        }
        Tensor::from_vec(out, &[b, self.out_channels, oh, ow])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let s = &self.spec;
        let b = self.cached_batch;
        assert!(b > 0, "Conv2d::backward before forward");
        let (oh, ow) = (s.out_h(), s.out_w());
        assert_eq!(grad_output.shape(), &[b, self.out_channels, oh, ow], "Conv2d: grad shape mismatch");

        let col_rows = s.col_rows();
        let col_cols = s.col_cols();
        let item_out = self.out_channels * oh * ow;
        let item_in = s.in_channels * s.in_h * s.in_w;
        let w_mat = Tensor::from_vec(self.weight.clone(), &[self.out_channels, col_rows]);

        let mut grad_input = vec![0.0f32; b * item_in];
        for i in 0..b {
            let go = &grad_output.data()[i * item_out..(i + 1) * item_out];
            let go_t = Tensor::from_vec(go.to_vec(), &[self.out_channels, col_cols]);
            // dW += dY @ cols^T  ([OC, col_rows])
            let cols_t = Tensor::from_vec(self.cached_cols[i].clone(), &[col_rows, col_cols]);
            let dw = go_t.matmul_bt(&cols_t);
            for (g, &d) in self.grad_weight.iter_mut().zip(dw.data()) {
                *g += d;
            }
            // db += row sums of dY.
            for oc in 0..self.out_channels {
                self.grad_bias[oc] += go[oc * col_cols..(oc + 1) * col_cols].iter().sum::<f32>();
            }
            // dCols = W^T @ dY  ([col_rows, col_cols]) -> fold back.
            let dcols = w_mat.matmul_at(&go_t);
            col2im(dcols.data(), s, &mut grad_input[i * item_in..(i + 1) * item_in]);
        }
        Tensor::from_vec(grad_input, &[b, s.in_channels, s.in_h, s.in_w])
    }

    fn num_params(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn write_params(&self, out: &mut [f32]) -> usize {
        let n = write_slice(out, &self.weight);
        n + write_slice(&mut out[n..], &self.bias)
    }

    fn read_params(&mut self, src: &[f32]) -> usize {
        let n = read_slice(&mut self.weight, src);
        n + read_slice(&mut self.bias, &src[n..])
    }

    fn write_grads(&self, out: &mut [f32]) -> usize {
        let n = write_slice(out, &self.grad_weight);
        n + write_slice(&mut out[n..], &self.grad_bias)
    }

    fn zero_grad(&mut self) {
        self.grad_weight.iter_mut().for_each(|g| *g = 0.0);
        self.grad_bias.iter_mut().for_each(|g| *g = 0.0);
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_math::seeded_rng;

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1x1 kernel with weight 1 is the identity map.
        let mut rng = seeded_rng(0);
        let mut conv = Conv2d::new(&mut rng, 1, 1, 1, 1, 0, 3, 3);
        let mut p = vec![0.0; conv.num_params()];
        p[0] = 1.0;
        conv.read_params(&p);
        let x = Tensor::from_vec((0..9).map(|v| v as f32).collect(), &[1, 1, 3, 3]);
        let y = conv.forward(&x, true);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_3x3_convolution() {
        // Sum kernel over a 2x2 input with padding 0: single output = sum.
        let mut rng = seeded_rng(0);
        let mut conv = Conv2d::new(&mut rng, 1, 1, 2, 1, 0, 2, 2);
        let p = vec![1.0, 1.0, 1.0, 1.0, 0.0]; // 4 weights + bias
        conv.read_params(&p);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data()[0], 10.0);
    }

    #[test]
    fn gradient_check_small_conv() {
        let mut rng = seeded_rng(5);
        let mut conv = Conv2d::new(&mut rng, 2, 3, 3, 1, 1, 4, 4);
        let x_data: Vec<f32> = (0..2 * 2 * 4 * 4).map(|i| ((i as f32) * 0.37).sin()).collect();
        let x = Tensor::from_vec(x_data.clone(), &[2, 2, 4, 4]);

        let out = conv.forward(&x, true);
        conv.zero_grad();
        let dx = conv.backward(&Tensor::ones(out.shape()));

        let mut params = vec![0.0; conv.num_params()];
        conv.write_params(&mut params);
        let mut grads = vec![0.0; conv.num_params()];
        conv.write_grads(&mut grads);

        let eps = 1e-2f32;
        // Spot-check a spread of parameters (full check is slow).
        for &p in &[0usize, 7, 19, 35, conv.num_params() - 2, conv.num_params() - 1] {
            let mut plus = params.clone();
            plus[p] += eps;
            conv.read_params(&plus);
            let lp = conv.forward(&x, true).sum();
            let mut minus = params.clone();
            minus[p] -= eps;
            conv.read_params(&minus);
            let lm = conv.forward(&x, true).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - grads[p]).abs() < 0.05, "param {p}: numeric {numeric} vs {}", grads[p]);
        }

        // Input gradient spot check.
        conv.read_params(&params);
        for &i in &[0usize, 13, 31, 63] {
            let mut xp = x_data.clone();
            xp[i] += eps;
            let lp = conv.forward(&Tensor::from_vec(xp, x.shape()), true).sum();
            let mut xm = x_data.clone();
            xm[i] -= eps;
            let lm = conv.forward(&Tensor::from_vec(xm, x.shape()), true).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - dx.data()[i]).abs() < 0.05, "input {i}");
        }
    }

    #[test]
    fn stride_two_halves_output() {
        let mut rng = seeded_rng(1);
        let conv = Conv2d::new(&mut rng, 3, 8, 3, 2, 1, 16, 16);
        assert_eq!(conv.output_shape(), [8, 8, 8]);
    }
}
