//! Fully-connected layer.

use rand::Rng;
use sg_tensor::{kaiming_uniform, Tensor};

use crate::layer::{read_slice, write_slice, Layer};

/// A fully-connected layer `y = x W^T + b`.
///
/// Weights are stored `[out_features, in_features]` (PyTorch layout) so the
/// forward pass is a `matmul_bt` over row-major buffers.
#[derive(Debug, Clone)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    weight: Vec<f32>,
    bias: Vec<f32>,
    grad_weight: Vec<f32>,
    grad_bias: Vec<f32>,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Kaiming-uniform weights and zero bias.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, in_features: usize, out_features: usize) -> Self {
        assert!(in_features > 0 && out_features > 0, "Dense: zero-sized layer");
        Self {
            in_features,
            out_features,
            weight: kaiming_uniform(rng, out_features * in_features, in_features),
            bias: vec![0.0; out_features],
            grad_weight: vec![0.0; out_features * in_features],
            grad_bias: vec![0.0; out_features],
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(input.ndim(), 2, "Dense: expected [batch, features] input");
        assert_eq!(input.shape()[1], self.in_features, "Dense: feature mismatch");
        let w = Tensor::from_vec(self.weight.clone(), &[self.out_features, self.in_features]);
        let out = input.matmul_bt(&w).add_row_bias(&self.bias);
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("Dense::backward before forward");
        let batch = input.shape()[0];
        assert_eq!(grad_output.shape(), &[batch, self.out_features], "Dense: grad shape mismatch");

        // dW = grad_output^T @ input  ([out, in])
        let dw = grad_output.matmul_at(input);
        for (g, &d) in self.grad_weight.iter_mut().zip(dw.data()) {
            *g += d;
        }
        // db = column sums of grad_output.
        for (g, d) in self.grad_bias.iter_mut().zip(grad_output.col_sums()) {
            *g += d;
        }
        // dX = grad_output @ W  ([batch, in])
        let w = Tensor::from_vec(self.weight.clone(), &[self.out_features, self.in_features]);
        grad_output.matmul(&w)
    }

    fn num_params(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn write_params(&self, out: &mut [f32]) -> usize {
        let n = write_slice(out, &self.weight);
        n + write_slice(&mut out[n..], &self.bias)
    }

    fn read_params(&mut self, src: &[f32]) -> usize {
        let n = read_slice(&mut self.weight, src);
        n + read_slice(&mut self.bias, &src[n..])
    }

    fn write_grads(&self, out: &mut [f32]) -> usize {
        let n = write_slice(out, &self.grad_weight);
        n + write_slice(&mut out[n..], &self.grad_bias)
    }

    fn zero_grad(&mut self) {
        self.grad_weight.iter_mut().for_each(|g| *g = 0.0);
        self.grad_bias.iter_mut().for_each(|g| *g = 0.0);
    }

    fn name(&self) -> &'static str {
        "Dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_math::seeded_rng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = seeded_rng(0);
        let mut layer = Dense::new(&mut rng, 3, 2);
        // Zero the weights, set bias, check output equals bias everywhere.
        let zeros = vec![0.0; layer.num_params()];
        layer.read_params(&zeros);
        let mut params = vec![0.0; layer.num_params()];
        layer.write_params(&mut params);
        params[6] = 1.5; // bias[0]
        params[7] = -0.5; // bias[1]
        layer.read_params(&params);
        let out = layer.forward(&Tensor::ones(&[4, 3]), true);
        assert_eq!(out.shape(), &[4, 2]);
        for i in 0..4 {
            assert_eq!(out.at2(i, 0), 1.5);
            assert_eq!(out.at2(i, 1), -0.5);
        }
    }

    #[test]
    fn param_round_trip() {
        let mut rng = seeded_rng(1);
        let layer = Dense::new(&mut rng, 4, 3);
        let mut buf = vec![0.0; layer.num_params()];
        assert_eq!(layer.write_params(&mut buf), 15);
        let mut layer2 = Dense::new(&mut rng, 4, 3);
        layer2.read_params(&buf);
        let mut buf2 = vec![0.0; 15];
        layer2.write_params(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn gradient_check_finite_difference() {
        // Compare analytic gradients against central differences on a tiny
        // layer with a scalar loss L = sum(forward(x)).
        let mut rng = seeded_rng(2);
        let mut layer = Dense::new(&mut rng, 3, 2);
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 1.0, 0.0, -0.5], &[2, 3]);

        let out = layer.forward(&x, true);
        let ones = Tensor::ones(out.shape());
        layer.zero_grad();
        let dx = layer.backward(&ones);

        let mut params = vec![0.0; layer.num_params()];
        layer.write_params(&mut params);
        let mut grads = vec![0.0; layer.num_params()];
        layer.write_grads(&mut grads);

        let eps = 1e-3f32;
        for p in 0..params.len() {
            let mut plus = params.clone();
            plus[p] += eps;
            layer.read_params(&plus);
            let lp = layer.forward(&x, true).sum();
            let mut minus = params.clone();
            minus[p] -= eps;
            layer.read_params(&minus);
            let lm = layer.forward(&x, true).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - grads[p]).abs() < 1e-2, "param {p}: numeric {numeric} analytic {}", grads[p]);
        }

        // Input gradient check.
        layer.read_params(&params);
        let xv = x.data().to_vec();
        for i in 0..xv.len() {
            let mut xp = xv.clone();
            xp[i] += eps;
            let lp = layer.forward(&Tensor::from_vec(xp, x.shape()), true).sum();
            let mut xm = xv.clone();
            xm[i] -= eps;
            let lm = layer.forward(&Tensor::from_vec(xm, x.shape()), true).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - dx.data()[i]).abs() < 1e-2, "input {i}");
        }
    }

    #[test]
    fn grads_accumulate_until_zeroed() {
        let mut rng = seeded_rng(3);
        let mut layer = Dense::new(&mut rng, 2, 2);
        let x = Tensor::ones(&[1, 2]);
        let g = Tensor::ones(&[1, 2]);
        layer.forward(&x, true);
        layer.backward(&g);
        let mut g1 = vec![0.0; layer.num_params()];
        layer.write_grads(&mut g1);
        layer.forward(&x, true);
        layer.backward(&g);
        let mut g2 = vec![0.0; layer.num_params()];
        layer.write_grads(&mut g2);
        for (a, b) in g1.iter().zip(&g2) {
            assert!((2.0 * a - b).abs() < 1e-6);
        }
        layer.zero_grad();
        let mut g3 = vec![0.0; layer.num_params()];
        layer.write_grads(&mut g3);
        assert!(g3.iter().all(|&v| v == 0.0));
    }
}
