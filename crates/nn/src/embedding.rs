//! Token embedding lookup layer.

use rand::Rng;
use sg_tensor::{xavier_uniform, Tensor};

use crate::layer::{read_slice, write_slice, Layer};

/// Embedding lookup: `[B, T]` token ids (stored as `f32`) → `[B, T, E]`.
///
/// The gradient of an embedding is **sparse** — only rows of tokens that
/// occurred in the batch are non-zero. This matters for the reproduction:
/// the paper's AG-News/TextRNN task produces gradients with a large
/// proportion of exact zeros, a distinct sign-statistics regime for the
/// SignGuard filter.
#[derive(Debug, Clone)]
pub struct Embedding {
    vocab: usize,
    dim: usize,
    weight: Vec<f32>,
    grad_weight: Vec<f32>,
    cached_ids: Vec<usize>,
    cached_shape: Vec<usize>,
}

impl Embedding {
    /// Creates an embedding table of `vocab` rows and `dim` columns.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, vocab: usize, dim: usize) -> Self {
        assert!(vocab > 0 && dim > 0, "Embedding: zero-sized table");
        Self {
            vocab,
            dim,
            weight: xavier_uniform(rng, vocab * dim, vocab, dim),
            grad_weight: vec![0.0; vocab * dim],
            cached_ids: Vec::new(),
            cached_shape: Vec::new(),
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

impl Layer for Embedding {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(input.ndim(), 2, "Embedding: expected [B, T] token ids");
        let (b, t) = (input.shape()[0], input.shape()[1]);
        self.cached_ids = input
            .data()
            .iter()
            .map(|&x| {
                let id = x as usize;
                assert!(
                    x >= 0.0 && x.fract() == 0.0 && id < self.vocab,
                    "Embedding: invalid token id {x} (vocab {})",
                    self.vocab
                );
                id
            })
            .collect();
        self.cached_shape = vec![b, t];
        let mut out = vec![0.0f32; b * t * self.dim];
        for (pos, &id) in self.cached_ids.iter().enumerate() {
            out[pos * self.dim..(pos + 1) * self.dim]
                .copy_from_slice(&self.weight[id * self.dim..(id + 1) * self.dim]);
        }
        Tensor::from_vec(out, &[b, t, self.dim])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert!(!self.cached_ids.is_empty(), "Embedding::backward before forward");
        let (b, t) = (self.cached_shape[0], self.cached_shape[1]);
        assert_eq!(grad_output.shape(), &[b, t, self.dim], "Embedding: grad shape mismatch");
        for (pos, &id) in self.cached_ids.iter().enumerate() {
            let src = &grad_output.data()[pos * self.dim..(pos + 1) * self.dim];
            let dst = &mut self.grad_weight[id * self.dim..(id + 1) * self.dim];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
        // Token ids are not differentiable; return a zero gradient of the
        // input shape so Sequential chaining stays uniform.
        Tensor::zeros(&self.cached_shape)
    }

    fn num_params(&self) -> usize {
        self.weight.len()
    }

    fn write_params(&self, out: &mut [f32]) -> usize {
        write_slice(out, &self.weight)
    }

    fn read_params(&mut self, src: &[f32]) -> usize {
        read_slice(&mut self.weight, src)
    }

    fn write_grads(&self, out: &mut [f32]) -> usize {
        write_slice(out, &self.grad_weight)
    }

    fn zero_grad(&mut self) {
        self.grad_weight.iter_mut().for_each(|g| *g = 0.0);
    }

    fn name(&self) -> &'static str {
        "Embedding"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_math::seeded_rng;

    #[test]
    fn lookup_returns_rows() {
        let mut rng = seeded_rng(0);
        let mut emb = Embedding::new(&mut rng, 5, 3);
        let x = Tensor::from_vec(vec![0.0, 4.0, 2.0, 2.0], &[2, 2]);
        let y = emb.forward(&x, true);
        assert_eq!(y.shape(), &[2, 2, 3]);
        assert_eq!(&y.data()[0..3], &emb.weight[0..3]);
        assert_eq!(&y.data()[3..6], &emb.weight[12..15]);
        assert_eq!(&y.data()[6..9], &y.data()[9..12]); // same token 2 twice
    }

    #[test]
    #[should_panic(expected = "invalid token id")]
    fn out_of_vocab_panics() {
        let mut rng = seeded_rng(0);
        let mut emb = Embedding::new(&mut rng, 3, 2);
        let x = Tensor::from_vec(vec![5.0], &[1, 1]);
        emb.forward(&x, true);
    }

    #[test]
    fn gradient_is_sparse_and_accumulated() {
        let mut rng = seeded_rng(1);
        let mut emb = Embedding::new(&mut rng, 10, 2);
        let x = Tensor::from_vec(vec![3.0, 3.0], &[1, 2]);
        emb.forward(&x, true);
        emb.backward(&Tensor::ones(&[1, 2, 2]));
        let mut g = vec![0.0; emb.num_params()];
        emb.write_grads(&mut g);
        // Token 3 used twice: its row accumulates 2.0; everything else zero.
        for (i, &v) in g.iter().enumerate() {
            if (6..8).contains(&i) {
                assert_eq!(v, 2.0);
            } else {
                assert_eq!(v, 0.0);
            }
        }
    }
}
