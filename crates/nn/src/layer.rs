//! The [`Layer`] trait: forward / backward with internally accumulated
//! parameter gradients.

use sg_tensor::Tensor;

/// A differentiable layer.
///
/// Layers cache whatever they need during [`forward`](Layer::forward) and
/// consume that cache in [`backward`](Layer::backward), which returns the
/// gradient with respect to the layer input and *accumulates* parameter
/// gradients internally. Flattening parameters and gradients into contiguous
/// `f32` buffers is what connects models to the federated gradient pipeline.
///
/// The trait is object-safe; models are built as `Vec<Box<dyn Layer>>`.
/// `Send` is a supertrait so whole models (and therefore federated clients)
/// can move between the execution engine's worker threads; every layer is
/// plain owned data, so this costs implementations nothing.
pub trait Layer: Send {
    /// Computes the layer output. `train` toggles training-time behaviour
    /// (dropout masks, batch-norm statistics).
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Backpropagates `grad_output`, returning the gradient w.r.t. the most
    /// recent forward input and accumulating parameter gradients.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward`.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Total number of trainable parameters.
    fn num_params(&self) -> usize;

    /// Writes the parameters into `out` (must have room), returning the
    /// number of values written.
    fn write_params(&self, out: &mut [f32]) -> usize;

    /// Reads parameters from `src`, returning the number consumed.
    fn read_params(&mut self, src: &[f32]) -> usize;

    /// Writes the accumulated gradients into `out`, returning the number of
    /// values written.
    fn write_grads(&self, out: &mut [f32]) -> usize;

    /// Clears the accumulated gradients.
    fn zero_grad(&mut self);

    /// Human-readable layer name for debugging.
    fn name(&self) -> &'static str;
}

/// Copies `src` into `dst[..src.len()]` and returns `src.len()`.
///
/// Helper shared by `write_params`/`write_grads` implementations.
pub(crate) fn write_slice(dst: &mut [f32], src: &[f32]) -> usize {
    dst[..src.len()].copy_from_slice(src);
    src.len()
}

/// Copies `src[..dst.len()]` into `dst` and returns `dst.len()`.
pub(crate) fn read_slice(dst: &mut [f32], src: &[f32]) -> usize {
    dst.copy_from_slice(&src[..dst.len()]);
    dst.len()
}
