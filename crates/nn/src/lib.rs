//! From-scratch neural-network layers with hand-written backpropagation.
//!
//! This crate replaces the PyTorch training stack used by the SignGuard
//! paper. It provides exactly what the federated-learning experiments need:
//!
//! * [`Layer`] implementations — dense, conv2d, pooling, ReLU, dropout,
//!   batch-norm, embedding, LSTM, residual blocks;
//! * a [`Sequential`] container with parameter/gradient **flattening**
//!   (`Vec<f32>` ⇄ model), which is the interface every aggregation rule and
//!   attack operates on;
//! * softmax cross-entropy loss and an SGD optimizer with momentum and
//!   weight decay matching the paper's training settings (momentum 0.9,
//!   weight decay 5e-4);
//! * model constructors mirroring the paper's four tasks (CNN for
//!   MNIST/Fashion-MNIST, a residual CNN standing in for ResNet-18, and a
//!   TextRNN for AG-News).
//!
//! # Examples
//!
//! ```
//! use sg_nn::{models, loss::softmax_cross_entropy};
//! use sg_tensor::Tensor;
//!
//! let mut model = models::mlp(&mut sg_math::seeded_rng(0), 4, &[8], 3);
//! let x = Tensor::zeros(&[2, 4]);
//! let logits = model.forward(&x, true);
//! let (loss, grad) = softmax_cross_entropy(&logits, &[0, 2]);
//! model.backward(&grad);
//! assert!(loss > 0.0);
//! assert_eq!(model.grad_vector().len(), model.num_params());
//! ```

pub mod activation;
pub mod conv;
pub mod dense;
pub mod embedding;
pub mod layer;
pub mod loss;
pub mod models;
pub mod norm;
pub mod optim;
pub mod pool;
pub mod recurrent;
pub mod residual;
pub mod sequential;

pub use activation::{Dropout, Relu};
pub use conv::Conv2d;
pub use dense::Dense;
pub use embedding::Embedding;
pub use layer::Layer;
pub use loss::{accuracy, softmax_cross_entropy};
pub use norm::BatchNorm2d;
pub use optim::MomentumSgd;
pub use pool::{Flatten, GlobalAvgPool, MaxPool2d};
pub use recurrent::Lstm;
pub use residual::ResidualBlock;
pub use sequential::Sequential;
