//! Softmax cross-entropy loss and classification accuracy.

use sg_tensor::Tensor;

/// Computes mean softmax cross-entropy over a batch of logits `[B, C]` with
/// integer labels, returning `(loss, grad_logits)`.
///
/// The gradient is already divided by the batch size, so feeding it straight
/// into [`crate::Sequential::backward`] yields the mean-loss gradient — the
/// quantity each federated client ships to the parameter server.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size or any label is out
/// of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.ndim(), 2, "softmax_cross_entropy: expected [B, C] logits");
    let (b, c) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), b, "softmax_cross_entropy: label count mismatch");

    let mut grad = vec![0.0f32; b * c];
    let mut loss = 0.0f64;
    let inv_b = 1.0 / b as f32;
    for i in 0..b {
        let label = labels[i];
        assert!(label < c, "softmax_cross_entropy: label {label} out of range {c}");
        let row = &logits.data()[i * c..(i + 1) * c];
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &x| a.max(x));
        let mut denom = 0.0f64;
        for &x in row {
            denom += f64::from(x - max).exp();
        }
        let log_denom = denom.ln() as f32;
        loss += f64::from(log_denom - (row[label] - max));
        for j in 0..c {
            let p = (f64::from(row[j] - max).exp() / denom) as f32;
            grad[i * c + j] = (p - if j == label { 1.0 } else { 0.0 }) * inv_b;
        }
    }
    ((loss / b as f64) as f32, Tensor::from_vec(grad, &[b, c]))
}

/// Fraction of rows whose argmax matches the label.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    assert_eq!(logits.ndim(), 2, "accuracy: expected [B, C] logits");
    let (b, c) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), b, "accuracy: label count mismatch");
    if b == 0 {
        return 0.0;
    }
    let mut correct = 0usize;
    for (row, &label) in logits.data().chunks(c).zip(labels) {
        let pred = row
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(j, _)| j)
            .expect("non-empty row");
        if pred == label {
            correct += 1;
        }
    }
    correct as f32 / b as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_loss_is_log_c() {
        let logits = Tensor::zeros(&[2, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let logits = Tensor::from_vec(vec![10.0, 0.0, 0.0], &[1, 3]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        let logits = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0, 0.0, -1.0], &[2, 3]);
        let (_, grad) = softmax_cross_entropy(&logits, &[2, 0]);
        for i in 0..2 {
            let s: f32 = grad.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_check_finite_difference() {
        let raw = vec![0.3, -0.7, 1.2, -0.2, 0.9, 0.1];
        let labels = [1usize, 2];
        let logits = Tensor::from_vec(raw.clone(), &[2, 3]);
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..raw.len() {
            let mut plus = raw.clone();
            plus[i] += eps;
            let (lp, _) = softmax_cross_entropy(&Tensor::from_vec(plus, &[2, 3]), &labels);
            let mut minus = raw.clone();
            minus[i] -= eps;
            let (lm, _) = softmax_cross_entropy(&Tensor::from_vec(minus, &[2, 3]), &labels);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - grad.data()[i]).abs() < 1e-3, "logit {i}");
        }
    }

    #[test]
    fn loss_is_numerically_stable_for_huge_logits() {
        let logits = Tensor::from_vec(vec![1000.0, -1000.0], &[1, 2]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss.is_finite());
        assert!(grad.data().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn accuracy_counts_argmax_matches() {
        let logits = Tensor::from_vec(vec![2.0, 1.0, 0.0, 5.0], &[2, 2]);
        assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
        assert_eq!(accuracy(&logits, &[1, 0]), 0.0);
        assert_eq!(accuracy(&logits, &[0, 0]), 0.5);
    }
}
