//! Model constructors mirroring the paper's four evaluation tasks.
//!
//! | Paper task | Paper model | Constructor here |
//! |---|---|---|
//! | MNIST | CNN (3 conv + 2 fc) | [`image_cnn`] |
//! | Fashion-MNIST | same CNN | [`image_cnn`] |
//! | CIFAR-10 | ResNet-18 | [`resnet_lite`] (residual CNN) |
//! | AG-News | TextRNN (bi-LSTM) | [`text_rnn`] (LSTM) |
//!
//! The architectures are scaled to CPU-simulation size; the property that
//! matters for SignGuard — the per-architecture *sign-statistics regime* of
//! honest gradients (unbalanced for the plain CNN, nearly balanced for the
//! residual net, zero-heavy for the embedding model) — is preserved.

use rand::Rng;

use crate::activation::Relu;
use crate::conv::Conv2d;
use crate::dense::Dense;
use crate::embedding::Embedding;
use crate::norm::BatchNorm2d;
use crate::pool::{Flatten, GlobalAvgPool, MaxPool2d};
use crate::recurrent::Lstm;
use crate::residual::ResidualBlock;
use crate::sequential::Sequential;

/// Multi-layer perceptron over flat feature vectors.
///
/// Used for quick experiments and unit tests; not one of the paper's models
/// but handy as the cheapest end-to-end federated task.
pub fn mlp<R: Rng + ?Sized>(rng: &mut R, input_dim: usize, hidden: &[usize], classes: usize) -> Sequential {
    let mut model = Sequential::new();
    // Accept image-shaped `[B, C, H, W]` batches as well as flat `[B, D]`.
    model.push(Box::new(Flatten::new()));
    let mut prev = input_dim;
    for &h in hidden {
        model.push(Box::new(Dense::new(rng, prev, h)));
        model.push(Box::new(Relu::new()));
        prev = h;
    }
    model.push(Box::new(Dense::new(rng, prev, classes)));
    model
}

/// The paper's MNIST/Fashion-MNIST CNN in miniature: three convolutions and
/// two fully-connected layers.
///
/// `size` must be divisible by 4 (two 2× max-pools).
///
/// # Panics
///
/// Panics if `size` is not divisible by 4.
pub fn image_cnn<R: Rng + ?Sized>(rng: &mut R, channels: usize, size: usize, classes: usize) -> Sequential {
    assert_eq!(size % 4, 0, "image_cnn: size {size} must be divisible by 4");
    let s2 = size / 2;
    let s4 = size / 4;
    Sequential::new()
        .with(Conv2d::new(rng, channels, 8, 3, 1, 1, size, size))
        .with(Relu::new())
        .with(MaxPool2d::new(2))
        .with(Conv2d::new(rng, 8, 16, 3, 1, 1, s2, s2))
        .with(Relu::new())
        .with(MaxPool2d::new(2))
        .with(Conv2d::new(rng, 16, 16, 3, 1, 1, s4, s4))
        .with(Relu::new())
        .with(Flatten::new())
        .with(Dense::new(rng, 16 * s4 * s4, 64))
        .with(Relu::new())
        .with(Dense::new(rng, 64, classes))
}

/// Residual CNN standing in for ResNet-18 on CIFAR-10: stem convolution,
/// two basic residual blocks (the second downsampling), global average
/// pooling and a linear classifier.
///
/// # Panics
///
/// Panics if `size` is not divisible by 2.
pub fn resnet_lite<R: Rng + ?Sized>(rng: &mut R, channels: usize, size: usize, classes: usize) -> Sequential {
    assert_eq!(size % 2, 0, "resnet_lite: size {size} must be even");
    Sequential::new()
        .with(Conv2d::new(rng, channels, 8, 3, 1, 1, size, size))
        .with(BatchNorm2d::new(8))
        .with(Relu::new())
        .with(ResidualBlock::new(rng, 8, 8, size, 1))
        .with(ResidualBlock::new(rng, 8, 16, size, 2))
        .with(GlobalAvgPool::new())
        .with(Dense::new(rng, 16, classes))
}

/// TextRNN standing in for the paper's AG-News model: embedding lookup,
/// LSTM encoder, linear classifier.
pub fn text_rnn<R: Rng + ?Sized>(
    rng: &mut R,
    vocab: usize,
    embed_dim: usize,
    hidden_dim: usize,
    classes: usize,
) -> Sequential {
    Sequential::new()
        .with(Embedding::new(rng, vocab, embed_dim))
        .with(Lstm::new(rng, embed_dim, hidden_dim))
        .with(Dense::new(rng, hidden_dim, classes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;
    use sg_math::seeded_rng;
    use sg_tensor::Tensor;

    #[test]
    fn mlp_shapes() {
        let mut rng = seeded_rng(0);
        let mut m = mlp(&mut rng, 10, &[16, 8], 4);
        let y = m.forward(&Tensor::zeros(&[3, 10]), true);
        assert_eq!(y.shape(), &[3, 4]);
    }

    #[test]
    fn image_cnn_forward_backward() {
        let mut rng = seeded_rng(1);
        let mut m = image_cnn(&mut rng, 1, 12, 10);
        let x = Tensor::zeros(&[2, 1, 12, 12]);
        let logits = m.forward(&x, true);
        assert_eq!(logits.shape(), &[2, 10]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[3, 7]);
        assert!(loss.is_finite());
        m.backward(&grad);
        let g = m.grad_vector();
        assert_eq!(g.len(), m.num_params());
        assert!(g.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn resnet_lite_forward_backward() {
        let mut rng = seeded_rng(2);
        let mut m = resnet_lite(&mut rng, 3, 8, 10);
        let x = Tensor::from_vec((0..2 * 3 * 64).map(|i| (i as f32 * 0.1).sin()).collect(), &[2, 3, 8, 8]);
        let logits = m.forward(&x, true);
        assert_eq!(logits.shape(), &[2, 10]);
        let (_, grad) = softmax_cross_entropy(&logits, &[0, 9]);
        m.backward(&grad);
        assert!(m.grad_vector().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn text_rnn_forward_backward() {
        let mut rng = seeded_rng(3);
        let mut m = text_rnn(&mut rng, 50, 8, 12, 4);
        let tokens = Tensor::from_vec(vec![1.0, 5.0, 9.0, 0.0, 2.0, 2.0], &[2, 3]);
        let logits = m.forward(&tokens, true);
        assert_eq!(logits.shape(), &[2, 4]);
        let (_, grad) = softmax_cross_entropy(&logits, &[1, 3]);
        m.backward(&grad);
        // Embedding grads are sparse: only rows for the 5 distinct tokens
        // used above are non-zero, out of a 50-row table.
        let g = m.grad_vector();
        let emb = &g[..50 * 8];
        let zeros = emb.iter().filter(|&&v| v == 0.0).count();
        assert!(zeros >= 45 * 8, "expected sparse embedding grads, zeros={zeros}/{}", emb.len());
    }

    #[test]
    fn training_reduces_loss_on_tiny_problem() {
        // Overfit 8 fixed samples with the MLP: loss must drop sharply.
        let mut rng = seeded_rng(4);
        let mut m = mlp(&mut rng, 4, &[16], 2);
        let x =
            Tensor::from_vec((0..32).map(|i| if (i / 4) % 2 == 0 { 1.0 } else { -1.0 }).collect(), &[8, 4]);
        let labels: Vec<usize> = (0..8).map(|i| i % 2).collect();
        let mut opt = crate::optim::MomentumSgd::new(m.num_params(), 0.9, 0.0);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..60 {
            let logits = m.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            if step == 0 {
                first = loss;
            }
            last = loss;
            m.zero_grad();
            m.backward(&grad);
            let mut params = m.param_vector();
            let grads = m.grad_vector();
            opt.step(&mut params, &grads, 0.1);
            m.set_param_vector(&params);
        }
        assert!(last < first * 0.2, "loss {first} -> {last}");
    }
}
