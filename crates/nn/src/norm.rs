//! Batch normalization over channel planes (`BatchNorm2d`).

use sg_tensor::Tensor;

use crate::layer::{read_slice, write_slice, Layer};

/// Batch normalization for `[B, C, H, W]` activations.
///
/// Normalizes each channel over the batch and spatial axes, then applies a
/// learned affine `gamma * x_hat + beta`. Running statistics (momentum 0.1,
/// PyTorch default) are kept for eval mode.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Vec<f32>,
    beta: Vec<f32>,
    grad_gamma: Vec<f32>,
    grad_beta: Vec<f32>,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    // Forward cache (training mode).
    cached_xhat: Vec<f32>,
    cached_inv_std: Vec<f32>,
    in_shape: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "BatchNorm2d: channels must be positive");
        Self {
            channels,
            eps: 1e-5,
            momentum: 0.1,
            gamma: vec![1.0; channels],
            beta: vec![0.0; channels],
            grad_gamma: vec![0.0; channels],
            grad_beta: vec![0.0; channels],
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            cached_xhat: Vec::new(),
            cached_inv_std: Vec::new(),
            in_shape: Vec::new(),
        }
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.ndim(), 4, "BatchNorm2d: expected [B, C, H, W]");
        let (b, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        assert_eq!(c, self.channels, "BatchNorm2d: channel mismatch");
        self.in_shape = input.shape().to_vec();
        let plane = h * w;
        let count = (b * plane) as f32;
        let data = input.data();
        let mut out = vec![0.0f32; data.len()];

        if train {
            self.cached_xhat = vec![0.0; data.len()];
            self.cached_inv_std = vec![0.0; c];
            for ci in 0..c {
                let mut mean = 0.0f64;
                for bi in 0..b {
                    let base = (bi * c + ci) * plane;
                    for v in &data[base..base + plane] {
                        mean += f64::from(*v);
                    }
                }
                let mean = (mean / f64::from(count)) as f32;
                let mut var = 0.0f64;
                for bi in 0..b {
                    let base = (bi * c + ci) * plane;
                    for v in &data[base..base + plane] {
                        let d = f64::from(*v - mean);
                        var += d * d;
                    }
                }
                let var = (var / f64::from(count)) as f32;
                let inv_std = 1.0 / (var + self.eps).sqrt();
                self.cached_inv_std[ci] = inv_std;
                self.running_mean[ci] = (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean;
                self.running_var[ci] = (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var;
                let (g, bta) = (self.gamma[ci], self.beta[ci]);
                for bi in 0..b {
                    let base = (bi * c + ci) * plane;
                    for k in 0..plane {
                        let xhat = (data[base + k] - mean) * inv_std;
                        self.cached_xhat[base + k] = xhat;
                        out[base + k] = g * xhat + bta;
                    }
                }
            }
        } else {
            for ci in 0..c {
                let inv_std = 1.0 / (self.running_var[ci] + self.eps).sqrt();
                let (mean, g, bta) = (self.running_mean[ci], self.gamma[ci], self.beta[ci]);
                for bi in 0..b {
                    let base = (bi * c + ci) * plane;
                    for k in 0..plane {
                        out[base + k] = g * (data[base + k] - mean) * inv_std + bta;
                    }
                }
            }
        }
        Tensor::from_vec(out, input.shape())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert!(!self.cached_xhat.is_empty(), "BatchNorm2d::backward requires a training-mode forward");
        let (b, c, h, w) = (self.in_shape[0], self.in_shape[1], self.in_shape[2], self.in_shape[3]);
        assert_eq!(grad_output.shape(), self.in_shape.as_slice(), "BatchNorm2d: grad shape mismatch");
        let plane = h * w;
        let count = (b * plane) as f32;
        let go = grad_output.data();
        let mut grad_input = vec![0.0f32; go.len()];

        for ci in 0..c {
            // Accumulate the three reductions the BN backward needs.
            let mut sum_dy = 0.0f64;
            let mut sum_dy_xhat = 0.0f64;
            for bi in 0..b {
                let base = (bi * c + ci) * plane;
                for k in 0..plane {
                    let dy = f64::from(go[base + k]);
                    sum_dy += dy;
                    sum_dy_xhat += dy * f64::from(self.cached_xhat[base + k]);
                }
            }
            self.grad_beta[ci] += sum_dy as f32;
            self.grad_gamma[ci] += sum_dy_xhat as f32;

            let g = self.gamma[ci];
            let inv_std = self.cached_inv_std[ci];
            let m = f64::from(count);
            for bi in 0..b {
                let base = (bi * c + ci) * plane;
                for k in 0..plane {
                    let dy = f64::from(go[base + k]);
                    let xhat = f64::from(self.cached_xhat[base + k]);
                    let dx = f64::from(g) * f64::from(inv_std) * (dy - sum_dy / m - xhat * sum_dy_xhat / m);
                    grad_input[base + k] = dx as f32;
                }
            }
        }
        Tensor::from_vec(grad_input, &self.in_shape)
    }

    fn num_params(&self) -> usize {
        2 * self.channels
    }

    fn write_params(&self, out: &mut [f32]) -> usize {
        let n = write_slice(out, &self.gamma);
        n + write_slice(&mut out[n..], &self.beta)
    }

    fn read_params(&mut self, src: &[f32]) -> usize {
        let n = read_slice(&mut self.gamma, src);
        n + read_slice(&mut self.beta, &src[n..])
    }

    fn write_grads(&self, out: &mut [f32]) -> usize {
        let n = write_slice(out, &self.grad_gamma);
        n + write_slice(&mut out[n..], &self.grad_beta)
    }

    fn zero_grad(&mut self) {
        self.grad_gamma.iter_mut().for_each(|g| *g = 0.0);
        self.grad_beta.iter_mut().for_each(|g| *g = 0.0);
    }

    fn name(&self) -> &'static str {
        "BatchNorm2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_output_is_normalized() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0], &[2, 1, 2, 2]);
        let y = bn.forward(&x, true);
        let mean: f32 = y.data().iter().sum::<f32>() / 8.0;
        let var: f32 = y.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 8.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::from_vec(vec![10.0, 10.0, 10.0, 10.0], &[1, 1, 2, 2]);
        // Several training passes move running stats towards (10, 0).
        for _ in 0..200 {
            bn.forward(&x, true);
        }
        let y = bn.forward(&x, false);
        // Normalized: (10 - ~10)/sqrt(~0+eps) ~ 0.
        assert!(y.data().iter().all(|v| v.abs() < 0.5), "{:?}", y.data());
    }

    #[test]
    fn backward_gradient_check() {
        let mut bn = BatchNorm2d::new(2);
        let x_data: Vec<f32> = (0..16).map(|i| ((i as f32) * 0.7).sin() * 2.0).collect();
        let x = Tensor::from_vec(x_data.clone(), &[2, 2, 2, 2]);

        bn.forward(&x, true);
        bn.zero_grad();
        let dx = bn.backward(&Tensor::ones(&[2, 2, 2, 2]));

        let eps = 1e-3f32;
        for &i in &[0usize, 5, 9, 15] {
            let mut xp = x_data.clone();
            xp[i] += eps;
            let lp = bn.forward(&Tensor::from_vec(xp, x.shape()), true).sum();
            let mut xm = x_data.clone();
            xm[i] -= eps;
            let lm = bn.forward(&Tensor::from_vec(xm, x.shape()), true).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - dx.data()[i]).abs() < 1e-2, "input {i}: {numeric} vs {}", dx.data()[i]);
        }
    }

    #[test]
    fn gamma_beta_gradient_check() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1], &[1, 1, 2, 2]);
        bn.forward(&x, true);
        bn.zero_grad();
        bn.backward(&Tensor::ones(&[1, 1, 2, 2]));
        let mut grads = vec![0.0; 2];
        bn.write_grads(&mut grads);

        let mut params = vec![0.0; 2];
        bn.write_params(&mut params);
        let eps = 1e-3f32;
        for p in 0..2 {
            let mut plus = params.clone();
            plus[p] += eps;
            bn.read_params(&plus);
            let lp = bn.forward(&x, true).sum();
            let mut minus = params.clone();
            minus[p] -= eps;
            bn.read_params(&minus);
            let lm = bn.forward(&x, true).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - grads[p]).abs() < 1e-2, "param {p}");
        }
    }
}
