//! SGD with momentum and weight decay over flat parameter vectors.

/// Momentum SGD matching the paper's training settings (momentum 0.9,
/// weight decay 5e-4).
///
/// Operates on flat `f32` vectors because in federated learning the update
/// is applied to the flattened global model after gradient aggregation.
/// The momentum buffer lives *client-side* in the paper's reference
/// implementation — each client smooths its own stochastic gradient before
/// sending — so [`MomentumSgd::transform`] (gradient in, smoothed gradient
/// out) is the primary API, with [`MomentumSgd::step`] as the conventional
/// parameter-update form.
#[derive(Debug, Clone)]
pub struct MomentumSgd {
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<f32>,
}

impl MomentumSgd {
    /// Creates an optimizer for `dim`-dimensional parameters.
    ///
    /// # Panics
    ///
    /// Panics if `momentum` is outside `[0, 1)` or `weight_decay < 0`.
    pub fn new(dim: usize, momentum: f32, weight_decay: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "MomentumSgd: momentum {momentum} out of [0,1)");
        assert!(weight_decay >= 0.0, "MomentumSgd: negative weight decay");
        Self { momentum, weight_decay, velocity: vec![0.0; dim] }
    }

    /// Momentum coefficient.
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// Applies weight decay and momentum to a raw gradient, returning the
    /// smoothed gradient the client sends to the server:
    /// `v <- β v + (g + λ x)`, returns `v`.
    ///
    /// # Panics
    ///
    /// Panics if vector lengths differ from the optimizer dimension.
    pub fn transform(&mut self, grad: &[f32], params: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.transform_into(grad, params, &mut out);
        out
    }

    /// [`MomentumSgd::transform`] writing into a caller-owned buffer
    /// (cleared and filled; the allocation is reused).
    ///
    /// # Panics
    ///
    /// Panics if vector lengths differ from the optimizer dimension.
    pub fn transform_into(&mut self, grad: &[f32], params: &[f32], out: &mut Vec<f32>) {
        assert_eq!(grad.len(), self.velocity.len(), "MomentumSgd: gradient length mismatch");
        assert_eq!(params.len(), self.velocity.len(), "MomentumSgd: params length mismatch");
        for ((v, &g), &x) in self.velocity.iter_mut().zip(grad).zip(params) {
            *v = self.momentum * *v + g + self.weight_decay * x;
        }
        out.clear();
        out.extend_from_slice(&self.velocity);
    }

    /// Conventional in-place update `x <- x - lr * transform(g, x)`.
    ///
    /// # Panics
    ///
    /// Panics if vector lengths differ from the optimizer dimension.
    pub fn step(&mut self, params: &mut [f32], grad: &[f32], lr: f32) {
        let update = self.transform(grad, params);
        for (x, u) in params.iter_mut().zip(update) {
            *x -= lr * u;
        }
    }

    /// Resets the momentum buffer (used when the global model is replaced).
    pub fn reset(&mut self) {
        self.velocity.iter_mut().for_each(|v| *v = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_momentum_zero_decay_is_plain_sgd() {
        let mut opt = MomentumSgd::new(2, 0.0, 0.0);
        let mut params = vec![1.0, 2.0];
        opt.step(&mut params, &[0.5, -0.5], 0.1);
        assert!((params[0] - 0.95).abs() < 1e-6);
        assert!((params[1] - 2.05).abs() < 1e-6);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = MomentumSgd::new(1, 0.9, 0.0);
        let g = [1.0f32];
        let p = [0.0f32];
        let v1 = opt.transform(&g, &p)[0];
        let v2 = opt.transform(&g, &p)[0];
        assert!((v1 - 1.0).abs() < 1e-6);
        assert!((v2 - 1.9).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_pulls_towards_zero() {
        let mut opt = MomentumSgd::new(1, 0.0, 0.1);
        let mut params = vec![10.0];
        opt.step(&mut params, &[0.0], 1.0);
        assert!((params[0] - 9.0).abs() < 1e-5);
    }

    #[test]
    fn reset_clears_velocity() {
        let mut opt = MomentumSgd::new(1, 0.9, 0.0);
        opt.transform(&[1.0], &[0.0]);
        opt.reset();
        let v = opt.transform(&[1.0], &[0.0])[0];
        assert!((v - 1.0).abs() < 1e-6);
    }

    #[test]
    fn converges_on_quadratic() {
        // Minimize f(x) = x^2 with gradient 2x.
        let mut opt = MomentumSgd::new(1, 0.9, 0.0);
        let mut x = vec![5.0f32];
        for _ in 0..200 {
            let g = [2.0 * x[0]];
            opt.step(&mut x, &g, 0.05);
        }
        assert!(x[0].abs() < 1e-2, "x={}", x[0]);
    }
}
