//! Pooling and reshaping layers: max-pool, global average pool, flatten.

use sg_tensor::Tensor;

use crate::layer::Layer;

/// Max pooling with a square window and stride equal to the window size.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    window: usize,
    argmax: Vec<usize>,
    in_shape: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with the given square window.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "MaxPool2d: window must be positive");
        Self { window, argmax: Vec::new(), in_shape: Vec::new() }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(input.ndim(), 4, "MaxPool2d: expected [B, C, H, W]");
        let (b, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let k = self.window;
        assert!(h >= k && w >= k, "MaxPool2d: window {k} larger than input {h}x{w}");
        let (oh, ow) = (h / k, w / k);
        let mut out = vec![f32::NEG_INFINITY; b * c * oh * ow];
        self.argmax = vec![0; out.len()];
        self.in_shape = input.shape().to_vec();
        let data = input.data();
        for bi in 0..b {
            for ci in 0..c {
                let plane = (bi * c + ci) * h * w;
                let oplane = (bi * c + ci) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let oi = oplane + oy * ow + ox;
                        for dy in 0..k {
                            for dx in 0..k {
                                let ii = plane + (oy * k + dy) * w + (ox * k + dx);
                                if data[ii] > out[oi] {
                                    out[oi] = data[ii];
                                    self.argmax[oi] = ii;
                                }
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(out, &[b, c, oh, ow])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert_eq!(grad_output.numel(), self.argmax.len(), "MaxPool2d::backward before forward");
        let mut grad_input = vec![0.0f32; self.in_shape.iter().product()];
        for (gi, (&g, &src)) in grad_output.data().iter().zip(&self.argmax).enumerate() {
            let _ = gi;
            grad_input[src] += g;
        }
        Tensor::from_vec(grad_input, &self.in_shape)
    }

    fn num_params(&self) -> usize {
        0
    }
    fn write_params(&self, _out: &mut [f32]) -> usize {
        0
    }
    fn read_params(&mut self, _src: &[f32]) -> usize {
        0
    }
    fn write_grads(&self, _out: &mut [f32]) -> usize {
        0
    }
    fn zero_grad(&mut self) {}
    fn name(&self) -> &'static str {
        "MaxPool2d"
    }
}

/// Global average pooling: `[B, C, H, W] -> [B, C]`.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    in_shape: Vec<usize>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(input.ndim(), 4, "GlobalAvgPool: expected [B, C, H, W]");
        let (b, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        self.in_shape = input.shape().to_vec();
        let inv = 1.0 / (h * w) as f32;
        let mut out = vec![0.0f32; b * c];
        for bi in 0..b {
            for ci in 0..c {
                let plane = &input.data()[(bi * c + ci) * h * w..(bi * c + ci + 1) * h * w];
                out[bi * c + ci] = plane.iter().sum::<f32>() * inv;
            }
        }
        Tensor::from_vec(out, &[b, c])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert!(!self.in_shape.is_empty(), "GlobalAvgPool::backward before forward");
        let (b, c, h, w) = (self.in_shape[0], self.in_shape[1], self.in_shape[2], self.in_shape[3]);
        assert_eq!(grad_output.shape(), &[b, c], "GlobalAvgPool: grad shape mismatch");
        let inv = 1.0 / (h * w) as f32;
        let mut grad_input = vec![0.0f32; b * c * h * w];
        for bi in 0..b {
            for ci in 0..c {
                let g = grad_output.data()[bi * c + ci] * inv;
                for v in &mut grad_input[(bi * c + ci) * h * w..(bi * c + ci + 1) * h * w] {
                    *v = g;
                }
            }
        }
        Tensor::from_vec(grad_input, &self.in_shape)
    }

    fn num_params(&self) -> usize {
        0
    }
    fn write_params(&self, _out: &mut [f32]) -> usize {
        0
    }
    fn read_params(&mut self, _src: &[f32]) -> usize {
        0
    }
    fn write_grads(&self, _out: &mut [f32]) -> usize {
        0
    }
    fn zero_grad(&mut self) {}
    fn name(&self) -> &'static str {
        "GlobalAvgPool"
    }
}

/// Flattens `[B, ...]` into `[B, features]`.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    in_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert!(input.ndim() >= 2, "Flatten: expected at least [B, ...]");
        self.in_shape = input.shape().to_vec();
        let b = self.in_shape[0];
        let rest: usize = self.in_shape[1..].iter().product();
        input.reshape(&[b, rest])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert!(!self.in_shape.is_empty(), "Flatten::backward before forward");
        grad_output.reshape(&self.in_shape)
    }

    fn num_params(&self) -> usize {
        0
    }
    fn write_params(&self, _out: &mut [f32]) -> usize {
        0
    }
    fn read_params(&mut self, _src: &[f32]) -> usize {
        0
    }
    fn write_grads(&self, _out: &mut [f32]) -> usize {
        0
    }
    fn zero_grad(&mut self) {}
    fn name(&self) -> &'static str {
        "Flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_window_max() {
        let mut p = MaxPool2d::new(2);
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0],
            &[1, 1, 4, 4],
        );
        let y = p.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut p = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        p.forward(&x, true);
        let g = p.backward(&Tensor::from_vec(vec![10.0], &[1, 1, 1, 1]));
        assert_eq!(g.data(), &[0.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn gap_averages_plane() {
        let mut p = GlobalAvgPool::new();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[1, 2, 2, 2]);
        let y = p.forward(&x, true);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[2.5, 25.0]);
    }

    #[test]
    fn gap_backward_spreads_uniformly() {
        let mut p = GlobalAvgPool::new();
        let x = Tensor::ones(&[1, 1, 2, 2]);
        p.forward(&x, true);
        let g = p.backward(&Tensor::from_vec(vec![8.0], &[1, 1]));
        assert_eq!(g.data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn flatten_round_trip() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 2, 2]);
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[2, 12]);
        let g = f.backward(&y);
        assert_eq!(g.shape(), x.shape());
        assert_eq!(g.data(), x.data());
    }
}
