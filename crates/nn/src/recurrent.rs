//! LSTM layer with full backpropagation through time.

use rand::Rng;
use sg_tensor::{xavier_uniform, Tensor};

use crate::layer::{read_slice, write_slice, Layer};

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Per-timestep cache for BPTT.
#[derive(Debug, Clone)]
struct StepCache {
    x: Tensor,      // [B, E]
    h_prev: Tensor, // [B, H]
    c_prev: Tensor, // [B, H]
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    tanh_c: Vec<f32>,
}

/// Single-layer LSTM over `[B, T, E]` sequences, emitting the final hidden
/// state `[B, H]`.
///
/// Stands in for the paper's two-layer bidirectional LSTM (TextRNN on
/// AG-News): same cell math and gradient structure, scaled down to what the
/// CPU-only federated simulation can train in reasonable time.
///
/// Gate parameter layout follows PyTorch (`i, f, g, o` stacked):
/// `w_x: [4H, E]`, `w_h: [4H, H]`, `bias: [4H]`.
#[derive(Debug, Clone)]
pub struct Lstm {
    input_dim: usize,
    hidden_dim: usize,
    w_x: Vec<f32>,
    w_h: Vec<f32>,
    bias: Vec<f32>,
    grad_w_x: Vec<f32>,
    grad_w_h: Vec<f32>,
    grad_bias: Vec<f32>,
    cache: Vec<StepCache>,
    in_shape: Vec<usize>,
}

impl Lstm {
    /// Creates an LSTM with Xavier-initialized weights and forget-gate bias 1
    /// (the standard trick for stable early training).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, input_dim: usize, hidden_dim: usize) -> Self {
        assert!(input_dim > 0 && hidden_dim > 0, "Lstm: zero-sized layer");
        let mut bias = vec![0.0; 4 * hidden_dim];
        for b in bias.iter_mut().take(2 * hidden_dim).skip(hidden_dim) {
            *b = 1.0; // forget gate
        }
        Self {
            input_dim,
            hidden_dim,
            w_x: xavier_uniform(rng, 4 * hidden_dim * input_dim, input_dim, hidden_dim),
            w_h: xavier_uniform(rng, 4 * hidden_dim * hidden_dim, hidden_dim, hidden_dim),
            bias,
            grad_w_x: vec![0.0; 4 * hidden_dim * input_dim],
            grad_w_h: vec![0.0; 4 * hidden_dim * hidden_dim],
            grad_bias: vec![0.0; 4 * hidden_dim],
            cache: Vec::new(),
            in_shape: Vec::new(),
        }
    }

    /// Hidden-state dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }
}

impl Layer for Lstm {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(input.ndim(), 3, "Lstm: expected [B, T, E]");
        let (b, t, e) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        assert_eq!(e, self.input_dim, "Lstm: input dim mismatch");
        assert!(t > 0, "Lstm: empty sequence");
        self.in_shape = input.shape().to_vec();
        let h_dim = self.hidden_dim;

        let w_x = Tensor::from_vec(self.w_x.clone(), &[4 * h_dim, e]);
        let w_h = Tensor::from_vec(self.w_h.clone(), &[4 * h_dim, h_dim]);

        let mut h = Tensor::zeros(&[b, h_dim]);
        let mut c = Tensor::zeros(&[b, h_dim]);
        self.cache.clear();

        for step in 0..t {
            // Slice x_t = input[:, step, :].
            let mut x_data = vec![0.0f32; b * e];
            for bi in 0..b {
                let src = (bi * t + step) * e;
                x_data[bi * e..(bi + 1) * e].copy_from_slice(&input.data()[src..src + e]);
            }
            let x = Tensor::from_vec(x_data, &[b, e]);

            let z = x.matmul_bt(&w_x).add(&h.matmul_bt(&w_h)).add_row_bias(&self.bias); // [B, 4H]
            let zd = z.data();
            let mut i_g = vec![0.0f32; b * h_dim];
            let mut f_g = vec![0.0f32; b * h_dim];
            let mut g_g = vec![0.0f32; b * h_dim];
            let mut o_g = vec![0.0f32; b * h_dim];
            for bi in 0..b {
                let row = bi * 4 * h_dim;
                for k in 0..h_dim {
                    i_g[bi * h_dim + k] = sigmoid(zd[row + k]);
                    f_g[bi * h_dim + k] = sigmoid(zd[row + h_dim + k]);
                    g_g[bi * h_dim + k] = zd[row + 2 * h_dim + k].tanh();
                    o_g[bi * h_dim + k] = sigmoid(zd[row + 3 * h_dim + k]);
                }
            }
            let mut c_new = vec![0.0f32; b * h_dim];
            let mut tanh_c = vec![0.0f32; b * h_dim];
            let mut h_new = vec![0.0f32; b * h_dim];
            for k in 0..b * h_dim {
                c_new[k] = f_g[k] * c.data()[k] + i_g[k] * g_g[k];
                tanh_c[k] = c_new[k].tanh();
                h_new[k] = o_g[k] * tanh_c[k];
            }
            self.cache.push(StepCache {
                x,
                h_prev: h.clone(),
                c_prev: c.clone(),
                i: i_g,
                f: f_g,
                g: g_g,
                o: o_g,
                tanh_c,
            });
            h = Tensor::from_vec(h_new, &[b, h_dim]);
            c = Tensor::from_vec(c_new, &[b, h_dim]);
        }
        h
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert!(!self.cache.is_empty(), "Lstm::backward before forward");
        let (b, t, e) = (self.in_shape[0], self.in_shape[1], self.in_shape[2]);
        let h_dim = self.hidden_dim;
        assert_eq!(grad_output.shape(), &[b, h_dim], "Lstm: grad shape mismatch");

        let w_x = Tensor::from_vec(self.w_x.clone(), &[4 * h_dim, e]);
        let w_h = Tensor::from_vec(self.w_h.clone(), &[4 * h_dim, h_dim]);

        let mut dh = grad_output.clone();
        let mut dc = vec![0.0f32; b * h_dim];
        let mut grad_input = vec![0.0f32; b * t * e];

        for step in (0..t).rev() {
            let cache = &self.cache[step];
            let mut dz = vec![0.0f32; b * 4 * h_dim];
            for bi in 0..b {
                for k in 0..h_dim {
                    let idx = bi * h_dim + k;
                    let dhv = dh.data()[idx];
                    let o = cache.o[idx];
                    let tc = cache.tanh_c[idx];
                    let dcv = dc[idx] + dhv * o * (1.0 - tc * tc);
                    let i = cache.i[idx];
                    let f = cache.f[idx];
                    let g = cache.g[idx];
                    let di = dcv * g;
                    let df = dcv * cache.c_prev.data()[idx];
                    let dg = dcv * i;
                    let do_ = dhv * tc;
                    let row = bi * 4 * h_dim;
                    dz[row + k] = di * i * (1.0 - i);
                    dz[row + h_dim + k] = df * f * (1.0 - f);
                    dz[row + 2 * h_dim + k] = dg * (1.0 - g * g);
                    dz[row + 3 * h_dim + k] = do_ * o * (1.0 - o);
                    dc[idx] = dcv * f;
                }
            }
            let dz_t = Tensor::from_vec(dz, &[b, 4 * h_dim]);
            // Parameter gradients.
            let dwx = dz_t.matmul_at(&cache.x); // [4H, E]
            for (gp, &d) in self.grad_w_x.iter_mut().zip(dwx.data()) {
                *gp += d;
            }
            let dwh = dz_t.matmul_at(&cache.h_prev); // [4H, H]
            for (gp, &d) in self.grad_w_h.iter_mut().zip(dwh.data()) {
                *gp += d;
            }
            for (gp, d) in self.grad_bias.iter_mut().zip(dz_t.col_sums()) {
                *gp += d;
            }
            // Input and previous-hidden gradients.
            let dx = dz_t.matmul(&w_x); // [B, E]
            for bi in 0..b {
                let dst = (bi * t + step) * e;
                for k in 0..e {
                    grad_input[dst + k] = dx.data()[bi * e + k];
                }
            }
            dh = dz_t.matmul(&w_h); // [B, H] -> dh for t-1
        }
        Tensor::from_vec(grad_input, &self.in_shape)
    }

    fn num_params(&self) -> usize {
        self.w_x.len() + self.w_h.len() + self.bias.len()
    }

    fn write_params(&self, out: &mut [f32]) -> usize {
        let mut n = write_slice(out, &self.w_x);
        n += write_slice(&mut out[n..], &self.w_h);
        n + write_slice(&mut out[n..], &self.bias)
    }

    fn read_params(&mut self, src: &[f32]) -> usize {
        let mut n = read_slice(&mut self.w_x, src);
        n += read_slice(&mut self.w_h, &src[n..]);
        n + read_slice(&mut self.bias, &src[n..])
    }

    fn write_grads(&self, out: &mut [f32]) -> usize {
        let mut n = write_slice(out, &self.grad_w_x);
        n += write_slice(&mut out[n..], &self.grad_w_h);
        n + write_slice(&mut out[n..], &self.grad_bias)
    }

    fn zero_grad(&mut self) {
        self.grad_w_x.iter_mut().for_each(|g| *g = 0.0);
        self.grad_w_h.iter_mut().for_each(|g| *g = 0.0);
        self.grad_bias.iter_mut().for_each(|g| *g = 0.0);
    }

    fn name(&self) -> &'static str {
        "Lstm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_math::seeded_rng;

    #[test]
    fn forward_shape() {
        let mut rng = seeded_rng(0);
        let mut lstm = Lstm::new(&mut rng, 4, 6);
        let x = Tensor::zeros(&[3, 5, 4]);
        let h = lstm.forward(&x, true);
        assert_eq!(h.shape(), &[3, 6]);
    }

    #[test]
    fn zero_input_gives_deterministic_hidden() {
        let mut rng = seeded_rng(0);
        let mut lstm = Lstm::new(&mut rng, 2, 3);
        let x = Tensor::zeros(&[1, 4, 2]);
        let h1 = lstm.forward(&x, true);
        let h2 = lstm.forward(&x, true);
        assert_eq!(h1.data(), h2.data());
    }

    #[test]
    fn gradient_check_parameters() {
        let mut rng = seeded_rng(7);
        let mut lstm = Lstm::new(&mut rng, 3, 4);
        let x_data: Vec<f32> = (0..2 * 3 * 3).map(|i| ((i as f32) * 0.41).sin()).collect();
        let x = Tensor::from_vec(x_data.clone(), &[2, 3, 3]);

        let out = lstm.forward(&x, true);
        lstm.zero_grad();
        let dx = lstm.backward(&Tensor::ones(out.shape()));

        let mut params = vec![0.0; lstm.num_params()];
        lstm.write_params(&mut params);
        let mut grads = vec![0.0; lstm.num_params()];
        lstm.write_grads(&mut grads);

        let eps = 1e-2f32;
        let probes = [0usize, 11, 29, 47, 60, params.len() - 5, params.len() - 1];
        for &p in &probes {
            let mut plus = params.clone();
            plus[p] += eps;
            lstm.read_params(&plus);
            let lp = lstm.forward(&x, true).sum();
            let mut minus = params.clone();
            minus[p] -= eps;
            lstm.read_params(&minus);
            let lm = lstm.forward(&x, true).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - grads[p]).abs() < 0.02, "param {p}: numeric {numeric} analytic {}", grads[p]);
        }

        // Input gradient spot check.
        lstm.read_params(&params);
        for &i in &[0usize, 7, 17] {
            let mut xp = x_data.clone();
            xp[i] += eps;
            let lp = lstm.forward(&Tensor::from_vec(xp, x.shape()), true).sum();
            let mut xm = x_data.clone();
            xm[i] -= eps;
            let lm = lstm.forward(&Tensor::from_vec(xm, x.shape()), true).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - dx.data()[i]).abs() < 0.02, "input {i}");
        }
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut rng = seeded_rng(1);
        let lstm = Lstm::new(&mut rng, 2, 3);
        let mut p = vec![0.0; lstm.num_params()];
        lstm.write_params(&mut p);
        let bias_start = lstm.w_x.len() + lstm.w_h.len();
        // Gate order i, f, g, o — forget block is the second.
        assert_eq!(&p[bias_start + 3..bias_start + 6], &[1.0, 1.0, 1.0]);
        assert_eq!(&p[bias_start..bias_start + 3], &[0.0, 0.0, 0.0]);
    }
}
