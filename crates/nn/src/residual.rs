//! Residual block (the ResNet building brick).

use rand::Rng;
use sg_tensor::Tensor;

use crate::activation::Relu;
use crate::conv::Conv2d;
use crate::layer::Layer;
use crate::norm::BatchNorm2d;
use crate::sequential::Sequential;

/// A basic pre-activation-free residual block:
/// `y = relu( bn2(conv2(relu(bn1(conv1(x))))) + skip(x) )`
/// where `skip` is identity, or a 1×1 strided convolution + batch-norm when
/// the block changes resolution or channel count (exactly the ResNet-18
/// "basic block" the paper trains on CIFAR-10).
pub struct ResidualBlock {
    main: Sequential,
    skip: Option<Sequential>,
    relu_mask: Vec<bool>,
    out_shape: Vec<usize>,
}

impl std::fmt::Debug for ResidualBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidualBlock")
            .field("num_params", &self.num_params())
            .field("projected_skip", &self.skip.is_some())
            .finish()
    }
}

impl ResidualBlock {
    /// Creates a residual block mapping `[B, in_ch, size, size]` to
    /// `[B, out_ch, size/stride, size/stride]`.
    ///
    /// # Panics
    ///
    /// Panics on zero-sized configuration.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        in_ch: usize,
        out_ch: usize,
        size: usize,
        stride: usize,
    ) -> Self {
        assert!(in_ch > 0 && out_ch > 0 && size > 0 && stride > 0, "ResidualBlock: zero-sized config");
        let mid = size / stride;
        let main = Sequential::new()
            .with(Conv2d::new(rng, in_ch, out_ch, 3, stride, 1, size, size))
            .with(BatchNorm2d::new(out_ch))
            .with(Relu::new())
            .with(Conv2d::new(rng, out_ch, out_ch, 3, 1, 1, mid, mid))
            .with(BatchNorm2d::new(out_ch));
        let skip = if stride != 1 || in_ch != out_ch {
            Some(
                Sequential::new()
                    .with(Conv2d::new(rng, in_ch, out_ch, 1, stride, 0, size, size))
                    .with(BatchNorm2d::new(out_ch)),
            )
        } else {
            None
        };
        Self { main, skip, relu_mask: Vec::new(), out_shape: Vec::new() }
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let m = self.main.forward(input, train);
        let s = match &mut self.skip {
            Some(proj) => proj.forward(input, train),
            None => input.clone(),
        };
        let pre = m.add(&s);
        self.relu_mask = pre.data().iter().map(|&x| x > 0.0).collect();
        self.out_shape = pre.shape().to_vec();
        pre.map(|x| if x > 0.0 { x } else { 0.0 })
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert_eq!(grad_output.numel(), self.relu_mask.len(), "ResidualBlock::backward before forward");
        let gated: Vec<f32> =
            grad_output.data().iter().zip(&self.relu_mask).map(|(&g, &m)| if m { g } else { 0.0 }).collect();
        let gated = Tensor::from_vec(gated, &self.out_shape);
        let d_main = self.main.backward(&gated);
        let d_skip = match &mut self.skip {
            Some(proj) => proj.backward(&gated),
            None => gated,
        };
        d_main.add(&d_skip)
    }

    fn num_params(&self) -> usize {
        self.main.num_params() + self.skip.as_ref().map_or(0, |s| s.num_params())
    }

    fn write_params(&self, out: &mut [f32]) -> usize {
        let mut n = self.main.write_params(out);
        if let Some(s) = &self.skip {
            n += s.write_params(&mut out[n..]);
        }
        n
    }

    fn read_params(&mut self, src: &[f32]) -> usize {
        let mut n = self.main.read_params(src);
        if let Some(s) = &mut self.skip {
            n += s.read_params(&src[n..]);
        }
        n
    }

    fn write_grads(&self, out: &mut [f32]) -> usize {
        let mut n = self.main.write_grads(out);
        if let Some(s) = &self.skip {
            n += s.write_grads(&mut out[n..]);
        }
        n
    }

    fn zero_grad(&mut self) {
        self.main.zero_grad();
        if let Some(s) = &mut self.skip {
            s.zero_grad();
        }
    }

    fn name(&self) -> &'static str {
        "ResidualBlock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_math::seeded_rng;

    #[test]
    fn identity_skip_shape() {
        let mut rng = seeded_rng(0);
        let mut block = ResidualBlock::new(&mut rng, 4, 4, 8, 1);
        let x = Tensor::zeros(&[2, 4, 8, 8]);
        let y = block.forward(&x, true);
        assert_eq!(y.shape(), &[2, 4, 8, 8]);
    }

    #[test]
    fn projected_skip_downsamples() {
        let mut rng = seeded_rng(1);
        let mut block = ResidualBlock::new(&mut rng, 4, 8, 8, 2);
        let x = Tensor::zeros(&[1, 4, 8, 8]);
        let y = block.forward(&x, true);
        assert_eq!(y.shape(), &[1, 8, 4, 4]);
    }

    #[test]
    fn backward_shapes_match_input() {
        let mut rng = seeded_rng(2);
        let mut block = ResidualBlock::new(&mut rng, 3, 6, 4, 2);
        let x = Tensor::from_vec((0..2 * 3 * 16).map(|i| (i as f32 * 0.3).sin()).collect(), &[2, 3, 4, 4]);
        let y = block.forward(&x, true);
        let dx = block.backward(&Tensor::ones(y.shape()));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn gradient_check_spot() {
        // Seed chosen so no pre-activation sits within finite-difference
        // range of the ReLU kink: a near-zero crossing biases every numeric
        // estimate by up to half that position's slope and would fail the
        // check even though the analytic gradient is exact.
        let mut rng = seeded_rng(5);
        let mut block = ResidualBlock::new(&mut rng, 2, 2, 4, 1);
        let x = Tensor::from_vec((0..2 * 2 * 16).map(|i| (i as f32 * 0.17).cos()).collect(), &[2, 2, 4, 4]);
        block.forward(&x, true);
        block.zero_grad();
        block.backward(&Tensor::ones(&[2, 2, 4, 4]));
        let mut params = vec![0.0; block.num_params()];
        block.write_params(&mut params);
        let mut grads = vec![0.0; block.num_params()];
        block.write_grads(&mut grads);

        let eps = 1e-2f32;
        for &p in &[0usize, 17, 55, params.len() - 1] {
            let mut plus = params.clone();
            plus[p] += eps;
            block.read_params(&plus);
            let lp = block.forward(&x, true).sum();
            let mut minus = params.clone();
            minus[p] -= eps;
            block.read_params(&minus);
            let lm = block.forward(&x, true).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            // BN makes this less exact; tolerate a loose bound.
            assert!((numeric - grads[p]).abs() < 0.1, "param {p}: {numeric} vs {}", grads[p]);
        }
    }

    #[test]
    fn param_round_trip() {
        let mut rng = seeded_rng(4);
        let block = ResidualBlock::new(&mut rng, 2, 4, 4, 2);
        let mut p = vec![0.0; block.num_params()];
        let n = block.write_params(&mut p);
        assert_eq!(n, block.num_params());
        let mut block2 = ResidualBlock::new(&mut rng, 2, 4, 4, 2);
        assert_eq!(block2.read_params(&p), n);
        let mut p2 = vec![0.0; n];
        block2.write_params(&mut p2);
        assert_eq!(p, p2);
    }
}
