//! Sequential model container with flat parameter/gradient views.

use sg_tensor::Tensor;

use crate::layer::Layer;

/// A stack of layers applied in order.
///
/// `Sequential` is itself a [`Layer`], so it can nest (residual blocks use
/// this for their main path). Its flat parameter/gradient vectors are the
/// contract with the federated-learning pipeline: clients ship
/// `grad_vector()` to the server and apply aggregated updates through
/// [`Sequential::set_param_vector`].
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("layers", &self.layers.iter().map(|l| l.name()).collect::<Vec<_>>())
            .field("num_params", &self.num_params())
            .finish()
    }
}

impl Sequential {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    #[must_use]
    pub fn with(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs the full forward pass.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    /// Runs the full backward pass from the loss gradient.
    pub fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Total trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.num_params()).sum()
    }

    /// Flattens all parameters into one vector.
    pub fn param_vector(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.num_params()];
        let mut off = 0;
        for layer in &self.layers {
            off += layer.write_params(&mut out[off..]);
        }
        debug_assert_eq!(off, out.len());
        out
    }

    /// Flattens all accumulated gradients into one vector.
    pub fn grad_vector(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.grad_vector_into(&mut out);
        out
    }

    /// Flattens all accumulated gradients into `out`, reusing its
    /// allocation (the buffer is resized to `num_params` and fully
    /// overwritten).
    pub fn grad_vector_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.resize(self.num_params(), 0.0);
        let mut off = 0;
        for layer in &self.layers {
            off += layer.write_grads(&mut out[off..]);
        }
        debug_assert_eq!(off, out.len());
    }

    /// Loads parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if `src.len()` differs from [`Sequential::num_params`].
    pub fn set_param_vector(&mut self, src: &[f32]) {
        assert_eq!(src.len(), self.num_params(), "set_param_vector: length mismatch");
        let mut off = 0;
        for layer in &mut self.layers {
            off += layer.read_params(&src[off..]);
        }
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        Sequential::forward(self, input, train)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        Sequential::backward(self, grad_output)
    }

    fn num_params(&self) -> usize {
        Sequential::num_params(self)
    }

    fn write_params(&self, out: &mut [f32]) -> usize {
        let mut off = 0;
        for layer in &self.layers {
            off += layer.write_params(&mut out[off..]);
        }
        off
    }

    fn read_params(&mut self, src: &[f32]) -> usize {
        let mut off = 0;
        for layer in &mut self.layers {
            off += layer.read_params(&src[off..]);
        }
        off
    }

    fn write_grads(&self, out: &mut [f32]) -> usize {
        let mut off = 0;
        for layer in &self.layers {
            off += layer.write_grads(&mut out[off..]);
        }
        off
    }

    fn zero_grad(&mut self) {
        Sequential::zero_grad(self)
    }

    fn name(&self) -> &'static str {
        "Sequential"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::dense::Dense;
    use sg_math::seeded_rng;

    fn tiny_model(seed: u64) -> Sequential {
        let mut rng = seeded_rng(seed);
        Sequential::new().with(Dense::new(&mut rng, 4, 8)).with(Relu::new()).with(Dense::new(&mut rng, 8, 3))
    }

    #[test]
    fn forward_shape_through_stack() {
        let mut m = tiny_model(0);
        let y = m.forward(&Tensor::zeros(&[5, 4]), true);
        assert_eq!(y.shape(), &[5, 3]);
    }

    #[test]
    fn param_vector_round_trip() {
        let m1 = tiny_model(1);
        let p = m1.param_vector();
        assert_eq!(p.len(), m1.num_params());
        let mut m2 = tiny_model(2);
        assert_ne!(m2.param_vector(), p);
        m2.set_param_vector(&p);
        assert_eq!(m2.param_vector(), p);
    }

    #[test]
    fn identical_params_give_identical_outputs() {
        let mut m1 = tiny_model(1);
        let mut m2 = tiny_model(3);
        m2.set_param_vector(&m1.param_vector());
        let x = Tensor::from_vec(vec![0.1, -0.2, 0.3, 0.4], &[1, 4]);
        assert_eq!(m1.forward(&x, false).data(), m2.forward(&x, false).data());
    }

    #[test]
    fn grad_vector_zeroed_by_zero_grad() {
        let mut m = tiny_model(4);
        let x = Tensor::ones(&[2, 4]);
        let y = m.forward(&x, true);
        m.backward(&Tensor::ones(y.shape()));
        assert!(m.grad_vector().iter().any(|&g| g != 0.0));
        m.zero_grad();
        assert!(m.grad_vector().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn end_to_end_gradient_check() {
        let mut m = tiny_model(5);
        let x = Tensor::from_vec(vec![0.5, -0.3, 0.8, 0.2, -0.1, 0.9, 0.4, -0.6], &[2, 4]);
        let y = m.forward(&x, true);
        m.zero_grad();
        m.backward(&Tensor::ones(y.shape()));
        let params = m.param_vector();
        let grads = m.grad_vector();
        let eps = 1e-2f32;
        for &p in &[0usize, 10, 30, params.len() - 1] {
            let mut plus = params.clone();
            plus[p] += eps;
            m.set_param_vector(&plus);
            let lp = m.forward(&x, true).sum();
            let mut minus = params.clone();
            minus[p] -= eps;
            m.set_param_vector(&minus);
            let lm = m.forward(&x, true).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - grads[p]).abs() < 0.05, "param {p}: {numeric} vs {}", grads[p]);
        }
    }
}
