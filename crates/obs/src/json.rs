//! Minimal JSON support for the trace sink: string escaping on the way
//! out, and a dependency-free syntactic validator for reading traces back
//! (the CI `trace-smoke` job and the `trace_check` binary use it to prove
//! a trace parses without pulling a JSON crate into the workspace).

/// Escapes `s` for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// What [`validate_jsonl`] found in a well-formed trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonlStats {
    /// Non-empty lines (= JSON events).
    pub lines: usize,
    /// Events whose `"ev"` is `"span"`.
    pub spans: usize,
    /// Whether the final event is the `"end"` trailer.
    pub terminated: bool,
}

/// Validates a JSONL trace: every non-empty line must be a syntactically
/// well-formed JSON object containing an `"ev"` key. Returns per-event
/// stats, or the first offending line (1-based) and why.
pub fn validate_jsonl(text: &str) -> Result<JsonlStats, String> {
    let mut stats = JsonlStats { lines: 0, spans: 0, terminated: false };
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut p = Parser { bytes: line.as_bytes(), pos: 0 };
        p.skip_ws();
        if p.peek() != Some(b'{') {
            return Err(format!("line {}: event is not a JSON object", i + 1));
        }
        p.value().map_err(|e| format!("line {}: {e}", i + 1))?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("line {}: trailing bytes after the JSON value", i + 1));
        }
        if !line.contains("\"ev\":") {
            return Err(format!("line {}: event has no \"ev\" field", i + 1));
        }
        stats.lines += 1;
        stats.spans += usize::from(line.contains("\"ev\":\"span\""));
        stats.terminated = line.contains("\"ev\":\"end\"");
    }
    Ok(stats)
}

/// Recursive-descent syntax checker over one line. Validates structure
/// only — values are never materialized.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        while let Some(b) = self.peek() {
            self.pos += 1;
            match b {
                b'"' => return Ok(()),
                b'\\' => match self.peek() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => self.pos += 1,
                    Some(b'u') => {
                        self.pos += 1;
                        for _ in 0..4 {
                            if !matches!(self.peek(), Some(b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F')) {
                                return Err(format!("bad \\u escape at byte {}", self.pos));
                            }
                            self.pos += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", self.pos)),
                },
                0x00..=0x1f => return Err(format!("raw control byte in string at {}", self.pos - 1)),
                _ => {}
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(format!("number with no digits at byte {}", self.pos));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err(format!("fraction with no digits at byte {}", self.pos));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err(format!("exponent with no digits at byte {}", self.pos));
            }
        }
        Ok(())
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_quotes_backslashes_and_controls() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("n\nl\tt"), "n\\nl\\tt");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn accepts_a_realistic_trace() {
        let trace = concat!(
            "{\"ev\":\"start\",\"format\":\"sg-obs/v1\"}\n",
            "{\"ev\":\"span\",\"path\":\"cell/compute\",\"label\":\"t1/a\\\"b\",\"us\":12,\"tid\":0,\"seq\":1}\n",
            "{\"ev\":\"hist\",\"name\":\"stale\",\"count\":2,\"sum\":3,\"max\":2,\"buckets\":[[1,1],[2,1]]}\n",
            "{\"ev\":\"end\",\"spans\":1}\n",
        );
        let stats = validate_jsonl(trace).expect("valid");
        assert_eq!(stats, JsonlStats { lines: 4, spans: 1, terminated: true });
    }

    #[test]
    fn rejects_malformed_lines_with_position() {
        for (bad, what) in [
            ("{\"ev\":\"span\"", "truncated object"),
            ("{\"ev\":}", "missing value"),
            ("[1,2,3]", "non-object event"),
            ("{\"ev\":\"x\"} extra", "trailing bytes"),
            ("{\"name\":\"no-ev\"}", "missing ev"),
            ("{\"ev\":\"x\",\"n\":1e}", "exponent with no digits"),
            ("{\"ev\":\"x\",\"n\":1.}", "fraction with no digits"),
        ] {
            let err = validate_jsonl(bad).expect_err(what);
            assert!(err.starts_with("line 1:"), "{what}: {err}");
        }
    }

    #[test]
    fn empty_lines_and_empty_input_are_fine() {
        assert_eq!(validate_jsonl("").expect("empty").lines, 0);
        let stats = validate_jsonl("{\"ev\":\"end\",\"spans\":0}\n\n").expect("trailing blank");
        assert_eq!(stats.lines, 1);
        assert!(stats.terminated);
    }
}
