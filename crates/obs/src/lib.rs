//! Deterministic tracing and metrics for the SignGuard workspace.
//!
//! Every layer of the stack — the worker pool, the round pipeline, the
//! scenario grid, SignGuard's filter cascade — emits spans and metrics
//! through the single process-wide registry in this crate. The registry is
//! **off by default** and, when off, every probe collapses to one relaxed
//! atomic load: no clock reads, no thread-local access, no allocation, so
//! instrumented hot paths stay bench-gate clean.
//!
//! # Sink model
//!
//! Two pluggable sinks, both strictly *observers* of the run:
//!
//! * **JSONL event stream** ([`init_trace`]) — one self-contained JSON
//!   object per line, written through a buffered file handle as spans
//!   close. Aggregates (counters, gauges, histograms) are appended when the
//!   run [`finish`]es, followed by an `"end"` trailer line. The harness
//!   exposes this as `--trace PATH`.
//! * **End-of-run summary** ([`render_summary`]) — an aggregated span tree
//!   (count / total / mean / max per span path) plus all counters, gauges
//!   and histograms, rendered as text for stderr. Enabled by [`enable`]
//!   alone, no file needed.
//!
//! # Determinism contract
//!
//! Instrumentation must never perturb results. The registry guarantees its
//! half of that contract structurally: probes only *read* the monotonic
//! clock and *write* to the registry — they expose no data back to the
//! instrumented code (no probe returns a value the caller could branch
//! on), touch no RNG, and never reorder or block the work they observe
//! beyond the shared registry mutex. Consolidated reports and CSVs are
//! therefore byte-identical with tracing on or off, at any thread count —
//! CI proves this by `cmp`-ing traced against untraced sweep output.
//!
//! The JSONL stream itself is *not* deterministic (it contains wall-clock
//! durations, thread ids and completion order); only the run's results
//! are.
//!
//! # Span nesting and shared pools
//!
//! Spans nest through a thread-local stack: a span opened while another is
//! open on the same thread records under the path `parent/child`. Two
//! escape hatches matter on a help-while-waiting worker pool, where a
//! thread blocked on an inner batch may execute *unrelated* queued tasks
//! inline:
//!
//! * [`span_root`] ignores the ambient stack and always records under its
//!   own name — grid cells use it, so a cell executed inline by a worker
//!   that is mid-way through another cell's batch does not show up nested
//!   inside that cell's spans.
//! * Durations are wall-clock: a span covering a pool batch includes any
//!   helped work the submitting thread ran inline while waiting. Per-cell
//!   times from a shared pool are honest latencies, not exclusive CPU
//!   attribution.
//!
//! # Env / flag reference
//!
//! | control | effect |
//! |---|---|
//! | `--trace PATH` (harness flag) | [`init_trace`]: enable + JSONL sink |
//! | `SG_QUIET=1` | [`quiet`]: suppress progress lines and summaries |
//! | (none)       | registry disabled; probes are one atomic load |

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

mod json;
pub use json::{validate_jsonl, JsonlStats};

/// Labeled span entries kept per span name for "most expensive" tables.
const TOP_K: usize = 64;

/// Exponential histogram: bucket 0 holds zeros, bucket `k` (k ≥ 1) holds
/// values in `[2^(k-1), 2^k)`.
pub const HIST_BUCKETS: usize = 65;

static ENABLED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Inner> {
    static REGISTRY: OnceLock<Mutex<Inner>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Inner::new()))
}

fn lock() -> MutexGuard<'static, Inner> {
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Small dense ids for threads (std thread ids are opaque).
fn thread_tag() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TAG: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TAG.with(|t| *t)
}

thread_local! {
    /// Paths of the spans currently open on this thread, innermost last.
    static STACK: std::cell::RefCell<Vec<String>> = const { std::cell::RefCell::new(Vec::new()) };
}

#[derive(Clone, Copy)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

struct Hist {
    count: u64,
    sum: u64,
    max: u64,
    buckets: [u64; HIST_BUCKETS],
}

struct Inner {
    sink: Option<BufWriter<File>>,
    seq: u64,
    spans: BTreeMap<String, SpanAgg>,
    /// Per span name: the most expensive labeled instances, descending.
    tops: BTreeMap<&'static str, Vec<(String, u64)>>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    hists: BTreeMap<&'static str, Hist>,
}

impl Inner {
    fn new() -> Self {
        Self {
            sink: None,
            seq: 0,
            spans: BTreeMap::new(),
            tops: BTreeMap::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
    }

    fn emit(&mut self, line: &str) {
        if let Some(sink) = self.sink.as_mut() {
            // A torn trace is diagnosable; a panicking probe is not. Drop
            // the sink on write failure instead of unwinding into the run.
            if writeln!(sink, "{line}").is_err() {
                self.sink = None;
            }
        }
    }
}

/// Whether the registry is recording. One relaxed load — this is the whole
/// cost of every probe in a run without `--trace`.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on with the in-memory aggregates only (summary sink).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns recording on and attaches a JSONL event sink at `path`.
pub fn init_trace(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    let mut st = lock();
    st.sink = Some(BufWriter::new(file));
    st.emit("{\"ev\":\"start\",\"format\":\"sg-obs/v1\",\"clock\":\"monotonic\"}");
    drop(st);
    ENABLED.store(true, Ordering::Relaxed);
    Ok(())
}

/// Flushes aggregates to the JSONL sink (when one is attached), writes the
/// `"end"` trailer, then disables recording and clears all state.
///
/// Call [`render_summary`] / [`render_top`] *before* this if the text
/// summary is wanted. Spans still open on other threads when `finish` runs
/// record into the fresh (disabled-path) state and are dropped — the trace
/// covers what closed before the run finished.
pub fn finish() -> std::io::Result<()> {
    ENABLED.store(false, Ordering::Relaxed);
    let mut st = lock();
    let mut out = String::new();
    for (name, value) in &st.counters {
        out.push_str(&format!(
            "{{\"ev\":\"counter\",\"name\":\"{}\",\"value\":{}}}\n",
            json::escape(name),
            value
        ));
    }
    for (name, value) in &st.gauges {
        out.push_str(&format!(
            "{{\"ev\":\"gauge\",\"name\":\"{}\",\"value\":{}}}\n",
            json::escape(name),
            value
        ));
    }
    for (name, h) in &st.hists {
        let buckets: Vec<String> = h
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| format!("[{i},{c}]"))
            .collect();
        out.push_str(&format!(
            "{{\"ev\":\"hist\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[{}]}}\n",
            json::escape(name),
            h.count,
            h.sum,
            h.max,
            buckets.join(",")
        ));
    }
    out.push_str(&format!("{{\"ev\":\"end\",\"spans\":{}}}", st.seq));
    st.emit(&out);
    let result = match st.sink.take() {
        Some(mut sink) => sink.flush(),
        None => Ok(()),
    };
    *st = Inner::new();
    result
}

/// An open span; records its duration into the registry when dropped.
///
/// Created disabled (by any probe while the registry is off) it is fully
/// inert: no clock was read, nothing happens on drop.
pub struct Span {
    /// `Some` only when the registry was enabled at open time.
    open: Option<OpenSpan>,
}

struct OpenSpan {
    path: String,
    name: &'static str,
    label: Option<String>,
    start: Instant,
}

fn open_span(name: &'static str, root: bool, label: Option<String>) -> Span {
    if !enabled() {
        return Span { open: None };
    }
    let path = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) if !root => format!("{parent}/{name}"),
            _ => name.to_string(),
        };
        stack.push(path.clone());
        path
    });
    Span { open: Some(OpenSpan { path, name, label, start: Instant::now() }) }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else { return };
        let ns = open.start.elapsed().as_nanos() as u64;
        STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let mut st = lock();
        let agg = st.spans.entry(open.path.clone()).or_insert(SpanAgg { count: 0, total_ns: 0, max_ns: 0 });
        agg.count += 1;
        agg.total_ns += ns;
        agg.max_ns = agg.max_ns.max(ns);
        if let Some(label) = &open.label {
            let top = st.tops.entry(open.name).or_default();
            let at = top.partition_point(|&(_, v)| v > ns);
            if at < TOP_K {
                top.insert(at, (label.clone(), ns));
                top.truncate(TOP_K);
            }
        }
        if st.sink.is_some() {
            st.seq += 1;
            let label = match &open.label {
                Some(l) => format!(",\"label\":\"{}\"", json::escape(l)),
                None => String::new(),
            };
            let line = format!(
                "{{\"ev\":\"span\",\"path\":\"{}\"{},\"us\":{},\"tid\":{},\"seq\":{}}}",
                json::escape(&open.path),
                label,
                ns / 1_000,
                thread_tag(),
                st.seq
            );
            st.emit(&line);
        }
    }
}

/// Opens a span nested under whatever span this thread already has open.
#[inline]
pub fn span(name: &'static str) -> Span {
    open_span(name, false, None)
}

/// Opens a *root* span: records under `name` alone, ignoring the ambient
/// stack. Use for units of work (grid cells) that a shared pool may run
/// inline on a thread that is mid-way through someone else's span.
#[inline]
pub fn span_root(name: &'static str) -> Span {
    open_span(name, true, None)
}

/// A root span with an instance label (e.g. a grid cell's label); labeled
/// instances feed the [`render_top`] "most expensive" table.
#[inline]
pub fn span_cell(name: &'static str, label: &str) -> Span {
    if !enabled() {
        return Span { open: None };
    }
    open_span(name, true, Some(label.to_string()))
}

/// Adds `delta` to a named monotonic counter.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    *lock().counters.entry(name.to_string()).or_insert(0) += delta;
}

/// Sets a counter to an absolute value (for totals computed elsewhere,
/// e.g. cache hit/miss tallies routed into the registry at end of run).
pub fn counter_set(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    lock().counters.insert(name.to_string(), value);
}

/// Sets a named gauge to its latest value.
#[inline]
pub fn gauge_set(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    lock().gauges.insert(name.to_string(), value);
}

/// Records one observation into an exponential histogram (see
/// [`bucket_of`] for the bucket layout).
#[inline]
pub fn histogram_record(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    let mut st = lock();
    let h = st.hists.entry(name).or_insert(Hist { count: 0, sum: 0, max: 0, buckets: [0; HIST_BUCKETS] });
    h.count += 1;
    h.sum += value;
    h.max = h.max.max(value);
    h.buckets[bucket_of(value)] += 1;
}

/// Histogram bucket for `value`: 0 for zero, else `floor(log2(value)) + 1`
/// — so bucket `k ≥ 1` spans `[2^(k-1), 2^k)`.
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the aggregated span tree + metrics as a text block (the stderr
/// summary sink). Read-only; call before [`finish`].
pub fn render_summary() -> String {
    let st = lock();
    let mut out = String::from("── sg-obs summary ──\n");
    if !st.spans.is_empty() {
        out.push_str("spans (count · total · mean · max):\n");
        for (path, agg) in &st.spans {
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            out.push_str(&format!(
                "  {:indent$}{:24} {:>8} · {:>9} · {:>9} · {:>9}\n",
                "",
                name,
                agg.count,
                fmt_ns(agg.total_ns),
                fmt_ns(agg.total_ns / agg.count.max(1)),
                fmt_ns(agg.max_ns),
                indent = depth * 2,
            ));
        }
    }
    if !st.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in &st.counters {
            out.push_str(&format!("  {name:32} {value}\n"));
        }
    }
    if !st.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, value) in &st.gauges {
            out.push_str(&format!("  {name:32} {value}\n"));
        }
    }
    if !st.hists.is_empty() {
        out.push_str("histograms (count · mean · max):\n");
        for (name, h) in &st.hists {
            let mean = h.sum as f64 / h.count.max(1) as f64;
            out.push_str(&format!("  {:32} {:>8} · {:>9.2} · {:>9}\n", name, h.count, mean, h.max));
        }
    }
    out
}

/// Renders the `k` most expensive labeled instances of span `name` (per
/// [`span_cell`]) as a table, or an empty string when none were recorded.
pub fn render_top(name: &str, k: usize) -> String {
    let st = lock();
    let Some(top) = st.tops.iter().find(|(n, _)| **n == name).map(|(_, v)| v) else {
        return String::new();
    };
    let mut out = format!("top {} most expensive `{}` instances:\n", k.min(top.len()), name);
    for (i, (label, ns)) in top.iter().take(k).enumerate() {
        out.push_str(&format!("  {:>2}. {:>9}  {}\n", i + 1, fmt_ns(*ns), label));
    }
    out
}

/// Whether `SG_QUIET` asked for silence (read once per process).
pub fn quiet() -> bool {
    static QUIET: OnceLock<bool> = OnceLock::new();
    *QUIET.get_or_init(|| std::env::var("SG_QUIET").map(|v| v != "0" && !v.is_empty()).unwrap_or(false))
}

/// Emits one progress line to stderr unless `SG_QUIET` is set. The message
/// is built lazily so quiet runs pay no formatting.
pub fn progress(msg: impl FnOnce() -> String) {
    if !quiet() {
        eprintln!("{}", msg());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; tests that record serialize here.
    fn serial() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_probes_are_inert() {
        let _g = serial();
        assert!(!enabled());
        let s = span("never");
        assert!(s.open.is_none());
        drop(s);
        counter_add("never", 3);
        histogram_record("never", 9);
        let st = lock();
        assert!(st.spans.is_empty() && st.counters.is_empty() && st.hists.is_empty());
    }

    #[test]
    fn spans_nest_by_thread_local_stack() {
        let _g = serial();
        enable();
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
                let _leaf = span("leaf");
            }
            let _sibling = span("sibling");
        }
        {
            // Root spans ignore the ambient stack.
            let _outer = span("outer");
            let _cell = span_root("outer");
        }
        let paths: Vec<String> = lock().spans.keys().cloned().collect();
        finish().expect("finish");
        assert_eq!(
            paths,
            vec![
                "outer".to_string(),
                "outer/inner".to_string(),
                "outer/inner/leaf".to_string(),
                "outer/sibling".to_string(),
            ]
        );
        // The stack drains back to empty.
        STACK.with(|s| assert!(s.borrow().is_empty()));
    }

    #[test]
    fn root_span_count_includes_both_opens() {
        let _g = serial();
        enable();
        {
            let _a = span("cell");
            let _b = span_root("cell");
        }
        let count = lock().spans.get("cell").expect("agg").count;
        finish().expect("finish");
        assert_eq!(count, 2);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(255), 8);
        assert_eq!(bucket_of(256), 9);
        assert_eq!(bucket_of(u64::MAX), 64);
        // Every bucket edge: 2^(k-1) lands in bucket k, (2^k)-1 stays.
        for k in 1..64usize {
            assert_eq!(bucket_of(1u64 << (k - 1)), k);
            assert_eq!(bucket_of((1u64 << k) - 1), k);
        }
    }

    #[test]
    fn counters_gauges_histograms_aggregate() {
        let _g = serial();
        enable();
        counter_add("c.hits", 2);
        counter_add("c.hits", 3);
        counter_add("c.hits", 0); // no-op by contract
        counter_set("c.total", 41);
        counter_set("c.total", 42);
        gauge_set("g.depth", 7);
        gauge_set("g.depth", 5);
        for v in [0u64, 1, 1, 9] {
            histogram_record("h.stale", v);
        }
        let summary = render_summary();
        {
            let st = lock();
            assert_eq!(st.counters["c.hits"], 5);
            assert_eq!(st.counters["c.total"], 42);
            assert_eq!(st.gauges["g.depth"], 5);
            let h = &st.hists["h.stale"];
            assert_eq!((h.count, h.sum, h.max), (4, 11, 9));
            assert_eq!(h.buckets[0], 1);
            assert_eq!(h.buckets[1], 2);
            assert_eq!(h.buckets[4], 1);
        }
        finish().expect("finish");
        assert!(summary.contains("c.hits"));
        assert!(summary.contains("h.stale"));
    }

    #[test]
    fn jsonl_sink_frames_every_event_as_valid_json() {
        let _g = serial();
        let path = std::env::temp_dir().join(format!("sg-obs-frame-{}.jsonl", std::process::id()));
        init_trace(&path).expect("trace file");
        {
            let _cell = span_cell("cell", "grid/\"quoted\"/label\\x");
            let _stage = span("compute");
        }
        counter_add("pool.tasks", 12);
        histogram_record("stale", 3);
        finish().expect("finish");
        let text = std::fs::read_to_string(&path).expect("read back");
        let stats = validate_jsonl(&text).expect("trace must be valid JSONL");
        // start + 2 spans + counter + hist + end.
        assert_eq!(stats.lines, 6);
        assert_eq!(stats.spans, 2);
        assert!(text.contains("\"ev\":\"start\""));
        assert!(text.contains("\"path\":\"cell/compute\""));
        assert!(text.contains("\\\"quoted\\\""));
        assert!(text.lines().last().expect("trailer").contains("\"ev\":\"end\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn top_table_ranks_labeled_spans() {
        let _g = serial();
        enable();
        for (label, spin) in [("cheap", 1u64), ("dear", 2_000), ("mid", 400)] {
            let _s = span_cell("cell", label);
            // Busy-wait long enough to order the three deterministically.
            let start = Instant::now();
            while start.elapsed().as_micros() < spin as u128 {}
        }
        let table = render_top("cell", 2);
        let missing = render_top("nothing", 5);
        finish().expect("finish");
        assert!(missing.is_empty());
        let dear = table.find("dear").expect("most expensive listed");
        let mid = table.find("mid").expect("runner-up listed");
        assert!(dear < mid, "descending order:\n{table}");
        assert!(!table.contains("cheap"), "k=2 truncates:\n{table}");
    }

    #[test]
    fn quiet_progress_formats_lazily() {
        // `quiet()` latches whatever the env says on first read; the lazy
        // closure contract is testable regardless of which way it latched.
        let called = std::cell::Cell::new(false);
        progress(|| {
            called.set(true);
            String::new()
        });
        assert_eq!(called.get(), !quiet());
    }
}
