//! Gradient buffer arena: one reusable `Vec<f32>` per client.
//!
//! A federated round materializes one flattened gradient per participating
//! client. Allocating those `Vec<f32>`s fresh every round (the naive
//! pattern) costs an allocation + page-fault churn per client per round at
//! exactly the moment every worker thread is hot. The arena keeps one
//! buffer per client slot; the simulator takes buffers out at the start of
//! a round, lets clients write into them in place, hands them to the
//! attack/aggregation pipeline, and returns them when the round ends.
//!
//! Compressed gradient representations recycle the same way: each slot
//! additionally owns a bit-packed sign buffer (`Vec<u64>` words plus a
//! `Vec<u32>` zero-coordinate list) and a quantized byte buffer
//! (`Vec<i8>`), so a pipeline running on `SignNorm` or `QuantizedI8`
//! payloads allocates exactly as rarely as the dense path.

/// Per-slot reusable gradient buffers — dense, bit-packed, and quantized.
///
/// # Examples
///
/// ```
/// use sg_runtime::GradientArena;
///
/// let mut arena = GradientArena::new(4);
/// let mut buf = arena.take(2);
/// buf.clear();
/// buf.extend_from_slice(&[1.0, 2.0]);
/// arena.put(2, buf);
/// assert_eq!(arena.take(2), vec![1.0, 2.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GradientArena {
    buffers: Vec<Vec<f32>>,
    packed: Vec<(Vec<u64>, Vec<u32>)>,
    bytes: Vec<Vec<i8>>,
}

impl GradientArena {
    /// Creates an arena with `slots` empty buffers.
    pub fn new(slots: usize) -> Self {
        Self {
            buffers: vec![Vec::new(); slots],
            packed: vec![(Vec::new(), Vec::new()); slots],
            bytes: vec![Vec::new(); slots],
        }
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.buffers.len()
    }

    /// Takes slot `i`'s buffer out of the arena (leaving an empty one).
    ///
    /// The returned buffer keeps whatever capacity it grew in earlier
    /// rounds; contents are unspecified — overwrite, don't read.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn take(&mut self, i: usize) -> Vec<f32> {
        let buffer = std::mem::take(&mut self.buffers[i]);
        sg_obs::counter_add(if buffer.capacity() > 0 { "arena.reuse" } else { "arena.fresh" }, 1);
        buffer
    }

    /// Returns a buffer to slot `i` for reuse next round.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn put(&mut self, i: usize, buffer: Vec<f32>) {
        self.buffers[i] = buffer;
    }

    /// Takes slot `i`'s bit-packed sign buffers (sign words + zero list)
    /// out of the arena. Same contract as [`take`](Self::take): capacity
    /// survives, contents are unspecified.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn take_packed(&mut self, i: usize) -> (Vec<u64>, Vec<u32>) {
        let pair = std::mem::take(&mut self.packed[i]);
        sg_obs::counter_add(if pair.0.capacity() > 0 { "arena.reuse" } else { "arena.fresh" }, 1);
        pair
    }

    /// Returns bit-packed sign buffers to slot `i` for reuse next round.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn put_packed(&mut self, i: usize, bits: Vec<u64>, zeros: Vec<u32>) {
        self.packed[i] = (bits, zeros);
    }

    /// Takes slot `i`'s quantized byte buffer out of the arena. Same
    /// contract as [`take`](Self::take).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn take_bytes(&mut self, i: usize) -> Vec<i8> {
        let buffer = std::mem::take(&mut self.bytes[i]);
        sg_obs::counter_add(if buffer.capacity() > 0 { "arena.reuse" } else { "arena.fresh" }, 1);
        buffer
    }

    /// Returns a quantized byte buffer to slot `i` for reuse next round.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn put_bytes(&mut self, i: usize, buffer: Vec<i8>) {
        self.bytes[i] = buffer;
    }

    /// Total capacity currently parked in the arena, in bytes, across the
    /// dense, bit-packed, and quantized pools.
    pub fn resident_bytes(&self) -> usize {
        let dense: usize = self.buffers.iter().map(|b| b.capacity() * std::mem::size_of::<f32>()).sum();
        let packed: usize =
            self.packed.iter().map(|(bits, zeros)| bits.capacity() * 8 + zeros.capacity() * 4).sum();
        let bytes: usize = self.bytes.iter().map(Vec::capacity).sum();
        dense + packed + bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_keep_capacity_across_rounds() {
        let mut arena = GradientArena::new(2);
        let mut b = arena.take(0);
        b.resize(1024, 1.0);
        let ptr = b.as_ptr();
        arena.put(0, b);
        let b2 = arena.take(0);
        assert_eq!(b2.capacity(), 1024);
        assert_eq!(b2.as_ptr(), ptr, "same allocation reused");
    }

    #[test]
    fn resident_bytes_counts_capacity() {
        let mut arena = GradientArena::new(3);
        let mut b = arena.take(1);
        b.reserve_exact(100);
        arena.put(1, b);
        assert!(arena.resident_bytes() >= 400);
    }

    #[test]
    #[should_panic]
    fn out_of_range_slot_panics() {
        let mut arena = GradientArena::new(1);
        let _ = arena.take(5);
    }

    #[test]
    fn packed_and_byte_pools_keep_capacity() {
        let mut arena = GradientArena::new(2);
        let (mut bits, mut zeros) = arena.take_packed(0);
        bits.resize(64, 0);
        zeros.resize(16, 0);
        let (bp, zp) = (bits.as_ptr(), zeros.as_ptr());
        arena.put_packed(0, bits, zeros);
        let (bits2, zeros2) = arena.take_packed(0);
        assert_eq!((bits2.as_ptr(), zeros2.as_ptr()), (bp, zp), "same allocations reused");

        let mut q = arena.take_bytes(1);
        q.resize(4096, 0);
        let qp = q.as_ptr();
        arena.put_bytes(1, q);
        let q2 = arena.take_bytes(1);
        assert_eq!(q2.as_ptr(), qp);
    }

    #[test]
    fn resident_bytes_spans_all_pools() {
        let mut arena = GradientArena::new(1);
        let (mut bits, zeros) = arena.take_packed(0);
        bits.reserve_exact(10);
        arena.put_packed(0, bits, zeros);
        let mut q = arena.take_bytes(0);
        q.reserve_exact(100);
        arena.put_bytes(0, q);
        assert!(arena.resident_bytes() >= 10 * 8 + 100);
    }
}
